//! Regenerates the structural figures of the paper as ASCII art.
//!
//! - **Fig. 1**: a tree stored in Hilbert-light-first order — the
//!   smaller subtree first, mapped onto the curve.
//! - **Fig. 2**: 16 elements in Z-order, with the longest diagonal for
//!   `i = 6, j = 10` (`Ed(6, 10) = 4`).
//! - **Fig. 8**: the path decomposition / subtree cover example, with
//!   per-vertex light-first positions, layers, and subtree ranges.
//!
//! ```sh
//! cargo run --release --example figures
//! ```

use spatial_trees::lca::SubtreeCover;
use spatial_trees::prelude::*;
use spatial_trees::sfc::zorder::{longest_diagonal, ZOrderCurve};
use spatial_trees::sfc::{Curve, CurveKind};
use spatial_trees::tree::HeavyPathDecomposition;

fn main() {
    figure1();
    figure2();
    figure8();
}

/// Prints a grid with the vertex stored at each cell.
fn render_layout(layout: &spatial_trees::layout::Layout) {
    let side = layout.machine().side();
    let mut grid = vec![vec![String::from("  ."); side as usize]; side as usize];
    for v in 0..layout.n() {
        let p = layout.point(v);
        grid[p.y as usize][p.x as usize] = format!("{v:>3}");
    }
    for row in grid {
        println!("    {}", row.join(" "));
    }
}

fn figure1() {
    println!("== Figure 1: a tree in Hilbert-light-first order ==");
    // The tree from the figure: root r with a small subtree c1 and a
    // larger subtree c2. Concretely: r=0; c1=1 (2 leaves); c2=2 (a
    // 3-level subtree).
    let parents = vec![
        spatial_trees::tree::NIL, // 0 = r
        0,                        // 1 = c1
        0,                        // 2 = c2
        1,
        1, // c1's leaves
        2,
        2, // c2's children
        5,
        5,
        6,
        6, // c2's grandchildren
    ];
    let tree = Tree::from_parents(0, parents);
    let st = SpatialTree::new(tree);
    println!(
        "  light-first linear order (s(c1)={} ≤ s(c2)={} ⇒ c1 first):",
        st.sizes()[1],
        st.sizes()[2]
    );
    println!("    {:?}", st.layout().order());
    println!("  mapped onto the Hilbert curve:");
    render_layout(st.layout());
    println!(
        "  kernel energy: {} for {} edges (mean {:.2})\n",
        st.messaging_energy(),
        st.n() - 1,
        st.messaging_energy() as f64 / (st.n() - 1) as f64
    );
}

fn figure2() {
    println!("== Figure 2: 16 elements stored in Z-order ==");
    let c = ZOrderCurve::new(4);
    for y in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|x| format!("{:>2}", c.index(spatial_trees::model::GridPoint::new(x, y))))
            .collect();
        println!("    {}", row.join(" "));
    }
    let ed = longest_diagonal(&c, 6, 10);
    println!("  longest diagonal between i=6 and j=10: Ed(6, 10) = {ed}");
    println!(
        "  (the jump 7 → 8 crosses from {} to {})\n",
        c.point(7),
        c.point(8)
    );
}

fn figure8() {
    println!("== Figure 8: path decomposition and subtree cover ==");
    // The 8-vertex tree of the figure: 0→(1,4), 1→(2,3), 4→(5,6), 6→7.
    let tree = Tree::from_parents(0, vec![spatial_trees::tree::NIL, 0, 1, 1, 0, 4, 4, 6]);
    let sizes = tree.subtree_sizes();
    let decomposition = HeavyPathDecomposition::with_sizes(&tree, &sizes);
    let layout = spatial_trees::layout::Layout::light_first(&tree, CurveKind::Hilbert);
    let cover = SubtreeCover::new(&tree, &layout, &decomposition, &sizes);

    println!("  vertex: light-first position, layer");
    for v in tree.vertices() {
        println!(
            "    {v}: position {}, layer {}",
            layout.slot(v),
            decomposition.layer[v as usize]
        );
    }
    println!("  subtree cover (per layer, as light-first ranges):");
    for li in 0..cover.num_layers() {
        let ranges: Vec<String> = cover
            .layer(li)
            .map(|s| format!("S(root {}) = [{}, {}]", s.root, s.lo, s.hi - 1))
            .collect();
        println!("    layer {li}: {}", ranges.join(", "));
    }
    println!("  decomposition paths:");
    for li in 0..cover.num_layers() {
        for h in decomposition.layer_heads(li) {
            let mut path = vec![h];
            let mut at = h;
            while decomposition.heavy_child[at as usize] != spatial_trees::tree::NIL {
                at = decomposition.heavy_child[at as usize];
                path.push(at);
            }
            println!("    layer {li}: {path:?}");
        }
    }
}
