//! Tree analytics: the treefix-sum toolbox on one tree, spatial vs PRAM.
//!
//! Treefix sums are the paper's workhorse ("applications in minimum cut
//! computations", §V). This example runs a battery of analytics on one
//! large random tree — subtree sums / max / min, root-path sums, path
//! decomposition layers — and compares the spatial cost against the
//! simulated-PRAM baseline for the same computation (the §I-C headline:
//! `O(n log n)` vs `Θ(n^{3/2})` energy).
//!
//! ```sh
//! cargo run --release --example tree_analytics
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::pram::PramEngine;
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 1u32 << 14;
    let tree = generators::preferential_attachment(n, &mut rng);
    println!("tree: {}", spatial_trees::tree::TreeStats::of(&tree));
    let st = SpatialTree::new(tree);
    let weights: Vec<u64> = (0..n as u64).map(|v| (v * 2654435761) % 1000).collect();

    println!(
        "\n{:<28} {:>12} {:>8} {:>16}",
        "analytic", "energy", "depth", "energy/(n log n)"
    );

    // Subtree weight sums.
    let machine = st.machine();
    let vals: Vec<Add> = weights.iter().map(|&w| Add(w)).collect();
    let sums = st.treefix_sum(&machine, &vals, &mut rng);
    row("subtree weight sums", &machine, n);

    // Subtree maxima (no inverse exists — the paper's "any associative
    // operator" clause, via our saved-state uncontraction).
    let machine = st.machine();
    let vals: Vec<Max> = weights.iter().map(|&w| Max(w)).collect();
    let maxima = st.treefix_sum(&machine, &vals, &mut rng);
    row("subtree weight maxima", &machine, n);

    // Subtree minima.
    let machine = st.machine();
    let vals: Vec<Min> = weights.iter().map(|&w| Min(w)).collect();
    let _minima = st.treefix_sum(&machine, &vals, &mut rng);
    row("subtree weight minima", &machine, n);

    // Root-path sums (top-down).
    let machine = st.machine();
    let vals: Vec<Add> = weights.iter().map(|&w| Add(w)).collect();
    let paths = st.treefix_top_down(&machine, &vals, &mut rng);
    row("root-path weight sums", &machine, n);

    // Cross-check a few entries against host references.
    let host_sums = spatial_trees::treefix::treefix_bottom_up_host(
        st.tree(),
        &weights.iter().map(|&w| Add(w)).collect::<Vec<_>>(),
    );
    assert_eq!(sums.values, host_sums);
    let host_paths = spatial_trees::treefix::treefix_top_down_host(
        st.tree(),
        &weights.iter().map(|&w| Add(w)).collect::<Vec<_>>(),
    );
    assert_eq!(paths.values, host_paths);
    let Max(root_max) = maxima.values[st.tree().root() as usize];
    assert_eq!(root_max, *weights.iter().max().unwrap());
    println!("  (all results verified against host references ✓)");

    // PRAM baseline for the subtree sums.
    let mut pram = PramEngine::new(2 * n, 2 * n, &mut rng);
    let pram_sums =
        spatial_trees::pram::pram_subtree_sums(&mut pram, st.tree(), &weights, &mut rng);
    let expect: Vec<u64> = sums.values.iter().map(|&Add(v)| v).collect();
    assert_eq!(pram_sums, expect);
    let pr = pram.report();
    println!(
        "\nPRAM-simulation baseline (same subtree sums): energy {} depth {}",
        pr.energy, pr.depth
    );
    println!(
        "  energy/n^1.5 = {:.2};    spatial wins by {:.1}×",
        pr.energy_per_n_three_halves(n as u64),
        pr.energy as f64 / {
            let machine = st.machine();
            let vals: Vec<Add> = weights.iter().map(|&w| Add(w)).collect();
            st.treefix_sum(&machine, &vals, &mut rng);
            machine.report().energy as f64
        }
    );

    // A sampling of concrete analytics.
    let interesting: Vec<NodeId> = (0..4).map(|_| rng.gen_range(0..n)).collect();
    println!("\nsample analytics:");
    for v in interesting {
        let Add(s) = sums.values[v as usize];
        let Max(mx) = maxima.values[v as usize];
        let Add(p) = paths.values[v as usize];
        println!("  vertex {v}: subtree sum {s}, subtree max {mx}, root-path sum {p}");
    }
}

fn row(label: &str, machine: &Machine, n: u32) {
    let r = machine.report();
    println!(
        "{label:<28} {:>12} {:>8} {:>16.2}",
        r.energy,
        r.depth,
        r.energy_per_n_log_n(n as u64)
    );
}
