//! Quickstart: stand up a `SpatialForest` session over a tree, serve a
//! mixed query batch, and read the energy/depth meters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::prelude::*;
use spatial_trees::sfc::Curve;
use spatial_trees::tree::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 1u32 << 14;

    // A uniformly random labelled tree (unbounded degree).
    let tree = generators::uniform_random(n, &mut rng);
    println!("tree: {}", spatial_trees::tree::TreeStats::of(&tree));

    // The session layer: light-first Hilbert layout + a pool of
    // retained engines, built lazily, reused across every batch.
    let mut forest = SpatialForest::new(&tree);
    println!(
        "forest on {} curve, grid side {}, kernel energy {:.2} per vertex (Theorem 1 says O(1))",
        forest.layout().curve().kind(),
        forest.layout().curve().side(),
        forest.dynamic_stats().baseline_energy as f64 / n as f64,
    );

    // One mixed batch: LCA pairs, subtree sums, tour ranks, and a
    // couple of live leaf inserts. Each query kind in a session pays
    // for ONE charged engine run, however many queries share it.
    let mut batch = QueryBatch::new();
    for _ in 0..n / 2 {
        batch.lca(rng.gen_range(0..n), rng.gen_range(0..n));
    }
    for _ in 0..64 {
        batch.subtree_sum(rng.gen_range(0..n));
    }
    for _ in 0..64 {
        batch.rank(rng.gen_range(0..n));
    }
    batch.insert_leaf(7).subtree_sum(7);

    let responses = forest.execute(batch.requests(), &mut rng).to_vec();
    println!("\nserved {} requests", responses.len());
    match (batch.requests()[0], responses[0]) {
        (Request::Lca(a, b), Response::Lca(w)) => println!("  e.g. LCA({a}, {b}) = {w}"),
        _ => unreachable!(),
    }

    let report = forest.last_report();
    println!(
        "  {} charge-batched sessions: {} LCA + {} sums + {} ranks + {} inserts",
        report.sessions,
        report.lca_queries,
        report.sum_queries,
        report.rank_queries,
        report.inserts,
    );
    println!(
        "  grid machine: {}   energy/(n·log n) = {:.2}   depth/log² n = {:.2}",
        report.grid,
        report.grid.energy_per_n_log_n(n as u64),
        report.grid.depth_per_log2_n(n as u64),
    );
    println!("  dart machine (ranking): {}", report.ranking);

    // Spot-check three answers against the host oracle.
    let oracle = spatial_trees::lca::HostLca::new(forest.tree());
    for (req, resp) in batch.requests().iter().zip(responses.iter()).take(3) {
        if let (Request::Lca(a, b), Response::Lca(w)) = (*req, *resp) {
            assert_eq!(w, oracle.query(a, b));
        }
    }

    // The same warm forest keeps serving — engines stay bound, buffers
    // stay grown, the steady state allocates nothing.
    let mut batch2 = QueryBatch::new();
    for _ in 0..256 {
        batch2.lca(rng.gen_range(0..forest.n()), rng.gen_range(0..forest.n()));
    }
    forest.execute(batch2.requests(), &mut rng);
    println!(
        "\nwarm batch of {}: {}   pool: {:?}",
        batch2.len(),
        forest.last_report().grid,
        forest.pool().stats(),
    );
    println!("\nall good — see EXPERIMENTS.md for the full reproduction.");
}
