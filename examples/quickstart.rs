//! Quickstart: lay a tree out on the grid, run the paper's algorithms,
//! and read the energy/depth meters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 1u32 << 14;

    // A uniformly random labelled tree (unbounded degree).
    let tree = generators::uniform_random(n, &mut rng);
    println!("tree: {}", spatial_trees::tree::TreeStats::of(&tree));

    // Light-first layout on a Hilbert curve (Theorem 1's construction).
    let st = SpatialTree::new(tree);
    println!(
        "light-first layout on {} curve, grid side {}",
        st.layout().curve().kind(),
        st.machine().side()
    );
    println!(
        "parent→children kernel energy: {} ({:.2} per vertex — Theorem 1 says O(1))",
        st.messaging_energy(),
        st.messaging_energy() as f64 / n as f64
    );

    // Treefix sum: subtree sizes in O(n log n) energy, O(log² n) depth.
    let machine = st.machine();
    let sums = st.treefix_sum(&machine, &vec![Add(1); n as usize], &mut rng);
    let report = machine.report();
    println!(
        "\ntreefix sum (subtree sizes): root = {} (expected {n})",
        match sums.values[st.tree().root() as usize] {
            Add(v) => v,
        }
    );
    println!(
        "  {report}\n  energy/(n·log n) = {:.2}   depth/log² n = {:.2}   COMPACT rounds = {}",
        report.energy_per_n_log_n(n as u64),
        report.depth_per_log2_n(n as u64),
        sums.stats.compact_rounds
    );

    // Batched LCA: n/2 random queries.
    let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let machine = st.machine();
    let lca = st.lca_batch(&machine, &queries, &mut rng);
    let report = machine.report();
    println!(
        "\nbatched LCA over {} queries: {} answered as ancestor pairs, {} cover layers",
        queries.len(),
        lca.stats.answered_step1,
        lca.stats.layers
    );
    println!(
        "  {report}\n  energy/(n·log n) = {:.2}   depth/log² n = {:.2}",
        report.energy_per_n_log_n(n as u64),
        report.depth_per_log2_n(n as u64)
    );

    // Spot-check three answers against the host oracle.
    let oracle = spatial_trees::lca::HostLca::new(st.tree());
    for &(a, b) in queries.iter().take(3) {
        assert_eq!(
            lca.answers[queries.iter().position(|q| *q == (a, b)).unwrap()],
            oracle.query(a, b)
        );
        println!("  LCA({a}, {b}) = {}", oracle.query(a, b));
    }
    println!("\nall good — see EXPERIMENTS.md for the full reproduction.");
}
