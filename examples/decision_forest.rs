//! Random-forest workload: the paper's machine-learning motivation.
//!
//! Decision trees and random forests "can realize enhanced performance
//! through spatial locality" (§I). This example builds a forest of
//! random binary decision trees, lays each out light-first, and runs
//! two analyses per tree entirely with treefix sums:
//!
//! - **sample routing counts** (how many training samples reach each
//!   node) — a bottom-up treefix over per-leaf sample counts;
//! - **path costs** (feature-evaluation cost from root to node) — a
//!   top-down treefix.
//!
//! The per-tree energy stays near-linear, so the whole forest scales the
//! same way — that is the amortization story of §I-D: lay out once,
//! query many times.
//!
//! ```sh
//! cargo run --release --example decision_forest
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let forest_size = 16usize;
    let nodes_per_tree = 1u32 << 12;

    let mut total = CostReport::default();
    let mut total_nodes = 0u64;
    println!("random forest: {forest_size} trees × {nodes_per_tree} nodes");
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>14} {:>12}",
        "tree", "nodes", "energy", "depth", "energy/(nlogn)", "samples@root"
    );

    for t in 0..forest_size {
        let tree = generators::random_binary(nodes_per_tree, &mut rng);
        let n = tree.n();
        let st = SpatialTree::new(tree);

        // Each leaf drains a random number of training samples; internal
        // nodes route the sum of their children (bottom-up treefix).
        let samples: Vec<Add> = (0..n)
            .map(|v| {
                if st.tree().is_leaf(v) {
                    Add(rng.gen_range(1..100))
                } else {
                    Add(0)
                }
            })
            .collect();
        let machine = st.machine();
        let routed = st.treefix_sum(&machine, &samples, &mut rng);

        // Feature-evaluation cost along each root→node path (top-down).
        let costs: Vec<Add> = (0..n).map(|_| Add(rng.gen_range(1..5))).collect();
        let _path_cost = st.treefix_top_down(&machine, &costs, &mut rng);

        let report = machine.report();
        let Add(at_root) = routed.values[st.tree().root() as usize];
        println!(
            "{:<6} {:>10} {:>12} {:>8} {:>14.2} {:>12}",
            t,
            n,
            report.energy,
            report.depth,
            report.energy_per_n_log_n(n as u64),
            at_root
        );
        total = total + report;
        total_nodes += n as u64;
    }

    println!(
        "\nforest totals: {total_nodes} nodes, energy {}, {:.2} energy per node·log(node)",
        total.energy,
        total.energy as f64 / (total_nodes as f64 * (nodes_per_tree as f64).log2())
    );
    println!(
        "(forest trees are independent: on a real spatial chip they run \
         side-by-side, so forest depth = max tree depth, not the sum)"
    );
}
