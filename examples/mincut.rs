//! Minimum cuts from tree primitives — the paper's cited application
//! (§I-C/§V: Karger's minimum-cut framework uses treefix sums and LCA).
//!
//! Given a weighted graph with a spanning tree, the *1-respecting*
//! minimum cut (crossing exactly one tree edge) falls out of one
//! batched-LCA pass plus one fused treefix sum. This example builds a
//! random graph, finds its minimum 1-respecting cut on the spatial
//! machine, and verifies against brute force.
//!
//! ```sh
//! cargo run --release --example mincut
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_trees::layout::Layout;
use spatial_trees::mincut::{min_cut_host, one_respecting_cuts, SpannedGraph};
use spatial_trees::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let n = 1u32 << 13;
    let extra = (n / 2) as usize;
    let graph = SpannedGraph::random(n, extra, 100, &mut rng);
    println!(
        "graph: {} vertices, {} tree edges + {} non-tree edges",
        n,
        n - 1,
        extra
    );

    let layout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
    let machine = layout.machine();
    let res = one_respecting_cuts(&machine, &layout, &graph, &mut rng);
    let report = machine.report();

    println!(
        "\nminimum 1-respecting cut: weight {} at the tree edge above vertex {}",
        res.best_weight, res.best_vertex
    );
    println!(
        "  pipeline: batched LCA ({} cover layers) + fused 3-way treefix",
        res.lca_layers
    );
    println!("  {report}");
    println!(
        "  energy/(n·log n) = {:.2}   depth/log² n = {:.2}",
        report.energy_per_n_log_n(n as u64),
        report.depth_per_log2_n(n as u64)
    );

    // Verify against brute force on a subsample (full brute force is
    // O(n·m); do it on a smaller replica instead).
    let small = SpannedGraph::random(500, 250, 100, &mut StdRng::seed_from_u64(5));
    let layout = Layout::light_first(small.tree(), CurveKind::Hilbert);
    let machine = layout.machine();
    let spatial = one_respecting_cuts(&machine, &layout, &small, &mut rng);
    assert_eq!(spatial.cuts, min_cut_host(&small));
    println!("\nverified all 1-respecting cut values on a 500-vertex replica ✓");

    // Cut-weight distribution: how much heavier is the median cut?
    let mut weights: Vec<u64> = res
        .cuts
        .iter()
        .copied()
        .filter(|&c| c != u64::MAX)
        .collect();
    weights.sort_unstable();
    println!(
        "cut weights: min={} median={} max={}",
        weights[0],
        weights[weights.len() / 2],
        weights[weights.len() - 1]
    );
}
