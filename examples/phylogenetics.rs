//! Phylogenetics workload: the paper's computational-biology motivation.
//!
//! A Yule (pure-birth) species tree is analyzed with the spatial
//! algorithms: clade sizes via treefix sums, most-recent-common-ancestor
//! (MRCA) queries via batched LCA, and a layout comparison showing why
//! the light-first order matters when the same tree is reused across
//! many analysis passes (§I-D's amortization argument).
//!
//! ```sh
//! cargo run --release --example phylogenetics
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::layout::{edge_distance_stats, Layout, LayoutKind};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let species = 8192u32;
    let tree = generators::yule(species, &mut rng);
    let n = tree.n();
    println!("Yule phylogeny: {species} extant species, {n} tree vertices");

    // Collect the leaves (= species) before the tree moves into the
    // spatial wrapper.
    let leaves: Vec<NodeId> = tree.vertices().filter(|&v| tree.is_leaf(v)).collect();

    // --- Layout comparison: mean branch length on the grid. ---
    println!("\nlayout comparison (mean parent-child grid distance):");
    for kind in LayoutKind::ALL {
        let layout = Layout::of_kind(kind, &tree, CurveKind::Hilbert, &mut rng);
        let stats = edge_distance_stats(&tree, &layout);
        println!(
            "  {kind:<12} mean = {:>8.2}   max = {:>6}",
            stats.mean, stats.max
        );
    }

    let st = SpatialTree::new(tree);

    // --- Clade sizes: one bottom-up treefix sum. ---
    let machine = st.machine();
    let clade = st.treefix_sum(&machine, &vec![Add(1); n as usize], &mut rng);
    let report = machine.report();
    let Add(root_clade) = clade.values[st.tree().root() as usize];
    println!("\nclade sizes via treefix sum: root clade = {root_clade}");
    println!("  {report}");

    // Largest non-root clade (a real phylogenetic statistic: the deepest
    // split's balance).
    let (balance_left, balance_right) = {
        let root = st.tree().root();
        let kids = st.tree().children(root);
        let Add(a) = clade.values[kids[0] as usize];
        let b = kids.get(1).map(|&c| match clade.values[c as usize] {
            Add(v) => v,
        });
        (a, b.unwrap_or(0))
    };
    println!("  root split balance: {balance_left} vs {balance_right}");

    // --- MRCA queries: random species pairs. ---
    let queries: Vec<(NodeId, NodeId)> = (0..species)
        .map(|_| {
            (
                leaves[rng.gen_range(0..leaves.len())],
                leaves[rng.gen_range(0..leaves.len())],
            )
        })
        .collect();
    let machine = st.machine();
    let mrca = st.lca_batch(&machine, &queries, &mut rng);
    let report = machine.report();
    println!(
        "\nMRCA of {} random species pairs ({} cover layers):",
        queries.len(),
        mrca.stats.layers
    );
    println!("  {report}");

    // Depth distribution of the MRCAs — how deep do random pairs
    // coalesce? (Yule trees coalesce near the root.)
    let depths = st.tree().depths();
    let mut mrca_depths: Vec<u32> = mrca.answers.iter().map(|&w| depths[w as usize]).collect();
    mrca_depths.sort_unstable();
    println!(
        "  MRCA depth: min={} median={} max={} (tree height {})",
        mrca_depths[0],
        mrca_depths[mrca_depths.len() / 2],
        mrca_depths[mrca_depths.len() - 1],
        st.tree().height()
    );

    // Verify a sample against the host oracle.
    let oracle = spatial_trees::lca::HostLca::new(st.tree());
    for (qi, &(a, b)) in queries.iter().enumerate().take(1000) {
        assert_eq!(mrca.answers[qi], oracle.query(a, b));
    }
    println!("  verified 1000 answers against the host oracle ✓");
}
