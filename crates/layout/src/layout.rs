//! The [`Layout`] type: vertex → curve slot → grid coordinate.

use rand::Rng;
use spatial_model::{Machine, Slot};
use spatial_sfc::{AnyCurve, Curve, CurveKind, GridPoint};
use spatial_tree::{traversal, NodeId, Tree};

/// How the linear order of a layout is chosen; the experiment harness
/// sweeps over these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Light-first order (§III-A) — the paper's construction.
    LightFirst,
    /// Breadth-first order — the `Ω(√n)` adversary for perfect binary
    /// trees.
    Bfs,
    /// Depth-first order (construction child order) — the comb adversary.
    Dfs,
    /// Uniformly random order — the locality-free baseline.
    Random,
}

impl LayoutKind {
    /// All layout kinds in experiment-table order.
    pub const ALL: [LayoutKind; 4] = [
        LayoutKind::LightFirst,
        LayoutKind::Bfs,
        LayoutKind::Dfs,
        LayoutKind::Random,
    ];

    /// Table name.
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::LightFirst => "light-first",
            LayoutKind::Bfs => "bfs",
            LayoutKind::Dfs => "dfs",
            LayoutKind::Random => "random",
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A placement of tree vertices on the grid: a linear order mapped onto
/// a space-filling curve.
#[derive(Debug, Clone)]
pub struct Layout {
    curve: AnyCurve,
    slot_of: Vec<Slot>,
    vertex_at: Vec<NodeId>,
}

impl Layout {
    /// Builds a layout from an explicit linear order (`order[i]` is the
    /// vertex stored at curve position `i`).
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..n`.
    pub fn from_order(curve_kind: CurveKind, order: Vec<NodeId>) -> Self {
        let n = order.len() as u64;
        Self::from_order_with_capacity(curve_kind, order, n)
    }

    /// [`Layout::from_order`] with the curve sized for at least
    /// `capacity` cells instead of exactly `order.len()`. The slots
    /// `order.len()..capacity` are *reserved tail slots*: unoccupied
    /// curve positions that [`Layout::append_tail`] can fill without
    /// changing the geometry of any existing vertex — the backbone of
    /// incremental [`crate::DynamicLayout`] maintenance.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..n`, or when
    /// `capacity < order.len()`.
    pub fn from_order_with_capacity(
        curve_kind: CurveKind,
        order: Vec<NodeId>,
        capacity: u64,
    ) -> Self {
        let n = order.len();
        assert!(capacity >= n as u64, "capacity below vertex count");
        let curve = curve_kind.for_capacity(capacity);
        // Reserve both arrays up front so appends into the tail slots
        // never reallocate (the dynamic-layout zero-alloc contract).
        let mut order = order;
        order.reserve(capacity as usize - n);
        let mut slot_of = Vec::with_capacity(capacity as usize);
        slot_of.resize(n, Slot::MAX);
        for (i, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < n && slot_of[v as usize] == Slot::MAX,
                "order is not a permutation (vertex {v})"
            );
            slot_of[v as usize] = i as Slot;
        }
        Layout {
            curve,
            slot_of,
            vertex_at: order,
        }
    }

    /// Number of curve cells the layout's grid covers (`≥ n`); slots
    /// `n..capacity` are free tail positions for [`Layout::append_tail`].
    pub fn capacity(&self) -> u64 {
        self.curve.len()
    }

    /// Appends vertex `n` (the next fresh id) at the first free curve
    /// tail slot in O(1), returning its slot. No existing vertex moves.
    ///
    /// # Panics
    /// Panics when the curve has no free tail slot left (grow by
    /// rebuilding with [`Layout::from_order_with_capacity`]).
    pub fn append_tail(&mut self, v: NodeId) -> Slot {
        let slot = self.vertex_at.len() as Slot;
        assert_eq!(v as usize, self.vertex_at.len(), "ids must be dense");
        assert!(
            (slot as u64) < self.curve.len(),
            "no reserved tail slot left (capacity {})",
            self.curve.len()
        );
        self.vertex_at.push(v);
        self.slot_of.push(slot);
        slot
    }

    /// Replaces the linear order in place, reusing the existing buffers
    /// and curve (same vertex count, same capacity): the amortized
    /// rebuild path of [`crate::DynamicLayout`] — no heap allocation.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of the current `0..n`.
    pub fn set_order(&mut self, order: &[NodeId]) {
        assert_eq!(order.len(), self.vertex_at.len(), "vertex count changed");
        self.slot_of.fill(Slot::MAX);
        for (i, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < order.len() && self.slot_of[v as usize] == Slot::MAX,
                "order is not a permutation (vertex {v})"
            );
            self.slot_of[v as usize] = i as Slot;
        }
        self.vertex_at.copy_from_slice(order);
    }

    /// Light-first layout (sequential host construction).
    pub fn light_first(tree: &Tree, curve_kind: CurveKind) -> Self {
        Self::from_order(curve_kind, traversal::light_first_order(tree))
    }

    /// Light-first layout built with the rayon fork-join constructor.
    pub fn light_first_par(tree: &Tree, curve_kind: CurveKind) -> Self {
        Self::from_order(curve_kind, traversal::light_first_order_par(tree))
    }

    /// Breadth-first layout (the paper's negative example for perfect
    /// binary trees).
    pub fn bfs(tree: &Tree, curve_kind: CurveKind) -> Self {
        Self::from_order(curve_kind, traversal::bfs_order(tree))
    }

    /// Depth-first layout with construction child order (the paper's
    /// negative example for combs).
    pub fn dfs(tree: &Tree, curve_kind: CurveKind) -> Self {
        Self::from_order(curve_kind, traversal::dfs_preorder(tree))
    }

    /// Uniformly random layout.
    pub fn random<R: Rng>(tree: &Tree, curve_kind: CurveKind, rng: &mut R) -> Self {
        let mut order: Vec<NodeId> = (0..tree.n()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        Self::from_order(curve_kind, order)
    }

    /// Builds the layout of the given kind.
    pub fn of_kind<R: Rng>(
        kind: LayoutKind,
        tree: &Tree,
        curve_kind: CurveKind,
        rng: &mut R,
    ) -> Self {
        match kind {
            LayoutKind::LightFirst => Self::light_first(tree, curve_kind),
            LayoutKind::Bfs => Self::bfs(tree, curve_kind),
            LayoutKind::Dfs => Self::dfs(tree, curve_kind),
            LayoutKind::Random => Self::random(tree, curve_kind, rng),
        }
    }

    /// Number of vertices placed.
    pub fn n(&self) -> u32 {
        self.slot_of.len() as u32
    }

    /// The curve the layout lives on.
    pub fn curve(&self) -> &AnyCurve {
        &self.curve
    }

    /// Curve slot (linear position) of a vertex.
    #[inline]
    pub fn slot(&self, v: NodeId) -> Slot {
        self.slot_of[v as usize]
    }

    /// Vertex stored at a slot.
    #[inline]
    pub fn vertex_at(&self, s: Slot) -> NodeId {
        self.vertex_at[s as usize]
    }

    /// The linear order (slot → vertex).
    pub fn order(&self) -> &[NodeId] {
        &self.vertex_at
    }

    /// Grid coordinate of a vertex.
    #[inline]
    pub fn point(&self, v: NodeId) -> GridPoint {
        self.curve.point(self.slot(v) as u64)
    }

    /// Manhattan distance between two vertices under this layout.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        spatial_sfc::manhattan(self.point(u), self.point(v))
    }

    /// Instantiates the machine whose slot `i` is curve position `i`;
    /// vertex `v` lives at machine slot [`Layout::slot`]`(v)`.
    ///
    /// The slots are transformed through **this layout's own curve**,
    /// not a freshly-built compact curve for `n` cells: a layout built
    /// with [`Layout::from_order_with_capacity`] sits on a curve sized
    /// for the capacity, whose geometry (side length, cell positions)
    /// differs from the compact curve — pricing reserved-tail
    /// placements through a compact grid undercharges them.
    pub fn machine(&self) -> Machine {
        let mut points = vec![GridPoint::default(); self.vertex_at.len()];
        self.curve.point_range_batch(0, &mut points);
        Machine::from_points(points)
    }

    /// Grid coordinate of every vertex, indexed by vertex id — one
    /// batch curve transform plus a permutation, instead of `n` scalar
    /// [`Layout::point`] calls. The backbone of the quality metrics.
    pub fn grid_points(&self) -> Vec<GridPoint> {
        let n = self.vertex_at.len();
        let mut by_slot = vec![GridPoint::default(); n];
        self.curve.point_range_batch(0, &mut by_slot);
        let mut by_vertex = vec![GridPoint::default(); n];
        for (slot, &v) in self.vertex_at.iter().enumerate() {
            by_vertex[v as usize] = by_slot[slot];
        }
        by_vertex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    #[test]
    fn from_order_roundtrip() {
        let order = vec![2, 0, 1, 3];
        let l = Layout::from_order(CurveKind::Hilbert, order.clone());
        assert_eq!(l.n(), 4);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(l.slot(v), i as Slot);
            assert_eq!(l.vertex_at(i as Slot), v);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicate_vertex() {
        let _ = Layout::from_order(CurveKind::Hilbert, vec![0, 0, 1]);
    }

    #[test]
    fn capacity_reserves_tail_slots() {
        let l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![1, 0, 2], 64);
        assert_eq!(l.n(), 3);
        assert_eq!(l.capacity(), 64);
        // Appends fill consecutive tail slots without moving anyone.
        let p1 = l.point(1);
        let mut l = l;
        assert_eq!(l.append_tail(3), 3);
        assert_eq!(l.append_tail(4), 4);
        assert_eq!(l.n(), 5);
        assert_eq!(l.point(1), p1);
        assert_eq!(l.vertex_at(3), 3);
        assert_eq!(l.slot(4), 4);
    }

    #[test]
    fn zero_node_layout_on_every_curve() {
        // 0-node layouts must behave identically across curve families:
        // capacity 0 rounds up to the 1-cell curve everywhere (the
        // simple families used to reject side 0 while the fractal
        // families rounded up).
        for kind in spatial_sfc::CurveKind::ALL {
            let l = Layout::from_order_with_capacity(kind, vec![], 0);
            assert_eq!(l.n(), 0, "{kind}");
            assert_eq!(l.capacity(), 1, "{kind}");
            assert_eq!(l.order(), &[] as &[NodeId], "{kind}");
            assert!(l.grid_points().is_empty(), "{kind}");
            // The single reserved cell accepts exactly one append.
            let mut l = l;
            assert_eq!(l.append_tail(0), 0, "{kind}");
            assert_eq!(l.n(), 1, "{kind}");
        }
    }

    #[test]
    fn zero_node_set_order_roundtrip() {
        let mut l = Layout::from_order(CurveKind::Hilbert, vec![]);
        l.set_order(&[]);
        assert_eq!(l.n(), 0);
        assert_eq!(l.machine().n_slots(), 0);
    }

    #[test]
    fn one_node_layout_with_capacity_one() {
        let l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![0], 1);
        assert_eq!(l.n(), 1);
        assert_eq!(l.capacity(), 1);
        assert_eq!(l.slot(0), 0);
        assert_eq!(l.point(0), spatial_sfc::GridPoint { x: 0, y: 0 });
    }

    #[test]
    #[should_panic(expected = "no reserved tail slot")]
    fn one_node_full_curve_rejects_append() {
        let mut l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![0], 1);
        l.append_tail(1);
    }

    #[test]
    fn capacity_equals_len_fills_to_curve_boundary() {
        // capacity == len: the requested capacity is exhausted, but the
        // curve's side rounding may leave real tail cells — appends must
        // succeed exactly up to the curve boundary and panic after.
        let l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![2, 0, 1], 3);
        assert_eq!(l.capacity(), 4, "side rounds 3 up to a 2x2 grid");
        let mut l = l;
        assert_eq!(l.append_tail(3), 3);
        assert_eq!(l.n() as u64, l.capacity());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| l.append_tail(4)));
        assert!(r.is_err(), "append past the curve boundary must panic");
    }

    #[test]
    #[should_panic(expected = "capacity below vertex count")]
    fn rejects_capacity_below_len() {
        let _ = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![0, 1, 2], 2);
    }

    #[test]
    #[should_panic(expected = "ids must be dense")]
    fn append_tail_rejects_sparse_ids() {
        let mut l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![0, 1], 16);
        l.append_tail(7);
    }

    #[test]
    #[should_panic(expected = "no reserved tail slot")]
    fn append_tail_rejects_full_curve() {
        let mut l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![0, 1, 2, 3], 4);
        l.append_tail(4);
    }

    #[test]
    fn set_order_rebuilds_in_place() {
        let t = generators::comb(32);
        let mut l = Layout::bfs(&t, CurveKind::Hilbert);
        let fresh = Layout::light_first(&t, CurveKind::Hilbert);
        l.set_order(fresh.order());
        assert_eq!(l.order(), fresh.order());
        for v in 0..32u32 {
            assert_eq!(l.slot(v), fresh.slot(v));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn set_order_rejects_duplicates() {
        let mut l = Layout::from_order(CurveKind::Hilbert, vec![0, 1, 2]);
        l.set_order(&[0, 0, 2]);
    }

    #[test]
    fn light_first_layout_positions() {
        let t = generators::comb(8);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        // Root at slot 0 by definition of a DFS-style order.
        assert_eq!(l.slot(t.root()), 0);
        assert_eq!(
            spatial_tree::traversal::verify_light_first(&t, l.order()),
            Ok(())
        );
    }

    #[test]
    fn par_matches_seq() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = generators::uniform_random(3000, &mut rng);
        let a = Layout::light_first(&t, CurveKind::ZOrder);
        let b = Layout::light_first_par(&t, CurveKind::ZOrder);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn random_layout_reproducible() {
        let t = generators::path(50);
        let a = Layout::random(&t, CurveKind::Hilbert, &mut StdRng::seed_from_u64(1));
        let b = Layout::random(&t, CurveKind::Hilbert, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn dist_is_symmetric_grid_distance() {
        let t = generators::path(16);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        // A path in light-first order on the Hilbert curve: every
        // parent-child pair sits on consecutive curve positions.
        for v in 1..16u32 {
            assert_eq!(l.dist(v - 1, v), 1, "edge ({}, {v})", v - 1);
        }
    }

    #[test]
    fn machine_matches_layout_geometry() {
        let t = generators::star(20);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let m = l.machine();
        for v in 0..20u32 {
            assert_eq!(m.point_of(l.slot(v)), l.point(v));
        }
    }

    #[test]
    fn machine_prices_reserved_tail_placements() {
        // A capacity-64 layout holding 3 vertices sits on an 8×8 curve;
        // the compact 3-cell curve is 2×2. Pricing through the compact
        // grid (the old `Machine::on_curve(kind, n)` construction)
        // collapses every placement into the small grid and
        // undercharges messages that cross the real geometry — the bug
        // PR 5 worked around by rebuilding the grid from the dynamic
        // curve's true points in `session/forest.rs`.
        let mut l = Layout::from_order_with_capacity(CurveKind::Hilbert, vec![2, 0, 1], 64);
        l.append_tail(3);
        l.append_tail(4);
        let m = l.machine();
        assert_eq!(m.n_slots(), 5);
        // Machine geometry is the layout's own: every vertex (including
        // the tail appends) sits at its true curve point.
        for v in 0..5u32 {
            assert_eq!(m.point_of(l.slot(v)), l.point(v), "vertex {v}");
        }
        // The charge for a tail-to-head message is the true Manhattan
        // distance on the 8×8 curve…
        m.send(l.slot(4), l.slot(0));
        assert_eq!(m.energy(), l.dist(4, 0));
        // …which the compact grid cannot even represent: slot 4 is out
        // of range for a 2×2 machine, and the true distance exceeds the
        // compact grid's diameter.
        let compact = Machine::on_curve(CurveKind::Hilbert, 3);
        assert!(l.slot(4) >= compact.n_slots());
        assert!(l.dist(4, 0) > (2 * (compact.side().max(1) as u64 - 1)));
    }

    #[test]
    fn machine_unchanged_for_compact_layouts() {
        // For layouts without reserved tails the fix is geometry-
        // neutral: the batch-transformed points equal the compact
        // curve construction, so all existing charge baselines hold.
        let t = generators::uniform_random(100, &mut StdRng::seed_from_u64(3));
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let m = l.machine();
        let compact = Machine::on_curve(CurveKind::Hilbert, 100);
        assert_eq!(m.n_slots(), compact.n_slots());
        for s in 0..100u32 {
            assert_eq!(m.point_of(s), compact.point_of(s), "slot {s}");
        }
    }

    #[test]
    fn of_kind_dispatch() {
        let t = generators::comb(32);
        let mut rng = StdRng::seed_from_u64(8);
        for kind in LayoutKind::ALL {
            let l = Layout::of_kind(kind, &t, CurveKind::Hilbert, &mut rng);
            assert_eq!(l.n(), 32, "{kind}");
        }
    }
}
