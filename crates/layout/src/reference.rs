//! The seed §IV on-machine layout construction, retained verbatim as
//! the differential baseline for [`crate::engine::LayoutEngine`].
//!
//! This implementation allocates per build (fresh machines, nested
//! child lists, `Vec<(u32, u32)>` sort records, `Option`-padded bitonic
//! buffers via [`collectives::bitonic_sort_by_key`]) and re-derives the
//! per-stage network energies with distance sums on every stage of
//! every run. The `engine_vs_reference` suite pins the flat-array
//! engine to it — identical layouts, per-phase cost reports, ranking
//! rounds, and kernel energies on arbitrary trees, curves, and seeds.

use rand::Rng;
use spatial_euler::ranking::rank_spatial;
use spatial_euler::tour::{ChildOrder, EulerTour};
use spatial_model::{collectives, CostReport, Machine, Slot};
use spatial_sfc::{Curve, CurveKind, GridPoint};
use spatial_tree::{traversal, NodeId, Tree};

use crate::builder::{ranks_to_u32, SpatialBuildReport};
use crate::layout::Layout;

/// Machine for a tour: dart `d` lives on the processor of its owning
/// vertex `⌊d/2⌋`, placed at curve position = vertex id (the arbitrary
/// *input* placement the paper starts from).
pub(crate) fn dart_machine(curve_kind: CurveKind, n: u32) -> Machine {
    let curve = curve_kind.for_capacity(n as u64);
    // Batch the n vertex positions, then fan each out to its two darts.
    let mut vertex_points = vec![GridPoint::default(); n as usize];
    curve.point_range_batch(0, &mut vertex_points);
    let points: Vec<GridPoint> = vertex_points.into_iter().flat_map(|p| [p, p]).collect();
    Machine::from_points(points)
}

/// The seed dynamic layout, retained as the wall-clock baseline for
/// `bench-json-layout`: every insert clones the whole linear order,
/// rebuilds the [`Layout`] (re-running the permutation check and the
/// curve transform), and recomputes the kernel energy from scratch —
/// `O(n)` per insert where [`crate::DynamicLayout`] pays `O(1)`.
pub struct ReferenceDynamicLayout {
    parents: Vec<NodeId>,
    root: NodeId,
    curve: CurveKind,
    layout: Layout,
    rebuild_factor: f64,
    /// (insertions, rebuilds, baseline energy) — the seed's stats.
    pub stats: (u64, u32, u64),
}

impl ReferenceDynamicLayout {
    /// Seed semantics: layout capacity tracks the exact vertex count.
    pub fn new(tree: &Tree, curve: CurveKind, rebuild_factor: f64) -> Self {
        assert!(rebuild_factor >= 1.0, "rebuild factor must be ≥ 1");
        let layout = Layout::light_first(tree, curve);
        let baseline = crate::quality::local_kernel_energy(tree, &layout);
        ReferenceDynamicLayout {
            parents: tree.parents().to_vec(),
            root: tree.root(),
            curve,
            layout,
            rebuild_factor,
            stats: (0, 0, baseline.max(1)),
        }
    }

    /// Current number of vertices.
    pub fn n(&self) -> u32 {
        self.parents.len() as u32
    }

    /// Materializes the current tree.
    pub fn tree(&self) -> Tree {
        Tree::from_parents(self.root, self.parents.clone())
    }

    /// Kernel energy of the current placement, recomputed from scratch.
    pub fn current_energy(&self) -> u64 {
        crate::quality::local_kernel_energy(&self.tree(), &self.layout)
    }

    /// Seed insert: append at the curve tail by rebuilding the layout.
    pub fn insert_leaf(&mut self, parent: NodeId) -> NodeId {
        assert!(parent < self.n(), "parent {parent} out of range");
        let v = self.n() as NodeId;
        self.parents.push(parent);
        self.stats.0 += 1;
        let mut order = self.layout.order().to_vec();
        order.push(v);
        self.layout = Layout::from_order(self.curve, order);
        let energy = self.current_energy();
        if energy as f64 > self.rebuild_factor * self.stats.2 as f64 {
            let tree = self.tree();
            self.layout = Layout::light_first_par(&tree, self.curve);
            self.stats.1 += 1;
            self.stats.2 = crate::quality::local_kernel_energy(&tree, &self.layout).max(1);
        }
        v
    }
}

/// The seed spatial light-first build (Theorem 4), kept as the
/// differential baseline. Same contract as
/// [`crate::builder::build_light_first_spatial`].
pub fn build_light_first_spatial_reference<R: Rng>(
    tree: &Tree,
    curve_kind: CurveKind,
    rng: &mut R,
) -> (Layout, SpatialBuildReport) {
    let n = tree.n();
    if n == 1 {
        let layout = Layout::from_order(curve_kind, vec![tree.root()]);
        let empty = CostReport::default();
        return (
            layout,
            SpatialBuildReport {
                sizes_phase: empty,
                order_phase: empty,
                permute_phase: empty,
                ranking_rounds: (0, 0),
            },
        );
    }

    // ---- Phase 1: subtree sizes from a natural-order tour. ----
    let m1 = dart_machine(curve_kind, n);
    let tour1 = EulerTour::new(tree, ChildOrder::Natural);
    let ranking1 = rank_spatial(&m1, tour1.next_darts(), tour1.start(), rng);
    let ranks1 = ranks_to_u32(&ranking1.ranks);
    let sizes = spatial_euler::tour::subtree_sizes_from_ranks(tree, &ranks1);
    let sizes_phase = m1.report();

    // ---- Phase 2: light-first tour, ranking, compaction. ----
    let m2 = dart_machine(curve_kind, n);
    let sorted = traversal::children_by_size(tree, &sizes);
    let tour2 = EulerTour::with_children(tree, |v| &sorted[v as usize][..]);
    let ranking2 = rank_spatial(&m2, tour2.next_darts(), tour2.start(), rng);
    let ranks2 = ranks_to_u32(&ranking2.ranks);

    // Compaction (§IV step 3): physically gather darts into rank order
    // with a sorting network, then drop non-first occurrences with a
    // parallel prefix sum over the curve order.
    let mut rank_keyed: Vec<(u32, u32)> = tour2
        .sequence()
        .iter()
        .map(|&d| (ranks2[d as usize], d))
        .collect();
    collectives::bitonic_sort_by_key(&m2, &mut rank_keyed);
    let flags: Vec<u64> = rank_keyed
        .iter()
        .map(|&(_, d)| u64::from(spatial_euler::tour::is_down(d)))
        .collect();
    let scan = collectives::exclusive_prefix_sum(&m2, &flags, 0, &|a, b| a + b);
    // Vertex at light-first position 1 + scan[i] for each first
    // occurrence; the root occupies position 0.
    let mut order = vec![tree.root(); n as usize];
    for (i, &(_, d)) in rank_keyed.iter().enumerate() {
        if spatial_euler::tour::is_down(d) {
            let pos = 1 + scan[i] as usize;
            order[pos] = spatial_euler::tour::dart_vertex(d);
        }
    }
    let order_phase = m2.report();

    // ---- Phase 3: permutation routing to the final curve positions. ----
    let m3 = Machine::on_curve(curve_kind, n);
    let mut records: Vec<(Slot, NodeId)> = order
        .iter()
        .enumerate()
        .map(|(target, &v)| (target as Slot, v))
        .collect();
    // Input placement: vertex id order. Route each record to its target
    // slot through the sorting network.
    records.sort_by_key(|&(_, v)| v);
    collectives::bitonic_sort_by_key(&m3, &mut records);
    let routed: Vec<NodeId> = records.into_iter().map(|(_, v)| v).collect();
    debug_assert_eq!(routed, order, "routing must realize the permutation");
    let permute_phase = m3.report();

    let layout = Layout::from_order(curve_kind, routed);
    (
        layout,
        SpatialBuildReport {
            sizes_phase,
            order_phase,
            permute_phase,
            ranking_rounds: (ranking1.rounds, ranking2.rounds),
        },
    )
}
