//! Dynamic layout maintenance (§VII future work).
//!
//! The paper's layouts are static: "layouts \[must\] be precomputed", with
//! the cost amortized over repeated analyses (§I-D). Its conclusion
//! names *dynamic updates* as the open extension. This module implements
//! true incremental maintenance on top of the reserved-tail-slot support
//! in [`Layout`]:
//!
//! - **O(1) appends**: the curve is sized for twice the current tree, so
//!   a new leaf takes the next free tail slot — one scalar curve
//!   transform and one incremental energy update; no vertex moves, no
//!   arrays are rebuilt. [`DynamicLayout::insert_leaves`] batches a whole
//!   stream with a single quality check at the end.
//! - **Amortized light-first rebuilds**: when the incrementally tracked
//!   messaging-kernel energy exceeds `rebuild_factor` times the
//!   post-rebuild baseline, the light-first order is recomputed through
//!   retained scratch ([`Layout::set_order`] reuses the layout's own
//!   buffers), so steady-state rebuilds perform **zero heap allocation**
//!   (counting-allocator test `tests/dynamic_alloc.rs`).
//! - **Amortized growth**: when appends exhaust the reserved tail, the
//!   curve doubles (the only allocating step, amortized over the
//!   doubling) while preserving the current order, and the baseline is
//!   re-anchored to the fresh light-first energy at the new geometry.
//!
//! With rebuild factor `c > 1`, the total energy of a length-`m`
//! insertion stream is within `O(c)` of the always-fresh layout's, while
//! rebuilds happen only `O(log_c (E_final / E_initial))` times per
//! doubling — the classic amortization (property-tested in
//! `tests/dynamic_props.rs`).

use crate::layout::Layout;
use crate::quality::local_kernel_energy_with_points;
use spatial_model::CurveKind;
use spatial_sfc::{manhattan, Curve, GridPoint};
use spatial_store::CowSlab;
use spatial_tree::{NodeId, Tree, NIL};

/// Statistics of a dynamic layout's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicStats {
    /// Number of leaf insertions performed.
    pub insertions: u64,
    /// Number of full light-first rebuilds triggered (by the quality
    /// threshold or [`DynamicLayout::rebuild`]; capacity growth is
    /// counted separately).
    pub rebuilds: u32,
    /// Number of capacity doublings (order-preserving curve growth).
    pub grows: u32,
    /// Kernel energy right after the last rebuild (re-anchored to the
    /// fresh light-first energy after a capacity growth).
    pub baseline_energy: u64,
}

/// Retained buffers for the light-first rebuild: child CSR, BFS order,
/// subtree sizes, the order under construction, and coordinate staging.
/// Reserved to the curve capacity, so steady-state rebuilds never
/// allocate.
#[derive(Debug, Default)]
struct RebuildScratch {
    /// CSR child offsets (`n + 1`), also the counting-sort cursor.
    offsets: Vec<u32>,
    /// CSR child array (children of `v` in increasing id order).
    children: Vec<NodeId>,
    /// BFS order of the current tree.
    bfs: Vec<NodeId>,
    /// Subtree sizes (bottom-up over reverse BFS).
    sizes: Vec<u32>,
    /// Light-first order under construction.
    order: Vec<NodeId>,
    /// DFS stack.
    stack: Vec<NodeId>,
    /// Per-slot coordinates (batch transform staging).
    slot_points: Vec<GridPoint>,
    /// Vertex → position scratch for hypothetical-order energies.
    pos: Vec<u32>,
}

impl RebuildScratch {
    fn reserve(&mut self, cap: usize) {
        self.offsets.reserve(cap + 1);
        self.children.reserve(cap);
        self.bfs.reserve(cap);
        self.sizes.reserve(cap);
        self.order.reserve(cap);
        self.stack.reserve(cap);
        self.slot_points.reserve(cap);
        self.pos.reserve(cap);
    }
}

/// A tree layout that supports leaf insertion with O(1) placement and
/// amortized light-first rebuilds.
#[derive(Debug)]
pub struct DynamicLayout {
    /// Parent of every vertex ([`NIL`] for the root); appends extend
    /// it. Either owned or a zero-copy view over a mapped snapshot
    /// ([`DynamicLayout::restore_slab`]), promoted to owned on the
    /// first structural mutation.
    parents: CowSlab<NodeId>,
    /// The (fixed) root vertex.
    root: NodeId,
    /// Curve family the layout lives on.
    curve: CurveKind,
    /// The live layout; its curve is sized for [`DynamicLayout::reserved`]
    /// vertices, so appended leaves take free tail slots in O(1).
    layout: Layout,
    /// Grid coordinate of every vertex, indexed by vertex id — kept in
    /// sync incrementally so energy updates are O(1) per insert.
    points: Vec<GridPoint>,
    /// Current messaging-kernel energy, maintained incrementally.
    energy: u64,
    /// Vertex count at which the next capacity doubling happens.
    reserved: u64,
    /// Allowed kernel-energy degradation factor `c ≥ 1` (e.g. 2.0 =
    /// rebuild when the energy reaches twice the baseline).
    rebuild_factor: f64,
    /// Lifetime statistics.
    stats: DynamicStats,
    /// Retained rebuild buffers (zero steady-state allocation).
    scratch: RebuildScratch,
}

impl DynamicLayout {
    /// Wraps an initial tree; `rebuild_factor` is the allowed kernel
    /// energy degradation (e.g. 2.0 = rebuild when twice the baseline).
    ///
    /// # Panics
    /// Panics when `rebuild_factor < 1.0`.
    pub fn new(tree: &Tree, curve: CurveKind, rebuild_factor: f64) -> Self {
        assert!(rebuild_factor >= 1.0, "rebuild factor must be ≥ 1");
        let n = tree.n() as u64;
        let reserved = (2 * n).max(4);
        let order = spatial_tree::traversal::light_first_order(tree);
        let layout = Layout::from_order_with_capacity(curve, order, reserved);
        let mut dl = DynamicLayout {
            parents: CowSlab::owned(tree.parents().to_vec()),
            root: tree.root(),
            curve,
            layout,
            points: Vec::new(),
            energy: 0,
            reserved,
            rebuild_factor,
            stats: DynamicStats {
                insertions: 0,
                rebuilds: 0,
                grows: 0,
                baseline_energy: 1,
            },
            scratch: RebuildScratch::default(),
        };
        dl.parents.reserve(reserved as usize - n as usize);
        dl.points.reserve(reserved as usize);
        dl.scratch.reserve(reserved as usize);
        dl.refresh_points_and_energy();
        dl.stats.baseline_energy = dl.energy.max(1);
        dl
    }

    /// Rebuilds a dynamic layout from persisted state: the parent
    /// array, the layout's linear order, the reserved capacity, and the
    /// lifetime statistics captured from a live instance (see
    /// `spatial_store::ForestSnapshot`). Coordinates and the
    /// incremental energy counter are recomputed from the restored
    /// geometry — the live instance maintains them incrementally, and
    /// the two agree exactly (`incremental_energy_matches_recomputation`)
    /// — so the result is **bit-identical** to the snapshotted layout:
    /// same placement, same quality threshold state, same future
    /// rebuild/growth schedule for any continuation stream.
    ///
    /// # Panics
    /// Panics when the inputs are inconsistent (`order` not a
    /// permutation of the vertices, `reserved` below the vertex count,
    /// `rebuild_factor < 1`).
    pub fn restore(
        root: NodeId,
        parents: Vec<NodeId>,
        curve: CurveKind,
        order: Vec<NodeId>,
        reserved: u64,
        rebuild_factor: f64,
        stats: DynamicStats,
    ) -> Self {
        Self::restore_slab(
            root,
            CowSlab::owned(parents),
            curve,
            order,
            reserved,
            rebuild_factor,
            stats,
        )
    }

    /// [`DynamicLayout::restore`] over any parent backing — in
    /// particular a zero-copy view of a mapped snapshot
    /// (`spatial_store::MappedSnapshot::parents_slab`). The slab stays
    /// borrowed until the first structural mutation (append or grow)
    /// promotes it to owned memory with one copy.
    pub fn restore_slab(
        root: NodeId,
        parents: CowSlab<NodeId>,
        curve: CurveKind,
        order: Vec<NodeId>,
        reserved: u64,
        rebuild_factor: f64,
        stats: DynamicStats,
    ) -> Self {
        assert!(rebuild_factor >= 1.0, "rebuild factor must be ≥ 1");
        let n = parents.len();
        assert_eq!(order.len(), n, "order must place every vertex");
        assert!(reserved >= n as u64, "reserved capacity below vertex count");
        let layout = Layout::from_order_with_capacity(curve, order, reserved);
        let mut dl = DynamicLayout {
            parents,
            root,
            curve,
            layout,
            points: Vec::new(),
            energy: 0,
            reserved,
            rebuild_factor,
            stats,
            scratch: RebuildScratch::default(),
        };
        dl.parents.reserve(reserved as usize - n);
        dl.points.reserve(reserved as usize);
        dl.scratch.reserve(reserved as usize);
        dl.refresh_points_and_energy();
        dl
    }

    /// Current number of vertices.
    pub fn n(&self) -> u32 {
        self.parents.len() as u32
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of every vertex ([`NIL`] for the root) — the snapshot
    /// slab, borrowed instead of materialized through
    /// [`DynamicLayout::tree`].
    pub fn parents(&self) -> &[NodeId] {
        self.parents.as_slice()
    }

    /// Whether the parent slab is still a borrowed view over a mapped
    /// snapshot (no structural mutation since
    /// [`DynamicLayout::restore_slab`]).
    pub fn parents_backing_mapped(&self) -> bool {
        self.parents.is_mapped()
    }

    /// The curve family the layout lives on.
    pub fn curve_kind(&self) -> CurveKind {
        self.curve
    }

    /// Vertex count at which the next capacity doubling happens.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// The allowed kernel-energy degradation factor.
    pub fn rebuild_factor(&self) -> f64 {
        self.rebuild_factor
    }

    /// The current layout (valid until the next insertion).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Materializes the current tree.
    pub fn tree(&self) -> Tree {
        Tree::from_parents(self.root, self.parents.as_slice().to_vec())
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// Kernel energy of the *current* placement (the quality signal) —
    /// O(1): tracked incrementally across appends and rebuilds.
    pub fn current_energy(&self) -> u64 {
        self.energy
    }

    /// Inserts a new leaf under `parent`, placing it at the next free
    /// curve tail slot in O(1); rebuilds the light-first layout when
    /// quality has degraded past the rebuild factor. Returns the new
    /// vertex id.
    pub fn insert_leaf(&mut self, parent: NodeId) -> NodeId {
        let v = self.append(parent);
        self.stats.insertions += 1;
        self.maybe_rebuild();
        v
    }

    /// Batched insert: appends one leaf per entry of `parents` (entries
    /// may reference vertices created earlier in the same batch), with a
    /// **single** quality check at the end — the whole stream pays at
    /// most one rebuild. Returns the id range of the new vertices.
    pub fn insert_leaves(&mut self, parents: &[NodeId]) -> std::ops::Range<NodeId> {
        let first = self.n();
        for &p in parents {
            self.append(p);
        }
        self.stats.insertions += parents.len() as u64;
        self.maybe_rebuild();
        first..self.n()
    }

    /// O(1) append (amortized: doubles the curve when the reserved tail
    /// is exhausted). Does not touch the insertion counter or the
    /// quality threshold.
    fn append(&mut self, parent: NodeId) -> NodeId {
        assert!(parent < self.n(), "parent {parent} out of range");
        if self.parents.len() as u64 == self.reserved {
            self.grow();
        }
        let v = self.n() as NodeId;
        // Promoting here (CoW) is the first structural mutation a
        // mapped-backed layout sees; the copy is reserved to capacity.
        self.parents.make_mut(self.reserved as usize).push(parent);
        let slot = self.layout.append_tail(v);
        let p = self.layout.curve().point(slot as u64);
        self.points.push(p);
        self.energy += manhattan(self.points[parent as usize], p);
        v
    }

    fn maybe_rebuild(&mut self) {
        if self.energy as f64 > self.rebuild_factor * self.stats.baseline_energy as f64 {
            self.rebuild();
        }
    }

    /// Forces a light-first rebuild now (retained scratch: zero heap
    /// allocation in the steady state).
    pub fn rebuild(&mut self) {
        self.rebuild_order_into_scratch();
        self.layout.set_order(&self.scratch.order);
        self.refresh_points_and_energy();
        self.stats.rebuilds += 1;
        self.stats.baseline_energy = self.energy.max(1);
    }

    /// Doubles the reserved capacity, preserving the current order: the
    /// curve is rebuilt for the larger grid (the only allocating step,
    /// amortized over the doubling), coordinates and energy are
    /// recomputed, and the baseline is re-anchored to the fresh
    /// light-first energy at the new geometry.
    fn grow(&mut self) {
        let n = self.parents.len() as u64;
        self.reserved = (2 * n).max(4);
        let order = self.layout.order().to_vec();
        self.layout = Layout::from_order_with_capacity(self.curve, order, self.reserved);
        self.parents.reserve(self.reserved as usize - n as usize);
        self.points
            .reserve(self.reserved as usize - self.points.len());
        self.scratch.reserve(self.reserved as usize);
        self.refresh_points_and_energy();
        self.stats.grows += 1;
        self.stats.baseline_energy = self.fresh_light_first_energy().max(1);
    }

    /// Recomputes the per-vertex coordinates (one batch transform) and
    /// the kernel energy from the live layout.
    fn refresh_points_and_energy(&mut self) {
        let n = self.parents.len();
        let s = &mut self.scratch;
        s.slot_points.clear();
        s.slot_points.resize(n, GridPoint::default());
        self.layout.curve().point_range_batch(0, &mut s.slot_points);
        self.points.clear();
        self.points.resize(n, GridPoint::default());
        for (slot, &p) in s.slot_points.iter().enumerate() {
            self.points[self.layout.vertex_at(slot as u32) as usize] = p;
        }
        self.energy = 0;
        for (v, &p) in self.parents.as_slice().iter().enumerate() {
            if p != NIL {
                self.energy += manhattan(self.points[p as usize], self.points[v]);
            }
        }
    }

    /// Computes the light-first order of the current tree into
    /// `scratch.order`: counting-sort CSR children, reverse-BFS subtree
    /// sizes, per-vertex `sort_unstable` by `(size, id)`, iterative DFS.
    /// Allocation-free once the scratch is reserved.
    fn rebuild_order_into_scratch(&mut self) {
        let parents = self.parents.as_slice();
        let n = parents.len();
        let root = self.root;
        let RebuildScratch {
            offsets,
            children,
            bfs,
            sizes,
            order,
            stack,
            ..
        } = &mut self.scratch;

        // CSR children by counting pass (children end up in increasing
        // id order — the same tie-break as `Tree::children` + the
        // light-first sort key).
        offsets.clear();
        offsets.resize(n + 1, 0);
        for &p in parents {
            if p != NIL {
                offsets[p as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        children.clear();
        children.resize(n.saturating_sub(1), 0);
        sizes.clear();
        sizes.extend_from_slice(&offsets[..n]); // cursor copy
        for (v, &p) in parents.iter().enumerate() {
            if p != NIL {
                let cur = &mut sizes[p as usize];
                children[*cur as usize] = v as NodeId;
                *cur += 1;
            }
        }

        // BFS order, then subtree sizes bottom-up over its reverse.
        bfs.clear();
        bfs.push(root);
        let mut head = 0usize;
        while head < bfs.len() {
            let v = bfs[head];
            head += 1;
            let (lo, hi) = (
                offsets[v as usize] as usize,
                offsets[v as usize + 1] as usize,
            );
            for &c in &children[lo..hi] {
                bfs.push(c);
            }
        }
        debug_assert_eq!(bfs.len(), n, "parents must form one rooted tree");
        sizes.clear();
        sizes.resize(n, 1);
        for i in (0..n).rev() {
            let v = bfs[i];
            let p = parents[v as usize];
            if p != NIL {
                sizes[p as usize] += sizes[v as usize];
            }
        }

        // Light-first child order inside each CSR segment.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            children[lo..hi].sort_unstable_by_key(|&c| (sizes[c as usize], c));
        }

        // Iterative DFS, smallest child on top of the stack.
        order.clear();
        stack.clear();
        stack.push(root);
        while let Some(v) = stack.pop() {
            order.push(v);
            let (lo, hi) = (
                offsets[v as usize] as usize,
                offsets[v as usize + 1] as usize,
            );
            for &c in children[lo..hi].iter().rev() {
                stack.push(c);
            }
        }
    }

    /// Kernel energy a fresh light-first layout would have on the
    /// current curve, without adopting it (the baseline re-anchor after
    /// a capacity growth).
    fn fresh_light_first_energy(&mut self) -> u64 {
        self.rebuild_order_into_scratch();
        let n = self.parents.len();
        let s = &mut self.scratch;
        s.slot_points.clear();
        s.slot_points.resize(n, GridPoint::default());
        self.layout.curve().point_range_batch(0, &mut s.slot_points);
        s.pos.clear();
        s.pos.resize(n, 0);
        for (i, &v) in s.order.iter().enumerate() {
            s.pos[v as usize] = i as u32;
        }
        let mut energy = 0u64;
        for (v, &p) in self.parents.as_slice().iter().enumerate() {
            if p != NIL {
                energy += manhattan(
                    s.slot_points[s.pos[p as usize] as usize],
                    s.slot_points[s.pos[v] as usize],
                );
            }
        }
        energy
    }

    /// Recomputes the kernel energy from scratch (O(n)) — the oracle for
    /// the incremental counter, used by tests and assertions.
    pub fn recomputed_energy(&self) -> u64 {
        local_kernel_energy_with_points(&self.tree(), &self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    fn seed_tree(n: u32) -> Tree {
        generators::uniform_random(n, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn insertions_grow_the_tree() {
        let t = seed_tree(50);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 4.0);
        let v = dl.insert_leaf(10);
        assert_eq!(v, 50);
        assert_eq!(dl.n(), 51);
        let rebuilt = dl.tree();
        assert_eq!(rebuilt.parent(v), Some(10));
        assert!(rebuilt.is_leaf(v));
    }

    #[test]
    fn layout_stays_a_permutation() {
        let t = seed_tree(20);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
        }
        assert_eq!(dl.n(), 120);
        // Every vertex has a unique slot.
        let layout = dl.layout();
        let mut seen = [false; 1 << 9];
        for v in 0..120u32 {
            let s = layout.slot(v) as usize;
            assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn incremental_energy_matches_recomputation() {
        // The O(1) counter must agree with the O(n) oracle through
        // appends, threshold rebuilds, and capacity growths.
        let t = seed_tree(60);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 3.0);
        let mut rng = StdRng::seed_from_u64(12);
        for i in 0..500 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
            if i % 37 == 0 {
                assert_eq!(dl.current_energy(), dl.recomputed_energy(), "step {i}");
            }
        }
        assert!(dl.stats().grows >= 2, "stream should have grown twice");
        assert_eq!(dl.current_energy(), dl.recomputed_energy());
    }

    #[test]
    fn batched_insert_matches_stream_tree() {
        let t = seed_tree(40);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 2.0);
        // Batch parents referencing both old and in-batch vertices.
        let range = dl.insert_leaves(&[0, 5, 40, 41, 12]);
        assert_eq!(range, 40..45);
        let tree = dl.tree();
        assert_eq!(tree.parent(42), Some(40), "in-batch parent");
        assert_eq!(dl.stats().insertions, 5);
        // A batch pays at most one rebuild.
        assert!(dl.stats().rebuilds <= 1);
        assert_eq!(dl.current_energy(), dl.recomputed_energy());
    }

    #[test]
    fn rebuild_restores_quality() {
        let t = seed_tree(200);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, f64::INFINITY);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
        }
        assert_eq!(dl.stats().rebuilds, 0, "infinite factor never rebuilds");
        let degraded = dl.current_energy();
        dl.rebuild();
        let fresh = dl.current_energy();
        assert!(
            degraded > 2 * fresh,
            "appending should degrade quality: {degraded} vs {fresh}"
        );
        // The rebuilt layout is exactly the light-first layout.
        let tree = dl.tree();
        assert_eq!(
            dl.layout().order(),
            &spatial_tree::traversal::light_first_order(&tree)[..]
        );
    }

    #[test]
    fn threshold_bounds_degradation() {
        let t = seed_tree(200);
        let factor = 3.0;
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, factor);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..600 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
            // Invariant: after the post-insert check, quality never
            // exceeds factor × baseline.
            let e = dl.current_energy() as f64;
            let cap = factor * dl.stats().baseline_energy as f64;
            assert!(e <= cap, "energy {e} above cap {cap}");
        }
        assert!(dl.stats().rebuilds >= 1, "threshold should have triggered");
        assert_eq!(dl.stats().insertions, 600);
    }

    #[test]
    fn amortized_rebuilds_are_rare_and_factor_scales() {
        let t = seed_tree(500);
        let mut rng = StdRng::seed_from_u64(5);
        let inserts: Vec<u32> = {
            // Pre-draw a parent sequence usable for both factors (ids
            // are deterministic: 500, 501, …).
            (500..2000).map(|n| rng.gen_range(0..n)).collect()
        };
        let run = |factor: f64| {
            let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, factor);
            for &p in &inserts {
                dl.insert_leaf(p);
            }
            dl.stats().rebuilds
        };
        let tight = run(2.0);
        let loose = run(8.0);
        // Rebuilds stay a small fraction of the insert count, and a
        // looser tolerance must need strictly fewer of them.
        assert!(tight <= 60, "factor 2: too many rebuilds: {tight}");
        assert!(
            loose < tight,
            "factor 8 should rebuild less than factor 2: {loose} vs {tight}"
        );
    }

    #[test]
    #[should_panic(expected = "rebuild factor")]
    fn rejects_sub_one_factor() {
        let t = seed_tree(10);
        let _ = DynamicLayout::new(&t, CurveKind::Hilbert, 0.5);
    }
}
