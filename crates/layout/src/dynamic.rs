//! Dynamic layout maintenance (§VII future work).
//!
//! The paper's layouts are static: "layouts \[must\] be precomputed", with
//! the cost amortized over repeated analyses (§I-D). Its conclusion
//! names *dynamic updates* as the open extension. This module implements
//! the natural first take: leaves are appended at the end of the curve
//! (constant-time placement, degrading locality), and the light-first
//! layout is rebuilt whenever the messaging-kernel energy exceeds a
//! configurable factor of the post-rebuild baseline.
//!
//! With rebuild factor `c > 1`, the total energy of a length-`m`
//! insertion stream is within `O(c)` of the always-fresh layout's, while
//! rebuilds happen only `O(log_c (E_final / E_initial))` times per
//! doubling — the classic amortization.

use crate::layout::Layout;
use crate::quality::local_kernel_energy;
use spatial_model::CurveKind;
use spatial_tree::{NodeId, Tree};

/// Statistics of a dynamic layout's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicStats {
    /// Number of leaf insertions performed.
    pub insertions: u64,
    /// Number of full light-first rebuilds triggered.
    pub rebuilds: u32,
    /// Kernel energy right after the last rebuild.
    pub baseline_energy: u64,
}

/// A tree layout that supports leaf insertion with amortized rebuilds.
#[derive(Debug, Clone)]
pub struct DynamicLayout {
    parents: Vec<NodeId>,
    root: NodeId,
    curve: CurveKind,
    layout: Layout,
    /// Appended vertices not yet integrated into the light-first order
    /// (placed at the curve tail in insertion order).
    rebuild_factor: f64,
    stats: DynamicStats,
}

impl DynamicLayout {
    /// Wraps an initial tree; `rebuild_factor` is the allowed kernel
    /// energy degradation (e.g. 2.0 = rebuild when twice the baseline).
    ///
    /// # Panics
    /// Panics when `rebuild_factor < 1.0`.
    pub fn new(tree: &Tree, curve: CurveKind, rebuild_factor: f64) -> Self {
        assert!(rebuild_factor >= 1.0, "rebuild factor must be ≥ 1");
        let layout = Layout::light_first(tree, curve);
        let baseline = local_kernel_energy(tree, &layout);
        DynamicLayout {
            parents: tree.parents().to_vec(),
            root: tree.root(),
            curve,
            layout,
            rebuild_factor,
            stats: DynamicStats {
                insertions: 0,
                rebuilds: 0,
                baseline_energy: baseline.max(1),
            },
        }
    }

    /// Current number of vertices.
    pub fn n(&self) -> u32 {
        self.parents.len() as u32
    }

    /// The current layout (valid until the next insertion).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Materializes the current tree.
    pub fn tree(&self) -> Tree {
        Tree::from_parents(self.root, self.parents.clone())
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// Kernel energy of the *current* placement (the quality signal).
    pub fn current_energy(&self) -> u64 {
        local_kernel_energy(&self.tree(), &self.layout)
    }

    /// Inserts a new leaf under `parent`, placing it at the curve tail;
    /// rebuilds the light-first layout when quality has degraded past
    /// the rebuild factor. Returns the new vertex id.
    pub fn insert_leaf(&mut self, parent: NodeId) -> NodeId {
        assert!(parent < self.n(), "parent {parent} out of range");
        let v = self.n() as NodeId;
        self.parents.push(parent);
        self.stats.insertions += 1;

        // Greedy placement: append to the linear order (curve tail).
        let mut order = self.layout.order().to_vec();
        order.push(v);
        self.layout = Layout::from_order(self.curve, order);

        let energy = self.current_energy();
        if energy as f64 > self.rebuild_factor * self.stats.baseline_energy as f64 {
            self.rebuild();
        }
        v
    }

    /// Forces a light-first rebuild now.
    pub fn rebuild(&mut self) {
        let tree = self.tree();
        self.layout = Layout::light_first_par(&tree, self.curve);
        self.stats.rebuilds += 1;
        self.stats.baseline_energy = local_kernel_energy(&tree, &self.layout).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    fn seed_tree(n: u32) -> Tree {
        generators::uniform_random(n, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn insertions_grow_the_tree() {
        let t = seed_tree(50);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 4.0);
        let v = dl.insert_leaf(10);
        assert_eq!(v, 50);
        assert_eq!(dl.n(), 51);
        let rebuilt = dl.tree();
        assert_eq!(rebuilt.parent(v), Some(10));
        assert!(rebuilt.is_leaf(v));
    }

    #[test]
    fn layout_stays_a_permutation() {
        let t = seed_tree(20);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
        }
        assert_eq!(dl.n(), 120);
        // Every vertex has a unique slot.
        let layout = dl.layout();
        let mut seen = [false; 120];
        for v in 0..120u32 {
            let s = layout.slot(v) as usize;
            assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn rebuild_restores_quality() {
        let t = seed_tree(200);
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, f64::INFINITY);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
        }
        let degraded = dl.current_energy();
        dl.rebuild();
        let fresh = dl.current_energy();
        assert!(
            degraded > 2 * fresh,
            "appending should degrade quality: {degraded} vs {fresh}"
        );
        // The rebuilt layout is exactly the light-first layout.
        let tree = dl.tree();
        assert_eq!(
            dl.layout().order(),
            &spatial_tree::traversal::light_first_order(&tree)[..]
        );
    }

    #[test]
    fn threshold_bounds_degradation() {
        let t = seed_tree(200);
        let factor = 3.0;
        let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, factor);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..600 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
            // Invariant: quality never exceeds factor × baseline (the
            // insert itself can overshoot by one leaf's distance, hence
            // the small slack).
            let e = dl.current_energy() as f64;
            let cap = factor * dl.stats().baseline_energy as f64;
            assert!(e <= cap, "energy {e} above cap {cap}");
        }
        assert!(dl.stats().rebuilds >= 1, "threshold should have triggered");
        assert_eq!(dl.stats().insertions, 600);
    }

    #[test]
    fn amortized_rebuilds_are_rare_and_factor_scales() {
        let t = seed_tree(500);
        let mut rng = StdRng::seed_from_u64(5);
        let inserts: Vec<Vec<u32>> = {
            // Pre-draw a parent sequence usable for both factors (ids
            // are deterministic: 500, 501, …).
            let mut seqs = vec![Vec::new(); 2];
            for n in 500..2000 {
                let p = rng.gen_range(0..n);
                seqs[0].push(p);
                seqs[1].push(p);
            }
            seqs
        };
        let run = |factor: f64, seq: &[u32]| {
            let mut dl = DynamicLayout::new(&t, CurveKind::Hilbert, factor);
            for &p in seq {
                dl.insert_leaf(p);
            }
            dl.stats().rebuilds
        };
        let tight = run(2.0, &inserts[0]);
        let loose = run(8.0, &inserts[1]);
        // Rebuilds stay a small fraction of the insert count, and a
        // looser tolerance must need strictly fewer of them.
        assert!(tight <= 60, "factor 2: too many rebuilds: {tight}");
        assert!(
            loose < tight,
            "factor 8 should rebuild less than factor 2: {loose} vs {tight}"
        );
    }

    #[test]
    #[should_panic(expected = "rebuild factor")]
    fn rejects_sub_one_factor() {
        let t = seed_tree(10);
        let _ = DynamicLayout::new(&t, CurveKind::Hilbert, 0.5);
    }
}
