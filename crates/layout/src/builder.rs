//! The §IV on-machine layout construction (Theorem 4).
//!
//! Computes a light-first layout *on the spatial computer*, charging
//! every phase:
//!
//! 1. **Sizes** — an Euler tour in natural child order is threaded and
//!    ranked with the spatial random-mate list ranking; subtree sizes
//!    fall out of the first/last occurrence ranks (§IV step 1).
//! 2. **Order** — a second tour visits children in increasing subtree
//!    size and is ranked; dropping all but each vertex's first occurrence
//!    (a sort by rank followed by a parallel prefix-sum compaction)
//!    yields the light-first linear order (§IV steps 2–3).
//! 3. **Permute** — vertices are routed to their final curve positions
//!    with a bitonic sorting network (§IV step 4), the `Θ(n^{3/2})`
//!    energy step that matches the permutation lower bound.
//!
//! Both tours place each dart on its owning vertex's processor (a vertex
//! owns its up and down darts — O(1) state per processor). The total is
//! `O(n^{3/2})` energy and `O(log n)` depth with high probability.
//!
//! The heavy lifting lives in [`crate::engine::LayoutEngine`] — the
//! flat-array, allocation-free implementation; this module keeps the
//! one-shot entry point and the host-side reference order. The seed
//! implementation is retained in [`crate::reference`] and pinned by the
//! `engine_vs_reference` differential suite.

use rand::Rng;
use spatial_euler::rank_sequential;
use spatial_euler::ranking::UNRANKED;
use spatial_euler::tour::{ChildOrder, EulerTour};
use spatial_model::CostReport;
use spatial_sfc::CurveKind;
use spatial_tree::Tree;

use crate::engine::LayoutEngine;
use crate::layout::Layout;

/// Per-phase cost breakdown of the spatial layout construction.
#[derive(Debug, Clone)]
pub struct SpatialBuildReport {
    /// Phase 1: size-computing tour + ranking.
    pub sizes_phase: CostReport,
    /// Phase 2: light-first tour + ranking + compaction.
    pub order_phase: CostReport,
    /// Phase 3: permutation routing (sorting network).
    pub permute_phase: CostReport,
    /// Random-mate rounds of the two rankings (Las Vegas cost evidence).
    pub ranking_rounds: (u32, u32),
}

impl SpatialBuildReport {
    /// Sum of all phases (depths add: the phases are sequential).
    pub fn total(&self) -> CostReport {
        self.sizes_phase + self.order_phase + self.permute_phase
    }
}

/// Builds the light-first layout on the spatial computer, returning the
/// layout and the per-phase cost breakdown (Theorem 4: `O(n^{3/2})`
/// energy, `O(log n)` depth w.h.p.).
///
/// One-shot wrapper over [`LayoutEngine`]; callers that build the same
/// tree repeatedly (cost experiments, Las Vegas studies, dynamic
/// rebuild harnesses) should hold an engine and call
/// [`LayoutEngine::build`] directly.
pub fn build_light_first_spatial<R: Rng>(
    tree: &Tree,
    curve_kind: CurveKind,
    rng: &mut R,
) -> (Layout, SpatialBuildReport) {
    LayoutEngine::new(tree, curve_kind).build(rng)
}

pub(crate) fn ranks_to_u32(ranks: &[u64]) -> Vec<u32> {
    ranks
        .iter()
        .map(|&r| if r == UNRANKED { u32::MAX } else { r as u32 })
        .collect()
}

/// Host-side reference: the same pipeline without a machine (used by
/// tests to validate the spatial pipeline's output and by callers that
/// only need the order).
pub fn build_light_first_reference(tree: &Tree, curve_kind: CurveKind) -> Layout {
    let tour = EulerTour::new(tree, ChildOrder::LightFirst);
    let ranks = ranks_to_u32(&rank_sequential(tour.next_darts(), tour.start()));
    let order = spatial_euler::tour::first_occurrence_order(tree, &ranks);
    Layout::from_order(curve_kind, order)
}

// Re-export used by the facade; keeps the `SpatialRanking` type visible
// where the builder is used.
pub use spatial_euler::ranking::SpatialRanking as RankingInfo;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::{generators, traversal};

    #[test]
    fn spatial_build_matches_host_order() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2u32, 3, 10, 100, 500] {
            let t = generators::uniform_random(n, &mut rng);
            let (layout, _) = build_light_first_spatial(&t, CurveKind::Hilbert, &mut rng);
            assert_eq!(
                layout.order(),
                &traversal::light_first_order(&t)[..],
                "n={n}"
            );
        }
    }

    #[test]
    fn reference_matches_host_order() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = generators::preferential_attachment(300, &mut rng);
        let l = build_light_first_reference(&t, CurveKind::ZOrder);
        assert_eq!(l.order(), &traversal::light_first_order(&t)[..]);
    }

    #[test]
    fn single_vertex() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let (layout, report) =
            build_light_first_spatial(&t, CurveKind::Hilbert, &mut StdRng::seed_from_u64(0));
        assert_eq!(layout.order(), &[0]);
        assert_eq!(report.total(), CostReport::default());
    }

    #[test]
    fn energy_dominated_by_permutation() {
        // Theorem 4: the pipeline is Θ(n^{3/2}); the sort phases dominate.
        let mut rng = StdRng::seed_from_u64(17);
        let t = generators::uniform_random(1 << 10, &mut rng);
        let (_, report) = build_light_first_spatial(&t, CurveKind::Hilbert, &mut rng);
        let total = report.total();
        let n = t.n() as u64;
        let ratio = total.energy_per_n_three_halves(n);
        assert!(
            ratio > 0.1 && ratio < 100.0,
            "energy/n^1.5 = {ratio} out of expected band"
        );
    }

    #[test]
    fn depth_logarithmic() {
        let mut rng = StdRng::seed_from_u64(19);
        for log_n in [8u32, 10] {
            let t = generators::uniform_random(1 << log_n, &mut rng);
            let (_, report) = build_light_first_spatial(&t, CurveKind::Hilbert, &mut rng);
            let depth = report.total().depth;
            // O(log n) ranking rounds + O(log² n) sorting stages.
            let bound = 40 * (log_n as u64 + 1) * (log_n as u64 + 1);
            assert!(depth <= bound, "depth {depth} > {bound} at n=2^{log_n}");
        }
    }

    #[test]
    fn las_vegas_output_independent_of_seed() {
        let t = generators::comb(200);
        let (a, _) =
            build_light_first_spatial(&t, CurveKind::Hilbert, &mut StdRng::seed_from_u64(1));
        let (b, _) =
            build_light_first_spatial(&t, CurveKind::Hilbert, &mut StdRng::seed_from_u64(999));
        assert_eq!(a.order(), b.order());
    }
}
