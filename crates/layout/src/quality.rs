//! Layout quality metrics: the messaging-kernel energy of Theorems 1–2.
//!
//! The fundamental kernel of §I-C sends one message from every vertex to
//! each of its children. Its energy is the distance-weighted sum over
//! tree edges, entirely determined by the layout. [`local_kernel_energy`]
//! measures it exactly; [`edge_distance_stats`] summarizes the per-edge
//! distance distribution, including exact p50/p95/p99 percentiles from a
//! flat counting pass (edge distances are bounded by the grid diameter
//! `2·(side − 1)`, so a counting array beats sorting). Experiment E1 and
//! the `bench-json-layout` scenario sweep run these across layouts,
//! curves and tree families through the `*_with_points` entry points,
//! which take precomputed per-vertex coordinates instead of re-deriving
//! them per call.

use crate::layout::Layout;
use rayon::prelude::*;
use spatial_sfc::GridPoint;
use spatial_tree::Tree;

/// Summary of per-edge grid distances under a layout.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDistanceStats {
    /// Number of tree edges.
    pub edges: u64,
    /// Total parent→child distance (= the messaging-kernel energy).
    pub total: u64,
    /// Mean distance per edge.
    pub mean: f64,
    /// Median edge distance (exact, nearest-rank).
    pub p50: u64,
    /// 95th-percentile edge distance (exact, nearest-rank).
    pub p95: u64,
    /// 99th-percentile edge distance (exact, nearest-rank).
    pub p99: u64,
    /// Maximum edge distance.
    pub max: u64,
}

/// Energy of the local messaging kernel: every vertex sends one message
/// to each of its children (`Σ_(v,c) dist(v, c)`).
///
/// Theorem 1: `O(n)` for light-first order on a distance-bound curve
/// with bounded degree; Theorem 2: same for Z-order. The reverse kernel
/// (children → parent) has identical energy by symmetry of the metric.
pub fn local_kernel_energy(tree: &Tree, layout: &Layout) -> u64 {
    // One batch transform for all vertex coordinates, then a pure
    // array scan over the edges.
    let points = layout.grid_points();
    local_kernel_energy_with_points(tree, &points)
}

/// [`local_kernel_energy`] over precomputed per-vertex grid coordinates
/// (`points[v]` is vertex `v`'s position): lets sweep harnesses derive
/// the coordinates once per layout instead of once per metric.
pub fn local_kernel_energy_with_points(tree: &Tree, points: &[GridPoint]) -> u64 {
    (0..tree.n())
        .into_par_iter()
        .map(|v| {
            tree.children(v)
                .iter()
                .map(|&c| spatial_sfc::manhattan(points[v as usize], points[c as usize]))
                .sum::<u64>()
        })
        .sum()
}

/// Per-edge distance statistics under a layout.
pub fn edge_distance_stats(tree: &Tree, layout: &Layout) -> EdgeDistanceStats {
    let points = layout.grid_points();
    edge_distance_stats_with_points(tree, &points)
}

/// [`edge_distance_stats`] over precomputed per-vertex coordinates.
///
/// A plain sequential scan plus a flat counting pass for the exact
/// percentiles: the batch coordinate transform is the expensive part,
/// and edge distances are bounded by the grid diameter, so one count
/// array of that size replaces a sort.
pub fn edge_distance_stats_with_points(tree: &Tree, points: &[GridPoint]) -> EdgeDistanceStats {
    let mut counts: Vec<u64> = Vec::new();
    edge_distance_stats_with_points_into(tree, points, &mut counts)
}

/// [`edge_distance_stats_with_points`] with a caller-owned counting
/// array. The scratch is cleared and regrown on demand (never shrunk),
/// so sweep harnesses — the `bench-json-layout` scenario runner crosses
/// layouts × curves × families through this one code path — pay for
/// the counting allocation once instead of once per call.
///
/// All three percentiles come from a **single** cumulative sweep of
/// the counting array (the ranks are ordered, `r50 ≤ r95 ≤ r99`, so
/// one pass resolves them in threshold order), replacing the seed's
/// one-sweep-per-percentile scan.
pub fn edge_distance_stats_with_points_into(
    tree: &Tree,
    points: &[GridPoint],
    counts: &mut Vec<u64>,
) -> EdgeDistanceStats {
    // One pass: the counting array (bounded by the grid diameter, grown
    // on demand) carries everything — totals, max, and percentiles.
    counts.clear();
    let (mut total, mut edges) = (0u64, 0u64);
    for v in tree.vertices() {
        for &c in tree.children(v) {
            let d = spatial_sfc::manhattan(points[v as usize], points[c as usize]);
            if d as usize >= counts.len() {
                counts.resize(d as usize + 1, 0);
            }
            counts[d as usize] += 1;
            total += d;
            edges += 1;
        }
    }
    let max = counts.len().saturating_sub(1) as u64;
    // Nearest-rank percentiles — smallest d whose cumulative count
    // reaches ⌈q·edges⌉ — resolved in one cumulative sweep.
    let (mut p50, mut p95, mut p99) = (0u64, 0u64, 0u64);
    if edges > 0 {
        let rank = |q: f64| ((q * edges as f64).ceil() as u64).max(1);
        let (r50, r95, r99) = (rank(0.50), rank(0.95), rank(0.99));
        let mut cum = 0u64;
        let mut next = 0u8; // how many of the three ranks are resolved
        for (d, &c) in counts.iter().enumerate() {
            cum += c;
            if next == 0 && cum >= r50 {
                p50 = d as u64;
                next = 1;
            }
            if next == 1 && cum >= r95 {
                p95 = d as u64;
                next = 2;
            }
            if next == 2 && cum >= r99 {
                p99 = d as u64;
                break;
            }
        }
    }
    EdgeDistanceStats {
        edges,
        total,
        mean: total as f64 / edges.max(1) as f64,
        p50,
        p95,
        p99,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutKind;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    #[test]
    fn kernel_energy_matches_stats_total() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = generators::uniform_random(500, &mut rng);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let stats = edge_distance_stats(&t, &l);
        assert_eq!(stats.total, local_kernel_energy(&t, &l));
        assert_eq!(stats.edges, 499);
    }

    #[test]
    fn with_points_matches_per_layout_derivation() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = generators::preferential_attachment(400, &mut rng);
        let l = Layout::light_first(&t, CurveKind::ZOrder);
        let points = l.grid_points();
        assert_eq!(
            local_kernel_energy_with_points(&t, &points),
            local_kernel_energy(&t, &l)
        );
        assert_eq!(
            edge_distance_stats_with_points(&t, &points),
            edge_distance_stats(&t, &l)
        );
    }

    #[test]
    fn percentiles_are_exact_against_sorting() {
        let mut rng = StdRng::seed_from_u64(7);
        for (i, t) in [
            generators::uniform_random(300, &mut rng),
            generators::comb(200),
            generators::star(64),
        ]
        .into_iter()
        .enumerate()
        {
            let l = Layout::of_kind(LayoutKind::Random, &t, CurveKind::Hilbert, &mut rng);
            let stats = edge_distance_stats(&t, &l);
            // Oracle: sort all edge distances, nearest-rank lookup.
            let points = l.grid_points();
            let mut ds: Vec<u64> = Vec::new();
            for v in t.vertices() {
                for &c in t.children(v) {
                    ds.push(spatial_sfc::manhattan(
                        points[v as usize],
                        points[c as usize],
                    ));
                }
            }
            ds.sort_unstable();
            let rank = |q: f64| ds[((q * ds.len() as f64).ceil() as usize).max(1) - 1];
            assert_eq!(stats.p50, rank(0.50), "tree {i}");
            assert_eq!(stats.p95, rank(0.95), "tree {i}");
            assert_eq!(stats.p99, rank(0.99), "tree {i}");
            assert_eq!(stats.max, *ds.last().unwrap(), "tree {i}");
        }
    }

    #[test]
    fn percentiles_ordered_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = generators::uniform_random(1000, &mut rng);
        for kind in LayoutKind::ALL {
            let l = Layout::of_kind(kind, &t, CurveKind::Hilbert, &mut rng);
            let s = edge_distance_stats(&t, &l);
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max, "{kind}");
            // The median cannot sit far above the mean (Markov-style
            // sanity bound on the counting-pass ranks).
            assert!(
                s.p50 as f64 <= s.mean * 2.0 + 2.0,
                "{kind}: p50 {} vs mean {}",
                s.p50,
                s.mean
            );
        }
    }

    #[test]
    fn theorem1_light_first_linear_energy() {
        // Energy per vertex stays bounded as n grows (perfect binary),
        // on every distance-bound curve the workspace ships.
        for curve in [CurveKind::Hilbert, CurveKind::Moore, CurveKind::Peano] {
            let mut per_n = Vec::new();
            for depth in [8u32, 10, 12] {
                let t = generators::perfect_kary(2, depth);
                let l = Layout::light_first(&t, curve);
                let e = local_kernel_energy(&t, &l);
                per_n.push(e as f64 / t.n() as f64);
            }
            for w in per_n.windows(2) {
                assert!(
                    w[1] < w[0] * 1.5,
                    "{curve}: light-first energy/n should not grow: {per_n:?}"
                );
            }
            assert!(per_n[2] < 8.0, "{curve}: energy/n too large: {per_n:?}");
        }
    }

    #[test]
    fn theorem2_zorder_light_first_linear_energy() {
        let mut per_n = Vec::new();
        for depth in [8u32, 10, 12] {
            let t = generators::perfect_kary(2, depth);
            let l = Layout::light_first(&t, CurveKind::ZOrder);
            per_n.push(local_kernel_energy(&t, &l) as f64 / t.n() as f64);
        }
        for w in per_n.windows(2) {
            assert!(
                w[1] < w[0] * 1.5,
                "Z-light-first energy/n should not grow: {per_n:?}"
            );
        }
    }

    #[test]
    fn bfs_layout_is_sqrt_n_on_perfect_binary() {
        // §III: "a perfect binary tree will have a breadth-first layout
        // where the average distance between neighbors is Ω(√n)".
        let t8 = generators::perfect_kary(2, 8);
        let t12 = generators::perfect_kary(2, 12);
        let m8 = edge_distance_stats(&t8, &Layout::bfs(&t8, CurveKind::Hilbert)).mean;
        let m12 = edge_distance_stats(&t12, &Layout::bfs(&t12, CurveKind::Hilbert)).mean;
        // √n grows 4x from depth 8 to 12; allow generous slack.
        assert!(
            m12 > m8 * 2.0,
            "BFS mean edge distance should grow like √n: {m8} vs {m12}"
        );
    }

    #[test]
    fn dfs_layout_bad_on_comb() {
        // §III: the comb makes DFS order pay; light-first stays constant.
        let t = generators::comb(1 << 14);
        let dfs = edge_distance_stats(&t, &Layout::dfs(&t, CurveKind::Hilbert));
        let lf = edge_distance_stats(&t, &Layout::light_first(&t, CurveKind::Hilbert));
        assert!(
            dfs.mean > 8.0 * lf.mean,
            "DFS should be much worse on the comb: {} vs {}",
            dfs.mean,
            lf.mean
        );
        assert!(lf.mean < 4.0, "light-first comb mean {}", lf.mean);
        // The tail separates even harder than the mean.
        assert!(dfs.p95 >= lf.p95, "p95: {} vs {}", dfs.p95, lf.p95);
    }

    #[test]
    fn random_layout_is_worst() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generators::uniform_random(1 << 12, &mut rng);
        let rand_stats = edge_distance_stats(
            &t,
            &Layout::of_kind(LayoutKind::Random, &t, CurveKind::Hilbert, &mut rng),
        );
        let lf_stats = edge_distance_stats(&t, &Layout::light_first(&t, CurveKind::Hilbert));
        assert!(rand_stats.mean > 5.0 * lf_stats.mean);
        assert!(rand_stats.p50 > lf_stats.p50);
    }

    #[test]
    fn empty_children_single_vertex() {
        let t = spatial_tree::Tree::from_parents(0, vec![spatial_tree::NIL]);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let s = edge_distance_stats(&t, &l);
        assert_eq!(s.edges, 0);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
        // The zero-edge case through the scratch-reuse entry point,
        // including with a dirty scratch left by a previous call.
        let mut counts = vec![7u64, 8, 9];
        let s2 = edge_distance_stats_with_points_into(&t, &l.grid_points(), &mut counts);
        assert_eq!(s2, s);
        assert_eq!(s2.max, 0);
    }

    #[test]
    fn all_equal_distances_collapse_every_percentile() {
        // A path tree laid out with uniform spacing: every edge has the
        // same distance, so p50 = p95 = p99 = max = mean — the case
        // where one cumulative step must resolve all three ranks.
        for (n, spacing) in [(2u32, 1u32), (17, 3), (100, 2)] {
            let parents: Vec<u32> = std::iter::once(spatial_tree::NIL).chain(0..n - 1).collect();
            let t = spatial_tree::Tree::from_parents(0, parents);
            let points: Vec<GridPoint> = (0..n).map(|i| GridPoint::new(i * spacing, 0)).collect();
            let s = edge_distance_stats_with_points(&t, &points);
            assert_eq!(s.edges, (n - 1) as u64);
            let d = spacing as u64;
            assert_eq!(
                (s.p50, s.p95, s.p99, s.max),
                (d, d, d, d),
                "n={n} spacing={spacing}"
            );
            assert_eq!(s.mean, d as f64);
            assert_eq!(s.total, d * (n - 1) as u64);
        }
    }

    #[test]
    fn into_variant_reuses_scratch_across_sweeps() {
        // One scratch across trees of very different diameters must
        // reproduce the fresh-allocation results exactly (stale counts
        // from a larger previous call must not leak).
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = Vec::new();
        for t in [
            generators::uniform_random(2000, &mut rng),
            generators::comb(64),
            generators::star(300),
            generators::uniform_random(500, &mut rng),
        ] {
            for kind in [LayoutKind::Random, LayoutKind::LightFirst] {
                let l = Layout::of_kind(kind, &t, CurveKind::Hilbert, &mut rng);
                let points = l.grid_points();
                let fresh = edge_distance_stats_with_points(&t, &points);
                let reused = edge_distance_stats_with_points_into(&t, &points, &mut counts);
                assert_eq!(reused, fresh, "n={} {kind}", t.n());
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    proptest! {
        /// Theorems 1–2: on random bounded-degree trees, the light-first
        /// kernel energy is linear in n on every energy-bound curve —
        /// asserted with an explicit per-vertex constant.
        #[test]
        fn prop_light_first_energy_linear_bounded_degree(
            seed in 0u64..10_000,
            n in 64u32..2048,
        ) {
            let t = generators::random_binary(n, &mut StdRng::seed_from_u64(seed));
            prop_assert!(t.max_degree() <= 3);
            for curve in CurveKind::ENERGY_BOUND {
                let l = Layout::light_first(&t, curve);
                let e = local_kernel_energy(&t, &l);
                // Theorem 1 constant for α ≤ 3.3 and degree ≤ 3 is well
                // below this; Z-order (Theorem 2) carries the diagonal
                // term. 24·n is a hard linear cap with slack for small n.
                prop_assert!(
                    e <= 24 * n as u64,
                    "{curve}: energy {e} > 24n = {} at n={n}", 24 * n
                );
            }
        }

        /// The comb (caterpillar) adversary: light-first stays linear
        /// even where DFS pays — Theorem 1 on the paper's §III example.
        #[test]
        fn prop_light_first_energy_linear_comb(n in 64u32..4096) {
            let t = generators::comb(n);
            for curve in [CurveKind::Hilbert, CurveKind::ZOrder] {
                let l = Layout::light_first(&t, curve);
                let e = local_kernel_energy(&t, &l);
                prop_assert!(e <= 16 * n as u64, "{curve}: {e} > 16n at n={n}");
            }
        }
    }
}
