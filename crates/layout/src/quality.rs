//! Layout quality metrics: the messaging-kernel energy of Theorems 1–2.
//!
//! The fundamental kernel of §I-C sends one message from every vertex to
//! each of its children. Its energy is the distance-weighted sum over
//! tree edges, entirely determined by the layout. [`local_kernel_energy`]
//! measures it exactly; [`edge_distance_stats`] summarizes the per-edge
//! distance distribution. Experiment E1 sweeps these across layouts,
//! curves and tree families.

use crate::layout::Layout;
use rayon::prelude::*;
use spatial_tree::Tree;

/// Summary of per-edge grid distances under a layout.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDistanceStats {
    /// Number of tree edges.
    pub edges: u64,
    /// Total parent→child distance (= the messaging-kernel energy).
    pub total: u64,
    /// Mean distance per edge.
    pub mean: f64,
    /// Maximum edge distance.
    pub max: u64,
}

/// Energy of the local messaging kernel: every vertex sends one message
/// to each of its children (`Σ_(v,c) dist(v, c)`).
///
/// Theorem 1: `O(n)` for light-first order on a distance-bound curve
/// with bounded degree; Theorem 2: same for Z-order. The reverse kernel
/// (children → parent) has identical energy by symmetry of the metric.
pub fn local_kernel_energy(tree: &Tree, layout: &Layout) -> u64 {
    // One batch transform for all vertex coordinates, then a pure
    // array scan over the edges.
    let points = layout.grid_points();
    (0..tree.n())
        .into_par_iter()
        .map(|v| {
            tree.children(v)
                .iter()
                .map(|&c| spatial_sfc::manhattan(points[v as usize], points[c as usize]))
                .sum::<u64>()
        })
        .sum()
}

/// Per-edge distance statistics under a layout.
///
/// A plain sequential scan: the batch `grid_points` transform is the
/// expensive part, and a tuple fold over edges keeps the function
/// valid against both the in-repo rayon shim and the real crate.
pub fn edge_distance_stats(tree: &Tree, layout: &Layout) -> EdgeDistanceStats {
    let points = layout.grid_points();
    let (mut total, mut max, mut edges) = (0u64, 0u64, 0u64);
    for v in tree.vertices() {
        for &c in tree.children(v) {
            let d = spatial_sfc::manhattan(points[v as usize], points[c as usize]);
            total += d;
            max = max.max(d);
            edges += 1;
        }
    }
    EdgeDistanceStats {
        edges,
        total,
        mean: total as f64 / edges.max(1) as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutKind;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    #[test]
    fn kernel_energy_matches_stats_total() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = generators::uniform_random(500, &mut rng);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let stats = edge_distance_stats(&t, &l);
        assert_eq!(stats.total, local_kernel_energy(&t, &l));
        assert_eq!(stats.edges, 499);
    }

    #[test]
    fn theorem1_light_first_linear_energy() {
        // Energy per vertex stays bounded as n grows (perfect binary).
        let mut per_n = Vec::new();
        for depth in [8u32, 10, 12] {
            let t = generators::perfect_kary(2, depth);
            let l = Layout::light_first(&t, CurveKind::Hilbert);
            let e = local_kernel_energy(&t, &l);
            per_n.push(e as f64 / t.n() as f64);
        }
        for w in per_n.windows(2) {
            assert!(
                w[1] < w[0] * 1.5,
                "light-first energy/n should not grow: {per_n:?}"
            );
        }
        assert!(per_n[2] < 6.0, "energy/n too large: {per_n:?}");
    }

    #[test]
    fn theorem2_zorder_light_first_linear_energy() {
        let mut per_n = Vec::new();
        for depth in [8u32, 10, 12] {
            let t = generators::perfect_kary(2, depth);
            let l = Layout::light_first(&t, CurveKind::ZOrder);
            per_n.push(local_kernel_energy(&t, &l) as f64 / t.n() as f64);
        }
        for w in per_n.windows(2) {
            assert!(
                w[1] < w[0] * 1.5,
                "Z-light-first energy/n should not grow: {per_n:?}"
            );
        }
    }

    #[test]
    fn bfs_layout_is_sqrt_n_on_perfect_binary() {
        // §III: "a perfect binary tree will have a breadth-first layout
        // where the average distance between neighbors is Ω(√n)".
        let t8 = generators::perfect_kary(2, 8);
        let t12 = generators::perfect_kary(2, 12);
        let m8 = edge_distance_stats(&t8, &Layout::bfs(&t8, CurveKind::Hilbert)).mean;
        let m12 = edge_distance_stats(&t12, &Layout::bfs(&t12, CurveKind::Hilbert)).mean;
        // √n grows 4x from depth 8 to 12; allow generous slack.
        assert!(
            m12 > m8 * 2.0,
            "BFS mean edge distance should grow like √n: {m8} vs {m12}"
        );
    }

    #[test]
    fn dfs_layout_bad_on_comb() {
        // §III: the comb makes DFS order pay; light-first stays constant.
        let t = generators::comb(1 << 14);
        let dfs = edge_distance_stats(&t, &Layout::dfs(&t, CurveKind::Hilbert));
        let lf = edge_distance_stats(&t, &Layout::light_first(&t, CurveKind::Hilbert));
        assert!(
            dfs.mean > 8.0 * lf.mean,
            "DFS should be much worse on the comb: {} vs {}",
            dfs.mean,
            lf.mean
        );
        assert!(lf.mean < 4.0, "light-first comb mean {}", lf.mean);
    }

    #[test]
    fn random_layout_is_worst() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generators::uniform_random(1 << 12, &mut rng);
        let rand_stats = edge_distance_stats(
            &t,
            &Layout::of_kind(LayoutKind::Random, &t, CurveKind::Hilbert, &mut rng),
        );
        let lf_stats = edge_distance_stats(&t, &Layout::light_first(&t, CurveKind::Hilbert));
        assert!(rand_stats.mean > 5.0 * lf_stats.mean);
    }

    #[test]
    fn empty_children_single_vertex() {
        let t = spatial_tree::Tree::from_parents(0, vec![spatial_tree::NIL]);
        let l = Layout::light_first(&t, CurveKind::Hilbert);
        let s = edge_distance_stats(&t, &l);
        assert_eq!(s.edges, 0);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean, 0.0);
    }
}
