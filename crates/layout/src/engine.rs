//! The flat-array layout engine: §IV on-machine construction to the
//! allocation-free engine standard of the treefix/LCA/ranking engines.
//!
//! [`LayoutEngine`] runs the same three-phase pipeline as the retained
//! seed ([`crate::reference::build_light_first_spatial_reference`]) —
//! sizes tour → light-first tour → bitonic permute — but lays every
//! piece of state out flat and allocates once in [`LayoutEngine::new`]:
//!
//! - both Euler-tour rankings run through retained
//!   [`RankingEngine`]s (flat splice logs, zero per-run allocation)
//!   instead of one-shot `rank_spatial` calls, with the light-first
//!   tour threaded once from a shared [`spatial_tree::ChildrenCsr`];
//! - all charging happens inside [`Machine::begin_local_charge`]
//!   sessions — plain-arithmetic clock math committed in one batch per
//!   phase, instead of per-message atomics;
//! - the two sorting networks (the §IV step-3 compaction and the
//!   step-4 permutation router) are rewritten as flat in-place
//!   networks over packed `u64` records (`key << 32 | value`, with
//!   `u64::MAX` as the `+∞` pad sentinel), charged per round from
//!   **per-level** energies precomputed once: stage charges of a
//!   bitonic network depend only on the exchange stride `j`, never on
//!   the data or the outer pass `k`, so the seed's `O(n log² n)`
//!   distance evaluations collapse to `O(n log n)` at setup;
//! - the step-3 prefix-sum compaction is an in-place Blelloch scan
//!   over a retained buffer with the same per-stride precomputation.
//!
//! After `new` returns, [`LayoutEngine::build_into`] performs **zero
//! heap allocation** (counting-allocator test `tests/alloc_free.rs`).
//! Charges are identical to the seed path — same per-phase
//! [`CostReport`]s, same ranking rounds, same layouts — pinned by the
//! `engine_vs_reference` differential suite.

use rand::Rng;
use spatial_euler::ranking::RankingEngine;
use spatial_euler::tour::{ChildOrder, EulerTour};
use spatial_model::{CostReport, EngineLifecycle, LocalCharge, LocalChargeScratch, Machine, Slot};
use spatial_sfc::CurveKind;
use spatial_tree::{ChildrenCsr, NodeId, Tree};

use crate::builder::SpatialBuildReport;
use crate::layout::Layout;
use crate::reference::dart_machine;

/// Per-level `(energy, pairs)` charges of a bitonic network over the
/// first `len` slots of `m`, indexed by `log2(j)` for exchange stride
/// `j`. Every stage with stride `j` exchanges the same slot pairs
/// regardless of the pass `k` or the data, so one pass per level
/// suffices.
#[doc(hidden)]
pub fn bitonic_levels(m: &Machine, len: usize) -> Vec<(u64, u64)> {
    let padded = len.next_power_of_two();
    let mut out = Vec::with_capacity(padded.trailing_zeros() as usize);
    let mut j = 1usize;
    while j < padded {
        let mut energy = 0u64;
        let mut pairs = 0u64;
        let mut base = 0usize;
        while base < padded {
            for i in base..base + j {
                let l = i + j; // = i ^ j: bit j of i is clear in this half
                if l < len {
                    energy += 2 * m.dist(i as Slot, l as Slot);
                    pairs += 1;
                }
            }
            base += 2 * j;
        }
        out.push((energy, pairs));
        j *= 2;
    }
    out
}

/// Per-stride `(energy, messages)` charges of a Blelloch scan over the
/// first `len` slots of `m`, indexed by `log2(stride)`. The up- and
/// down-sweep stages of one stride touch the same slot pairs.
fn scan_levels(m: &Machine, len: usize) -> Vec<(u64, u64)> {
    let padded = len.next_power_of_two();
    let mut out = Vec::with_capacity(padded.trailing_zeros() as usize);
    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        let mut energy = 0u64;
        let mut i = step - 1;
        while i < padded {
            if i < len && i - stride < len {
                energy += m.dist((i - stride) as Slot, i as Slot);
            }
            i += step;
        }
        let msgs = ((padded / step) as u64).min(len as u64);
        out.push((energy, msgs));
        stride = step;
    }
    out
}

/// One half-block compare-exchange: `block` is `2j` long, the first
/// `j` slots exchange with the last `j`. Branchless `min`/`max` pairs
/// (cmov, no data-dependent branches) run 2.1–2.3× faster than the
/// branchy swap on shuffled keys — the mispredict per element is the
/// dominant cost of the network — and vectorize under the `simd`
/// feature when the stride allows full lanes.
#[inline]
fn half_block_pass(block: &mut [u64], j: usize, ascending: bool) {
    let (lo, hi) = block.split_at_mut(j);
    let hi = &mut hi[..j];
    #[cfg(feature = "simd")]
    if j >= 4 {
        use core::simd::cmp::SimdOrd;
        use core::simd::Simd;
        const L: usize = 4;
        for (a, b) in lo.chunks_exact_mut(L).zip(hi.chunks_exact_mut(L)) {
            let (x, y) = (Simd::<u64, L>::from_slice(a), Simd::<u64, L>::from_slice(b));
            let (mn, mx) = (x.simd_min(y), x.simd_max(y));
            if ascending {
                a.copy_from_slice(mn.as_array());
                b.copy_from_slice(mx.as_array());
            } else {
                a.copy_from_slice(mx.as_array());
                b.copy_from_slice(mn.as_array());
            }
        }
        return;
    }
    if ascending {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x.min(y);
            *b = x.max(y);
        }
    } else {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x.max(y);
            *b = x.min(y);
        }
    }
}

/// One full stage of the network (stride `j`, pass `k`) over all
/// `2j`-blocks. The blocks are independent, so large stages split
/// across workers when the measured [`spatial_sfc::thresholds`]
/// crossover says forking pays; results are identical either way.
fn bitonic_stage(buf: &mut [u64], k: usize, j: usize, min_par: usize) {
    let padded = buf.len();
    let block = 2 * j;
    let threads = rayon::current_num_threads();
    if threads > 1 && padded >= min_par && padded / block >= 2 {
        let per_task = (padded / block).div_ceil(threads).max(1) * block;
        rayon::scope(|s| {
            for (ci, chunk) in buf.chunks_mut(per_task).enumerate() {
                s.spawn(move |_| {
                    let start = ci * per_task;
                    let mut base = 0usize;
                    while base < chunk.len() {
                        let ascending = (start + base) & k == 0;
                        half_block_pass(&mut chunk[base..base + block], j, ascending);
                        base += block;
                    }
                });
            }
        });
        return;
    }
    let mut base = 0usize;
    while base < padded {
        let ascending = base & k == 0;
        half_block_pass(&mut buf[base..base + block], j, ascending);
        base += block;
    }
}

/// Runs the flat in-place bitonic network over packed `u64` records
/// (`u64::MAX` pads act as `+∞`), charging one precomputed bulk round
/// per stage — the identical charge sequence as
/// [`spatial_model::collectives::bitonic_sort_by_key`]. The
/// compare-exchange loop is the branchless [`half_block_pass`]; the
/// pre-PR branchy network is retained as [`run_bitonic_reference`] and
/// the two are pinned identical (results and charges) by the tests.
#[doc(hidden)]
pub fn run_bitonic(lc: &mut LocalCharge, buf: &mut [u64], levels: &[(u64, u64)]) {
    let padded = buf.len();
    if padded <= 1 {
        return;
    }
    let min_par = spatial_sfc::thresholds::BITONIC_PASS.min_par_items();
    let mut k = 2usize;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            let (energy, pairs) = levels[j.trailing_zeros() as usize];
            lc.charge_bulk(energy, 2 * pairs, pairs);
            lc.advance_all(1);
            bitonic_stage(buf, k, j, min_par);
            j /= 2;
        }
        k *= 2;
    }
}

/// The pre-SWAR branchy network, retained verbatim as the differential
/// reference for [`run_bitonic`] (and as the scalar baseline the
/// benches measure speedup against).
#[doc(hidden)]
pub fn run_bitonic_reference(lc: &mut LocalCharge, buf: &mut [u64], levels: &[(u64, u64)]) {
    let padded = buf.len();
    if padded <= 1 {
        return;
    }
    let mut k = 2usize;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            let (energy, pairs) = levels[j.trailing_zeros() as usize];
            lc.charge_bulk(energy, 2 * pairs, pairs);
            lc.advance_all(1);
            let mut base = 0usize;
            while base < padded {
                let ascending = base & k == 0;
                for i in base..base + j {
                    let l = i + j;
                    let (a, b) = (buf[i], buf[l]);
                    if (a > b) == ascending && a != b {
                        buf[i] = b;
                        buf[l] = a;
                    }
                }
                base += 2 * j;
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Runs the in-place Blelloch exclusive `+`-scan, charging one
/// precomputed bulk round per stage — the identical charge sequence as
/// [`spatial_model::collectives::exclusive_prefix_sum`].
fn run_scan(lc: &mut LocalCharge, a: &mut [u64], levels: &[(u64, u64)]) {
    let padded = a.len();
    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        let (energy, msgs) = levels[stride.trailing_zeros() as usize];
        lc.charge_bulk(energy, msgs, msgs);
        let mut i = step - 1;
        while i < padded {
            a[i] += a[i - stride];
            i += step;
        }
        lc.advance_all(1);
        stride = step;
    }
    a[padded - 1] = 0;
    stride = padded / 2;
    while stride >= 1 {
        let step = stride * 2;
        let (energy, msgs) = levels[stride.trailing_zeros() as usize];
        lc.charge_bulk(energy, msgs, msgs);
        let mut i = step - 1;
        while i < padded {
            let left = a[i - stride];
            a[i - stride] = a[i];
            a[i] += left;
            i += step;
        }
        lc.advance_all(1);
        stride /= 2;
    }
}

/// The reusable §IV on-machine layout builder (Theorem 4): structure
/// built once, per-run state flat and retained. Create with
/// [`LayoutEngine::new`], then call [`LayoutEngine::build`] (or the
/// allocation-free [`LayoutEngine::build_into`]) any number of times;
/// each run re-executes the pipeline with fresh randomness, charging
/// the engine's machines and reporting per-phase costs.
pub struct LayoutEngine {
    curve_kind: CurveKind,
    n: u32,
    /// Largest vertex count the per-run buffers have been reserved for
    /// (`≥ n`; grown by [`EngineLifecycle::reserve`]).
    cap: usize,
    root: NodeId,
    /// Dart machine (2 slots per vertex, input placement), reused for
    /// phases 1–2 with a reset in between.
    m_dart: Machine,
    /// On-curve machine (one slot per vertex), the phase-3 router.
    m_curve: Machine,
    /// Natural-order tour ranking (phase 1).
    rank1: RankingEngine,
    /// Light-first tour ranking (phase 2), threaded once from the
    /// shared light-first [`ChildrenCsr`].
    rank2: RankingEngine,
    /// Phase-2 tour visit order (darts), fixed across runs.
    seq2: Vec<u32>,
    /// Host-computed subtree sizes (debug cross-check for the
    /// on-machine phase-1 result).
    #[cfg(debug_assertions)]
    sizes_host: Vec<u32>,
    /// Per-level charges: compaction sort (dart machine), compaction
    /// scan (dart machine), permutation sort (curve machine).
    sort2_levels: Vec<(u64, u64)>,
    scan2_levels: Vec<(u64, u64)>,
    sort3_levels: Vec<(u64, u64)>,

    // ---- Retained per-run buffers (zero allocation after setup). ----
    scratch: LocalChargeScratch,
    #[cfg(debug_assertions)]
    sizes: Vec<u32>,
    packed: Vec<u64>,
    scan_buf: Vec<u64>,
    order: Vec<NodeId>,
    pos: Vec<u32>,
}

impl LayoutEngine {
    /// Prepares the engine for `tree` on `curve_kind`: machines, tours,
    /// ranking engines, and per-level network charges. All allocation
    /// happens here; [`LayoutEngine::build_into`] never allocates.
    pub fn new(tree: &Tree, curve_kind: CurveKind) -> Self {
        let n = tree.n();
        let m_dart = dart_machine(curve_kind, n);
        let m_curve = Machine::on_curve(curve_kind, n);

        let tour1 = EulerTour::new(tree, ChildOrder::Natural);
        let rank1 = RankingEngine::new(tour1.next_darts(), tour1.start());

        let sizes_host = tree.subtree_sizes();
        let csr = ChildrenCsr::by_size(tree, &sizes_host);
        let tour2 = EulerTour::light_first_from_csr(tree, &csr);
        let rank2 = RankingEngine::new(tour2.next_darts(), tour2.start());
        let seq2 = tour2.sequence();

        let n2 = seq2.len();
        let (sort2_levels, scan2_levels, sort3_levels) = if n > 1 {
            (
                bitonic_levels(&m_dart, n2),
                scan_levels(&m_dart, n2),
                bitonic_levels(&m_curve, n as usize),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        let padded2 = n2.next_power_of_two();
        let cap = padded2.max((n as usize).next_power_of_two());
        LayoutEngine {
            curve_kind,
            n,
            cap: n as usize,
            root: tree.root(),
            m_dart,
            m_curve,
            rank1,
            rank2,
            seq2,
            #[cfg(debug_assertions)]
            sizes_host,
            sort2_levels,
            scan2_levels,
            sort3_levels,
            scratch: LocalChargeScratch::with_capacity(2 * n as usize, 0),
            #[cfg(debug_assertions)]
            sizes: vec![0; n as usize],
            packed: Vec::with_capacity(cap),
            scan_buf: Vec::with_capacity(padded2),
            order: Vec::with_capacity(n as usize),
            pos: vec![0; n as usize],
        }
    }

    /// Number of vertices the engine lays out.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The curve family the layout targets.
    pub fn curve_kind(&self) -> CurveKind {
        self.curve_kind
    }

    /// The light-first order of the most recent
    /// [`LayoutEngine::build_into`] run (empty before the first run).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Runs the full §IV pipeline, returning the layout and the
    /// per-phase cost breakdown. Allocates only the returned [`Layout`];
    /// callers that want the raw order use [`LayoutEngine::build_into`]
    /// + [`LayoutEngine::order`].
    pub fn build<R: Rng>(&mut self, rng: &mut R) -> (Layout, SpatialBuildReport) {
        let report = self.build_into(rng);
        (
            Layout::from_order(self.curve_kind, self.order.clone()),
            report,
        )
    }

    /// Runs the full §IV pipeline into the retained buffers — **zero
    /// heap allocation** — leaving the light-first order in
    /// [`LayoutEngine::order`] and returning the per-phase costs.
    pub fn build_into<R: Rng>(&mut self, rng: &mut R) -> SpatialBuildReport {
        let n = self.n as usize;
        if n == 1 {
            self.order.clear();
            self.order.push(self.root);
            let empty = CostReport::default();
            return SpatialBuildReport {
                sizes_phase: empty,
                order_phase: empty,
                permute_phase: empty,
                ranking_rounds: (0, 0),
            };
        }

        // ---- Phase 1: subtree sizes from the natural-order tour. ----
        self.m_dart.reset();
        let rounds1 = {
            let mut lc = self.m_dart.begin_local_charge(&mut self.scratch);
            let r = self.rank1.rank_into(&self.m_dart, &mut lc, rng);
            lc.commit();
            r
        };
        // Debug cross-check: re-derive the subtree sizes from the
        // on-machine ranks — s(v) = (rank(up(v)) − rank(down(v)) + 1)/2,
        // root gets n (§IV step 1b) — and pin them to the host sizes
        // the light-first tour was threaded from. Release builds skip
        // the O(n) reconstruction: the result is never consumed (the
        // tour structure is fixed at `new`), and the ranking charges
        // above are what the phase report measures.
        #[cfg(debug_assertions)]
        {
            use spatial_euler::ranking::UNRANKED;
            let ranks1 = self.rank1.ranks();
            for v in 0..n as u32 {
                self.sizes[v as usize] = if v == self.root {
                    self.n
                } else {
                    let first = ranks1[spatial_euler::tour::down(v) as usize];
                    let last = ranks1[spatial_euler::tour::up(v) as usize];
                    debug_assert!(first != UNRANKED && last > first, "bad tour ranks");
                    ((last - first) >> 1) as u32 + ((last - first) & 1) as u32
                };
            }
            debug_assert_eq!(self.sizes, self.sizes_host, "on-machine sizes diverge");
        }
        let sizes_phase = self.m_dart.report();

        // ---- Phase 2: light-first tour, ranking, compaction. ----
        self.m_dart.reset();
        let n2 = self.seq2.len();
        let padded2 = n2.next_power_of_two();
        let rounds2 = {
            let mut lc = self.m_dart.begin_local_charge(&mut self.scratch);
            let r = self.rank2.rank_into(&self.m_dart, &mut lc, rng);

            // Compaction (§IV step 3): gather darts into rank order
            // with the packed network, then drop non-first occurrences
            // with the in-place scan.
            let ranks2 = self.rank2.ranks();
            self.packed.clear();
            self.packed.extend(
                self.seq2
                    .iter()
                    .map(|&d| (ranks2[d as usize] << 32) | d as u64),
            );
            self.packed.resize(padded2, u64::MAX);
            run_bitonic(&mut lc, &mut self.packed, &self.sort2_levels);

            // Flag = "is a down dart" (first occurrence of its vertex).
            self.scan_buf.clear();
            self.scan_buf.extend(
                self.packed[..n2]
                    .iter()
                    .map(|&p| (p as u32 & 1 == 0) as u64),
            );
            self.scan_buf.resize(padded2, 0);
            run_scan(&mut lc, &mut self.scan_buf, &self.scan2_levels);
            lc.commit();
            r
        };
        // Vertex at light-first position 1 + scan[i] for each first
        // occurrence; the root occupies position 0.
        self.order.clear();
        self.order.resize(n, self.root);
        for i in 0..n2 {
            let d = self.packed[i] as u32;
            if d & 1 == 0 {
                self.order[1 + self.scan_buf[i] as usize] = d >> 1;
            }
        }
        let order_phase = self.m_dart.report();

        // ---- Phase 3: permutation routing to the final curve ----
        // ---- positions (§IV step 4, the Θ(n^{3/2}) router).    ----
        self.m_curve.reset();
        for (t, &v) in self.order.iter().enumerate() {
            self.pos[v as usize] = t as u32;
        }
        let padded3 = n.next_power_of_two();
        // Input placement: vertex id order; key = target curve slot.
        self.packed.clear();
        self.packed
            .extend((0..n as u32).map(|v| ((self.pos[v as usize] as u64) << 32) | v as u64));
        self.packed.resize(padded3, u64::MAX);
        {
            let mut lc = self.m_curve.begin_local_charge(&mut self.scratch);
            run_bitonic(&mut lc, &mut self.packed, &self.sort3_levels);
            lc.commit();
        }
        #[cfg(debug_assertions)]
        for (t, &v) in self.order.iter().enumerate() {
            debug_assert_eq!(
                self.packed[t] as u32, v,
                "routing must realize the permutation"
            );
        }
        let permute_phase = self.m_curve.report();

        SpatialBuildReport {
            sizes_phase,
            order_phase,
            permute_phase,
            ranking_rounds: (rounds1, rounds2),
        }
    }
}

impl EngineLifecycle for LayoutEngine {
    fn capacity(&self) -> usize {
        self.cap
    }

    /// The layout engine's structure (tours, rankings, network levels)
    /// is inherently per-tree, so there is no rebind: `reserve` grows
    /// only the per-run buffers (useful when the pool replaces the
    /// engine for a larger tree and wants the staging pre-sized), and a
    /// reconstruction via [`LayoutEngine::new`] is the real "bind".
    fn reserve(&mut self, cap: usize) {
        if cap <= self.cap {
            return;
        }
        let padded = cap.next_power_of_two();
        fn grow<T>(buf: &mut Vec<T>, cap: usize) {
            buf.reserve(cap.saturating_sub(buf.len()));
        }
        grow(&mut self.packed, padded);
        grow(&mut self.scan_buf, padded);
        grow(&mut self.order, cap);
        grow(&mut self.pos, cap);
        self.cap = cap;
    }

    fn reset(&mut self) {
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::collectives;
    use spatial_tree::{generators, traversal};

    #[test]
    fn engine_matches_host_order() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2u32, 3, 10, 100, 500] {
            let t = generators::uniform_random(n, &mut rng);
            let mut engine = LayoutEngine::new(&t, CurveKind::Hilbert);
            let (layout, _) = engine.build(&mut rng);
            assert_eq!(
                layout.order(),
                &traversal::light_first_order(&t)[..],
                "n={n}"
            );
        }
    }

    #[test]
    fn engine_reuse_reproduces_reports() {
        let t = generators::comb(300);
        let mut engine = LayoutEngine::new(&t, CurveKind::ZOrder);
        let r1 = engine.build_into(&mut StdRng::seed_from_u64(4));
        let first_order: Vec<u32> = engine.order().to_vec();
        let r2 = engine.build_into(&mut StdRng::seed_from_u64(4));
        assert_eq!(engine.order(), &first_order[..]);
        assert_eq!(r1.sizes_phase, r2.sizes_phase);
        assert_eq!(r1.order_phase, r2.order_phase);
        assert_eq!(r1.permute_phase, r2.permute_phase);
        assert_eq!(r1.ranking_rounds, r2.ranking_rounds);
        // A different seed changes costs, never the layout.
        engine.build_into(&mut StdRng::seed_from_u64(99));
        assert_eq!(engine.order(), &first_order[..]);
    }

    #[test]
    fn single_vertex_build() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let mut engine = LayoutEngine::new(&t, CurveKind::Hilbert);
        let (layout, report) = engine.build(&mut StdRng::seed_from_u64(0));
        assert_eq!(layout.order(), &[0]);
        assert_eq!(report.total(), CostReport::default());
    }

    #[test]
    fn packed_network_matches_collectives_sort() {
        // The flat u64 network must sort exactly like the Option-padded
        // collectives network — same comparisons, same result — and
        // charge the identical stage totals.
        let mut rng = StdRng::seed_from_u64(7);
        for len in [2usize, 5, 64, 100, 333] {
            let m = Machine::on_curve(CurveKind::Hilbert, len as u32);
            // Distinct keys (a shuffled permutation): both pipelines the
            // engine runs — rank compaction and slot routing — have
            // unique keys, and the packed representation breaks ties by
            // value where the tuple network would not.
            let mut keys: Vec<u32> = (0..len as u32).collect();
            for i in (1..len).rev() {
                keys.swap(i, rng.gen_range(0..=i));
            }
            let mut records: Vec<(u32, u32)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect();
            let mut packed: Vec<u64> = records
                .iter()
                .map(|&(k, v)| ((k as u64) << 32) | v as u64)
                .collect();
            packed.resize(len.next_power_of_two(), u64::MAX);

            let m_ref = Machine::on_curve(CurveKind::Hilbert, len as u32);
            collectives::bitonic_sort_by_key(&m_ref, &mut records);

            let levels = bitonic_levels(&m, len);
            let mut scratch = LocalChargeScratch::new();
            let mut lc = m.begin_local_charge(&mut scratch);
            run_bitonic(&mut lc, &mut packed, &levels);
            lc.commit();

            let got: Vec<(u32, u32)> = packed[..len]
                .iter()
                .map(|&p| ((p >> 32) as u32, p as u32))
                .collect();
            assert_eq!(got, records, "len={len}");
            assert_eq!(m.report(), m_ref.report(), "len={len}");
        }
    }

    #[test]
    fn branchless_network_matches_branchy_reference() {
        // The SWAR acceptance bar: identical answers AND identical
        // machine charges, on shuffled, duplicate-heavy, sorted, and
        // reversed inputs across padded and unpadded lengths.
        let mut rng = StdRng::seed_from_u64(21);
        for len in [2usize, 3, 7, 8, 64, 100, 257, 1024] {
            for case in 0..4 {
                let mut keys: Vec<u64> = match case {
                    0 => (0..len as u64).map(|_| rng.gen_range(0..1 << 20)).collect(),
                    1 => (0..len as u64).map(|_| rng.gen_range(0..4)).collect(),
                    2 => (0..len as u64).collect(),
                    _ => (0..len as u64).rev().collect(),
                };
                for i in (1..len).rev() {
                    if case == 0 {
                        keys.swap(i, rng.gen_range(0..=i));
                    }
                }
                let mut packed: Vec<u64> = keys
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| (k << 32) | i as u64)
                    .collect();
                packed.resize(len.next_power_of_two(), u64::MAX);
                let mut packed_ref = packed.clone();

                let m = Machine::on_curve(CurveKind::Hilbert, len as u32);
                let m_ref = Machine::on_curve(CurveKind::Hilbert, len as u32);
                let levels = bitonic_levels(&m, len);
                let mut scratch = LocalChargeScratch::new();

                let mut lc = m.begin_local_charge(&mut scratch);
                run_bitonic(&mut lc, &mut packed, &levels);
                lc.commit();
                let mut lc = m_ref.begin_local_charge(&mut scratch);
                run_bitonic_reference(&mut lc, &mut packed_ref, &levels);
                lc.commit();

                assert_eq!(packed, packed_ref, "len={len} case={case}");
                assert_eq!(m.report(), m_ref.report(), "len={len} case={case}");
            }
        }
    }

    #[test]
    fn flat_scan_matches_collectives_scan() {
        let mut rng = StdRng::seed_from_u64(9);
        for len in [2usize, 7, 64, 500] {
            let values: Vec<u64> = (0..len).map(|_| rng.gen_range(0..3)).collect();
            let m_ref = Machine::on_curve(CurveKind::Hilbert, len as u32);
            let expect = collectives::exclusive_prefix_sum(&m_ref, &values, 0, &|a, b| a + b);

            let m = Machine::on_curve(CurveKind::Hilbert, len as u32);
            let levels = scan_levels(&m, len);
            let mut buf = values.clone();
            buf.resize(len.next_power_of_two(), 0);
            let mut scratch = LocalChargeScratch::new();
            let mut lc = m.begin_local_charge(&mut scratch);
            run_scan(&mut lc, &mut buf, &levels);
            lc.commit();

            assert_eq!(&buf[..len], &expect[..], "len={len}");
            assert_eq!(m.report(), m_ref.report(), "len={len}");
        }
    }
}
