//! Spatial tree layouts (§III–IV of the paper).
//!
//! A [`Layout`] assigns every tree vertex a *slot* — a position along a
//! space-filling curve — and therefore a grid coordinate. The paper's
//! central construction is the **light-first layout**: vertices in
//! light-first order (children by increasing subtree size), lifted to the
//! grid by a distance-bound curve. Theorem 1 shows the parent→children
//! messaging kernel then costs `O(n)` energy; Theorem 2 extends this to
//! the Z-order curve.
//!
//! The crate provides:
//!
//! - [`layout::Layout`] with host-side constructors (light-first
//!   sequential and rayon fork-join, BFS, DFS, random — the latter two
//!   being the paper's counterexamples);
//! - [`quality`]: the messaging-kernel energy and per-edge distance
//!   metrics used by experiment E1;
//! - [`builder`]: the §IV *on-machine* pipeline that computes the layout
//!   with Euler tours, spatial list ranking, prefix-sum compaction and a
//!   sorting-network permutation, charging `O(n^{3/2})` energy and
//!   `O(log n)` depth w.h.p. (Theorem 4).

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod builder;
pub mod dynamic;
pub mod engine;
pub mod layout;
pub mod quality;
#[doc(hidden)]
pub mod reference;

pub use builder::{build_light_first_spatial, SpatialBuildReport};
pub use dynamic::{DynamicLayout, DynamicStats};
pub use engine::LayoutEngine;
pub use layout::{Layout, LayoutKind};
pub use quality::{
    edge_distance_stats, edge_distance_stats_with_points, edge_distance_stats_with_points_into,
    local_kernel_energy, local_kernel_energy_with_points, EdgeDistanceStats,
};
