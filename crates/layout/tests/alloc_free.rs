//! Counting-allocator proof that [`LayoutEngine::build_into`] performs
//! **zero heap allocation** after engine setup — the same harness as
//! the ranking and treefix engines' `alloc_free` tests.
//!
//! The gate opens after [`LayoutEngine::new`] and one warm-up build
//! (the first `begin_local_charge` session grows its scratch) and
//! closes before the results are inspected. This binary holds exactly
//! one live `#[test]` so no concurrent test can pollute the count.

use rand::prelude::*;
use spatial_layout::engine::LayoutEngine;
use spatial_model::CurveKind;
use spatial_tree::{generators, traversal};

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::count_allocations;

#[test]
fn build_into_does_not_allocate() {
    for (n, tree_seed) in [(256u32, 1u64), (1000, 2), (4097, 3)] {
        let tree = generators::uniform_random(n, &mut StdRng::seed_from_u64(tree_seed));
        let mut engine = LayoutEngine::new(&tree, CurveKind::Hilbert);
        let mut rng = StdRng::seed_from_u64(7);
        // One warm-up run: grows the LocalCharge scratch to the dart
        // machine's slot count.
        engine.build_into(&mut rng);

        // Two runs inside the gate: a fresh seed and a reused one —
        // both must be clean.
        let (reports, allocs) = count_allocations(|| {
            let r1 = engine.build_into(&mut rng);
            let r2 = engine.build_into(&mut rng);
            (r1, r2)
        });
        assert_eq!(
            engine.order(),
            &traversal::light_first_order(&tree)[..],
            "n = {n}: wrong layout"
        );
        assert!(reports.0.total().energy > 0 && reports.1.total().energy > 0);
        assert_eq!(
            allocs, 0,
            "n = {n}: build_into() allocated {allocs} times after setup"
        );
    }
}
