//! Property tests for the [`DynamicLayout`] amortization claims:
//!
//! - the **total insertion-stream energy** stays within the `O(c)`
//!   factor of the always-fresh light-first layouts (the module's
//!   headline bound), and the per-insert invariant
//!   `energy ≤ c · baseline` holds after every quality check;
//! - **rebuild counts** match the logarithmic amortization: a few per
//!   capacity doubling per `log_c` of energy growth, scaling *down* as
//!   the tolerance factor grows.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_layout::{local_kernel_energy, DynamicLayout, Layout};
use spatial_model::CurveKind;

/// Always-fresh oracle: kernel energy of a from-scratch light-first
/// layout of the dynamic layout's current tree.
fn fresh_energy(dl: &DynamicLayout) -> u64 {
    let tree = dl.tree();
    local_kernel_energy(&tree, &Layout::light_first(&tree, CurveKind::Hilbert)).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stream energy vs the always-fresh oracle: with rebuild factor
    /// `c`, the sum of per-insert energies stays within `1.5·c` of the
    /// summed fresh energies (measured headroom ≈ 2× over the observed
    /// ratio of ~0.7·c), and the post-check invariant holds throughout.
    #[test]
    fn prop_stream_energy_within_c_factor(
        base in spatial_tree::strategies::arb_tree_sized(2, 150),
        seed in 0u64..10_000,
        factor_i in 0usize..3,
    ) {
        let factor = [2.0f64, 4.0, 8.0][factor_i];
        let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, factor);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);

        let (mut stream_sum, mut fresh_sum) = (0u128, 0u128);
        for _ in 0..300 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
            let e = dl.current_energy();
            stream_sum += e as u128;
            fresh_sum += fresh_energy(&dl) as u128;
            // Post-check invariant: the threshold was enforced.
            prop_assert!(
                e as f64 <= factor * dl.stats().baseline_energy as f64,
                "energy {e} above c × baseline"
            );
        }
        let ratio = stream_sum as f64 / fresh_sum as f64;
        prop_assert!(
            ratio <= 1.5 * factor,
            "stream/fresh = {ratio:.2} above 1.5·c = {:.1}", 1.5 * factor
        );
        // The incremental counter still agrees with the O(n) oracle.
        prop_assert_eq!(dl.current_energy(), dl.recomputed_energy());
    }

    /// Rebuild counts: bounded by the logarithmic amortization formula
    /// (a constant per capacity doubling per log_c of fresh-energy
    /// growth), and strictly decreasing in the tolerance factor.
    #[test]
    fn prop_rebuild_count_logarithmic(
        base in spatial_tree::strategies::arb_tree_sized(2, 150),
        seed in 0u64..10_000,
    ) {
        let parents: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
            (base.n()..base.n() + 450).map(|n| rng.gen_range(0..n)).collect()
        };
        let run = |factor: f64| {
            let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, factor);
            let e0 = dl.stats().baseline_energy;
            for &p in &parents {
                dl.insert_leaf(p);
            }
            let ef = fresh_energy(&dl);
            (dl.stats().rebuilds, dl.stats().grows, e0, ef)
        };

        let (tight, grows, e0, ef) = run(2.0);
        let (loose, ..) = run(8.0);

        // Doublings (grows) and energy growth bound the rebuild count:
        // ≤ 4 rebuilds per (doubling + 1) per log_c(E_f/E_0) + 1 —
        // measured ~12 for this stream shape, asserted with 3× slack.
        let log_c = ((ef.max(1) as f64 / e0.max(1) as f64).ln() / 2.0f64.ln()).max(1.0);
        let bound = 4.0 * (grows as f64 + 1.0) * (log_c + 1.0);
        prop_assert!(
            (tight as f64) <= bound,
            "factor 2: {tight} rebuilds > bound {bound:.1} (grows={grows}, log_c={log_c:.2})"
        );
        prop_assert!(
            loose < tight.max(1),
            "factor 8 must rebuild less: {loose} vs {tight}"
        );
    }
}

/// Asserts two dynamic layouts are observably identical: same
/// placement, same incremental energy, same lifetime statistics (and
/// hence the same future rebuild/growth schedule).
fn assert_same_state(a: &DynamicLayout, b: &DynamicLayout, ctx: &str) {
    assert_eq!(a.n(), b.n(), "{ctx}: vertex count");
    assert_eq!(a.layout().order(), b.layout().order(), "{ctx}: order");
    assert_eq!(
        a.layout().capacity(),
        b.layout().capacity(),
        "{ctx}: capacity"
    );
    assert_eq!(a.reserved(), b.reserved(), "{ctx}: reserved");
    assert_eq!(a.current_energy(), b.current_energy(), "{ctx}: energy");
    assert_eq!(a.stats(), b.stats(), "{ctx}: stats");
}

/// Captures the persisted fields of a live layout and restores a twin
/// from them (the snapshot slab set, without the file format).
fn restore_twin(dl: &DynamicLayout) -> DynamicLayout {
    DynamicLayout::restore(
        dl.root(),
        dl.parents().to_vec(),
        dl.curve_kind(),
        dl.layout().order().to_vec(),
        dl.reserved(),
        dl.rebuild_factor(),
        dl.stats(),
    )
}

/// The capacity-doubling boundary: an append landing exactly on
/// `reserved` is what triggers the growth — the slot `reserved - 1` is
/// still a plain O(1) tail placement.
#[test]
fn append_exactly_on_reserved_boundary_grows_once() {
    // n = 2 seeds the minimum reserve of 4.
    let base = spatial_tree::generators::path(2);
    let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, f64::INFINITY);
    assert_eq!(dl.reserved(), 4);
    // Two appends fill the curve to exactly `reserved` vertices
    // without growing.
    dl.insert_leaf(0);
    dl.insert_leaf(1);
    assert_eq!(dl.n() as u64, dl.reserved());
    assert_eq!(dl.stats().grows, 0, "filling the reserve must not grow");
    assert_eq!(dl.current_energy(), dl.recomputed_energy());
    // The next append lands on the boundary: one doubling, then the
    // placement proceeds as usual.
    dl.insert_leaf(3);
    assert_eq!(dl.stats().grows, 1, "the boundary append grows once");
    assert_eq!(dl.n(), 5);
    assert_eq!(
        dl.reserved(),
        8,
        "reserve doubles from the pre-append count"
    );
    assert_eq!(dl.current_energy(), dl.recomputed_energy());
    // Every vertex still occupies a unique slot on the doubled curve.
    let seen: std::collections::BTreeSet<u32> = (0..dl.n()).map(|v| dl.layout().slot(v)).collect();
    assert_eq!(seen.len(), dl.n() as usize);
}

/// The minimal n = 1 seed: the degenerate single-vertex tree reserves
/// the floor of 4 slots and grows through the same boundary logic.
#[test]
fn single_vertex_seed_grows_through_boundaries() {
    let base = spatial_tree::Tree::from_parents(0, vec![spatial_tree::NIL]);
    let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, 2.0);
    assert_eq!(dl.reserved(), 4);
    for i in 0..20 {
        let v = dl.insert_leaf(i % dl.n());
        assert_eq!(v, i + 1);
    }
    assert_eq!(dl.n(), 21);
    // 4 → 8 → 16 → 32: three boundary crossings.
    assert_eq!(dl.stats().grows, 3);
    assert_eq!(dl.current_energy(), dl.recomputed_energy());
    assert_eq!(dl.stats().insertions, 20);
}

/// Restore from captured slabs is bit-identical — including the future
/// schedule: a shared continuation stream drives the live instance and
/// its restored twin through the same rebuilds and growths.
#[test]
fn restore_roundtrip_pins_the_future_schedule() {
    let base = spatial_tree::generators::uniform_random(20, &mut StdRng::seed_from_u64(40));
    let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, 2.0);
    let mut rng = StdRng::seed_from_u64(41);
    // Drive past at least one growth so the captured state is
    // mid-lifetime, not pristine.
    for _ in 0..60 {
        let p = rng.gen_range(0..dl.n());
        dl.insert_leaf(p);
    }
    assert!(dl.stats().grows >= 1, "stream must cross a growth");
    let mut twin = restore_twin(&dl);
    assert_same_state(&dl, &twin, "immediately after restore");
    // The continuation stream (crossing another growth) stays locked.
    for i in 0..120 {
        let p = rng.gen_range(0..dl.n());
        dl.insert_leaf(p);
        twin.insert_leaf(p);
        assert_same_state(&dl, &twin, &format!("continuation insert {i}"));
    }
    assert!(dl.stats().grows >= 2, "continuation must cross a growth");
}

/// The journaled path: the insert stream is recorded in a store
/// journal while the live layout applies it; replaying the journal
/// into a restored twin — including with a torn tail cut mid-record —
/// recovers bit-identical state across a capacity growth event.
#[test]
fn journaled_replay_across_growth_is_bit_identical() {
    use spatial_store::{parse_journal, read_journal, JournalWriter, Record, RECORD_BYTES};

    let base = spatial_tree::generators::uniform_random(12, &mut StdRng::seed_from_u64(7));
    let mut live = DynamicLayout::new(&base, CurveKind::Hilbert, 2.0);
    // Snapshot slabs at time zero (before any journaled insert).
    let snap = (
        live.root(),
        live.parents().to_vec(),
        live.curve_kind(),
        live.layout().order().to_vec(),
        live.reserved(),
        live.rebuild_factor(),
        live.stats(),
    );
    let path = std::env::temp_dir().join(format!(
        "spatial-layout-journal-growth-{}",
        std::process::id()
    ));
    let mut journal = JournalWriter::create(&path).expect("create journal");
    let mut rng = StdRng::seed_from_u64(8);
    // 48 inserts from n = 12 (reserved 24) cross the doubling at least
    // once; write-ahead, then apply.
    for _ in 0..48 {
        let p = rng.gen_range(0..live.n());
        journal
            .append(Record::InsertLeaf {
                parent: p,
                weight: 1,
            })
            .expect("append");
        live.insert_leaf(p);
    }
    journal.sync().expect("sync");
    assert!(live.stats().grows >= 1, "stream must cross a growth");

    let restore = |records: &[Record]| {
        let (root, parents, curve, order, reserved, factor, stats) = snap.clone();
        let mut twin = DynamicLayout::restore(root, parents, curve, order, reserved, factor, stats);
        for rec in records {
            match *rec {
                Record::InsertLeaf { parent, .. } => {
                    twin.insert_leaf(parent);
                }
                _ => panic!("unexpected record {rec:?}"),
            }
        }
        twin
    };

    // Full replay lands exactly on the live state.
    let full = read_journal(&path).expect("read journal");
    assert_eq!(full.len(), 48);
    assert_same_state(&live, &restore(&full), "full replay");

    // Torn tails: cut the journal bytes mid-record at several offsets
    // (including mid-growth territory); the replayed prefix must match
    // a live twin that applied exactly the surviving records.
    let bytes = std::fs::read(&path).expect("journal bytes");
    for cut in [
        0,
        RECORD_BYTES - 1,
        10 * RECORD_BYTES + 13,
        30 * RECORD_BYTES + 1,
        bytes.len() - 1,
    ] {
        let prefix = parse_journal(&bytes[..cut]);
        assert_eq!(prefix.len(), cut / RECORD_BYTES, "cut {cut}");
        let replayed = restore(&prefix);
        let straight = restore(&full[..prefix.len()]);
        assert_same_state(&straight, &replayed, &format!("torn cut {cut}"));
    }
    std::fs::remove_file(&path).ok();
}
