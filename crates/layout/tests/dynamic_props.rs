//! Property tests for the [`DynamicLayout`] amortization claims:
//!
//! - the **total insertion-stream energy** stays within the `O(c)`
//!   factor of the always-fresh light-first layouts (the module's
//!   headline bound), and the per-insert invariant
//!   `energy ≤ c · baseline` holds after every quality check;
//! - **rebuild counts** match the logarithmic amortization: a few per
//!   capacity doubling per `log_c` of energy growth, scaling *down* as
//!   the tolerance factor grows.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_layout::{local_kernel_energy, DynamicLayout, Layout};
use spatial_model::CurveKind;

/// Always-fresh oracle: kernel energy of a from-scratch light-first
/// layout of the dynamic layout's current tree.
fn fresh_energy(dl: &DynamicLayout) -> u64 {
    let tree = dl.tree();
    local_kernel_energy(&tree, &Layout::light_first(&tree, CurveKind::Hilbert)).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stream energy vs the always-fresh oracle: with rebuild factor
    /// `c`, the sum of per-insert energies stays within `1.5·c` of the
    /// summed fresh energies (measured headroom ≈ 2× over the observed
    /// ratio of ~0.7·c), and the post-check invariant holds throughout.
    #[test]
    fn prop_stream_energy_within_c_factor(
        base in spatial_tree::strategies::arb_tree_sized(2, 150),
        seed in 0u64..10_000,
        factor_i in 0usize..3,
    ) {
        let factor = [2.0f64, 4.0, 8.0][factor_i];
        let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, factor);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);

        let (mut stream_sum, mut fresh_sum) = (0u128, 0u128);
        for _ in 0..300 {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
            let e = dl.current_energy();
            stream_sum += e as u128;
            fresh_sum += fresh_energy(&dl) as u128;
            // Post-check invariant: the threshold was enforced.
            prop_assert!(
                e as f64 <= factor * dl.stats().baseline_energy as f64,
                "energy {e} above c × baseline"
            );
        }
        let ratio = stream_sum as f64 / fresh_sum as f64;
        prop_assert!(
            ratio <= 1.5 * factor,
            "stream/fresh = {ratio:.2} above 1.5·c = {:.1}", 1.5 * factor
        );
        // The incremental counter still agrees with the O(n) oracle.
        prop_assert_eq!(dl.current_energy(), dl.recomputed_energy());
    }

    /// Rebuild counts: bounded by the logarithmic amortization formula
    /// (a constant per capacity doubling per log_c of fresh-energy
    /// growth), and strictly decreasing in the tolerance factor.
    #[test]
    fn prop_rebuild_count_logarithmic(
        base in spatial_tree::strategies::arb_tree_sized(2, 150),
        seed in 0u64..10_000,
    ) {
        let parents: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
            (base.n()..base.n() + 450).map(|n| rng.gen_range(0..n)).collect()
        };
        let run = |factor: f64| {
            let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, factor);
            let e0 = dl.stats().baseline_energy;
            for &p in &parents {
                dl.insert_leaf(p);
            }
            let ef = fresh_energy(&dl);
            (dl.stats().rebuilds, dl.stats().grows, e0, ef)
        };

        let (tight, grows, e0, ef) = run(2.0);
        let (loose, ..) = run(8.0);

        // Doublings (grows) and energy growth bound the rebuild count:
        // ≤ 4 rebuilds per (doubling + 1) per log_c(E_f/E_0) + 1 —
        // measured ~12 for this stream shape, asserted with 3× slack.
        let log_c = ((ef.max(1) as f64 / e0.max(1) as f64).ln() / 2.0f64.ln()).max(1.0);
        let bound = 4.0 * (grows as f64 + 1.0) * (log_c + 1.0);
        prop_assert!(
            (tight as f64) <= bound,
            "factor 2: {tight} rebuilds > bound {bound:.1} (grows={grows}, log_c={log_c:.2})"
        );
        prop_assert!(
            loose < tight.max(1),
            "factor 8 must rebuild less: {loose} vs {tight}"
        );
    }
}
