//! Counting-allocator proof of the [`DynamicLayout`] steady-state
//! zero-allocation claim: once the reserved capacity covers the stream
//! (and the first rebuild has warmed the retained scratch), leaf
//! appends, threshold rebuilds, forced rebuilds, and batched inserts
//! perform **no heap allocation**. Only capacity growth — amortized
//! over the doubling — may allocate.
//!
//! Shared harness with `alloc_free.rs`; exactly one live `#[test]` per
//! binary so no concurrent test pollutes the count.

use rand::prelude::*;
use spatial_layout::DynamicLayout;
use spatial_model::CurveKind;
use spatial_tree::generators;

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::count_allocations;

#[test]
fn steady_state_inserts_and_rebuilds_do_not_allocate() {
    let tree = generators::uniform_random(600, &mut StdRng::seed_from_u64(1));
    // Tight factor: the gated stream triggers real threshold rebuilds.
    let mut dl = DynamicLayout::new(&tree, CurveKind::Hilbert, 2.0);
    let mut rng = StdRng::seed_from_u64(2);

    // Warm-up: one rebuild primes the retained scratch; the reserved
    // capacity (2 × 600) already covers the gated stream below.
    dl.rebuild();
    let rebuilds_before = dl.stats().rebuilds;

    let batch: Vec<u32> = (0..50).map(|_| rng.gen_range(0..dl.n())).collect();
    let stream: Vec<u32> = (0..400).map(|i| rng.gen_range(0..dl.n() + i)).collect();

    let ((), allocs) = count_allocations(|| {
        for &p in &stream {
            dl.insert_leaf(p);
        }
        dl.insert_leaves(&batch);
        dl.rebuild();
    });

    assert_eq!(dl.n(), 600 + 400 + 50);
    assert_eq!(dl.stats().grows, 0, "stream must fit the reserved tail");
    assert!(
        dl.stats().rebuilds > rebuilds_before,
        "the gated stream should have rebuilt at least once"
    );
    assert_eq!(dl.current_energy(), dl.recomputed_energy());
    assert_eq!(
        allocs, 0,
        "steady-state inserts/rebuilds allocated {allocs} times"
    );
}
