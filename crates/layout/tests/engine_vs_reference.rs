//! Differential suite pinning the flat-array [`LayoutEngine`] to the
//! retained seed build: identical layouts, per-phase cost reports,
//! ranking rounds, and messaging-kernel energies on arbitrary trees,
//! curves, and seeds.

use rand::prelude::*;
use spatial_layout::engine::LayoutEngine;
use spatial_layout::reference::build_light_first_spatial_reference;
use spatial_layout::{build_light_first_spatial, local_kernel_energy};
use spatial_sfc::CurveKind;
use spatial_tree::{generators, Tree};

fn test_trees() -> Vec<(String, Tree)> {
    let mut rng = StdRng::seed_from_u64(42);
    vec![
        (
            "uniform_random_500".into(),
            generators::uniform_random(500, &mut rng),
        ),
        ("comb_257".into(), generators::comb(257)),
        ("star_100".into(), generators::star(100)),
        ("path_64".into(), generators::path(64)),
        ("perfect_binary_6".into(), generators::perfect_kary(2, 6)),
        (
            "random_binary_800".into(),
            generators::random_binary(800, &mut rng),
        ),
        (
            "pref_attach_300".into(),
            generators::preferential_attachment(300, &mut rng),
        ),
        (
            "two_vertices".into(),
            Tree::from_parents(0, vec![spatial_tree::NIL, 0]),
        ),
        (
            "single_vertex".into(),
            Tree::from_parents(0, vec![spatial_tree::NIL]),
        ),
    ]
}

/// The core pin: for every tree × curve × seed, the engine and the
/// seed reference produce the same layout, the same per-phase
/// `CostReport`s, the same ranking rounds, and the same kernel energy.
#[test]
fn engine_is_charge_identical_to_reference() {
    for (name, tree) in test_trees() {
        for curve in CurveKind::ENERGY_BOUND {
            let mut engine = LayoutEngine::new(&tree, curve);
            for seed in [1u64, 7, 1234] {
                let (ref_layout, ref_report) = build_light_first_spatial_reference(
                    &tree,
                    curve,
                    &mut StdRng::seed_from_u64(seed),
                );
                let (layout, report) = engine.build(&mut StdRng::seed_from_u64(seed));

                let ctx = format!("{name} curve={curve} seed={seed}");
                assert_eq!(layout.order(), ref_layout.order(), "layout: {ctx}");
                assert_eq!(
                    report.sizes_phase, ref_report.sizes_phase,
                    "sizes phase: {ctx}"
                );
                assert_eq!(
                    report.order_phase, ref_report.order_phase,
                    "order phase: {ctx}"
                );
                assert_eq!(
                    report.permute_phase, ref_report.permute_phase,
                    "permute phase: {ctx}"
                );
                assert_eq!(
                    report.ranking_rounds, ref_report.ranking_rounds,
                    "rounds: {ctx}"
                );
                assert_eq!(
                    local_kernel_energy(&tree, &layout),
                    local_kernel_energy(&tree, &ref_layout),
                    "kernel energy: {ctx}"
                );
            }
        }
    }
}

/// The one-shot facade goes through the engine; it must stay pinned to
/// the reference as well.
#[test]
fn facade_matches_reference() {
    let mut rng = StdRng::seed_from_u64(3);
    let tree = generators::uniform_random(700, &mut rng);
    let (a, ra) =
        build_light_first_spatial(&tree, CurveKind::Hilbert, &mut StdRng::seed_from_u64(5));
    let (b, rb) = build_light_first_spatial_reference(
        &tree,
        CurveKind::Hilbert,
        &mut StdRng::seed_from_u64(5),
    );
    assert_eq!(a.order(), b.order());
    assert_eq!(ra.total(), rb.total());
}

/// Larger smoke: one bigger random tree, Hilbert only, single seed —
/// catches size-dependent divergence (padding boundaries, u32 packing).
#[test]
fn engine_matches_reference_at_scale() {
    let mut rng = StdRng::seed_from_u64(8);
    // 4097 crosses a power-of-two padding boundary on both machines.
    let tree = generators::uniform_random(4097, &mut rng);
    let mut engine = LayoutEngine::new(&tree, CurveKind::Hilbert);
    let (layout, report) = engine.build(&mut StdRng::seed_from_u64(21));
    let (ref_layout, ref_report) = build_light_first_spatial_reference(
        &tree,
        CurveKind::Hilbert,
        &mut StdRng::seed_from_u64(21),
    );
    assert_eq!(layout.order(), ref_layout.order());
    assert_eq!(report.sizes_phase, ref_report.sizes_phase);
    assert_eq!(report.order_phase, ref_report.order_phase);
    assert_eq!(report.permute_phase, ref_report.permute_phase);
}
