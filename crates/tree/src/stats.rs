//! Summary statistics over trees, used by the experiment tables.

use crate::tree::Tree;

/// Shape statistics of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of vertices.
    pub n: u32,
    /// Height (maximum depth).
    pub height: u32,
    /// Maximum degree `Δ` (children + parent).
    pub max_degree: u32,
    /// Number of leaves.
    pub leaves: u32,
    /// Mean vertex depth.
    pub mean_depth: f64,
}

impl TreeStats {
    /// Computes all statistics in one pass over the tree.
    pub fn of(tree: &Tree) -> Self {
        let depths = tree.depths();
        let n = tree.n();
        let leaves = tree.vertices().filter(|&v| tree.is_leaf(v)).count() as u32;
        TreeStats {
            n,
            height: depths.iter().copied().max().unwrap_or(0),
            max_degree: tree.max_degree(),
            leaves,
            mean_depth: depths.iter().map(|&d| d as f64).sum::<f64>() / n as f64,
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} height={} Δ={} leaves={} mean_depth={:.2}",
            self.n, self.height, self.max_degree, self.leaves, self.mean_depth
        )
    }
}

/// Histogram of child counts: `histogram[d]` = number of vertices with
/// exactly `d` children (truncated at the maximum occurring count).
pub fn child_count_histogram(tree: &Tree) -> Vec<u32> {
    let max = tree
        .vertices()
        .map(|v| tree.num_children(v))
        .max()
        .unwrap_or(0) as usize;
    let mut hist = vec![0u32; max + 1];
    for v in tree.vertices() {
        hist[tree.num_children(v) as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_star() {
        let s = TreeStats::of(&generators::star(10));
        assert_eq!(s.n, 10);
        assert_eq!(s.height, 1);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.leaves, 9);
        assert!((s.mean_depth - 0.9).abs() < 1e-12);
    }

    #[test]
    fn stats_of_path() {
        let s = TreeStats::of(&generators::path(4));
        assert_eq!(s.height, 3);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_depth - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_children() {
        let t = generators::perfect_kary(2, 2); // 7 vertices
        let h = child_count_histogram(&t);
        assert_eq!(h, vec![4, 0, 3]); // 4 leaves, 3 internal with 2 kids
    }

    #[test]
    fn display_formats() {
        let s = TreeStats::of(&generators::path(2));
        assert!(s.to_string().contains("n=2"));
    }
}
