//! Tree traversal orders: BFS, DFS, and the paper's light-first order.
//!
//! §III-A defines *light-first order*: a depth-first order in which each
//! vertex's children are visited in increasing order of subtree size.
//! Stored on a distance-bound space-filling curve, it makes parent→child
//! messaging energy linear (Theorem 1). BFS and DFS orders are provided
//! as the adversarial baselines the paper calls out: a perfect binary
//! tree in BFS order has `Ω(√n)` average neighbour distance, and a comb
//! in (arbitrary-child-order) DFS order fares similarly.
//!
//! Both a sequential and a rayon fork-join light-first construction are
//! provided; the fork-join version is the "low depth ⇒ real CPU
//! parallelism" demonstration and recursively splits the output slice
//! between children, so it is safe without any atomics.

use crate::tree::{NodeId, Tree};
use rayon::prelude::*;

/// Breadth-first order starting at the root, children in construction
/// order. The returned vector lists vertices in visit order.
pub fn bfs_order(tree: &Tree) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.n() as usize);
    let mut head = 0usize;
    order.push(tree.root());
    while head < order.len() {
        let v = order[head];
        head += 1;
        order.extend_from_slice(tree.children(v));
    }
    order
}

/// Iterative depth-first preorder, children in construction order.
pub fn dfs_preorder(tree: &Tree) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.n() as usize);
    let mut stack = vec![tree.root()];
    while let Some(v) = stack.pop() {
        order.push(v);
        // Push children reversed so the first child is visited first.
        for &c in tree.children(v).iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Children of every vertex sorted by increasing subtree size (ties by
/// vertex id, for determinism). This is the child order that defines
/// light-first order; the largest ("heavy") child comes last.
pub fn children_by_size(tree: &Tree, sizes: &[u32]) -> Vec<Vec<NodeId>> {
    (0..tree.n())
        .map(|v| {
            let mut cs: Vec<NodeId> = tree.children(v).to_vec();
            cs.sort_by_key(|&c| (sizes[c as usize], c));
            cs
        })
        .collect()
}

/// Flat (CSR) per-vertex child lists: two arrays instead of `n`
/// separately heap-allocated `Vec`s. Vertex `v`'s children occupy
/// `children[offsets[v] .. offsets[v + 1]]`. This is the arena
/// representation the contraction engine and the Euler tours consume —
/// one allocation, cache-contiguous, cheap to iterate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildrenCsr {
    offsets: Vec<u32>,
    children: Vec<NodeId>,
}

impl ChildrenCsr {
    /// Builds the CSR lists with each vertex's children in the given
    /// order-defining key order: increasing `(sizes[c], c)` —
    /// light-first child order.
    pub fn by_size(tree: &Tree, sizes: &[u32]) -> Self {
        let n = tree.n() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        let mut buf: Vec<NodeId> = Vec::new();
        for v in tree.vertices() {
            offsets.push(children.len() as u32);
            buf.clear();
            buf.extend_from_slice(tree.children(v));
            buf.sort_by_key(|&c| (sizes[c as usize], c));
            children.extend_from_slice(&buf);
        }
        offsets.push(children.len() as u32);
        ChildrenCsr { offsets, children }
    }

    /// Builds the CSR lists in tree construction (natural) order.
    pub fn natural(tree: &Tree) -> Self {
        let n = tree.n() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        for v in tree.vertices() {
            offsets.push(children.len() as u32);
            children.extend_from_slice(tree.children(v));
        }
        offsets.push(children.len() as u32);
        ChildrenCsr { offsets, children }
    }

    /// The children of `v`, in the order the structure was built with.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Number of children of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Number of vertices covered.
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// The flat child array (all vertices' lists back to back).
    pub fn flat_children(&self) -> &[NodeId] {
        &self.children
    }

    /// The per-vertex offsets into [`ChildrenCsr::flat_children`]
    /// (`n + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

/// Light-first order (§III-A): DFS preorder visiting children in
/// increasing subtree size. Sequential, iterative.
pub fn light_first_order(tree: &Tree) -> Vec<NodeId> {
    let sizes = tree.subtree_sizes();
    light_first_order_with_sizes(tree, &sizes)
}

/// Light-first order given precomputed subtree sizes.
pub fn light_first_order_with_sizes(tree: &Tree, sizes: &[u32]) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.n() as usize);
    let mut stack = vec![tree.root()];
    // Children are sorted on demand to avoid materializing all lists.
    let mut buf: Vec<NodeId> = Vec::new();
    while let Some(v) = stack.pop() {
        order.push(v);
        buf.clear();
        buf.extend_from_slice(tree.children(v));
        buf.sort_by_key(|&c| (sizes[c as usize], c));
        // Reverse push: smallest child on top of the stack.
        for &c in buf.iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Heavy-first order: DFS preorder visiting children in *decreasing*
/// subtree size — the mirror image of light-first, used as an ablation
/// control (it lacks light-first's "small subtrees stay near their
/// parent" property, so Theorem 1's recursion does not apply).
pub fn heavy_first_order(tree: &Tree) -> Vec<NodeId> {
    let sizes = tree.subtree_sizes();
    let mut order = Vec::with_capacity(tree.n() as usize);
    let mut stack = vec![tree.root()];
    let mut buf: Vec<NodeId> = Vec::new();
    while let Some(v) = stack.pop() {
        order.push(v);
        buf.clear();
        buf.extend_from_slice(tree.children(v));
        // Reverse of light-first: largest subtree first.
        buf.sort_by_key(|&c| std::cmp::Reverse((sizes[c as usize], c)));
        for &c in buf.iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Rayon fork-join light-first order: the output slice is recursively
/// split between children, mirroring the spatial algorithm's low depth.
pub fn light_first_order_par(tree: &Tree) -> Vec<NodeId> {
    let sizes = subtree_sizes_par(tree);
    light_first_order_par_with_sizes(tree, &sizes)
}

/// Parallel light-first order given precomputed subtree sizes.
pub fn light_first_order_par_with_sizes(tree: &Tree, sizes: &[u32]) -> Vec<NodeId> {
    let n = tree.n() as usize;
    let mut order = vec![0 as NodeId; n];
    assign_subtree(tree, sizes, tree.root(), &mut order);
    order
}

/// Sequential cutoff for the fork-join recursion: subtrees smaller than
/// this are laid out without spawning.
const SEQ_CUTOFF: u32 = 1 << 11;

fn assign_subtree(tree: &Tree, sizes: &[u32], v: NodeId, out: &mut [NodeId]) {
    debug_assert_eq!(out.len(), sizes[v as usize] as usize);
    // Spawned light subtrees have at most half their parent's size, so
    // the *recursion* nests at most log₂(n) scopes; the heavy chain is
    // followed iteratively so path-shaped trees cannot blow the stack.
    rayon::scope(|s| {
        let mut v = v;
        let mut out = out;
        loop {
            if sizes[v as usize] <= SEQ_CUTOFF {
                assign_subtree_seq(tree, sizes, v, out);
                return;
            }
            let (head, mut rest) = out.split_first_mut().expect("subtree size ≥ 1");
            *head = v;
            let mut cs: Vec<NodeId> = tree.children(v).to_vec();
            cs.sort_by_key(|&c| (sizes[c as usize], c));
            let Some((&heavy, light)) = cs.split_last() else {
                return;
            };
            for &c in light {
                let (chunk, tail) = rest.split_at_mut(sizes[c as usize] as usize);
                rest = tail;
                s.spawn(move |_| assign_subtree(tree, sizes, c, chunk));
            }
            v = heavy;
            out = rest;
        }
    });
}

fn assign_subtree_seq(tree: &Tree, sizes: &[u32], v: NodeId, out: &mut [NodeId]) {
    // Iterative: stack of (vertex, offset into out).
    let mut stack: Vec<(NodeId, usize)> = vec![(v, 0)];
    let mut buf: Vec<NodeId> = Vec::new();
    while let Some((u, at)) = stack.pop() {
        out[at] = u;
        buf.clear();
        buf.extend_from_slice(tree.children(u));
        buf.sort_by_key(|&c| (sizes[c as usize], c));
        let mut off = at + 1;
        for &c in buf.iter() {
            stack.push((c, off));
            off += sizes[c as usize] as usize;
        }
    }
}

/// Parallel subtree sizes: processes BFS levels bottom-up, each level in
/// parallel. Equivalent to [`Tree::subtree_sizes`].
pub fn subtree_sizes_par(tree: &Tree) -> Vec<u32> {
    let n = tree.n() as usize;
    let depths = tree.depths();
    let max_depth = depths.iter().copied().max().unwrap_or(0) as usize;
    // Bucket vertices by depth.
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); max_depth + 1];
    for v in 0..n {
        levels[depths[v] as usize].push(v as NodeId);
    }
    let mut sizes = vec![1u32; n];
    for level in levels.iter().rev() {
        let computed: Vec<(NodeId, u32)> = level
            .par_iter()
            .map(|&v| {
                let s = 1 + tree
                    .children(v)
                    .iter()
                    .map(|&c| sizes[c as usize])
                    .sum::<u32>();
                (v, s)
            })
            .collect();
        for (v, s) in computed {
            sizes[v as usize] = s;
        }
    }
    sizes
}

/// Inverse of an order: `positions[v]` is the index of vertex `v`.
pub fn positions_of(order: &[NodeId]) -> Vec<u32> {
    let mut pos = vec![0u32; order.len()];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    pos
}

/// Checks the defining property of light-first order (§III-A): every
/// vertex `v` at position `p` has its `i`-th-smallest child at position
/// `1 + p + Σ_{j<i} s(c_j)`. Returns the first violating vertex.
pub fn verify_light_first(tree: &Tree, order: &[NodeId]) -> Result<(), NodeId> {
    let sizes = tree.subtree_sizes();
    let pos = positions_of(order);
    for v in tree.vertices() {
        let mut cs: Vec<NodeId> = tree.children(v).to_vec();
        cs.sort_by_key(|&c| (sizes[c as usize], c));
        let mut expected = pos[v as usize] + 1;
        for &c in &cs {
            if pos[c as usize] != expected {
                return Err(v);
            }
            expected += sizes[c as usize];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::tree::{Tree, NIL};
    use rand::prelude::*;

    fn sample_tree() -> Tree {
        Tree::from_parents(0, vec![NIL, 0, 0, 0, 1, 1, 3, 6])
    }

    #[test]
    fn bfs_order_levels() {
        let t = sample_tree();
        assert_eq!(bfs_order(&t), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn dfs_preorder_first_child_first() {
        let t = sample_tree();
        assert_eq!(dfs_preorder(&t), vec![0, 1, 4, 5, 2, 3, 6, 7]);
    }

    #[test]
    fn light_first_smallest_subtree_first() {
        let t = sample_tree();
        // Subtree sizes: 0→8, 1→3, 2→1, 3→3, 4,5→1, 6→2, 7→1.
        // Root children sorted: 2 (1), then 1 (3, id 1), then 3 (3, id 3).
        let order = light_first_order(&t);
        assert_eq!(order, vec![0, 2, 1, 4, 5, 3, 6, 7]);
        assert_eq!(verify_light_first(&t, &order), Ok(()));
    }

    #[test]
    fn heavy_first_mirrors_light_first() {
        let t = sample_tree();
        // Root children by decreasing (size, id): 3 (3), 1 (3), 2 (1).
        let order = heavy_first_order(&t);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 3, "heaviest child first");
        assert_eq!(*order.last().unwrap(), 2, "lightest child last");
        // Same vertex set as light-first.
        let mut a = order.clone();
        let mut b = light_first_order(&t);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn light_first_property_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2u32, 3, 10, 100, 1000] {
            let t = generators::uniform_random(n, &mut rng);
            let order = light_first_order(&t);
            assert_eq!(verify_light_first(&t, &order), Ok(()), "n={n}");
        }
    }

    #[test]
    fn verify_rejects_wrong_order() {
        let t = sample_tree();
        let bfs = bfs_order(&t);
        assert!(verify_light_first(&t, &bfs).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1u32, 2, 50, 500, 5000, 50_000] {
            let t = generators::uniform_random(n, &mut rng);
            assert_eq!(
                light_first_order(&t),
                light_first_order_par(&t),
                "light-first mismatch at n={n}"
            );
        }
    }

    #[test]
    fn parallel_sizes_match() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1u32, 7, 333, 4096] {
            let t = generators::preferential_attachment(n, &mut rng);
            assert_eq!(t.subtree_sizes(), subtree_sizes_par(&t), "n={n}");
        }
    }

    #[test]
    fn parallel_on_path_does_not_overflow() {
        // Deep recursion guard: a path of 200k vertices.
        let t = generators::path(200_000);
        let order = light_first_order_par(&t);
        assert_eq!(order.len(), 200_000);
        assert_eq!(verify_light_first(&t, &order), Ok(()));
    }

    #[test]
    fn positions_invert_order() {
        let t = sample_tree();
        let order = light_first_order(&t);
        let pos = positions_of(&order);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn children_by_size_sorted() {
        let t = sample_tree();
        let sizes = t.subtree_sizes();
        let sorted = children_by_size(&t, &sizes);
        assert_eq!(sorted[0], vec![2, 1, 3]);
        assert_eq!(sorted[1], vec![4, 5]);
    }

    #[test]
    fn csr_matches_nested_lists() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1u32, 2, 8, 100, 1000] {
            let t = generators::uniform_random(n, &mut rng);
            let sizes = t.subtree_sizes();
            let nested = children_by_size(&t, &sizes);
            let csr = ChildrenCsr::by_size(&t, &sizes);
            assert_eq!(csr.n(), n);
            for v in t.vertices() {
                assert_eq!(csr.children(v), &nested[v as usize][..], "n={n} v={v}");
                assert_eq!(csr.degree(v) as usize, nested[v as usize].len());
            }
            let natural = ChildrenCsr::natural(&t);
            for v in t.vertices() {
                assert_eq!(natural.children(v), t.children(v));
            }
        }
    }
}
