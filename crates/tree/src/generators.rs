//! Tree generators: every family used by the paper's arguments and the
//! experiment harness.
//!
//! - [`perfect_kary`]: the BFS-layout adversary of §III ("a perfect
//!   binary tree will have a breadth-first layout where the average
//!   distance between neighbors is Ω(√n)").
//! - [`comb`]: the DFS-layout adversary ("a tree formed by adding an
//!   additional vertex as a child of each vertex in a path graph").
//! - [`star`], [`broom`]: unbounded-degree stress tests for the virtual
//!   tree construction of §III-D.
//! - [`uniform_random`]: uniformly random labelled trees via Prüfer
//!   sequences (unbounded degree, `Θ(log n / log log n)` max degree in
//!   expectation).
//! - [`random_recursive`], [`preferential_attachment`]: growth models;
//!   preferential attachment yields power-law degrees.
//! - [`random_binary`]: uniformly random binary search tree shape
//!   (bounded degree 3).
//! - [`yule`]: birth-process phylogenies — the paper's computational
//!   biology motivation.
//! - [`path`]: degenerate depth for worst-case traversal tests.

use crate::tree::{NodeId, Tree, NIL};
use rand::Rng;

/// Perfect `k`-ary tree of the given depth (`depth = 0` is a single
/// vertex). Vertices are numbered in BFS order.
///
/// # Panics
/// Panics when `k == 0`, or when the tree would exceed `u32` vertices.
pub fn perfect_kary(k: u32, depth: u32) -> Tree {
    assert!(k >= 1, "arity must be at least 1");
    // n = (k^(depth+1) - 1) / (k - 1) for k > 1, depth+1 for k = 1.
    let mut n: u64 = 1;
    let mut level: u64 = 1;
    for _ in 0..depth {
        level *= k as u64;
        n += level;
        assert!(n <= u32::MAX as u64, "tree too large");
    }
    let mut parent = vec![NIL; n as usize];
    for v in 1..n {
        parent[v as usize] = ((v - 1) / k as u64) as NodeId;
    }
    Tree::from_parents(0, parent)
}

/// Path graph: vertex `i` is the parent of `i + 1`.
pub fn path(n: u32) -> Tree {
    assert!(n >= 1);
    let mut parent = vec![NIL; n as usize];
    for v in 1..n {
        parent[v as usize] = v - 1;
    }
    Tree::from_parents(0, parent)
}

/// Star: the root is the parent of all other vertices (maximum degree
/// `n − 1`).
pub fn star(n: u32) -> Tree {
    assert!(n >= 1);
    let mut parent = vec![0 as NodeId; n as usize];
    parent[0] = NIL;
    Tree::from_parents(0, parent)
}

/// Comb (caterpillar): a path of `⌈n/2⌉` spine vertices, each spine
/// vertex with one extra leaf child. The DFS-order adversary of §III.
pub fn comb(n: u32) -> Tree {
    assert!(n >= 1);
    let spine = n.div_ceil(2);
    let mut parent = vec![NIL; n as usize];
    for v in 1..spine {
        parent[v as usize] = v - 1; // spine
    }
    for leaf in spine..n {
        parent[leaf as usize] = leaf - spine; // leaf under spine vertex
    }
    Tree::from_parents(0, parent)
}

/// Broom: a path handle of `handle` vertices whose last vertex is the
/// center of a star over the remaining `n − handle` vertices. Combines
/// depth with unbounded degree.
pub fn broom(n: u32, handle: u32) -> Tree {
    assert!(n >= 1 && handle >= 1 && handle <= n);
    let mut parent = vec![NIL; n as usize];
    for v in 1..handle {
        parent[v as usize] = v - 1;
    }
    for v in handle..n {
        parent[v as usize] = handle - 1;
    }
    Tree::from_parents(0, parent)
}

/// Uniformly random labelled tree on `n` vertices via a random Prüfer
/// sequence, rooted at vertex 0.
pub fn uniform_random<R: Rng>(n: u32, rng: &mut R) -> Tree {
    assert!(n >= 1);
    if n == 1 {
        return Tree::from_parents(0, vec![NIL]);
    }
    if n == 2 {
        return Tree::from_parents(0, vec![NIL, 0]);
    }
    let seq: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let edges = prufer_decode(n, &seq);
    Tree::from_edges(n, 0, &edges)
}

/// Decodes a Prüfer sequence into the `n − 1` edges of the tree.
pub fn prufer_decode(n: u32, seq: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    assert_eq!(seq.len() as u32, n - 2, "Prüfer sequence has n-2 entries");
    let mut degree = vec![1u32; n as usize];
    for &s in seq {
        degree[s as usize] += 1;
    }
    // `ptr` walks the vertices; `leaf` is the current smallest leaf.
    let mut edges = Vec::with_capacity(n as usize - 1);
    let mut ptr = 0u32;
    while degree[ptr as usize] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &s in seq {
        edges.push((leaf, s));
        degree[s as usize] -= 1;
        if degree[s as usize] == 1 && s < ptr {
            leaf = s;
        } else {
            ptr += 1;
            while degree[ptr as usize] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf, n - 1));
    edges
}

/// Random caterpillar: a spine of `⌈n/4⌉` vertices; every remaining
/// vertex is a leaf under a uniformly random spine vertex. Generalizes
/// the comb — the same spine-plus-leaves shape, but with irregular
/// bushels (expected 3 leaves per spine vertex, `Θ(log n / log log n)`
/// maximum).
pub fn caterpillar<R: Rng>(n: u32, rng: &mut R) -> Tree {
    assert!(n >= 1);
    let spine = n.div_ceil(4).max(1);
    let mut parent = vec![NIL; n as usize];
    for v in 1..spine {
        parent[v as usize] = v - 1;
    }
    for leaf in spine..n {
        parent[leaf as usize] = rng.gen_range(0..spine);
    }
    Tree::from_parents(0, parent)
}

/// Heavy-path adversary: the Fibonacci (Leonardo) tree of the given
/// order — every vertex's two subtrees are as balanced as they can be
/// while staying *distinct* in size, so the light child is as heavy as
/// possible everywhere. This maximizes the light depth (`≈ 1.44·log₂ n`
/// light edges root-to-leaf, vs `log₂ n` for any tree) and gives heavy
/// path decompositions their worst constant — the stress test for
/// light-first layouts and §VI-A layering.
///
/// `T(0) = T(1) =` a single vertex; `T(k) =` root with children
/// `T(k−1)` (heavy) and `T(k−2)` (light). Sizes are the Leonardo
/// numbers 1, 1, 3, 5, 9, 15, 25, 41, …
pub fn heavy_path_adversary(order: u32) -> Tree {
    // Vertices are numbered in construction (preorder) order.
    fn build(order: u32, parent: &mut Vec<NodeId>, at: NodeId) {
        if order <= 1 {
            return;
        }
        // Light child first (construction order is irrelevant to the
        // layouts — children get sorted by subtree size — but keeping
        // the light subtree contiguous makes the shape easy to read).
        let light = at + 1;
        parent.push(at);
        build(order - 2, parent, light);
        let heavy = parent.len() as NodeId;
        parent.push(at);
        build(order - 1, parent, heavy);
    }
    let mut parent = vec![NIL];
    build(order, &mut parent, 0);
    Tree::from_parents(0, parent)
}

/// Number of vertices of [`heavy_path_adversary`]`(order)` (the
/// Leonardo numbers).
pub fn heavy_path_adversary_size(order: u32) -> u64 {
    let (mut a, mut b) = (1u64, 1u64); // T(0), T(1)
    for _ in 2..=order.max(1) {
        let next = a + b + 1;
        a = b;
        b = next;
    }
    if order <= 1 {
        1
    } else {
        b
    }
}

/// Random recursive tree: vertex `i` attaches to a uniformly random
/// earlier vertex. Expected maximum degree `Θ(log n)`.
pub fn random_recursive<R: Rng>(n: u32, rng: &mut R) -> Tree {
    assert!(n >= 1);
    let mut parent = vec![NIL; n as usize];
    for v in 1..n {
        parent[v as usize] = rng.gen_range(0..v);
    }
    Tree::from_parents(0, parent)
}

/// Preferential attachment: vertex `i` attaches to an earlier vertex
/// with probability proportional to `degree + 1`, producing power-law
/// degrees (heavy unbounded-degree stress).
pub fn preferential_attachment<R: Rng>(n: u32, rng: &mut R) -> Tree {
    assert!(n >= 1);
    let mut parent = vec![NIL; n as usize];
    // Endpoint pool: every edge contributes both endpoints, plus each
    // vertex once, giving attachment probability ∝ degree + 1.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n as usize);
    pool.push(0);
    for v in 1..n {
        let p = pool[rng.gen_range(0..pool.len())];
        parent[v as usize] = p;
        pool.push(p);
        pool.push(v);
    }
    Tree::from_parents(0, parent)
}

/// Uniformly random binary tree shape on `n` vertices (≤ 2 children per
/// vertex): a random permutation inserted into an unbalanced BST. Max
/// degree 3, expected height `Θ(log n)`.
pub fn random_binary<R: Rng>(n: u32, rng: &mut R) -> Tree {
    assert!(n >= 1);
    // Insert a random permutation of keys 0..n into a BST; the resulting
    // shape (relabelled by insertion id) is our tree.
    let mut keys: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        keys.swap(i, rng.gen_range(0..=i));
    }
    // BST over keys with explicit arrays; vertex id = insertion order.
    let mut left = vec![NIL; n as usize];
    let mut right = vec![NIL; n as usize];
    let mut key_of = vec![0u32; n as usize];
    let mut parent = vec![NIL; n as usize];
    key_of[0] = keys[0];
    for (id, &key) in keys.iter().enumerate().skip(1) {
        let id = id as NodeId;
        key_of[id as usize] = key;
        let mut at = 0 as NodeId;
        loop {
            if key < key_of[at as usize] {
                if left[at as usize] == NIL {
                    left[at as usize] = id;
                    parent[id as usize] = at;
                    break;
                }
                at = left[at as usize];
            } else {
                if right[at as usize] == NIL {
                    right[at as usize] = id;
                    parent[id as usize] = at;
                    break;
                }
                at = right[at as usize];
            }
        }
    }
    Tree::from_parents(0, parent)
}

/// Yule (pure-birth) phylogeny with `leaves` extant species: repeatedly
/// split a uniformly random leaf into two children. Returns a binary
/// tree with `2·leaves − 1` vertices — the classic model for species
/// trees in computational biology.
pub fn yule<R: Rng>(leaves: u32, rng: &mut R) -> Tree {
    assert!(leaves >= 1);
    let n = 2 * leaves - 1;
    let mut parent = vec![NIL; n as usize];
    let mut frontier: Vec<NodeId> = vec![0];
    let mut next = 1 as NodeId;
    while (frontier.len() as u32) < leaves {
        let at = rng.gen_range(0..frontier.len());
        let v = frontier.swap_remove(at);
        parent[next as usize] = v;
        parent[next as usize + 1] = v;
        frontier.push(next);
        frontier.push(next + 1);
        next += 2;
    }
    Tree::from_parents(0, parent)
}

/// A named tree family, used by the experiment harness to sweep
/// workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFamily {
    /// Perfect binary tree (BFS adversary).
    PerfectBinary,
    /// Comb/caterpillar (DFS adversary).
    Comb,
    /// Random caterpillar (irregular leaf bushels on a spine).
    Caterpillar,
    /// Path graph.
    Path,
    /// Star (max unbounded degree).
    Star,
    /// Broom (path + star).
    Broom,
    /// Uniform random labelled tree (Prüfer).
    UniformRandom,
    /// Random recursive tree.
    RandomRecursive,
    /// Preferential attachment (power-law degrees).
    PreferentialAttachment,
    /// Random binary tree.
    RandomBinary,
    /// Yule phylogeny.
    Yule,
    /// Fibonacci/Leonardo tree — the heavy-path adversary (maximum
    /// light depth).
    HeavyAdversary,
}

impl TreeFamily {
    /// All families, in experiment-table order.
    pub const ALL: [TreeFamily; 12] = [
        TreeFamily::PerfectBinary,
        TreeFamily::Comb,
        TreeFamily::Caterpillar,
        TreeFamily::Path,
        TreeFamily::Star,
        TreeFamily::Broom,
        TreeFamily::UniformRandom,
        TreeFamily::RandomRecursive,
        TreeFamily::PreferentialAttachment,
        TreeFamily::RandomBinary,
        TreeFamily::Yule,
        TreeFamily::HeavyAdversary,
    ];

    /// Families whose maximum degree is bounded by a constant.
    pub const BOUNDED_DEGREE: [TreeFamily; 5] = [
        TreeFamily::PerfectBinary,
        TreeFamily::Comb,
        TreeFamily::Path,
        TreeFamily::RandomBinary,
        TreeFamily::HeavyAdversary,
    ];

    /// Table name.
    pub fn name(self) -> &'static str {
        match self {
            TreeFamily::PerfectBinary => "perfect-binary",
            TreeFamily::Comb => "comb",
            TreeFamily::Caterpillar => "caterpillar",
            TreeFamily::Path => "path",
            TreeFamily::Star => "star",
            TreeFamily::Broom => "broom",
            TreeFamily::UniformRandom => "uniform-random",
            TreeFamily::RandomRecursive => "random-recursive",
            TreeFamily::PreferentialAttachment => "pref-attach",
            TreeFamily::RandomBinary => "random-binary",
            TreeFamily::Yule => "yule",
            TreeFamily::HeavyAdversary => "heavy-adversary",
        }
    }

    /// Generates a member of the family with *approximately* `n`
    /// vertices (exactly `n` where the family allows it).
    pub fn generate<R: Rng>(self, n: u32, rng: &mut R) -> Tree {
        match self {
            TreeFamily::PerfectBinary => {
                // Largest perfect binary tree with ≤ n vertices.
                let depth = (n + 1).ilog2().saturating_sub(1);
                perfect_kary(2, depth)
            }
            TreeFamily::Comb => comb(n),
            TreeFamily::Caterpillar => caterpillar(n, rng),
            TreeFamily::Path => path(n),
            TreeFamily::Star => star(n),
            TreeFamily::Broom => broom(n, (n / 2).max(1)),
            TreeFamily::UniformRandom => uniform_random(n, rng),
            TreeFamily::RandomRecursive => random_recursive(n, rng),
            TreeFamily::PreferentialAttachment => preferential_attachment(n, rng),
            TreeFamily::RandomBinary => random_binary(n, rng),
            TreeFamily::Yule => yule((n / 2).max(1), rng),
            TreeFamily::HeavyAdversary => {
                // Largest Leonardo tree with ≤ n vertices.
                let mut order = 1u32;
                while heavy_path_adversary_size(order + 1) <= n as u64 {
                    order += 1;
                }
                heavy_path_adversary(order)
            }
        }
    }
}

impl std::fmt::Display for TreeFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn perfect_binary_shape() {
        let t = perfect_kary(2, 3);
        assert_eq!(t.n(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 15);
        assert_eq!(sizes[1], 7);
        assert_eq!(sizes[3], 3);
    }

    #[test]
    fn perfect_unary_is_path() {
        let t = perfect_kary(1, 5);
        assert_eq!(t.n(), 6);
        assert_eq!(t.height(), 5);
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(5);
        assert_eq!(p.height(), 4);
        assert_eq!(p.max_degree(), 2);
        let s = star(5);
        assert_eq!(s.height(), 1);
        assert_eq!(s.max_degree(), 4);
        assert_eq!(s.num_children(0), 4);
    }

    #[test]
    fn comb_shape() {
        let t = comb(10);
        assert_eq!(t.n(), 10);
        // 5 spine vertices each with ≤ 1 leaf + next spine.
        assert_eq!(t.height(), 5);
        let leaves = (0..10).filter(|&v| t.is_leaf(v)).count();
        assert_eq!(leaves, 5);
    }

    #[test]
    fn comb_odd() {
        let t = comb(7);
        assert_eq!(t.n(), 7);
        // 4 spine, 3 leaves.
        assert_eq!((0..7).filter(|&v| t.is_leaf(v)).count(), 4);
    }

    #[test]
    fn broom_shape() {
        let t = broom(10, 4);
        assert_eq!(t.height(), 4);
        assert_eq!(t.num_children(3), 6);
    }

    #[test]
    fn caterpillar_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1u32, 4, 5, 100, 1000] {
            let t = caterpillar(n, &mut rng);
            assert_eq!(t.n(), n);
            let spine = n.div_ceil(4).max(1);
            // Every non-spine vertex is a leaf attached to the spine.
            for v in spine..n {
                assert!(t.is_leaf(v), "n={n} v={v}");
                assert!(t.parent(v).unwrap() < spine);
            }
        }
    }

    #[test]
    fn heavy_adversary_is_leonardo() {
        // Sizes follow the Leonardo numbers and every internal vertex
        // has subtrees of order k−1 and k−2.
        for order in 0..12u32 {
            let t = heavy_path_adversary(order);
            assert_eq!(t.n() as u64, heavy_path_adversary_size(order), "{order}");
            assert!(t.max_degree() <= 3);
        }
        let t = heavy_path_adversary(10);
        let sizes = t.subtree_sizes();
        // Root children: T(8) = 67 and T(9) = 109 vertices.
        let mut cs: Vec<u64> = t
            .children(0)
            .iter()
            .map(|&c| sizes[c as usize] as u64)
            .collect();
        cs.sort_unstable();
        assert_eq!(
            cs,
            vec![heavy_path_adversary_size(8), heavy_path_adversary_size(9)]
        );
    }

    #[test]
    fn heavy_adversary_maximizes_light_depth() {
        // Walking light children from the root takes ~order/2 steps —
        // strictly deeper than the ⌊log₂ n⌋ bound a balanced tree gives.
        let order = 16u32;
        let t = heavy_path_adversary(order);
        let sizes = t.subtree_sizes();
        let mut at = 0u32;
        let mut light_depth = 0u32;
        loop {
            let cs = t.children(at);
            if cs.is_empty() {
                break;
            }
            // The light child: smaller subtree.
            at = *cs.iter().min_by_key(|&&c| (sizes[c as usize], c)).unwrap();
            light_depth += 1;
        }
        assert_eq!(light_depth, order / 2, "light chain of T({order})");
    }

    #[test]
    fn prufer_uniform_tree_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3u32, 4, 10, 257, 1000] {
            let t = uniform_random(n, &mut rng);
            assert_eq!(t.n(), n);
            assert_eq!(t.subtree_sizes()[t.root() as usize], n);
        }
    }

    #[test]
    fn prufer_known_sequence() {
        // Sequence [3, 3, 3, 4] over n=6 gives star-ish tree around 3, 4.
        let edges = prufer_decode(6, &[3, 3, 3, 4]);
        assert_eq!(edges.len(), 5);
        let t = Tree::from_edges(6, 0, &edges);
        assert_eq!(t.n(), 6);
        // Vertex 3 has degree 4 in the undirected tree.
        assert_eq!(t.degree(3), 4);
    }

    #[test]
    fn random_models_valid_and_reproducible() {
        for n in [1u32, 2, 64, 500] {
            let t1 = random_recursive(n, &mut StdRng::seed_from_u64(9));
            let t2 = random_recursive(n, &mut StdRng::seed_from_u64(9));
            assert_eq!(t1, t2, "same seed must reproduce");
            let t3 = preferential_attachment(n, &mut StdRng::seed_from_u64(9));
            assert_eq!(t3.n(), n);
        }
    }

    #[test]
    fn preferential_attachment_skews_degrees() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = preferential_attachment(5000, &mut rng);
        let u = random_recursive(5000, &mut StdRng::seed_from_u64(17));
        assert!(
            t.max_degree() > u.max_degree(),
            "preferential attachment should have heavier hubs: {} vs {}",
            t.max_degree(),
            u.max_degree()
        );
    }

    #[test]
    fn random_binary_bounded_degree() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [1u32, 2, 100, 2000] {
            let t = random_binary(n, &mut rng);
            assert_eq!(t.n(), n);
            assert!(t.max_degree() <= 3, "binary tree degree ≤ 3");
            assert!(t.vertices().all(|v| t.num_children(v) <= 2));
        }
    }

    #[test]
    fn yule_binary_phylogeny() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = yule(100, &mut rng);
        assert_eq!(t.n(), 199);
        let leaves = t.vertices().filter(|&v| t.is_leaf(v)).count();
        assert_eq!(leaves, 100);
        assert!(t
            .vertices()
            .all(|v| t.num_children(v) == 0 || t.num_children(v) == 2));
    }

    #[test]
    fn family_generate_all() {
        let mut rng = StdRng::seed_from_u64(41);
        for fam in TreeFamily::ALL {
            let t = fam.generate(300, &mut rng);
            assert!(t.n() >= 100, "{fam}: got only {} vertices", t.n());
            assert!(t.n() <= 300, "{fam}: got {} vertices", t.n());
        }
    }

    #[test]
    fn bounded_families_are_bounded() {
        let mut rng = StdRng::seed_from_u64(43);
        for fam in TreeFamily::BOUNDED_DEGREE {
            let t = fam.generate(1000, &mut rng);
            assert!(t.max_degree() <= 3, "{fam} degree {}", t.max_degree());
        }
    }
}
