//! Rooted trees: representation, generators, traversals, decompositions.
//!
//! Everything in the workspace operates on the [`Tree`] type defined
//! here: a rooted tree in CSR (compressed children) form with a parent
//! array. The representation is immutable after construction — the
//! paper's algorithms never mutate the input tree, they only relabel and
//! relocate it — and all traversals are iterative so that path-shaped
//! trees of millions of vertices cannot overflow the stack.
//!
//! The [`generators`] module provides every tree family used by the
//! paper's arguments and by our experiments: perfect `k`-ary trees
//! (breadth-first adversary, §III), combs (depth-first adversary, §III),
//! stars and brooms (unbounded-degree stress, §III-D), uniformly random
//! labelled trees via Prüfer sequences, random recursive and preferential
//! attachment trees, random binary trees, and Yule phylogenies (the
//! paper's motivating application domain).

pub mod decomposition;
pub mod generators;
pub mod stats;
pub mod strategies;
pub mod traversal;
pub mod tree;

pub use decomposition::HeavyPathDecomposition;
pub use stats::TreeStats;
pub use traversal::ChildrenCsr;
pub use tree::{NodeId, Tree, NIL};
