//! Heavy path decomposition (§VI-A of the paper).
//!
//! The paper constructs its path decomposition directly from light-first
//! order: "always connect a vertex with its heaviest child. This is the
//! rightmost child in light-first order." Every time a root-to-leaf walk
//! leaves a path (crosses a *light* edge), the subtree size at least
//! halves, so the decomposition has `O(log n)` layers — the key to the
//! LCA algorithm's subtree cover.
//!
//! This module is the host-side (sequential) construction used for
//! verification; the spatial construction via top-down treefix sums
//! lives in the `spatial-lca` crate.

use crate::tree::{NodeId, Tree, NIL};

/// A heavy path decomposition: a partition of the vertices into paths,
/// each path linked through heaviest children.
#[derive(Debug, Clone)]
pub struct HeavyPathDecomposition {
    /// `head[v]`: the topmost vertex of the path containing `v` (the
    /// root of the subtree the path induces in the subtree cover).
    pub head: Vec<NodeId>,
    /// `layer[v]`: the number of other paths the root-to-`v` path
    /// intersects (the paper's layer index; the root's path is layer 0).
    pub layer: Vec<u32>,
    /// `heavy_child[v]`: the child continuing `v`'s path (`NIL` at
    /// leaves).
    pub heavy_child: Vec<NodeId>,
}

impl HeavyPathDecomposition {
    /// Builds the decomposition, breaking subtree-size ties by vertex id
    /// exactly like light-first order does (the heavy child is the
    /// rightmost child in light-first order).
    pub fn new(tree: &Tree) -> Self {
        let sizes = tree.subtree_sizes();
        Self::with_sizes(tree, &sizes)
    }

    /// Builds the decomposition from precomputed subtree sizes.
    pub fn with_sizes(tree: &Tree, sizes: &[u32]) -> Self {
        let n = tree.n() as usize;
        let mut heavy_child = vec![NIL; n];
        for v in tree.vertices() {
            let mut best: Option<NodeId> = None;
            for &c in tree.children(v) {
                best = match best {
                    None => Some(c),
                    // Ties by larger id: the rightmost among equals in
                    // light-first order (sort is by (size, id)).
                    Some(b) if (sizes[c as usize], c) > (sizes[b as usize], b) => Some(c),
                    other => other,
                };
            }
            if let Some(b) = best {
                heavy_child[v as usize] = b;
            }
        }

        let mut head = vec![0 as NodeId; n];
        let mut layer = vec![0u32; n];
        for &v in crate::traversal::bfs_order(tree).iter() {
            match tree.parent(v) {
                None => {
                    head[v as usize] = v;
                    layer[v as usize] = 0;
                }
                Some(p) => {
                    if heavy_child[p as usize] == v {
                        head[v as usize] = head[p as usize];
                        layer[v as usize] = layer[p as usize];
                    } else {
                        head[v as usize] = v;
                        layer[v as usize] = layer[p as usize] + 1;
                    }
                }
            }
        }

        HeavyPathDecomposition {
            head,
            layer,
            heavy_child,
        }
    }

    /// Number of layers (maximum layer index + 1).
    pub fn num_layers(&self) -> u32 {
        self.layer.iter().copied().max().unwrap_or(0) + 1
    }

    /// The heads of all paths on the given layer: these are the roots of
    /// the layer's subtrees in the subtree cover (§VI-B).
    pub fn layer_heads(&self, layer: u32) -> Vec<NodeId> {
        self.head
            .iter()
            .enumerate()
            .filter(|&(v, &h)| h == v as NodeId && self.layer[v] == layer)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::prelude::*;

    #[test]
    fn figure8_decomposition() {
        // The tree of Fig. 8:
        //        0
        //       / \
        //      1   4
        //     / \   \
        //    2   3   6
        //        |nothing
        //    5 under 4? — paper: 0-(1,4), 1-(2,3), 4-(5,6), 6-(7)
        // Rebuild exactly: vertices 0..8 with edges per the figure:
        // 0→1, 0→4; 1→2, 1→3; 4→5, 4→6; 6→7.
        let t = Tree::from_parents(0, vec![NIL, 0, 1, 1, 0, 4, 4, 6]);
        let d = HeavyPathDecomposition::new(&t);
        // Subtree sizes: 0:8, 1:3, 4:4, 6:2 → heavy path from 0 goes via
        // 4 (size 4 > 3) then 6 then 7: the paper's yellow path
        // (0, 4, 6, 7) in layer 0.
        assert_eq!(d.layer[0], 0);
        assert_eq!(d.layer[4], 0);
        assert_eq!(d.layer[6], 0);
        assert_eq!(d.layer[7], 0);
        // Green paths (1, 3) and (5) in layer 1 (3 ≥ 2 by id tie-break:
        // children of 1 are 2 and 3, equal size 1, rightmost id 3 wins).
        assert_eq!(d.layer[1], 1);
        assert_eq!(d.layer[3], 1);
        assert_eq!(d.head[3], 1);
        assert_eq!(d.layer[5], 1);
        // Red path (2) in layer 2.
        assert_eq!(d.layer[2], 2);
        assert_eq!(d.num_layers(), 3);
    }

    #[test]
    fn path_is_single_layer() {
        let t = generators::path(100);
        let d = HeavyPathDecomposition::new(&t);
        assert_eq!(d.num_layers(), 1);
        assert!(d.head.iter().all(|&h| h == 0));
    }

    #[test]
    fn star_has_two_layers() {
        let t = generators::star(50);
        let d = HeavyPathDecomposition::new(&t);
        assert_eq!(d.num_layers(), 2);
        // Exactly one child is heavy (on layer 0); the rest head their
        // own singleton paths on layer 1.
        assert_eq!(d.layer_heads(1).len(), 48);
    }

    #[test]
    fn layers_logarithmic_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [100u32, 1000, 10_000] {
            let t = generators::uniform_random(n, &mut rng);
            let d = HeavyPathDecomposition::new(&t);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(
                d.num_layers() <= bound,
                "n={n}: {} layers > log bound {bound}",
                d.num_layers()
            );
        }
    }

    #[test]
    fn light_edges_halve_subtree_sizes() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = generators::preferential_attachment(2000, &mut rng);
        let sizes = t.subtree_sizes();
        let d = HeavyPathDecomposition::new(&t);
        for v in t.vertices() {
            if let Some(p) = t.parent(v) {
                if d.heavy_child[p as usize] != v {
                    assert!(
                        2 * sizes[v as usize] <= sizes[p as usize],
                        "light edge ({p}, {v}) does not halve"
                    );
                }
            }
        }
    }

    #[test]
    fn heads_are_path_roots() {
        let mut rng = StdRng::seed_from_u64(19);
        let t = generators::uniform_random(500, &mut rng);
        let d = HeavyPathDecomposition::new(&t);
        for v in t.vertices() {
            let h = d.head[v as usize];
            assert_eq!(d.layer[h as usize], d.layer[v as usize]);
            // The head is an ancestor of v through heavy edges.
            let mut at = v;
            while at != h {
                let p = t.parent(at).expect("head must be an ancestor");
                assert_eq!(d.heavy_child[p as usize], at);
                at = p;
            }
        }
    }
}
