//! The rooted tree representation.

/// Identifier of a tree vertex: a dense index in `0..n`.
pub type NodeId = u32;

/// Sentinel for "no vertex" (the root's parent).
pub const NIL: NodeId = u32::MAX;

/// A rooted tree over vertices `0..n` in CSR form.
///
/// Immutable after construction. Children are stored contiguously per
/// vertex, in the order given at construction time (generators produce
/// them in insertion order; layout code re-sorts copies as needed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    root: NodeId,
    parent: Vec<NodeId>,
    child_offsets: Vec<u32>,
    children: Vec<NodeId>,
}

impl Tree {
    /// Builds a tree from a parent array. `parent[root]` must be [`NIL`]
    /// and every other entry a valid vertex.
    ///
    /// # Panics
    /// Panics when the array does not describe a tree rooted at `root`
    /// (wrong root sentinel, out-of-range parents, cycles, or multiple
    /// components).
    pub fn from_parents(root: NodeId, parent: Vec<NodeId>) -> Self {
        let n = parent.len();
        assert!(n > 0, "a tree needs at least one vertex");
        assert!((root as usize) < n, "root {root} out of range 0..{n}");
        assert_eq!(parent[root as usize], NIL, "parent[root] must be NIL");

        let mut counts = vec![0u32; n];
        for (v, &p) in parent.iter().enumerate() {
            if v as NodeId == root {
                continue;
            }
            assert!((p as usize) < n, "vertex {v} has out-of-range parent {p}");
            counts[p as usize] += 1;
        }

        let mut child_offsets = vec![0u32; n + 1];
        for v in 0..n {
            child_offsets[v + 1] = child_offsets[v] + counts[v];
        }
        let mut cursor = child_offsets.clone();
        let mut children = vec![0 as NodeId; n - 1];
        for (v, &p) in parent.iter().enumerate() {
            if v as NodeId == root {
                continue;
            }
            children[cursor[p as usize] as usize] = v as NodeId;
            cursor[p as usize] += 1;
        }

        let tree = Tree {
            root,
            parent,
            child_offsets,
            children,
        };
        assert!(
            tree.is_connected(),
            "parent array contains a cycle or disconnected component"
        );
        tree
    }

    /// Builds a tree from undirected edges, rooting it at `root` with a
    /// BFS orientation.
    ///
    /// # Panics
    /// Panics when the edges do not form a tree on `n` vertices.
    pub fn from_edges(n: u32, root: NodeId, edges: &[(NodeId, NodeId)]) -> Self {
        assert_eq!(
            edges.len() as u32,
            n.saturating_sub(1),
            "a tree on {n} vertices has n-1 edges"
        );
        // Adjacency in CSR form.
        let mut deg = vec![0u32; n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut off = vec![0u32; n as usize + 1];
        for v in 0..n as usize {
            off[v + 1] = off[v] + deg[v];
        }
        let mut adj = vec![0 as NodeId; 2 * edges.len()];
        let mut cur = off.clone();
        for &(a, b) in edges {
            adj[cur[a as usize] as usize] = b;
            cur[a as usize] += 1;
            adj[cur[b as usize] as usize] = a;
            cur[b as usize] += 1;
        }
        // BFS orientation from the root.
        let mut parent = vec![NIL; n as usize];
        let mut visited = vec![false; n as usize];
        let mut queue = std::collections::VecDeque::new();
        visited[root as usize] = true;
        queue.push_back(root);
        let mut seen = 1u32;
        while let Some(v) = queue.pop_front() {
            for i in off[v as usize]..off[v as usize + 1] {
                let u = adj[i as usize];
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    parent[u as usize] = v;
                    seen += 1;
                    queue.push_back(u);
                }
            }
        }
        assert_eq!(seen, n, "edges do not connect all {n} vertices");
        Tree::from_parents(root, parent)
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.parent.len() as u32
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v as usize];
        (p != NIL).then_some(p)
    }

    /// Raw parent array (`NIL` at the root).
    pub fn parents(&self) -> &[NodeId] {
        &self.parent
    }

    /// Children of `v`, in construction order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let lo = self.child_offsets[v as usize] as usize;
        let hi = self.child_offsets[v as usize + 1] as usize;
        &self.children[lo..hi]
    }

    /// Number of children of `v`.
    #[inline]
    pub fn num_children(&self, v: NodeId) -> u32 {
        self.child_offsets[v as usize + 1] - self.child_offsets[v as usize]
    }

    /// Degree of `v` counting parent and children (the paper's `deg(v)`).
    pub fn degree(&self, v: NodeId) -> u32 {
        self.num_children(v) + u32::from(v != self.root)
    }

    /// Maximum degree `Δ` over all vertices.
    pub fn max_degree(&self) -> u32 {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `v` has no children.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.num_children(v) == 0
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n()
    }

    /// Iterator over all `(parent, child)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.vertices()
            .filter_map(move |v| self.parent(v).map(|p| (p, v)))
    }

    /// Number of descendants of each vertex including itself (the
    /// paper's `s(v)`). Iterative post-order accumulation.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.n() as usize;
        let mut sizes = vec![1u32; n];
        // Process vertices in reverse BFS order so every child is final
        // before its parent.
        let order = crate::traversal::bfs_order(self);
        for &v in order.iter().rev() {
            if let Some(p) = self.parent(v) {
                sizes[p as usize] += sizes[v as usize];
            }
        }
        sizes
    }

    /// Depth of each vertex (root = 0).
    pub fn depths(&self) -> Vec<u32> {
        let n = self.n() as usize;
        let mut depth = vec![0u32; n];
        for &v in crate::traversal::bfs_order(self).iter() {
            if let Some(p) = self.parent(v) {
                depth[v as usize] = depth[p as usize] + 1;
            }
        }
        depth
    }

    /// Height of the tree: maximum depth.
    pub fn height(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    fn is_connected(&self) -> bool {
        crate::traversal::bfs_order(self).len() == self.n() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree used across tests:
    ///         0
    ///       / | \
    ///      1  2  3
    ///     /|     |
    ///    4 5     6
    ///            |
    ///            7
    pub(crate) fn sample_tree() -> Tree {
        Tree::from_parents(0, vec![NIL, 0, 0, 0, 1, 1, 3, 6])
    }

    #[test]
    fn basic_accessors() {
        let t = sample_tree();
        assert_eq!(t.n(), 8);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(7), Some(6));
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.children(1), &[4, 5]);
        assert_eq!(t.children(2), &[] as &[NodeId]);
        assert_eq!(t.num_children(3), 1);
        assert!(t.is_leaf(2));
        assert!(!t.is_leaf(3));
    }

    #[test]
    fn degree_counts_parent() {
        let t = sample_tree();
        assert_eq!(t.degree(0), 3, "root: three children, no parent");
        assert_eq!(t.degree(1), 3, "two children + parent");
        assert_eq!(t.degree(2), 1, "leaf: only parent");
        assert_eq!(t.max_degree(), 3);
    }

    #[test]
    fn subtree_sizes_and_depths() {
        let t = sample_tree();
        assert_eq!(t.subtree_sizes(), vec![8, 3, 1, 3, 1, 1, 2, 1]);
        assert_eq!(t.depths(), vec![0, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn edges_iterate_parent_child() {
        let t = sample_tree();
        let mut edges: Vec<_> = t.edges().collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (3, 6), (6, 7)]
        );
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_parents(0, vec![NIL]);
        assert_eq!(t.n(), 1);
        assert_eq!(t.subtree_sizes(), vec![1]);
        assert_eq!(t.height(), 0);
        assert_eq!(t.max_degree(), 0);
    }

    #[test]
    fn non_zero_root() {
        let t = Tree::from_parents(2, vec![2, 2, NIL]);
        assert_eq!(t.root(), 2);
        assert_eq!(t.children(2), &[0, 1]);
    }

    #[test]
    fn from_edges_orients_bfs() {
        let t = Tree::from_edges(5, 0, &[(1, 0), (1, 2), (3, 2), (2, 4)]);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(1));
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.parent(4), Some(2));
    }

    #[test]
    #[should_panic(expected = "parent[root] must be NIL")]
    fn rejects_bad_root() {
        let _ = Tree::from_parents(0, vec![1, NIL]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cycle() {
        // 1 → 2 → 1 cycle, disconnected from root 0.
        let _ = Tree::from_parents(0, vec![NIL, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out-of-range parent")]
    fn rejects_out_of_range() {
        let _ = Tree::from_parents(0, vec![NIL, 9]);
    }

    #[test]
    #[should_panic(expected = "n-1 edges")]
    fn rejects_wrong_edge_count() {
        let _ = Tree::from_edges(3, 0, &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "connect all")]
    fn rejects_disconnected_edges() {
        let _ = Tree::from_edges(4, 0, &[(0, 1), (2, 3), (2, 3)]);
    }
}
