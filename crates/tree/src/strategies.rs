//! Shared proptest strategies over [`Tree`]: one canonical generator
//! for every differential suite in the workspace.
//!
//! Before this module, each crate's property suite drew trees its own
//! way (usually `uniform_random(n, seed)` for two integer strategies),
//! which silently narrowed coverage to a single family and to whatever
//! sizes the local range happened to include. [`arb_tree`] instead
//! rotates deterministically through **every** [`TreeFamily`] variant
//! and pins the degenerate and adversarial sizes up front:
//!
//! - case 0 draws the minimum size (1 by default — the single-vertex
//!   tree every engine must survive),
//! - case 1 draws the maximum,
//! - case 2 draws size 2 (the smallest tree with an edge),
//! - case 3 draws a non-power-of-two size near the maximum (curve-side
//!   rounding boundaries),
//! - later cases draw sizes uniformly at random;
//! - the family is `TreeFamily::ALL[case % 12]`, so a suite with ≥ 12
//!   cases exercises stars, paths, combs, and the Leonardo heavy-path
//!   adversary alongside the random families.
//!
//! The strategies implement the offline proptest shim's
//! [`proptest::Strategy`] trait, so they drop into `proptest! { ... a
//! in arb_tree(300) ... }` blocks exactly like an integer range.

use crate::generators::TreeFamily;
use crate::tree::Tree;
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy producing trees across families and sizes; build with
/// [`arb_tree`] or [`arb_tree_sized`], restrict with
/// [`TreeStrategy::families`].
#[derive(Debug, Clone, Copy)]
pub struct TreeStrategy {
    min_n: u32,
    max_n: u32,
    families: &'static [TreeFamily],
}

/// Trees of every [`TreeFamily`], sizes `1..=max_n` (sizes are
/// approximate for families that round, e.g. perfect binary trees).
pub fn arb_tree(max_n: u32) -> TreeStrategy {
    arb_tree_sized(1, max_n)
}

/// [`arb_tree`] with an inclusive size floor (some suites need at
/// least one edge, i.e. `min_n = 2`).
pub fn arb_tree_sized(min_n: u32, max_n: u32) -> TreeStrategy {
    assert!(1 <= min_n && min_n <= max_n, "empty tree size range");
    TreeStrategy {
        min_n,
        max_n,
        families: &TreeFamily::ALL,
    }
}

impl TreeStrategy {
    /// Restricts the family rotation (e.g.
    /// `TreeFamily::BOUNDED_DEGREE` for depth-bound suites).
    pub fn families(mut self, families: &'static [TreeFamily]) -> Self {
        assert!(!families.is_empty(), "no families");
        self.families = families;
        self
    }
}

impl Strategy for TreeStrategy {
    type Value = Tree;

    fn sample(&self, rng: &mut StdRng, case: u32) -> Tree {
        let family = self.families[case as usize % self.families.len()];
        let n = match case {
            0 => self.min_n,
            1 => self.max_n,
            2 => 2.clamp(self.min_n, self.max_n),
            3 => {
                // A non-power-of-two near the top of the range.
                let n = (self.max_n.saturating_sub(self.max_n / 3)).max(self.min_n);
                if n.is_power_of_two() && n < self.max_n {
                    n + 1
                } else {
                    n
                }
            }
            _ => rng.gen_range(self.min_n..=self.max_n),
        };
        family.generate(n, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn early_cases_pin_degenerate_sizes() {
        let strat = arb_tree(300);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(strat.sample(&mut rng, 0).n(), 1, "case 0 is the 1-tree");
        let t2 = strat.sample(&mut rng, 2);
        assert!(t2.n() <= 2, "case 2 stays tiny, got {}", t2.n());
        let t3 = strat.sample(&mut rng, 3);
        assert!(!t3.n().is_power_of_two() || t3.n() < 4, "case 3 non-pow2");
    }

    #[test]
    fn rotation_covers_every_family_and_respects_bounds() {
        let strat = arb_tree_sized(2, 120);
        let mut rng = StdRng::seed_from_u64(2);
        let mut star_seen = false;
        let mut path_seen = false;
        for case in 0..24 {
            let t = strat.sample(&mut rng, case);
            assert!(t.n() >= 1 && t.n() <= 120, "case {case}: n={}", t.n());
            // Identify the adversarial shapes structurally.
            if t.n() > 2 && t.max_degree() == t.n() - 1 {
                star_seen = true;
            }
            if t.n() > 2 && t.height() == t.n() - 1 {
                path_seen = true;
            }
        }
        assert!(star_seen, "24 cases must include a star");
        assert!(path_seen, "24 cases must include a path");
    }

    #[test]
    fn bounded_degree_restriction_holds() {
        let strat = arb_tree(200).families(&TreeFamily::BOUNDED_DEGREE);
        let mut rng = StdRng::seed_from_u64(3);
        for case in 0..20 {
            let t = strat.sample(&mut rng, case);
            assert!(
                t.max_degree() <= 3,
                "case {case}: degree {}",
                t.max_degree()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The strategy drops into the proptest macro like any range.
        #[test]
        fn usable_inside_proptest_blocks(t in arb_tree(64)) {
            prop_assert!(t.n() >= 1 && t.n() <= 64);
            prop_assert_eq!(t.subtree_sizes()[t.root() as usize], t.n());
        }
    }
}
