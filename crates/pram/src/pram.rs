//! The PRAM simulation cost machine.

use rand::seq::SliceRandom;
use rand::Rng;
use spatial_model::{CostReport, CurveKind, Machine, Slot};

/// A simulated EREW/CREW PRAM on the spatial grid.
///
/// Processor `i` occupies grid slot `i`; memory cell `j` lives at a slot
/// chosen by a random permutation (the hashing that makes shared memory
/// location-oblivious). Each [`read`](PramMachine::read) /
/// [`write`](PramMachine::write) charges the Manhattan distance between
/// the processor and the cell; [`end_step`](PramMachine::end_step)
/// closes one synchronous PRAM step and charges the simulation's
/// poly-logarithmic routing overhead in depth.
pub struct PramMachine {
    machine: Machine,
    cell_slot: Vec<Slot>,
    step_overhead: u32,
    steps: u32,
}

impl PramMachine {
    /// Creates a PRAM with `processors` processors and `cells` shared
    /// memory cells, hashed over a grid of `max(processors, cells)`
    /// slots.
    pub fn new<R: Rng>(processors: u32, cells: u32, rng: &mut R) -> Self {
        let slots = processors.max(cells).max(1);
        let machine = Machine::on_curve(CurveKind::Hilbert, slots);
        let mut cell_slot: Vec<Slot> = (0..slots).collect();
        cell_slot.shuffle(rng);
        cell_slot.truncate(cells as usize);
        let step_overhead = 32 - slots.leading_zeros();
        PramMachine {
            machine,
            cell_slot,
            step_overhead,
            steps: 0,
        }
    }

    /// Number of shared memory cells.
    pub fn cells(&self) -> u32 {
        self.cell_slot.len() as u32
    }

    /// Charges a read of `cell` by `proc`: a request and a response
    /// message across the grid.
    pub fn read(&self, proc: u32, cell: u32) {
        let d = self.machine.dist(proc, self.cell_slot[cell as usize]);
        self.machine.charge_bulk(2 * d, 2, 1);
    }

    /// Charges a write to `cell` by `proc`: one message.
    pub fn write(&self, proc: u32, cell: u32) {
        let d = self.machine.dist(proc, self.cell_slot[cell as usize]);
        self.machine.charge_bulk(d, 1, 1);
    }

    /// Ends one synchronous PRAM step: the simulation's routing costs
    /// `O(log n)` depth per step (conservative; the paper quotes
    /// poly-log overall overhead).
    pub fn end_step(&mut self) {
        self.machine.advance_all(self.step_overhead);
        self.steps += 1;
    }

    /// Number of PRAM steps executed.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Cost snapshot of the underlying spatial machine.
    pub fn report(&self) -> CostReport {
        self.machine.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn accesses_cost_sqrt_n_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1u32 << 12;
        let mut pram = PramMachine::new(n, n, &mut rng);
        for p in 0..n {
            pram.read(p, (p * 7 + 13) % n);
        }
        pram.end_step();
        let r = pram.report();
        let mean = r.energy as f64 / n as f64;
        let side = (n as f64).sqrt();
        // Mean random distance on a √n × √n grid is Θ(√n).
        assert!(
            mean > 0.3 * side && mean < 4.0 * side,
            "mean access energy {mean} vs side {side}"
        );
    }

    #[test]
    fn step_overhead_accumulates_depth() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pram = PramMachine::new(1024, 1024, &mut rng);
        for _ in 0..10 {
            pram.end_step();
        }
        assert_eq!(pram.steps(), 10);
        assert_eq!(pram.report().depth, 10 * 11); // 10 steps × log2(1024)+1
    }

    #[test]
    fn cells_can_exceed_processors() {
        let mut rng = StdRng::seed_from_u64(3);
        let pram = PramMachine::new(4, 100, &mut rng);
        assert_eq!(pram.cells(), 100);
        pram.read(3, 99);
        assert!(pram.report().messages == 2);
    }
}
