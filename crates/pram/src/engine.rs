//! The flat-array PRAM simulation engine.
//!
//! [`PramEngine`] is the rebuilt [`crate::reference::PramMachine`]: the
//! rng-dependent *structure* — the hashed cell placement, the
//! per-processor slot geometry, and the cell → grid-point distance
//! table — is built once in [`PramEngine::new`] and reused across any
//! number of runs, and all *charging* goes through a
//! [`spatial_model::LocalCharge`] session ([`PramRun`]): plain
//! non-atomic arithmetic, committed back to the machine in one batch
//! when the session [`finish`](PramRun::finish)es.
//!
//! The charge rules are identical to the seed machine, access for
//! access:
//!
//! - a **read** of cell `c` by processor `p` costs `2·dist(p, slot(c))`
//!   energy, 2 messages, 1 work (request + response);
//! - a **write** costs `dist(p, slot(c))` energy, 1 message, 1 work;
//! - **ending a step** lifts every clock by the routing overhead
//!   `⌈log₂(slots)⌉` (the simulation's per-step poly-log routing,
//!   charged conservatively as one `advance_all`).
//!
//! The batched access hooks ([`PramRun::read_batch`] /
//! [`PramRun::write_batch`]) fold a whole synchronous step's accesses
//! into one bulk charge — sums of the identical per-access charges, so
//! the differential suite (`tests/engine_vs_reference.rs`) pins the
//! engine's energy/messages/work/depth/steps bit-for-bit against the
//! seed machine.

use crate::reference::step_overhead_for;
use rand::seq::SliceRandom;
use rand::Rng;
use spatial_model::{
    manhattan, CostReport, CurveKind, GridPoint, LocalCharge, LocalChargeScratch, Machine, Slot,
};

/// The reusable PRAM simulation engine: structure built once, runs
/// charged through batch-committed [`PramRun`] sessions.
///
/// Processor `i` occupies grid slot `i`; memory cell `j` lives at the
/// slot chosen by a random permutation drawn at construction (the
/// hashing that makes shared memory location-oblivious). Open a
/// charging session with [`PramEngine::run`], route every access
/// through it, then [`PramRun::finish`] to commit.
pub struct PramEngine {
    machine: Machine,
    processors: u32,
    /// Hashed cell placement: `cell_slot[j]` is the grid slot of cell
    /// `j` (kept for slot-level introspection and tests).
    cell_slot: Vec<Slot>,
    /// Distance table: the grid point of every cell's slot, resolved
    /// once so a per-access distance is one subtraction instead of two
    /// indirections through the machine's slot array.
    cell_pt: Vec<GridPoint>,
    step_overhead: u32,
    steps: u32,
    scratch: LocalChargeScratch,
}

impl PramEngine {
    /// Engine with `processors` processors and `cells` shared memory
    /// cells hashed over a Hilbert grid of `max(processors, cells)`
    /// slots — the seed machine's exact geometry (and, given the same
    /// `rng`, the identical cell placement).
    pub fn new<R: Rng>(processors: u32, cells: u32, rng: &mut R) -> Self {
        Self::with_curve(CurveKind::Hilbert, processors, cells, rng)
    }

    /// [`PramEngine::new`] on an explicit slot curve (the E8 sweep
    /// varies the curve together with the spatial counterpart's).
    pub fn with_curve<R: Rng>(curve: CurveKind, processors: u32, cells: u32, rng: &mut R) -> Self {
        let slots = processors.max(cells).max(1);
        let machine = Machine::on_curve(curve, slots);
        let mut cell_slot: Vec<Slot> = (0..slots).collect();
        cell_slot.shuffle(rng);
        cell_slot.truncate(cells as usize);
        let cell_pt: Vec<GridPoint> = cell_slot.iter().map(|&s| machine.point_of(s)).collect();
        let step_overhead = step_overhead_for(slots);
        PramEngine {
            machine,
            processors,
            cell_slot,
            cell_pt,
            step_overhead,
            steps: 0,
            scratch: LocalChargeScratch::new(),
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// Number of shared memory cells.
    pub fn cells(&self) -> u32 {
        self.cell_slot.len() as u32
    }

    /// Grid slot of a memory cell.
    pub fn cell_slot(&self, cell: u32) -> Slot {
        self.cell_slot[cell as usize]
    }

    /// Depth charged per synchronous step: `⌈log₂(slots)⌉`, at least 1.
    pub fn step_overhead(&self) -> u32 {
        self.step_overhead
    }

    /// Number of PRAM steps executed (cumulative until
    /// [`PramEngine::reset`]).
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The underlying spatial machine (geometry + meters).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Cost snapshot of the underlying spatial machine.
    pub fn report(&self) -> CostReport {
        self.machine.report()
    }

    /// Clears the meters and the step counter; the placement (the
    /// structure the engine exists to retain) is kept.
    pub fn reset(&mut self) {
        self.machine.reset();
        self.steps = 0;
    }

    /// Opens a charging session. All accesses of a run go through the
    /// returned [`PramRun`]; drop-free completion requires
    /// [`PramRun::finish`], which commits the batched totals to the
    /// machine. After the first session has grown the scratch, opening
    /// and running a session performs no heap allocation.
    pub fn run(&mut self) -> PramRun<'_> {
        let PramEngine {
            machine,
            cell_pt,
            step_overhead,
            steps,
            scratch,
            ..
        } = self;
        let machine: &Machine = machine;
        PramRun {
            lc: machine.begin_local_charge(scratch),
            machine,
            cell_pt: cell_pt.as_slice(),
            step_overhead: *step_overhead,
            steps,
        }
    }
}

/// One charging session over a [`PramEngine`]: the PRAM access charges
/// accumulate in a [`LocalCharge`] (no atomics) and commit in one
/// batch on [`PramRun::finish`].
pub struct PramRun<'e> {
    lc: LocalCharge<'e, 'e>,
    machine: &'e Machine,
    cell_pt: &'e [GridPoint],
    step_overhead: u32,
    steps: &'e mut u32,
}

impl PramRun<'_> {
    /// Number of shared memory cells.
    #[inline]
    pub fn cells(&self) -> u32 {
        self.cell_pt.len() as u32
    }

    /// Manhattan distance between processor `proc` and the hashed slot
    /// of `cell` — the energy one message between them costs.
    #[inline]
    pub fn access_dist(&self, proc: u32, cell: u32) -> u64 {
        manhattan(self.machine.point_of(proc), self.cell_pt[cell as usize])
    }

    /// Charges a read of `cell` by `proc`: a request and a response
    /// message across the grid.
    #[inline]
    pub fn read(&mut self, proc: u32, cell: u32) {
        let d = self.access_dist(proc, cell);
        self.lc.charge_bulk(2 * d, 2, 1);
    }

    /// Charges a write to `cell` by `proc`: one message.
    #[inline]
    pub fn write(&mut self, proc: u32, cell: u32) {
        let d = self.access_dist(proc, cell);
        self.lc.charge_bulk(d, 1, 1);
    }

    /// Charges a batch of reads in one bulk update — the sum of the
    /// identical per-access charges (`2·d` energy, 2 messages, 1 work
    /// each), so batching never changes the totals.
    pub fn read_batch<I: IntoIterator<Item = (u32, u32)>>(&mut self, accesses: I) {
        let (mut energy, mut count) = (0u64, 0u64);
        for (proc, cell) in accesses {
            energy += self.access_dist(proc, cell);
            count += 1;
        }
        self.lc.charge_bulk(2 * energy, 2 * count, count);
    }

    /// Charges a batch of writes in one bulk update (`d` energy, 1
    /// message, 1 work each).
    pub fn write_batch<I: IntoIterator<Item = (u32, u32)>>(&mut self, accesses: I) {
        let (mut energy, mut count) = (0u64, 0u64);
        for (proc, cell) in accesses {
            energy += self.access_dist(proc, cell);
            count += 1;
        }
        self.lc.charge_bulk(energy, count, count);
    }

    /// Ends one synchronous PRAM step: lifts every clock by the
    /// routing overhead.
    pub fn end_step(&mut self) {
        self.lc.advance_all(self.step_overhead);
        *self.steps += 1;
    }

    /// Number of PRAM steps executed so far (including this session's).
    pub fn steps(&self) -> u32 {
        *self.steps
    }

    /// Commits the session's totals (energy, messages, work, clocks,
    /// depth) to the machine in one batch.
    pub fn finish(self) {
        self.lc.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::PramMachine;
    use rand::prelude::*;

    #[test]
    fn engine_matches_seed_geometry_and_charges() {
        // Same rng stream ⇒ same placement ⇒ identical charges for the
        // identical access sequence.
        let mut rng_e = StdRng::seed_from_u64(5);
        let mut rng_r = StdRng::seed_from_u64(5);
        let mut engine = PramEngine::new(300, 500, &mut rng_e);
        let mut seed = PramMachine::new(300, 500, &mut rng_r);
        assert_eq!(engine.cells(), seed.cells());
        assert_eq!(engine.step_overhead(), seed.step_overhead());

        let mut run = engine.run();
        for i in 0..300u32 {
            run.read(i, (i * 13 + 7) % 500);
            run.write(i, (i * 5 + 1) % 500);
        }
        run.end_step();
        run.finish();

        for i in 0..300u32 {
            seed.read(i, (i * 13 + 7) % 500);
            seed.write(i, (i * 5 + 1) % 500);
        }
        seed.end_step();

        assert_eq!(engine.report(), seed.report());
        assert_eq!(engine.steps(), seed.steps());
    }

    #[test]
    fn batched_accesses_equal_singles() {
        let mk = || PramEngine::new(64, 100, &mut StdRng::seed_from_u64(9));
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i * 31 + 3) % 100)).collect();

        let mut singles = mk();
        let mut run = singles.run();
        for &(p, c) in &pairs {
            run.read(p, c);
        }
        for &(p, c) in &pairs {
            run.write(p, c);
        }
        run.end_step();
        run.finish();

        let mut batched = mk();
        let mut run = batched.run();
        run.read_batch(pairs.iter().copied());
        run.write_batch(pairs.iter().copied());
        run.end_step();
        run.finish();

        assert_eq!(singles.report(), batched.report());
    }

    #[test]
    fn reset_keeps_placement() {
        let mut engine = PramEngine::new(32, 32, &mut StdRng::seed_from_u64(3));
        let slots_before: Vec<u32> = (0..32).map(|c| engine.cell_slot(c)).collect();
        let mut run = engine.run();
        run.read(0, 31);
        run.end_step();
        run.finish();
        assert!(engine.report().energy > 0 || engine.cell_slot(31) == 0);
        assert_eq!(engine.steps(), 1);
        engine.reset();
        assert_eq!(engine.report(), CostReport::default());
        assert_eq!(engine.steps(), 0);
        let slots_after: Vec<u32> = (0..32).map(|c| engine.cell_slot(c)).collect();
        assert_eq!(slots_before, slots_after);
    }

    #[test]
    fn sessions_resume_depth() {
        // Two sessions stack their step overheads on the same machine.
        let mut engine = PramEngine::new(1024, 1024, &mut StdRng::seed_from_u64(1));
        let mut run = engine.run();
        run.end_step();
        run.finish();
        let mut run = engine.run();
        run.end_step();
        run.end_step();
        run.finish();
        assert_eq!(engine.steps(), 3);
        assert_eq!(engine.report().depth, 3 * 10);
    }
}
