//! PRAM simulation baseline on the spatial computer (§II-A).
//!
//! The paper compares its spatial algorithms against simulating
//! work-optimal PRAM algorithms: an algorithm with `p` processors, `m`
//! memory cells and `T_p` steps simulates in `O(p(√p + √m)·T_p)` energy
//! with poly-logarithmic depth overhead. The crucial point is that PRAM
//! algorithms address *shared memory*, which has no spatial locality:
//! every access travels an expected `Θ(√n)` grid distance. A
//! work-optimal `O(n)`-work algorithm therefore burns `Θ(n^{3/2})`
//! energy where the paper's layout-aware algorithms spend `O(n log n)`.
//!
//! [`PramMachine`] charges every shared-memory access as a real message
//! to the hashed cell location, plus a logarithmic per-step routing
//! overhead in depth. [`algorithms`] implements the baselines used in
//! experiment E8: random-mate list ranking, Blelloch prefix sums,
//! Euler-tour subtree sums, and sparse-table LCA (the standard
//! `O(n log n)`-work PRAM construction; the paper's `O(n)`-work
//! Schieber–Vishkin variant would shave a log factor off the energy but
//! not change the `n^{3/2}` shape — see DESIGN.md).

pub mod algorithms;
pub mod pram;

pub use algorithms::{pram_lca_batch, pram_list_rank, pram_prefix_sum, pram_subtree_sums};
pub use pram::PramMachine;
