//! Work-optimal(ish) PRAM algorithms as reusable flat-array engines,
//! charged on the simulation machine.
//!
//! These are the baselines of experiment E8 — random-mate list
//! ranking, Blelloch prefix sums, Euler-tour subtree sums, and
//! sparse-table LCA. Each is split the same way as every other engine
//! in the workspace: the input-dependent *structure* (Euler tours,
//! membership, sparse-table storage, scratch arrays) is allocated once
//! in `new`, and each run routes its accesses through a [`PramRun`]
//! session using the batched [`PramRun::read_batch`] /
//! [`PramRun::write_batch`] hooks — **zero heap allocation** after the
//! first warm-up run (`tests/alloc_free.rs`), and charge totals
//! identical to the retained seed implementations in
//! [`crate::reference`] (`tests/engine_vs_reference.rs`).
//!
//! The shapes to observe: `Θ(n^{3/2})` energy (every shared-memory
//! access pays `Θ(√n)`) and `O(log^k n)` depth from the per-step
//! routing overhead — against the spatial counterparts' `O(n log n)`
//! energy (see `BENCH_pram.json` and DESIGN.md).

use crate::engine::{PramEngine, PramRun};
use rand::Rng;
use spatial_euler::tour::{down, up, ChildOrder, EulerTour, END};
use spatial_tree::{NodeId, Tree};

/// Rank value for elements that are not on the list.
const UNRANKED: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Random-mate list ranking
// ---------------------------------------------------------------------

/// PRAM random-mate list ranking (Anderson–Miller, the algorithm §IV
/// adapts) as a reusable engine: `O(n)` work ⇒ `Θ(n^{3/2})` simulated
/// energy, `O(log n)` PRAM steps.
///
/// The list (`END`-terminated successor array + start element) is
/// fixed at construction; [`PramListRanker::rank`] re-ranks it with
/// fresh randomness, allocation-free — the splice log is three flat
/// arrays with per-round end offsets, the same discipline as
/// `spatial_euler::RankingEngine`.
pub struct PramListRanker {
    next0: Vec<u32>,
    start: u32,
    /// Elements on the list, in id order (the initial alive set).
    alive0: Vec<u32>,
    /// Contract until at most this many elements remain (the seed's
    /// bound, computed from the *array* length).
    threshold: usize,

    // ---- Per-run state (reset at the top of `rank`). ----
    nxt: Vec<u32>,
    prev: Vec<u32>,
    weight: Vec<u64>,
    coin: Vec<bool>,
    dead: Vec<bool>,
    alive: Vec<u32>,
    ranks: Vec<u64>,

    // ---- Flat splice log (replaces the seed's Vec<Vec<(…)>>). ----
    splice_mid: Vec<u32>,
    splice_left: Vec<u32>,
    splice_weight: Vec<u64>,
    round_ends: Vec<u32>,
    selected: Vec<u32>,
    rounds: u32,
}

impl PramListRanker {
    /// Prepares the ranker for the list `next` starting at `start`.
    /// All arrays are allocated here; [`PramListRanker::rank`] never
    /// allocates.
    pub fn new(next: &[u32], start: u32) -> Self {
        let n = next.len();
        let mut membership = vec![false; n];
        if start != END {
            let mut at = start;
            while at != END {
                debug_assert!(!membership[at as usize], "cycle in list");
                membership[at as usize] = true;
                at = next[at as usize];
            }
        }
        let alive0: Vec<u32> = (0..n as u32).filter(|&v| membership[v as usize]).collect();
        let list_len = alive0.len();
        let threshold = (2 * (usize::BITS - n.leading_zeros()) as usize).max(4);
        PramListRanker {
            next0: next.to_vec(),
            start,
            alive0,
            threshold,
            nxt: vec![END; n],
            prev: vec![END; n],
            weight: vec![1u64; n],
            coin: vec![false; n],
            dead: vec![false; n],
            alive: Vec::with_capacity(list_len),
            ranks: vec![UNRANKED; n],
            splice_mid: Vec::with_capacity(list_len),
            splice_left: Vec::with_capacity(list_len),
            splice_weight: Vec::with_capacity(list_len),
            round_ends: Vec::with_capacity(64),
            selected: Vec::with_capacity(list_len),
            rounds: 0,
        }
    }

    /// Number of elements on the list.
    pub fn list_len(&self) -> usize {
        self.alive0.len()
    }

    /// The ranks of the most recent [`PramListRanker::rank`] run
    /// (`u64::MAX` off-list, or everywhere before the first run).
    pub fn ranks(&self) -> &[u64] {
        &self.ranks
    }

    fn reset(&mut self) {
        self.nxt.copy_from_slice(&self.next0);
        self.prev.fill(END);
        for &v in &self.alive0 {
            let w = self.nxt[v as usize];
            if w != END {
                self.prev[w as usize] = v;
            }
        }
        self.weight.fill(1);
        self.dead.fill(false);
        self.alive.clear();
        self.alive.extend_from_slice(&self.alive0);
        self.ranks.fill(UNRANKED);
        self.splice_mid.clear();
        self.splice_left.clear();
        self.splice_weight.clear();
        self.round_ends.clear();
        self.rounds = 0;
    }

    /// Ranks the list, charging every shared-memory access on the
    /// session (processor `i` owns element `i`; the list arrays live
    /// in cells `0..n`, so the session's machine must have at least
    /// `n` cells). Returns the number of contraction rounds; read the
    /// ranks via [`PramListRanker::ranks`]. The rng affects only
    /// costs, never ranks.
    pub fn rank<R: Rng>(&mut self, run: &mut PramRun<'_>, rng: &mut R) -> u32 {
        self.reset();
        if self.start == END {
            return 0;
        }
        let start = self.start;
        assert!(
            self.next0.len() as u32 <= run.cells(),
            "need one cell per list element"
        );

        // ---- Contract until O(log n) elements remain. ----
        while self.alive.len() > self.threshold {
            // Every alive element flips a coin, publishes it (one
            // write), and reads its successor's cell — the seed's
            // per-element charges, folded into two batches.
            for &v in &self.alive {
                self.coin[v as usize] = rng.gen();
            }
            let Self { alive, nxt, .. } = &*self;
            run.write_batch(alive.iter().map(|&v| (v, v)));
            run.read_batch(
                alive
                    .iter()
                    .filter(|&&v| nxt[v as usize] != END)
                    .map(|&v| (v, nxt[v as usize])),
            );
            run.end_step();

            // Select: heads whose predecessor flipped tails (never the
            // start element — it anchors the ranking), evaluated
            // against the pre-splice pointers.
            self.selected.clear();
            for &v in &self.alive {
                if v != start
                    && self.coin[v as usize]
                    && self.prev[v as usize] != END
                    && !self.coin[self.prev[v as usize] as usize]
                {
                    self.selected.push(v);
                }
            }

            // Splice each selected element out. The selected set is
            // independent (a head whose predecessor is a tail), so no
            // two splices share a neighbour and the batched charges
            // below can read `prev`/`nxt` after the whole mutation
            // pass: `prev[mid]` is untouched and `nxt[prev[mid]]` is
            // the spliced-in right neighbour.
            for &mid in &self.selected {
                let left = self.prev[mid as usize];
                let right = self.nxt[mid as usize];
                debug_assert_ne!(left, END);
                if right != END {
                    self.prev[right as usize] = left;
                }
                self.nxt[left as usize] = right;
                self.weight[left as usize] += self.weight[mid as usize];
                self.splice_mid.push(mid);
                self.splice_left.push(left);
                self.splice_weight.push(self.weight[mid as usize]);
                self.dead[mid as usize] = true;
            }
            // left reads mid's pointer+weight, left publishes, right
            // learns its new prev — the seed's three charges per splice.
            let Self {
                selected,
                prev,
                nxt,
                ..
            } = &*self;
            run.read_batch(selected.iter().map(|&mid| (prev[mid as usize], mid)));
            run.write_batch(
                selected
                    .iter()
                    .map(|&mid| (prev[mid as usize], prev[mid as usize])),
            );
            run.write_batch(
                selected
                    .iter()
                    .filter(|&&mid| nxt[prev[mid as usize] as usize] != END)
                    .map(|&mid| (mid, nxt[prev[mid as usize] as usize])),
            );
            run.end_step();
            self.round_ends.push(self.splice_mid.len() as u32);
            self.rounds += 1;

            let Self { alive, dead, .. } = &mut *self;
            alive.retain(|&v| !dead[v as usize]);
        }

        // ---- Sequential base case: walk the remaining list, one ----
        // ---- self-read per element.                              ----
        let mut at = start;
        let mut acc = 0u64;
        while at != END {
            self.ranks[at as usize] = acc;
            acc += self.weight[at as usize];
            at = self.nxt[at as usize];
        }
        let nxt = &self.nxt;
        run.read_batch(
            std::iter::successors(Some(start), |&v| {
                let w = nxt[v as usize];
                (w != END).then_some(w)
            })
            .map(|v| (v, v)),
        );
        run.end_step();

        // ---- Uncontraction: undo rounds in reverse; all splices of ----
        // ---- one round resolve in one step (independent set).      ----
        for round in (0..self.rounds as usize).rev() {
            let lo = if round == 0 {
                0
            } else {
                self.round_ends[round - 1] as usize
            };
            let hi = self.round_ends[round] as usize;
            for i in lo..hi {
                let mid = self.splice_mid[i] as usize;
                let left = self.splice_left[i] as usize;
                self.weight[left] -= self.splice_weight[i];
                self.ranks[mid] = self.ranks[left] + self.weight[left];
            }
            let Self {
                splice_mid,
                splice_left,
                ..
            } = &*self;
            run.read_batch((lo..hi).map(|i| (splice_mid[i], splice_left[i])));
            run.end_step();
        }

        self.rounds
    }
}

// ---------------------------------------------------------------------
// Blelloch prefix sums
// ---------------------------------------------------------------------

/// PRAM Blelloch exclusive prefix sum as a reusable engine: `O(n)`
/// work, `O(log n)` steps ⇒ `Θ(n^{3/2})` simulated energy.
///
/// The padded work array is retained; once it has grown to the largest
/// input seen, [`PramPrefixSummer::run`] performs no heap allocation.
#[derive(Default)]
pub struct PramPrefixSummer {
    a: Vec<u64>,
    out_len: usize,
}

impl PramPrefixSummer {
    /// Summer pre-sized for inputs of up to `capacity` values.
    pub fn with_capacity(capacity: usize) -> Self {
        PramPrefixSummer {
            a: Vec::with_capacity(capacity.next_power_of_two()),
            out_len: 0,
        }
    }

    /// The sums of the most recent [`PramPrefixSummer::run`].
    pub fn sums(&self) -> &[u64] {
        &self.a[..self.out_len]
    }

    /// Computes the exclusive prefix sums of `values`, charging the
    /// session (processor and cell `i` own element `i`; the machine
    /// must have at least `values.len()` cells). Returns the sums
    /// (also available via [`PramPrefixSummer::sums`]).
    pub fn run(&mut self, run: &mut PramRun<'_>, values: &[u64]) -> &[u64] {
        let n = values.len();
        self.out_len = n;
        self.a.clear();
        if n == 0 {
            return &self.a;
        }
        assert!(n as u32 <= run.cells(), "need one cell per value");
        let padded = n.next_power_of_two();
        self.a.extend_from_slice(values);
        self.a.resize(padded, 0);
        let a = &mut self.a;

        // Up-sweep: one read + one write per touched in-range index.
        let mut stride = 1usize;
        while stride < padded {
            let step = stride * 2;
            for i in (step - 1..padded).step_by(step) {
                a[i] += a[i - stride];
            }
            let touched = (step - 1..padded).step_by(step).filter(|&i| i < n);
            run.read_batch(
                touched
                    .clone()
                    .map(|i| (i as u32, ((i - stride).min(n - 1)) as u32)),
            );
            run.write_batch(touched.map(|i| (i as u32, i as u32)));
            run.end_step();
            stride = step;
        }
        a[padded - 1] = 0;

        // Down-sweep.
        stride = padded / 2;
        while stride >= 1 {
            let step = stride * 2;
            for i in (step - 1..padded).step_by(step) {
                let left = a[i - stride];
                a[i - stride] = a[i];
                a[i] += left;
            }
            let touched = (step - 1..padded).step_by(step).filter(|&i| i < n);
            run.read_batch(
                touched
                    .clone()
                    .map(|i| (i as u32, ((i - stride).min(n - 1)) as u32)),
            );
            run.write_batch(touched.map(|i| (i as u32, i as u32)));
            run.end_step();
            stride /= 2;
        }
        &self.a[..n]
    }
}

// ---------------------------------------------------------------------
// Euler-tour subtree sums
// ---------------------------------------------------------------------

/// PRAM bottom-up subtree sums (`u64` addition) via Euler tour + list
/// ranking + prefix sums — the classic work-optimal construction the
/// paper's §I-C compares against. `Θ(n^{3/2})` simulated energy.
///
/// The Euler tour, the list ranker, the prefix summer, and the scatter
/// buffers are built once per tree; [`PramTreefix::subtree_sums`] is
/// allocation-free after one warm-up run. The session's machine needs
/// at least `2n` cells (one per dart).
pub struct PramTreefix {
    ranker: PramListRanker,
    prefix: PramPrefixSummer,
    by_rank: Vec<u64>,
    out: Vec<u64>,
    root: NodeId,
    n: u32,
}

impl PramTreefix {
    /// Prepares the engine for `tree` (natural child order, matching
    /// the seed).
    pub fn new(tree: &Tree) -> Self {
        let n = tree.n();
        let (ranker, len) = if n == 1 {
            (PramListRanker::new(&[], END), 0)
        } else {
            let tour = EulerTour::new(tree, ChildOrder::Natural);
            (
                PramListRanker::new(tour.next_darts(), tour.start()),
                (2 * (n - 1)) as usize,
            )
        };
        PramTreefix {
            ranker,
            prefix: PramPrefixSummer::with_capacity(len),
            by_rank: vec![0u64; len],
            out: Vec::with_capacity(n as usize),
            root: tree.root(),
            n,
        }
    }

    /// The sums of the most recent run.
    pub fn sums(&self) -> &[u64] {
        &self.out
    }

    /// Computes every vertex's subtree sum of `values`, charging the
    /// engine. Returns the sums (also via [`PramTreefix::sums`]).
    pub fn subtree_sums<R: Rng>(
        &mut self,
        pram: &mut PramEngine,
        values: &[u64],
        rng: &mut R,
    ) -> &[u64] {
        let n = self.n;
        assert_eq!(values.len() as u32, n);
        self.out.clear();
        if n == 1 {
            self.out.push(values[0]);
            return &self.out;
        }
        let mut run = pram.run();
        let cells = run.cells();
        self.ranker.rank(&mut run, rng);
        let ranks = self.ranker.ranks();

        // Scatter: value of v at its down dart's rank (one write per
        // dart).
        self.by_rank.fill(0);
        for v in 0..n {
            if v != self.root {
                self.by_rank[ranks[down(v) as usize] as usize] = values[v as usize];
            }
        }
        let root = self.root;
        run.write_batch(
            (0..n)
                .filter(|&v| v != root)
                .map(|v| (v, ranks[down(v) as usize] as u32 % cells)),
        );
        run.end_step();

        let prefix = self.prefix.run(&mut run, &self.by_rank);

        // sum(v) = val(v) + (prefix over the tour span of v) — two
        // reads per non-root vertex.
        let total: u64 = values.iter().sum();
        for v in 0..n {
            if v == root {
                self.out.push(total);
            } else {
                let lo = ranks[down(v) as usize] as usize;
                let hi = ranks[up(v) as usize] as usize;
                // Exclusive prefix: sum over darts in [lo, hi) plus v.
                self.out
                    .push(values[v as usize] + (prefix[hi] - prefix[lo] - values[v as usize]));
            }
        }
        run.read_batch((0..n).filter(|&v| v != root).flat_map(|v| {
            let lo = ranks[down(v) as usize] as u32 % cells;
            let hi = ranks[up(v) as usize] as u32 % cells;
            [(v, lo), (v, hi)]
        }));
        run.finish();
        &self.out
    }
}

// ---------------------------------------------------------------------
// Sparse-table batched LCA
// ---------------------------------------------------------------------

/// PRAM batched LCA via Euler tour + sparse-table RMQ (`O(n log n)`
/// work): the standard shared-memory construction. Simulated energy
/// `Θ(n^{3/2} log n)`.
///
/// The paper's `O(n)`-work Schieber–Vishkin variant would shave a log
/// factor off the energy but not change the `n^{3/2}` shape — see
/// DESIGN.md. Tour, ranker, visit/first/table storage, and the answer
/// buffer are retained; [`PramLcaBatch::run`] is allocation-free after
/// warm-up (for query batches no larger than the warm-up's).
pub struct PramLcaBatch {
    ranker: PramListRanker,
    depths: Vec<u32>,
    parent: Vec<NodeId>,
    /// Vertex visit sequence (position 0 = root, then one entry per
    /// dart arrival) and first-occurrence positions, rebuilt per run.
    visit: Vec<NodeId>,
    first: Vec<u32>,
    /// Flat sparse table, `levels` rows of `len` entries.
    table: Vec<NodeId>,
    levels: usize,
    len: usize,
    answers: Vec<NodeId>,
    root: NodeId,
    n: u32,
}

impl PramLcaBatch {
    /// Prepares the engine for `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.n();
        let (ranker, len) = if n == 1 {
            (PramListRanker::new(&[], END), 1)
        } else {
            let tour = EulerTour::new(tree, ChildOrder::Natural);
            (
                PramListRanker::new(tour.next_darts(), tour.start()),
                2 * (n as usize - 1) + 1,
            )
        };
        let levels = (usize::BITS - len.leading_zeros()) as usize;
        let parent = (0..n)
            .map(|v| tree.parent(v).unwrap_or(tree.root()))
            .collect();
        PramLcaBatch {
            ranker,
            depths: tree.depths(),
            parent,
            visit: vec![tree.root(); len],
            first: vec![0u32; n as usize],
            table: vec![0 as NodeId; levels * len],
            levels,
            len,
            answers: Vec::new(),
            root: tree.root(),
            n,
        }
    }

    /// The answers of the most recent run.
    pub fn answers(&self) -> &[NodeId] {
        &self.answers
    }

    /// Answers every `(a, b)` query with the LCA of `a` and `b`,
    /// charging the engine (needs at least `2n` cells — the ranker
    /// addresses the full dart array). Returns
    /// the answers (also via [`PramLcaBatch::answers`]).
    pub fn run<R: Rng>(
        &mut self,
        pram: &mut PramEngine,
        queries: &[(NodeId, NodeId)],
        rng: &mut R,
    ) -> &[NodeId] {
        self.answers.clear();
        if self.n == 1 {
            self.answers.extend(queries.iter().map(|_| self.root));
            return &self.answers;
        }
        let n = self.n;
        let mut run = pram.run();
        let cells = run.cells();
        self.ranker.rank(&mut run, rng);
        let ranks = self.ranker.ranks();

        // Visit sequence + first occurrences from the dart ranks.
        self.visit.fill(self.root);
        for v in 0..n {
            if v != self.root {
                let d_rank = ranks[down(v) as usize] as usize + 1;
                self.visit[d_rank] = v;
                self.first[v as usize] = d_rank as u32;
                let u_rank = ranks[up(v) as usize] as usize + 1;
                self.visit[u_rank] = self.parent[v as usize];
            }
        }

        // Sparse table build: O(len log len) writes, one step per row.
        let (len, levels) = (self.len, self.levels);
        let depths = &self.depths;
        let key = |v: NodeId| (depths[v as usize], v);
        self.table[..len].copy_from_slice(&self.visit);
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let (lower, upper) = self.table.split_at_mut(k * len);
            let prev = &lower[(k - 1) * len..];
            let row = &mut upper[..len];
            for (i, slot) in row.iter_mut().enumerate() {
                let j = (i + half).min(len - 1);
                *slot = if key(prev[i]) <= key(prev[j]) {
                    prev[i]
                } else {
                    prev[j]
                };
            }
            run.write_batch((0..len).map(|i| ((i as u32) % n, (i as u32) % cells)));
            run.end_step();
        }

        // Queries: two table reads each.
        for &(a, b) in queries {
            let (mut lo, mut hi) = (
                self.first[a as usize] as usize,
                self.first[b as usize] as usize,
            );
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let k = (usize::BITS - 1 - (hi - lo + 1).leading_zeros()) as usize;
            let x = self.table[k * len + lo];
            let y = self.table[k * len + hi + 1 - (1 << k)];
            self.answers.push(if key(x) <= key(y) { x } else { y });
        }
        let first = &self.first;
        run.read_batch(queries.iter().enumerate().flat_map(|(qi, &(a, b))| {
            let (mut lo, mut hi) = (first[a as usize], first[b as usize]);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let proc = (qi as u32) % n;
            [(proc, lo % cells), (proc, hi % cells)]
        }));
        run.finish();
        &self.answers
    }
}

// ---------------------------------------------------------------------
// One-shot wrappers (the E8 harness entry points)
// ---------------------------------------------------------------------

/// One-shot PRAM random-mate list ranking over `pram`. Callers that
/// re-rank the same list should hold a [`PramListRanker`].
pub fn pram_list_rank<R: Rng>(
    pram: &mut PramEngine,
    next: &[u32],
    start: u32,
    rng: &mut R,
) -> Vec<u64> {
    let mut ranker = PramListRanker::new(next, start);
    let mut run = pram.run();
    ranker.rank(&mut run, rng);
    run.finish();
    ranker.ranks().to_vec()
}

/// One-shot PRAM Blelloch exclusive prefix sum over `pram`.
pub fn pram_prefix_sum(pram: &mut PramEngine, values: &[u64]) -> Vec<u64> {
    let mut summer = PramPrefixSummer::with_capacity(values.len());
    let mut run = pram.run();
    summer.run(&mut run, values);
    run.finish();
    summer.sums().to_vec()
}

/// One-shot PRAM bottom-up subtree sums over `pram` (needs `≥ 2n`
/// cells). Callers that re-run the same tree should hold a
/// [`PramTreefix`].
pub fn pram_subtree_sums<R: Rng>(
    pram: &mut PramEngine,
    tree: &Tree,
    values: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let mut engine = PramTreefix::new(tree);
    engine.subtree_sums(pram, values, rng).to_vec()
}

/// One-shot PRAM batched LCA over `pram` (needs `≥ 2n` cells).
/// Callers that re-query the same tree should hold a [`PramLcaBatch`].
pub fn pram_lca_batch<R: Rng>(
    pram: &mut PramEngine,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> Vec<NodeId> {
    let mut engine = PramLcaBatch::new(tree);
    engine.run(pram, queries, rng).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    #[test]
    fn list_rank_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 500] {
            let mut order: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut next = vec![END; n];
            for w in order.windows(2) {
                next[w[0] as usize] = w[1];
            }
            let mut pram = PramEngine::new(n as u32, n as u32, &mut rng);
            let got = pram_list_rank(&mut pram, &next, order[0], &mut rng);
            let expect = spatial_euler::rank_sequential(&next, order[0]);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn prefix_sum_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..777).map(|_| rng.gen_range(0..50)).collect();
        let mut pram = PramEngine::new(1024, 1024, &mut rng);
        let got = pram_prefix_sum(&mut pram, &values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(got[i], acc, "index {i}");
            acc += v;
        }
    }

    #[test]
    fn subtree_sums_match_host() {
        let mut rng = StdRng::seed_from_u64(3);
        for fam in [
            generators::TreeFamily::UniformRandom,
            generators::TreeFamily::Comb,
            generators::TreeFamily::Star,
        ] {
            let t = fam.generate(200, &mut rng);
            let n = t.n();
            let values: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
            let mut pram = PramEngine::new(2 * n, 2 * n, &mut rng);
            let got = pram_subtree_sums(&mut pram, &t, &values, &mut rng);
            // Verify against a host bottom-up accumulation.
            let mut expect = values.clone();
            let order = spatial_tree::traversal::bfs_order(&t);
            for &v in order.iter().rev() {
                if let Some(p) = t.parent(v) {
                    expect[p as usize] += expect[v as usize];
                }
            }
            assert_eq!(got, expect, "{fam}");
        }
    }

    #[test]
    fn reused_treefix_engine_is_stable() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = generators::random_binary(400, &mut rng);
        let values: Vec<u64> = (0..400u64).collect();
        let mut pram = PramEngine::new(800, 800, &mut rng);
        let mut engine = PramTreefix::new(&t);
        let first = engine.subtree_sums(&mut pram, &values, &mut rng).to_vec();
        for _ in 0..3 {
            let again = engine.subtree_sums(&mut pram, &values, &mut rng);
            assert_eq!(again, &first[..], "reuse must not change results");
        }
    }

    #[test]
    fn lca_matches_naive() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generators::uniform_random(300, &mut rng);
        let queries: Vec<(NodeId, NodeId)> = (0..100)
            .map(|_| (rng.gen_range(0..300), rng.gen_range(0..300)))
            .collect();
        let mut pram = PramEngine::new(600, 600, &mut rng);
        let got = pram_lca_batch(&mut pram, &t, &queries, &mut rng);
        let host = naive_lca(&t, &queries);
        assert_eq!(got, host);
    }

    fn naive_lca(t: &Tree, queries: &[(NodeId, NodeId)]) -> Vec<NodeId> {
        // Naive parent-walking reference.
        let depth = t.depths();
        queries
            .iter()
            .map(|&(mut u, mut v)| {
                while depth[u as usize] > depth[v as usize] {
                    u = t.parent(u).unwrap();
                }
                while depth[v as usize] > depth[u as usize] {
                    v = t.parent(v).unwrap();
                }
                while u != v {
                    u = t.parent(u).unwrap();
                    v = t.parent(v).unwrap();
                }
                u
            })
            .collect()
    }

    #[test]
    fn single_vertex_tree() {
        let t = spatial_tree::Tree::from_parents(0, vec![spatial_tree::NIL]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut pram = PramEngine::new(2, 2, &mut rng);
        assert_eq!(pram_subtree_sums(&mut pram, &t, &[7], &mut rng), vec![7]);
        assert_eq!(
            pram_lca_batch(&mut pram, &t, &[(0, 0), (0, 0)], &mut rng),
            vec![0, 0]
        );
        assert_eq!(pram.report().energy, 0, "no charges on trivial trees");
        assert_eq!(pram.steps(), 0);
    }

    #[test]
    fn energy_is_three_halves() {
        // The headline: PRAM treefix energy/n^{3/2} flat, and much worse
        // than linear in n.
        let mut ratios = Vec::new();
        for log_n in [9u32, 11] {
            let n = 1u32 << log_n;
            let mut rng = StdRng::seed_from_u64(5);
            let t = generators::random_binary(n, &mut rng);
            let values = vec![1u64; n as usize];
            let mut pram = PramEngine::new(2 * n, 2 * n, &mut rng);
            pram_subtree_sums(&mut pram, &t, &values, &mut rng);
            ratios.push(pram.report().energy_per_n_three_halves(n as u64));
        }
        let (lo, hi) = (ratios[0].min(ratios[1]), ratios[0].max(ratios[1]));
        assert!(
            hi / lo < 3.0,
            "PRAM energy/n^1.5 should be near-flat: {ratios:?}"
        );
    }
}
