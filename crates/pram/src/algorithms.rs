//! Work-optimal(ish) PRAM algorithms, charged on the simulation machine.
//!
//! These are the baselines of experiment E8. Each returns both the
//! result (verified against host references in tests) and leaves its
//! cost on the [`PramMachine`] meter. The shapes to observe:
//! `Θ(n^{3/2})` energy (every access pays `Θ(√n)`) and `O(log^k n)`
//! depth from the per-step routing overhead.

use crate::pram::PramMachine;
use rand::Rng;
use spatial_euler::tour::{down, up, ChildOrder, EulerTour, END};
use spatial_tree::{NodeId, Tree};

/// PRAM random-mate list ranking (Anderson–Miller, the algorithm §IV
/// adapts): `O(n)` work ⇒ `Θ(n^{3/2})` simulated energy, `O(log n)`
/// PRAM steps.
///
/// `next` is `END`-terminated; returns the rank of each list element
/// (`u64::MAX` off-list).
pub fn pram_list_rank<R: Rng>(
    pram: &mut PramMachine,
    next: &[u32],
    start: u32,
    rng: &mut R,
) -> Vec<u64> {
    let n = next.len();
    let mut ranks = vec![u64::MAX; n];
    if start == END {
        return ranks;
    }
    // Mirror of the spatial algorithm, but every pointer/weight access
    // is a shared-memory access (processor i owns element i; the list
    // arrays live in cells 0..n).
    let mut membership = vec![false; n];
    let mut at = start;
    while at != END {
        membership[at as usize] = true;
        at = next[at as usize];
    }
    let mut alive: Vec<u32> = (0..n as u32).filter(|&v| membership[v as usize]).collect();
    let mut nxt = next.to_vec();
    let mut prev = vec![END; n];
    for &v in &alive {
        if nxt[v as usize] != END {
            prev[nxt[v as usize] as usize] = v;
        }
    }
    let mut weight = vec![1u64; n];
    let mut coin = vec![false; n];
    let threshold = (2 * (usize::BITS - n.leading_zeros()) as usize).max(4);
    let mut history: Vec<Vec<(u32, u32, u64)>> = Vec::new();

    while alive.len() > threshold {
        for &v in &alive {
            coin[v as usize] = rng.gen();
            // Publish the coin; successor reads it.
            pram.write(v, v);
            if nxt[v as usize] != END {
                pram.read(v, nxt[v as usize]);
            }
        }
        pram.end_step();

        let selected: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|&v| {
                v != start
                    && coin[v as usize]
                    && prev[v as usize] != END
                    && !coin[prev[v as usize] as usize]
            })
            .collect();
        let mut splices = Vec::with_capacity(selected.len());
        for &mid in &selected {
            let left = prev[mid as usize];
            let right = nxt[mid as usize];
            // left reads mid's pointer+weight, right learns its new prev.
            pram.read(left, mid);
            pram.write(left, left);
            if right != END {
                pram.write(mid, right);
                prev[right as usize] = left;
            }
            nxt[left as usize] = right;
            weight[left as usize] += weight[mid as usize];
            splices.push((mid, left, weight[mid as usize]));
        }
        pram.end_step();
        history.push(splices);
        let removed: std::collections::HashSet<u32> = selected.into_iter().collect();
        alive.retain(|v| !removed.contains(v));
    }

    // Sequential base case.
    let mut at = start;
    let mut acc = 0u64;
    while at != END {
        ranks[at as usize] = acc;
        acc += weight[at as usize];
        pram.read(at, at);
        at = nxt[at as usize];
    }
    pram.end_step();

    for splices in history.into_iter().rev() {
        for &(mid, left, w_mid) in &splices {
            weight[left as usize] -= w_mid;
            ranks[mid as usize] = ranks[left as usize] + weight[left as usize];
            pram.read(mid, left);
        }
        pram.end_step();
    }
    ranks
}

/// PRAM Blelloch exclusive prefix sum over `values`: `O(n)` work,
/// `O(log n)` steps ⇒ `Θ(n^{3/2})` simulated energy.
pub fn pram_prefix_sum(pram: &mut PramMachine, values: &[u64]) -> Vec<u64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let padded = n.next_power_of_two();
    let mut a = values.to_vec();
    a.resize(padded, 0);

    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        for i in (step - 1..padded).step_by(step) {
            if i < n {
                pram.read(i as u32, (i - stride).min(n - 1) as u32);
                pram.write(i as u32, i as u32);
            }
            a[i] += a[i - stride];
        }
        pram.end_step();
        stride = step;
    }
    a[padded - 1] = 0;
    stride = padded / 2;
    while stride >= 1 {
        let step = stride * 2;
        for i in (step - 1..padded).step_by(step) {
            if i < n {
                pram.read(i as u32, (i - stride).min(n - 1) as u32);
                pram.write(i as u32, i as u32);
            }
            let left = a[i - stride];
            a[i - stride] = a[i];
            a[i] += left;
        }
        pram.end_step();
        stride /= 2;
    }
    a.truncate(n);
    a
}

/// PRAM bottom-up subtree sums (`u64` addition) via Euler tour + list
/// ranking + prefix sums — the classic work-optimal construction the
/// paper's §I-C compares against. `Θ(n^{3/2})` simulated energy.
pub fn pram_subtree_sums<R: Rng>(
    pram: &mut PramMachine,
    tree: &Tree,
    values: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let n = tree.n();
    assert_eq!(values.len() as u32, n);
    if n == 1 {
        return vec![values[0]];
    }
    let tour = EulerTour::new(tree, ChildOrder::Natural);
    let ranks = pram_list_rank(pram, tour.next_darts(), tour.start(), rng);

    // Scatter: value of v at its down dart's rank (one write per dart).
    let len = (2 * (n - 1)) as usize;
    let mut by_rank = vec![0u64; len];
    for v in tree.vertices() {
        if v != tree.root() {
            by_rank[ranks[down(v) as usize] as usize] = values[v as usize];
            pram.write(v, ranks[down(v) as usize] as u32 % pram.cells());
        }
    }
    pram.end_step();

    let prefix = pram_prefix_sum(pram, &by_rank);
    // sum(v) = val(v) + (prefix over the tour span of v) — two reads.
    let total: u64 = values.iter().sum();
    (0..n)
        .map(|v| {
            if v == tree.root() {
                total
            } else {
                let lo = ranks[down(v) as usize] as usize;
                let hi = ranks[up(v) as usize] as usize;
                pram.read(v, lo as u32 % pram.cells());
                pram.read(v, hi as u32 % pram.cells());
                // Exclusive prefix: sum over darts in [lo, hi) plus v.
                values[v as usize] + (prefix[hi] - prefix[lo] - values[v as usize])
            }
        })
        .collect()
}

/// PRAM batched LCA via Euler tour + sparse-table RMQ (`O(n log n)`
/// work): the standard shared-memory construction. Simulated energy
/// `Θ(n^{3/2} log n)`.
pub fn pram_lca_batch<R: Rng>(
    pram: &mut PramMachine,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> Vec<NodeId> {
    let n = tree.n();
    if n == 1 {
        return queries.iter().map(|_| tree.root()).collect();
    }
    let tour = EulerTour::new(tree, ChildOrder::Natural);
    let ranks = pram_list_rank(pram, tour.next_darts(), tour.start(), rng);

    // Vertex visit sequence: position 0 is the root, then one entry per
    // dart arrival; depth-sequence RMQ gives the LCA.
    let depths = tree.depths();
    let len = 2 * (n as usize - 1) + 1;
    let mut visit = vec![tree.root(); len];
    let mut first = vec![0usize; n as usize];
    for v in tree.vertices() {
        if v != tree.root() {
            let d_rank = ranks[down(v) as usize] as usize + 1;
            visit[d_rank] = v;
            first[v as usize] = d_rank;
            let u_rank = ranks[up(v) as usize] as usize + 1;
            visit[u_rank] = tree.parent(v).expect("non-root");
        }
    }
    // Sparse table build: O(len log len) writes.
    let levels = (usize::BITS - len.leading_zeros()) as usize;
    let key = |v: NodeId| (depths[v as usize], v);
    let mut table = vec![visit.clone()];
    for k in 1..levels {
        let half = 1usize << (k - 1);
        let prev = &table[k - 1];
        let row: Vec<NodeId> = (0..len)
            .map(|i| {
                let j = (i + half).min(len - 1);
                if key(prev[i]) <= key(prev[j]) {
                    prev[i]
                } else {
                    prev[j]
                }
            })
            .collect();
        for i in 0..len {
            pram.write((i as u32) % n, (i as u32) % pram.cells());
        }
        pram.end_step();
        table.push(row);
    }

    queries
        .iter()
        .enumerate()
        .map(|(qi, &(a, b))| {
            let (mut lo, mut hi) = (first[a as usize], first[b as usize]);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let k = (usize::BITS - 1 - (hi - lo + 1).leading_zeros()) as usize;
            let proc = (qi as u32) % n;
            pram.read(proc, (lo as u32) % pram.cells());
            pram.read(proc, (hi as u32) % pram.cells());
            let x = table[k][lo];
            let y = table[k][hi + 1 - (1 << k)];
            if key(x) <= key(y) {
                x
            } else {
                y
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    #[test]
    fn list_rank_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 500] {
            let mut order: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut next = vec![END; n];
            for w in order.windows(2) {
                next[w[0] as usize] = w[1];
            }
            let mut pram = PramMachine::new(n as u32, n as u32, &mut rng);
            let got = pram_list_rank(&mut pram, &next, order[0], &mut rng);
            let expect = spatial_euler::rank_sequential(&next, order[0]);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn prefix_sum_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..777).map(|_| rng.gen_range(0..50)).collect();
        let mut pram = PramMachine::new(1024, 1024, &mut rng);
        let got = pram_prefix_sum(&mut pram, &values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(got[i], acc, "index {i}");
            acc += v;
        }
    }

    #[test]
    fn subtree_sums_match_host() {
        let mut rng = StdRng::seed_from_u64(3);
        for fam in [
            generators::TreeFamily::UniformRandom,
            generators::TreeFamily::Comb,
            generators::TreeFamily::Star,
        ] {
            let t = fam.generate(200, &mut rng);
            let n = t.n();
            let values: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
            let mut pram = PramMachine::new(2 * n, 2 * n, &mut rng);
            let got = pram_subtree_sums(&mut pram, &t, &values, &mut rng);
            let sizes = t.subtree_sizes();
            // Verify against a host bottom-up accumulation.
            let mut expect = values.clone();
            let order = spatial_tree::traversal::bfs_order(&t);
            for &v in order.iter().rev() {
                if let Some(p) = t.parent(v) {
                    expect[p as usize] += expect[v as usize];
                }
            }
            assert_eq!(got, expect, "{fam} sizes {:?}", &sizes[..3]);
        }
    }

    #[test]
    fn lca_matches_naive() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generators::uniform_random(300, &mut rng);
        let queries: Vec<(NodeId, NodeId)> = (0..100)
            .map(|_| (rng.gen_range(0..300), rng.gen_range(0..300)))
            .collect();
        let mut pram = PramMachine::new(600, 600, &mut rng);
        let got = pram_lca_batch(&mut pram, &t, &queries, &mut rng);
        let host = spatial_lca_reference(&t, &queries);
        assert_eq!(got, host);
    }

    fn spatial_lca_reference(t: &Tree, queries: &[(NodeId, NodeId)]) -> Vec<NodeId> {
        // Naive parent-walking reference.
        let depth = t.depths();
        queries
            .iter()
            .map(|&(mut u, mut v)| {
                while depth[u as usize] > depth[v as usize] {
                    u = t.parent(u).unwrap();
                }
                while depth[v as usize] > depth[u as usize] {
                    v = t.parent(v).unwrap();
                }
                while u != v {
                    u = t.parent(u).unwrap();
                    v = t.parent(v).unwrap();
                }
                u
            })
            .collect()
    }

    #[test]
    fn energy_is_three_halves() {
        // The headline: PRAM treefix energy/n^{3/2} flat, and much worse
        // than linear in n.
        let mut ratios = Vec::new();
        for log_n in [9u32, 11] {
            let n = 1u32 << log_n;
            let mut rng = StdRng::seed_from_u64(5);
            let t = generators::random_binary(n, &mut rng);
            let values = vec![1u64; n as usize];
            let mut pram = PramMachine::new(2 * n, 2 * n, &mut rng);
            pram_subtree_sums(&mut pram, &t, &values, &mut rng);
            ratios.push(pram.report().energy_per_n_three_halves(n as u64));
        }
        let (lo, hi) = (ratios[0].min(ratios[1]), ratios[0].max(ratios[1]));
        assert!(
            hi / lo < 3.0,
            "PRAM energy/n^1.5 should be near-flat: {ratios:?}"
        );
    }
}
