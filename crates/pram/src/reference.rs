//! The seed PRAM simulation — retained, unoptimized, as the
//! differential baseline for [`crate::PramEngine`].
//!
//! [`PramMachine`] charges every shared-memory access through the
//! machine's *atomic* bulk counters, one call per access, and the
//! algorithms below allocate freely (per-round `Vec`s, a removal
//! `HashSet`, a fresh sparse table per call). The flat-array engine in
//! [`crate::engine`] / [`crate::algorithms`] must stay **charge- and
//! result-identical** to this module; `tests/engine_vs_reference.rs`
//! pins energy, depth, messages, work, and step counts across seeds,
//! sizes, and non-power-of-two `processors ≠ cells` shapes.
//!
//! The only intentional post-seed change is the step-overhead bugfix
//! (shared with the engine): the seed computed `32 −
//! slots.leading_zeros()`, which charges `log₂(slots) + 1` rounds of
//! routing depth for exact powers of two — one round more than the
//! documented `O(log n)` per-step overhead. Both paths now use
//! `⌈log₂(slots)⌉` (at least 1); `step_overhead_pinned` pins the
//! corrected values at `slots ∈ {1, 2, 1024, 1025}`.

use rand::seq::SliceRandom;
use rand::Rng;
use spatial_euler::tour::{down, up, ChildOrder, EulerTour, END};
use spatial_model::{CostReport, CurveKind, Machine, Slot};
use spatial_tree::{NodeId, Tree};

/// Per-step routing overhead of the simulation: `⌈log₂(slots)⌉` rounds
/// of depth, at least one. Shared with [`crate::PramEngine`] so the two
/// paths cannot drift.
pub(crate) fn step_overhead_for(slots: u32) -> u32 {
    slots.next_power_of_two().trailing_zeros().max(1)
}

/// A simulated EREW/CREW PRAM on the spatial grid (the seed machine).
///
/// Processor `i` occupies grid slot `i`; memory cell `j` lives at a slot
/// chosen by a random permutation (the hashing that makes shared memory
/// location-oblivious). Each [`read`](PramMachine::read) /
/// [`write`](PramMachine::write) charges the Manhattan distance between
/// the processor and the cell; [`end_step`](PramMachine::end_step)
/// closes one synchronous PRAM step and charges the simulation's
/// poly-logarithmic routing overhead in depth.
pub struct PramMachine {
    machine: Machine,
    cell_slot: Vec<Slot>,
    step_overhead: u32,
    steps: u32,
}

impl PramMachine {
    /// Creates a PRAM with `processors` processors and `cells` shared
    /// memory cells, hashed over a grid of `max(processors, cells)`
    /// slots.
    pub fn new<R: Rng>(processors: u32, cells: u32, rng: &mut R) -> Self {
        let slots = processors.max(cells).max(1);
        let machine = Machine::on_curve(CurveKind::Hilbert, slots);
        let mut cell_slot: Vec<Slot> = (0..slots).collect();
        cell_slot.shuffle(rng);
        cell_slot.truncate(cells as usize);
        let step_overhead = step_overhead_for(slots);
        PramMachine {
            machine,
            cell_slot,
            step_overhead,
            steps: 0,
        }
    }

    /// Number of shared memory cells.
    pub fn cells(&self) -> u32 {
        self.cell_slot.len() as u32
    }

    /// Depth charged per synchronous step.
    pub fn step_overhead(&self) -> u32 {
        self.step_overhead
    }

    /// Charges a read of `cell` by `proc`: a request and a response
    /// message across the grid.
    pub fn read(&self, proc: u32, cell: u32) {
        let d = self.machine.dist(proc, self.cell_slot[cell as usize]);
        self.machine.charge_bulk(2 * d, 2, 1);
    }

    /// Charges a write to `cell` by `proc`: one message.
    pub fn write(&self, proc: u32, cell: u32) {
        let d = self.machine.dist(proc, self.cell_slot[cell as usize]);
        self.machine.charge_bulk(d, 1, 1);
    }

    /// Ends one synchronous PRAM step: the simulation's routing costs
    /// `O(log n)` depth per step (conservative; the paper quotes
    /// poly-log overall overhead).
    pub fn end_step(&mut self) {
        self.machine.advance_all(self.step_overhead);
        self.steps += 1;
    }

    /// Number of PRAM steps executed.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Cost snapshot of the underlying spatial machine.
    pub fn report(&self) -> CostReport {
        self.machine.report()
    }
}

/// Seed PRAM random-mate list ranking (Anderson–Miller, the algorithm
/// §IV adapts): `O(n)` work ⇒ `Θ(n^{3/2})` simulated energy, `O(log n)`
/// PRAM steps.
///
/// `next` is `END`-terminated; returns the rank of each list element
/// (`u64::MAX` off-list).
pub fn pram_list_rank<R: Rng>(
    pram: &mut PramMachine,
    next: &[u32],
    start: u32,
    rng: &mut R,
) -> Vec<u64> {
    let n = next.len();
    let mut ranks = vec![u64::MAX; n];
    if start == END {
        return ranks;
    }
    // Mirror of the spatial algorithm, but every pointer/weight access
    // is a shared-memory access (processor i owns element i; the list
    // arrays live in cells 0..n).
    let mut membership = vec![false; n];
    let mut at = start;
    while at != END {
        membership[at as usize] = true;
        at = next[at as usize];
    }
    let mut alive: Vec<u32> = (0..n as u32).filter(|&v| membership[v as usize]).collect();
    let mut nxt = next.to_vec();
    let mut prev = vec![END; n];
    for &v in &alive {
        if nxt[v as usize] != END {
            prev[nxt[v as usize] as usize] = v;
        }
    }
    let mut weight = vec![1u64; n];
    let mut coin = vec![false; n];
    let threshold = (2 * (usize::BITS - n.leading_zeros()) as usize).max(4);
    let mut history: Vec<Vec<(u32, u32, u64)>> = Vec::new();

    while alive.len() > threshold {
        for &v in &alive {
            coin[v as usize] = rng.gen();
            // Publish the coin; successor reads it.
            pram.write(v, v);
            if nxt[v as usize] != END {
                pram.read(v, nxt[v as usize]);
            }
        }
        pram.end_step();

        let selected: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|&v| {
                v != start
                    && coin[v as usize]
                    && prev[v as usize] != END
                    && !coin[prev[v as usize] as usize]
            })
            .collect();
        let mut splices = Vec::with_capacity(selected.len());
        for &mid in &selected {
            let left = prev[mid as usize];
            let right = nxt[mid as usize];
            // left reads mid's pointer+weight, right learns its new prev.
            pram.read(left, mid);
            pram.write(left, left);
            if right != END {
                pram.write(mid, right);
                prev[right as usize] = left;
            }
            nxt[left as usize] = right;
            weight[left as usize] += weight[mid as usize];
            splices.push((mid, left, weight[mid as usize]));
        }
        pram.end_step();
        history.push(splices);
        let removed: std::collections::HashSet<u32> = selected.into_iter().collect();
        alive.retain(|v| !removed.contains(v));
    }

    // Sequential base case.
    let mut at = start;
    let mut acc = 0u64;
    while at != END {
        ranks[at as usize] = acc;
        acc += weight[at as usize];
        pram.read(at, at);
        at = nxt[at as usize];
    }
    pram.end_step();

    for splices in history.into_iter().rev() {
        for &(mid, left, w_mid) in &splices {
            weight[left as usize] -= w_mid;
            ranks[mid as usize] = ranks[left as usize] + weight[left as usize];
            pram.read(mid, left);
        }
        pram.end_step();
    }
    ranks
}

/// Seed PRAM Blelloch exclusive prefix sum over `values`: `O(n)` work,
/// `O(log n)` steps ⇒ `Θ(n^{3/2})` simulated energy.
pub fn pram_prefix_sum(pram: &mut PramMachine, values: &[u64]) -> Vec<u64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let padded = n.next_power_of_two();
    let mut a = values.to_vec();
    a.resize(padded, 0);

    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        for i in (step - 1..padded).step_by(step) {
            if i < n {
                pram.read(i as u32, (i - stride).min(n - 1) as u32);
                pram.write(i as u32, i as u32);
            }
            a[i] += a[i - stride];
        }
        pram.end_step();
        stride = step;
    }
    a[padded - 1] = 0;
    stride = padded / 2;
    while stride >= 1 {
        let step = stride * 2;
        for i in (step - 1..padded).step_by(step) {
            if i < n {
                pram.read(i as u32, (i - stride).min(n - 1) as u32);
                pram.write(i as u32, i as u32);
            }
            let left = a[i - stride];
            a[i - stride] = a[i];
            a[i] += left;
        }
        pram.end_step();
        stride /= 2;
    }
    a.truncate(n);
    a
}

/// Seed PRAM bottom-up subtree sums (`u64` addition) via Euler tour +
/// list ranking + prefix sums — the classic work-optimal construction
/// the paper's §I-C compares against. `Θ(n^{3/2})` simulated energy.
pub fn pram_subtree_sums<R: Rng>(
    pram: &mut PramMachine,
    tree: &Tree,
    values: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let n = tree.n();
    assert_eq!(values.len() as u32, n);
    if n == 1 {
        return vec![values[0]];
    }
    let tour = EulerTour::new(tree, ChildOrder::Natural);
    let ranks = pram_list_rank(pram, tour.next_darts(), tour.start(), rng);

    // Scatter: value of v at its down dart's rank (one write per dart).
    let len = (2 * (n - 1)) as usize;
    let mut by_rank = vec![0u64; len];
    for v in tree.vertices() {
        if v != tree.root() {
            by_rank[ranks[down(v) as usize] as usize] = values[v as usize];
            pram.write(v, ranks[down(v) as usize] as u32 % pram.cells());
        }
    }
    pram.end_step();

    let prefix = pram_prefix_sum(pram, &by_rank);
    // sum(v) = val(v) + (prefix over the tour span of v) — two reads.
    let total: u64 = values.iter().sum();
    (0..n)
        .map(|v| {
            if v == tree.root() {
                total
            } else {
                let lo = ranks[down(v) as usize] as usize;
                let hi = ranks[up(v) as usize] as usize;
                pram.read(v, lo as u32 % pram.cells());
                pram.read(v, hi as u32 % pram.cells());
                // Exclusive prefix: sum over darts in [lo, hi) plus v.
                values[v as usize] + (prefix[hi] - prefix[lo] - values[v as usize])
            }
        })
        .collect()
}

/// Seed PRAM batched LCA via Euler tour + sparse-table RMQ (`O(n log
/// n)` work): the standard shared-memory construction. Simulated
/// energy `Θ(n^{3/2} log n)`.
pub fn pram_lca_batch<R: Rng>(
    pram: &mut PramMachine,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> Vec<NodeId> {
    let n = tree.n();
    if n == 1 {
        return queries.iter().map(|_| tree.root()).collect();
    }
    let tour = EulerTour::new(tree, ChildOrder::Natural);
    let ranks = pram_list_rank(pram, tour.next_darts(), tour.start(), rng);

    // Vertex visit sequence: position 0 is the root, then one entry per
    // dart arrival; depth-sequence RMQ gives the LCA.
    let depths = tree.depths();
    let len = 2 * (n as usize - 1) + 1;
    let mut visit = vec![tree.root(); len];
    let mut first = vec![0usize; n as usize];
    for v in tree.vertices() {
        if v != tree.root() {
            let d_rank = ranks[down(v) as usize] as usize + 1;
            visit[d_rank] = v;
            first[v as usize] = d_rank;
            let u_rank = ranks[up(v) as usize] as usize + 1;
            visit[u_rank] = tree.parent(v).expect("non-root");
        }
    }
    // Sparse table build: O(len log len) writes.
    let levels = (usize::BITS - len.leading_zeros()) as usize;
    let key = |v: NodeId| (depths[v as usize], v);
    let mut table = vec![visit.clone()];
    for k in 1..levels {
        let half = 1usize << (k - 1);
        let prev = &table[k - 1];
        let row: Vec<NodeId> = (0..len)
            .map(|i| {
                let j = (i + half).min(len - 1);
                if key(prev[i]) <= key(prev[j]) {
                    prev[i]
                } else {
                    prev[j]
                }
            })
            .collect();
        for i in 0..len {
            pram.write((i as u32) % n, (i as u32) % pram.cells());
        }
        pram.end_step();
        table.push(row);
    }

    queries
        .iter()
        .enumerate()
        .map(|(qi, &(a, b))| {
            let (mut lo, mut hi) = (first[a as usize], first[b as usize]);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let k = (usize::BITS - 1 - (hi - lo + 1).leading_zeros()) as usize;
            let proc = (qi as u32) % n;
            pram.read(proc, (lo as u32) % pram.cells());
            pram.read(proc, (hi as u32) % pram.cells());
            let x = table[k][lo];
            let y = table[k][hi + 1 - (1 << k)];
            if key(x) <= key(y) {
                x
            } else {
                y
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn accesses_cost_sqrt_n_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1u32 << 12;
        let mut pram = PramMachine::new(n, n, &mut rng);
        for p in 0..n {
            pram.read(p, (p * 7 + 13) % n);
        }
        pram.end_step();
        let r = pram.report();
        let mean = r.energy as f64 / n as f64;
        let side = (n as f64).sqrt();
        // Mean random distance on a √n × √n grid is Θ(√n).
        assert!(
            mean > 0.3 * side && mean < 4.0 * side,
            "mean access energy {mean} vs side {side}"
        );
    }

    #[test]
    fn step_overhead_accumulates_depth() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pram = PramMachine::new(1024, 1024, &mut rng);
        for _ in 0..10 {
            pram.end_step();
        }
        assert_eq!(pram.steps(), 10);
        assert_eq!(pram.report().depth, 10 * 10); // 10 steps × log2(1024)
    }

    #[test]
    fn step_overhead_pinned() {
        // The bugfix: the seed formula `32 - slots.leading_zeros()`
        // charged log2(slots)+1 for exact powers of two. The corrected
        // overhead is ⌈log2(slots)⌉, at least 1.
        for (slots, expect) in [(1u32, 1u32), (2, 1), (1024, 10), (1025, 11)] {
            assert_eq!(
                step_overhead_for(slots),
                expect,
                "slots = {slots}: overhead"
            );
            let mut rng = StdRng::seed_from_u64(7);
            let pram = PramMachine::new(slots, slots, &mut rng);
            assert_eq!(pram.step_overhead(), expect, "slots = {slots}: machine");
        }
    }

    #[test]
    fn cells_can_exceed_processors() {
        let mut rng = StdRng::seed_from_u64(3);
        let pram = PramMachine::new(4, 100, &mut rng);
        assert_eq!(pram.cells(), 100);
        pram.read(3, 99);
        assert!(pram.report().messages == 2);
    }

    #[test]
    fn list_rank_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 500] {
            let mut order: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut next = vec![END; n];
            for w in order.windows(2) {
                next[w[0] as usize] = w[1];
            }
            let mut pram = PramMachine::new(n as u32, n as u32, &mut rng);
            let got = pram_list_rank(&mut pram, &next, order[0], &mut rng);
            let expect = spatial_euler::rank_sequential(&next, order[0]);
            assert_eq!(got, expect, "n={n}");
        }
    }
}
