//! Counting-allocator proof that the PRAM baseline engines perform
//! **zero heap allocation** in steady state — the same harness as the
//! treefix/ranking/layout engines' `alloc_free` tests.
//!
//! The gate opens after engine setup plus one warm-up run per baseline
//! (the first [`PramEngine::run`] session grows the `LocalCharge`
//! scratch, and the answer/output buffers grow to their batch sizes)
//! and closes before the results are inspected. This binary holds
//! exactly one live `#[test]` so no concurrent test can pollute the
//! count.

use rand::prelude::*;
use spatial_pram::{PramEngine, PramLcaBatch, PramListRanker, PramPrefixSummer, PramTreefix};
use spatial_tree::generators::TreeFamily;
use spatial_tree::NodeId;
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the allocation gate open, returning its result and
/// the number of heap allocations performed inside.
fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

/// A random permutation list over `n` elements.
fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut next = vec![u32::MAX; n];
    for w in perm.windows(2) {
        next[w[0] as usize] = w[1];
    }
    (next, perm[0])
}

#[test]
fn pram_baselines_do_not_allocate_in_steady_state() {
    let n = 1u32 << 10;
    let tree = TreeFamily::UniformRandom.generate(n, &mut StdRng::seed_from_u64(1));
    let values: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
    let (next, start) = random_list(n as usize, 2);
    let queries: Vec<(NodeId, NodeId)> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n as usize / 2)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect()
    };

    // Setup: machine engine (2n cells cover the darts) + the four
    // baseline engines.
    let mut pram = PramEngine::new(2 * n, 2 * n, &mut StdRng::seed_from_u64(4));
    let mut ranker = PramListRanker::new(&next, start);
    let mut summer = PramPrefixSummer::with_capacity(n as usize);
    let mut treefix = PramTreefix::new(&tree);
    let mut lca = PramLcaBatch::new(&tree);

    // Warm-up: one run per baseline grows every retained buffer (the
    // LocalCharge scratch, the splice logs, the answer vectors).
    let mut rng = StdRng::seed_from_u64(5);
    {
        let mut run = pram.run();
        ranker.rank(&mut run, &mut rng);
        summer.run(&mut run, &values);
        run.finish();
    }
    treefix.subtree_sums(&mut pram, &values, &mut rng);
    lca.run(&mut pram, &queries, &mut rng);

    // Snapshot the warm-up results (allocates — outside the gate).
    let expect_ranks = ranker.ranks().to_vec();
    let expect_sums = summer.sums().to_vec();
    let expect_subtree = treefix.sums().to_vec();
    let expect_answers = lca.answers().to_vec();
    pram.reset();

    // Two full rounds inside the gate — a reused rng and a fresh one —
    // must be allocation-free.
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(6);
    let ((), allocs) = count_allocations(|| {
        for rng in [&mut rng_a, &mut rng_b] {
            let mut run = pram.run();
            ranker.rank(&mut run, rng);
            summer.run(&mut run, &values);
            run.finish();
            treefix.subtree_sums(&mut pram, &values, rng);
            lca.run(&mut pram, &queries, rng);
            pram.reset();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state PRAM baseline runs allocated {allocs} times"
    );

    // The Las Vegas coins change only costs, never results.
    assert_eq!(ranker.ranks(), &expect_ranks[..]);
    assert_eq!(summer.sums(), &expect_sums[..]);
    assert_eq!(treefix.sums(), &expect_subtree[..]);
    assert_eq!(lca.answers(), &expect_answers[..]);
}
