//! Differential property suite: the flat-array [`PramEngine`] and the
//! engine-based E8 baselines must behave *identically* to the retained
//! seed implementation in `spatial_pram::reference` — same results,
//! same energy, depth, messages, work, **and step counts** — across
//! algorithm seeds, sizes, and machine shapes, including
//! non-power-of-two `processors ≠ cells` geometries.
//!
//! Both sides draw the machine placement and the Las Vegas coins from
//! identically-seeded rngs, so any divergence in a charge rule, the
//! step-overhead formula, the access order, or the batched-access
//! accounting shows up as a report mismatch.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_pram::reference;
use spatial_pram::{
    pram_lca_batch, pram_list_rank, pram_prefix_sum, pram_subtree_sums, PramEngine,
};
use spatial_tree::generators::TreeFamily;
use spatial_tree::NodeId;

/// Machine shapes exercised everywhere: square powers of two, and the
/// non-power-of-two `processors ≠ cells` geometries the seed machine
/// hashes over `max(processors, cells)` slots.
fn shapes(n: u32) -> [(u32, u32); 3] {
    [(n, n), (n + 37, n + 5), (n / 2 + 1, n + 101)]
}

fn engines(machine_seed: u64, processors: u32, cells: u32) -> (PramEngine, reference::PramMachine) {
    let engine = PramEngine::new(processors, cells, &mut StdRng::seed_from_u64(machine_seed));
    let seed =
        reference::PramMachine::new(processors, cells, &mut StdRng::seed_from_u64(machine_seed));
    (engine, seed)
}

fn assert_charges_match(engine: &PramEngine, seed: &reference::PramMachine, ctx: &str) {
    assert_eq!(engine.report(), seed.report(), "{ctx}: machine charges");
    assert_eq!(engine.steps(), seed.steps(), "{ctx}: step counts");
    assert_eq!(engine.cells(), seed.cells(), "{ctx}: cell counts");
    assert_eq!(
        engine.step_overhead(),
        seed.step_overhead(),
        "{ctx}: step overhead"
    );
}

fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut next = vec![u32::MAX; n];
    for w in order.windows(2) {
        next[w[0] as usize] = w[1];
    }
    (next, order[0])
}

fn compare_list_rank(n: usize, list_seed: u64, machine_seed: u64, algo_seed: u64) {
    let (next, start) = random_list(n, list_seed);
    for (p, c) in shapes(n as u32) {
        let c = c.max(n as u32); // the ranker needs one cell per element
        let (mut engine, mut seed) = engines(machine_seed, p, c);
        let got = pram_list_rank(
            &mut engine,
            &next,
            start,
            &mut StdRng::seed_from_u64(algo_seed),
        );
        let expect = reference::pram_list_rank(
            &mut seed,
            &next,
            start,
            &mut StdRng::seed_from_u64(algo_seed),
        );
        let ctx = format!("list_rank n={n} shape=({p},{c}) seed={algo_seed}");
        assert_eq!(got, expect, "{ctx}: ranks");
        assert_eq!(got, spatial_euler::rank_sequential(&next, start), "{ctx}");
        assert_charges_match(&engine, &seed, &ctx);
    }
}

#[test]
fn list_rank_identical_across_sizes_and_shapes() {
    for (n, list_seed) in [(1usize, 0u64), (2, 1), (33, 2), (300, 3), (777, 4)] {
        for algo_seed in 0..3u64 {
            compare_list_rank(n, list_seed, 90 + list_seed, algo_seed);
        }
    }
}

#[test]
fn prefix_sum_identical() {
    let mut vrng = StdRng::seed_from_u64(11);
    for n in [1usize, 2, 100, 777, 1024] {
        let values: Vec<u64> = (0..n).map(|_| vrng.gen_range(0..1000)).collect();
        for (p, c) in shapes(n as u32) {
            let c = c.max(n as u32);
            let (mut engine, mut seed) = engines(7, p, c);
            let got = pram_prefix_sum(&mut engine, &values);
            let expect = reference::pram_prefix_sum(&mut seed, &values);
            let ctx = format!("prefix_sum n={n} shape=({p},{c})");
            assert_eq!(got, expect, "{ctx}: sums");
            assert_charges_match(&engine, &seed, &ctx);
        }
    }
}

#[test]
fn subtree_sums_identical_across_families() {
    for (fam, n) in [
        (TreeFamily::UniformRandom, 257u32),
        (TreeFamily::RandomBinary, 400),
        (TreeFamily::Comb, 200),
        (TreeFamily::Star, 150),
        (TreeFamily::Path, 97),
    ] {
        let t = fam.generate(n, &mut StdRng::seed_from_u64(5));
        let values: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        for algo_seed in 0..3u64 {
            // Cells must cover the 2n darts; sweep exact and skewed
            // non-power-of-two shapes.
            for (p, c) in [(2 * n, 2 * n), (2 * n + 13, 2 * n + 7), (n, 2 * n + 1)] {
                let (mut engine, mut seed) = engines(40 + algo_seed, p, c);
                let got = pram_subtree_sums(
                    &mut engine,
                    &t,
                    &values,
                    &mut StdRng::seed_from_u64(algo_seed),
                );
                let expect = reference::pram_subtree_sums(
                    &mut seed,
                    &t,
                    &values,
                    &mut StdRng::seed_from_u64(algo_seed),
                );
                let ctx = format!("subtree_sums {fam} n={n} shape=({p},{c}) seed={algo_seed}");
                assert_eq!(got, expect, "{ctx}: sums");
                assert_charges_match(&engine, &seed, &ctx);
            }
        }
    }
}

#[test]
fn lca_identical_across_families() {
    let mut qrng = StdRng::seed_from_u64(17);
    for (fam, n) in [
        (TreeFamily::UniformRandom, 300u32),
        (TreeFamily::Comb, 128),
        (TreeFamily::Broom, 222),
    ] {
        let t = fam.generate(n, &mut StdRng::seed_from_u64(6));
        let queries: Vec<(NodeId, NodeId)> = (0..150)
            .map(|_| (qrng.gen_range(0..t.n()), qrng.gen_range(0..t.n())))
            .collect();
        for algo_seed in 0..2u64 {
            for (p, c) in [(2 * n, 2 * n), (2 * n + 9, 2 * n + 3)] {
                let (mut engine, mut seed) = engines(60 + algo_seed, p, c);
                let got = pram_lca_batch(
                    &mut engine,
                    &t,
                    &queries,
                    &mut StdRng::seed_from_u64(algo_seed),
                );
                let expect = reference::pram_lca_batch(
                    &mut seed,
                    &t,
                    &queries,
                    &mut StdRng::seed_from_u64(algo_seed),
                );
                let ctx = format!("lca {fam} n={n} shape=({p},{c}) seed={algo_seed}");
                assert_eq!(got, expect, "{ctx}: answers");
                assert_charges_match(&engine, &seed, &ctx);
            }
        }
    }
}

#[test]
fn reused_engine_matches_fresh_seed_machines() {
    // The reuse path the engine exists for: one PramEngine + one
    // PramTreefix across many runs must charge exactly like a fresh
    // seed machine per run (after reset).
    let t = TreeFamily::RandomBinary.generate(350, &mut StdRng::seed_from_u64(8));
    let values: Vec<u64> = (0..350u64).collect();
    let mut engine = PramEngine::new(700, 700, &mut StdRng::seed_from_u64(30));
    let mut treefix = spatial_pram::PramTreefix::new(&t);
    for algo_seed in 0..4u64 {
        engine.reset();
        let got = treefix
            .subtree_sums(&mut engine, &values, &mut StdRng::seed_from_u64(algo_seed))
            .to_vec();
        let mut seed = reference::PramMachine::new(700, 700, &mut StdRng::seed_from_u64(30));
        let expect = reference::pram_subtree_sums(
            &mut seed,
            &t,
            &values,
            &mut StdRng::seed_from_u64(algo_seed),
        );
        let ctx = format!("reuse seed={algo_seed}");
        assert_eq!(got, expect, "{ctx}: sums");
        assert_charges_match(&engine, &seed, &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary list sizes, machine shapes, and coin seeds: ranks and
    /// every cost meter agree between the engine and the seed.
    #[test]
    fn prop_list_rank_charge_identical(
        n in 1usize..220,
        list_seed in 0u64..1000,
        machine_seed in 0u64..1000,
        algo_seed in 0u64..1000,
        extra_cells in 0u32..64,
        extra_procs in 0u32..64,
    ) {
        let (next, start) = random_list(n, list_seed);
        let (p, c) = (n as u32 + extra_procs, n as u32 + extra_cells);
        let (mut engine, mut seed) = engines(machine_seed, p, c);
        let got = pram_list_rank(&mut engine, &next, start, &mut StdRng::seed_from_u64(algo_seed));
        let expect = reference::pram_list_rank(
            &mut seed, &next, start, &mut StdRng::seed_from_u64(algo_seed),
        );
        prop_assert_eq!(got, expect);
        prop_assert_eq!(engine.report(), seed.report());
        prop_assert_eq!(engine.steps(), seed.steps());
    }

    /// Arbitrary trees: subtree sums charge-identical end to end.
    #[test]
    fn prop_subtree_sums_charge_identical(
        n in 2u32..180,
        tree_seed in 0u64..1000,
        algo_seed in 0u64..1000,
    ) {
        let t = TreeFamily::UniformRandom.generate(n, &mut StdRng::seed_from_u64(tree_seed));
        let values: Vec<u64> = (0..n as u64).map(|v| v + 1).collect();
        let (mut engine, mut seed) = engines(tree_seed ^ 0x9e37, 2 * n + 3, 2 * n + 1);
        let got = pram_subtree_sums(&mut engine, &t, &values, &mut StdRng::seed_from_u64(algo_seed));
        let expect = reference::pram_subtree_sums(
            &mut seed, &t, &values, &mut StdRng::seed_from_u64(algo_seed),
        );
        prop_assert_eq!(got, expect);
        prop_assert_eq!(engine.report(), seed.report());
        prop_assert_eq!(engine.steps(), seed.steps());
    }
}
