//! # spatial-trees — Low-Depth Spatial Tree Algorithms
//!
//! A full implementation of *"Low-Depth Spatial Tree Algorithms"*
//! (Baumann, Ben-Nun, Besta, Gianinazzi, Hoefler, Luczynski — IPDPS
//! 2024) on an instrumented spatial computer: a `√n × √n` grid of
//! constant-memory processors where a message costs its Manhattan
//! distance in *energy* and the *depth* is the longest chain of
//! dependent messages.
//!
//! ## What's inside
//!
//! | Paper section | Crate | Entry points |
//! |---|---|---|
//! | §II model & collectives | [`model`] | [`model::Machine`], [`model::collectives`] |
//! | §II-B space-filling curves | [`sfc`] | [`sfc::CurveKind`], [`sfc::locality`] |
//! | §III light-first layouts | [`layout`] | [`layout::Layout`], [`layout::local_kernel_energy`] |
//! | §III-D virtual trees | [`messaging`] | [`messaging::VirtualTree`], [`messaging::local_broadcast`] |
//! | §IV layout construction | [`euler`], [`layout`] | [`layout::build_light_first_spatial`] |
//! | §V treefix sums | [`treefix`] | [`treefix::treefix_bottom_up`], [`treefix::treefix_top_down`] |
//! | §VI batched LCA | [`lca`] | [`lca::batched_lca`] |
//! | §I-C PRAM baseline | [`pram`] | [`pram::pram_subtree_sums`] |
//! | session layer (serving) | [`session`] | [`session::SpatialForest`], [`session::QueryBatch`] |
//! | service layer (sharded, multi-threaded) | [`serve`] | [`serve::ForestService`] |
//! | durability (snapshot + journal) | [`store`] | [`store::ForestSnapshot`], [`session::SpatialForest::recover_from`] |
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use spatial_trees::prelude::*;
//!
//! // A random 1000-vertex tree, laid out light-first on a Hilbert curve.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let tree = spatial_trees::tree::generators::uniform_random(1000, &mut rng);
//! let st = SpatialTree::new(tree);
//!
//! // Subtree sums with full energy/depth accounting.
//! let machine = st.machine();
//! let values = vec![Add(1); st.n() as usize];
//! let sums = st.treefix_sum(&machine, &values, &mut rng);
//! assert_eq!(sums.values[st.tree().root() as usize], Add(1000));
//! println!("{}", machine.report()); // energy=…, depth=…
//! ```

pub use spatial_euler as euler;
pub use spatial_layout as layout;
pub use spatial_lca as lca;
pub use spatial_messaging as messaging;
pub use spatial_mincut as mincut;
pub use spatial_model as model;
pub use spatial_pram as pram;
pub use spatial_serve as serve;
pub use spatial_session as session;
pub use spatial_sfc as sfc;
pub use spatial_store as store;
pub use spatial_tree as tree;
pub use spatial_treefix as treefix;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::SpatialTree;
    pub use spatial_layout::{Layout, LayoutKind};
    pub use spatial_lca::{batched_lca, LcaResult};
    pub use spatial_model::{CostReport, CurveKind, EngineLifecycle, Machine};
    pub use spatial_session::{QueryBatch, Request, Response, SpatialForest};
    pub use spatial_tree::{NodeId, Tree};
    pub use spatial_treefix::{Add, CommutativeMonoid, Max, Min};
}

use rand::Rng;
use spatial_layout::Layout;
use spatial_lca::LcaResult;
use spatial_messaging::VirtualTree;
use spatial_model::{CurveKind, Machine};
use spatial_tree::{NodeId, Tree};
use spatial_treefix::{CommutativeMonoid, TreefixResult};

/// A tree stored in an energy-bound light-first layout, with the
/// paper's algorithms as methods. This is the high-level API; the
/// individual crates expose every building block.
pub struct SpatialTree {
    tree: Tree,
    layout: Layout,
    sizes: Vec<u32>,
    virtual_tree: VirtualTree,
}

impl SpatialTree {
    /// Lays the tree out light-first on a Hilbert curve (the default,
    /// distance-bound with the best constant).
    pub fn new(tree: Tree) -> Self {
        Self::with_curve(tree, CurveKind::Hilbert)
    }

    /// Lays the tree out light-first on the given curve.
    pub fn with_curve(tree: Tree, curve: CurveKind) -> Self {
        let layout = Layout::light_first_par(&tree, curve);
        let sizes = tree.subtree_sizes();
        let virtual_tree = VirtualTree::with_sizes(&tree, &sizes);
        SpatialTree {
            tree,
            layout,
            sizes,
            virtual_tree,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.tree.n()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The light-first layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Subtree sizes (`s(v)`).
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// The TRANSFORM virtual tree used for unbounded-degree messaging.
    pub fn virtual_tree(&self) -> &VirtualTree {
        &self.virtual_tree
    }

    /// A fresh machine whose slots match this layout's curve.
    pub fn machine(&self) -> Machine {
        self.layout.machine()
    }

    /// Energy of the fundamental kernel: every vertex messages all its
    /// children once (Theorems 1–2: `O(n)` on this layout).
    pub fn messaging_energy(&self) -> u64 {
        spatial_layout::local_kernel_energy(&self.tree, &self.layout)
    }

    /// Bottom-up treefix sum (§V): `result[v] = ⊕ values over v's
    /// subtree`, charged on `machine`.
    pub fn treefix_sum<M: CommutativeMonoid, R: Rng>(
        &self,
        machine: &Machine,
        values: &[M],
        rng: &mut R,
    ) -> TreefixResult<M> {
        spatial_treefix::treefix_bottom_up(machine, &self.layout, &self.tree, values, rng)
    }

    /// Top-down treefix sum (§V-D): `result[v] = ⊕ values along the
    /// root → v path`, charged on `machine`.
    pub fn treefix_top_down<M: CommutativeMonoid, R: Rng>(
        &self,
        machine: &Machine,
        values: &[M],
        rng: &mut R,
    ) -> TreefixResult<M> {
        spatial_treefix::treefix_top_down(machine, &self.layout, &self.tree, values, rng)
    }

    /// Batched lowest common ancestors (§VI), charged on `machine`.
    pub fn lca_batch<R: Rng>(
        &self,
        machine: &Machine,
        queries: &[(NodeId, NodeId)],
        rng: &mut R,
    ) -> LcaResult {
        spatial_lca::batched_lca(machine, &self.layout, &self.tree, queries, rng)
    }

    /// Local broadcast (§III-D): every vertex's value is delivered to
    /// all its children; returns `received[v]`.
    pub fn local_broadcast<T: Copy>(&self, machine: &Machine, values: &[T]) -> Vec<Option<T>> {
        spatial_messaging::local_broadcast(
            machine,
            &self.layout,
            &self.virtual_tree,
            &self.tree,
            values,
        )
    }

    /// Local reduce (§III-D): every parent receives the ordered
    /// reduction of its children's values; returns `result[p]`.
    pub fn local_reduce<T: Copy, F: Fn(T, T) -> T>(
        &self,
        machine: &Machine,
        values: &[T],
        op: &F,
    ) -> Vec<Option<T>> {
        spatial_messaging::local_reduce(
            machine,
            &self.layout,
            &self.virtual_tree,
            &self.tree,
            values,
            op,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_treefix::Add;

    #[test]
    fn facade_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = spatial_tree::generators::yule(100, &mut rng);
        let n = tree.n();
        let st = SpatialTree::new(tree);
        assert_eq!(st.n(), n);

        let machine = st.machine();
        let sums = st.treefix_sum(&machine, &vec![Add(1); n as usize], &mut rng);
        let sizes: Vec<u64> = sums.values.iter().map(|a| a.0).collect();
        let expect: Vec<u64> = st.sizes().iter().map(|&s| s as u64).collect();
        assert_eq!(sizes, expect);
        assert!(machine.report().energy > 0);
    }

    #[test]
    fn facade_lca_and_messaging() {
        let mut rng = StdRng::seed_from_u64(2);
        let tree = spatial_tree::generators::uniform_random(200, &mut rng);
        let st = SpatialTree::with_curve(tree, CurveKind::ZOrder);
        let machine = st.machine();

        let res = st.lca_batch(&machine, &[(5, 17), (3, 3)], &mut rng);
        assert_eq!(res.answers.len(), 2);
        assert_eq!(res.answers[1], 3);

        let vals: Vec<u64> = (0..200).collect();
        let received = st.local_broadcast(&machine, &vals);
        assert_eq!(received[st.tree().root() as usize], None);
        let reduced = st.local_reduce(&machine, &vals, &|a, b| a + b);
        let root_sum: u64 = st
            .tree()
            .children(st.tree().root())
            .iter()
            .map(|&c| c as u64)
            .sum();
        assert_eq!(reduced[st.tree().root() as usize], Some(root_sum));
    }

    #[test]
    fn messaging_energy_linear() {
        let tree = spatial_tree::generators::comb(1 << 14);
        let st = SpatialTree::new(tree);
        let per = st.messaging_energy() as f64 / st.n() as f64;
        assert!(per < 4.0, "kernel energy per vertex {per}");
    }
}
