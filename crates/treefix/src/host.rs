//! Host (non-spatial) reference implementations of treefix sums.
//!
//! Used to verify the spatial contraction algorithm and as the
//! sequential baseline in the wall-clock benchmarks. A rayon
//! level-synchronous variant demonstrates the fork-join parallelism the
//! paper's low depth implies.

use crate::monoid::CommutativeMonoid;
use rayon::prelude::*;
use spatial_tree::{NodeId, Tree};

/// Bottom-up treefix: `result[v] = ⊕ values over the subtree of v`.
/// Sequential, one pass over reverse BFS order.
pub fn treefix_bottom_up_host<M: CommutativeMonoid>(tree: &Tree, values: &[M]) -> Vec<M> {
    assert_eq!(values.len() as u32, tree.n());
    let mut result = values.to_vec();
    let order = spatial_tree::traversal::bfs_order(tree);
    for &v in order.iter().rev() {
        if let Some(p) = tree.parent(v) {
            result[p as usize] = result[p as usize].combine(result[v as usize]);
        }
    }
    result
}

/// Top-down treefix: `result[v] = ⊕ values along the root → v path`
/// (inclusive). Sequential, one pass over BFS order.
pub fn treefix_top_down_host<M: CommutativeMonoid>(tree: &Tree, values: &[M]) -> Vec<M> {
    assert_eq!(values.len() as u32, tree.n());
    let mut result = values.to_vec();
    for &v in spatial_tree::traversal::bfs_order(tree).iter() {
        if let Some(p) = tree.parent(v) {
            result[v as usize] = result[p as usize].combine(values[v as usize]);
        }
    }
    result
}

/// Rayon level-synchronous bottom-up treefix: processes depth levels
/// from the deepest up, each level in parallel. Levels narrower than
/// the measured [`spatial_sfc::thresholds::TREEFIX_ROUND`] crossover
/// run sequentially in place — forking a handful of per-vertex
/// combines costs more than it saves (the MeTTa Phase 3c lesson).
pub fn treefix_bottom_up_par<M: CommutativeMonoid>(tree: &Tree, values: &[M]) -> Vec<M> {
    assert_eq!(values.len() as u32, tree.n());
    let levels = depth_levels(tree);
    let min_par = spatial_sfc::thresholds::TREEFIX_ROUND.min_par_items();
    let mut result = values.to_vec();
    for level in levels.iter().rev() {
        if level.len() < min_par {
            // Children live strictly deeper and are already final, so
            // the sequential pass writes straight into `result`.
            for &v in level {
                let mut acc = values[v as usize];
                for &c in tree.children(v) {
                    acc = acc.combine(result[c as usize]);
                }
                result[v as usize] = acc;
            }
            continue;
        }
        let partial: Vec<(NodeId, M)> = level
            .par_iter()
            .map(|&v| {
                let mut acc = values[v as usize];
                for &c in tree.children(v) {
                    acc = acc.combine(result[c as usize]);
                }
                (v, acc)
            })
            .collect();
        for (v, m) in partial {
            result[v as usize] = m;
        }
    }
    result
}

/// Rayon level-synchronous top-down treefix, with the same measured
/// per-level sequential↔parallel cutoff as
/// [`treefix_bottom_up_par`].
pub fn treefix_top_down_par<M: CommutativeMonoid>(tree: &Tree, values: &[M]) -> Vec<M> {
    assert_eq!(values.len() as u32, tree.n());
    let levels = depth_levels(tree);
    let min_par = spatial_sfc::thresholds::TREEFIX_ROUND.min_par_items();
    let mut result = values.to_vec();
    for level in levels.iter() {
        if level.len() < min_par {
            for &v in level {
                if let Some(p) = tree.parent(v) {
                    result[v as usize] = result[p as usize].combine(values[v as usize]);
                }
            }
            continue;
        }
        let partial: Vec<(NodeId, M)> = level
            .par_iter()
            .filter_map(|&v| {
                tree.parent(v)
                    .map(|p| (v, result[p as usize].combine(values[v as usize])))
            })
            .collect();
        for (v, m) in partial {
            result[v as usize] = m;
        }
    }
    result
}

fn depth_levels(tree: &Tree) -> Vec<Vec<NodeId>> {
    let depths = tree.depths();
    let max = depths.iter().copied().max().unwrap_or(0) as usize;
    let mut levels = vec![Vec::new(); max + 1];
    for v in tree.vertices() {
        levels[depths[v as usize] as usize].push(v);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{Add, Max};
    use rand::prelude::*;
    use spatial_tree::generators;

    #[test]
    fn bottom_up_sizes() {
        let t = generators::perfect_kary(2, 3);
        let ones = vec![Add(1); t.n() as usize];
        let sums = treefix_bottom_up_host(&t, &ones);
        let sizes: Vec<u64> = sums.iter().map(|a| a.0).collect();
        let expect: Vec<u64> = t.subtree_sizes().iter().map(|&s| s as u64).collect();
        assert_eq!(sizes, expect);
    }

    #[test]
    fn top_down_depths() {
        let t = generators::comb(20);
        let ones = vec![Add(1); 20];
        let sums = treefix_top_down_host(&t, &ones);
        let got: Vec<u64> = sums.iter().map(|a| a.0).collect();
        let expect: Vec<u64> = t.depths().iter().map(|&d| d as u64 + 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn bottom_up_max() {
        let t = generators::path(5);
        let vals: Vec<Max> = [3u64, 9, 1, 7, 2].iter().map(|&v| Max(v)).collect();
        let got = treefix_bottom_up_host(&t, &vals);
        assert_eq!(got, vec![Max(9), Max(9), Max(7), Max(7), Max(2)]);
    }

    #[test]
    fn par_matches_host() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [1u32, 2, 100, 5000] {
            let t = generators::preferential_attachment(n, &mut rng);
            let vals: Vec<Add> = (0..n as u64).map(|v| Add(v * v + 1)).collect();
            assert_eq!(
                treefix_bottom_up_par(&t, &vals),
                treefix_bottom_up_host(&t, &vals),
                "bottom-up n={n}"
            );
            assert_eq!(
                treefix_top_down_par(&t, &vals),
                treefix_top_down_host(&t, &vals),
                "top-down n={n}"
            );
        }
    }
}
