//! Reference (seed) contraction engine, retained for differential
//! testing and benchmarking of the allocation-free CSR engine in
//! [`crate::contraction`].
//!
//! This is the pre-optimization implementation: per-call `Vec`
//! children-list materialization, per-round `Vec` allocations for logs,
//! message batches and relay groups, and `Vec`-of-`Vec`s relay
//! charging. It produces bit-identical results, statistics and machine
//! charges to the optimized engine (asserted by the
//! `csr_vs_reference` property suite), just slower and allocation-heavy.
#![allow(missing_docs)]

use crate::contraction::ContractionStats;
use crate::monoid::CommutativeMonoid;
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::relay::{charge_broadcast_relays, charge_reduce_relays};
use spatial_model::{Machine, Slot};
use spatial_tree::{NodeId, Tree, NIL};

/// One step's undo records (host-side grouping of the distributed log).
struct StepLog {
    /// Vertices compressed into their parents this step.
    compresses: Vec<NodeId>,
    /// Rake groups: (parent, raked leaf representatives in sibling
    /// order).
    rakes: Vec<(NodeId, Vec<NodeId>)>,
}

/// The seed contraction engine. Same protocol as the optimized
/// [`crate::contraction::ContractionEngine`].
pub struct ReferenceEngine<'a, M: CommutativeMonoid> {
    tree: &'a Tree,
    layout: &'a Layout,
    machine: &'a Machine,
    /// Whether RAKE folds leaf sums into the parent's partial sum
    /// (bottom-up) or leaves it untouched (top-down, where `P` tracks
    /// the supervertex's path-segment values only).
    rake_adds_to_p: bool,

    parent: Vec<NodeId>,
    first_child: Vec<NodeId>,
    next_sib: Vec<NodeId>,
    prev_sib: Vec<NodeId>,
    child_count: Vec<u32>,
    p: Vec<M>,
    active: Vec<bool>,
    alive: Vec<NodeId>,

    /// Parent's partial sum before the merge that deactivated this
    /// vertex (the no-inverse replacement for the paper's subtraction).
    saved_p: Vec<M>,
    steps: Vec<StepLog>,
    stats: ContractionStats,
    coin: Vec<bool>,
}

impl<'a, M: CommutativeMonoid> ReferenceEngine<'a, M> {
    /// Initializes supervertices (one per vertex) with the given values.
    /// Children lists are in light-first sibling order, matching the
    /// layout's placement.
    pub fn new(
        tree: &'a Tree,
        layout: &'a Layout,
        machine: &'a Machine,
        values: &[M],
        rake_adds_to_p: bool,
    ) -> Self {
        let n = tree.n() as usize;
        assert_eq!(values.len(), n, "one value per vertex");
        assert_eq!(layout.n() as usize, n, "layout size mismatch");
        let sizes = tree.subtree_sizes();
        let sorted = spatial_tree::traversal::children_by_size(tree, &sizes);

        let mut eng = ReferenceEngine {
            tree,
            layout,
            machine,
            rake_adds_to_p,
            parent: tree.parents().to_vec(),
            first_child: vec![NIL; n],
            next_sib: vec![NIL; n],
            prev_sib: vec![NIL; n],
            child_count: vec![0; n],
            p: values.to_vec(),
            active: vec![true; n],
            alive: (0..n as NodeId).collect(),
            saved_p: vec![M::identity(); n],
            steps: Vec::new(),
            stats: ContractionStats {
                compact_rounds: 0,
                compresses: 0,
                rakes: 0,
            },
            coin: vec![false; n],
        };
        for v in tree.vertices() {
            let cs = &sorted[v as usize];
            eng.child_count[v as usize] = cs.len() as u32;
            if let Some(&first) = cs.first() {
                eng.first_child[v as usize] = first;
            }
            for w in cs.windows(2) {
                eng.next_sib[w[0] as usize] = w[1];
                eng.prev_sib[w[1] as usize] = w[0];
            }
        }
        eng
    }

    fn slot(&self, v: NodeId) -> Slot {
        self.layout.slot(v)
    }

    fn children_list(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.child_count[u as usize] as usize);
        let mut at = self.first_child[u as usize];
        while at != NIL {
            out.push(at);
            at = self.next_sib[at as usize];
        }
        out
    }

    fn unlink_child(&mut self, u: NodeId, v: NodeId) {
        let (prev, next) = (self.prev_sib[v as usize], self.next_sib[v as usize]);
        if prev != NIL {
            self.next_sib[prev as usize] = next;
        } else {
            self.first_child[u as usize] = next;
        }
        if next != NIL {
            self.prev_sib[next as usize] = prev;
        }
        self.prev_sib[v as usize] = NIL;
        self.next_sib[v as usize] = NIL;
        self.child_count[u as usize] -= 1;
    }

    /// §V-A3 step 1/4: every supervertex tells its children whether it
    /// is branching. All parents broadcast *simultaneously* (batched
    /// relays, one machine round per relay level): `O(n)` energy and
    /// `O(log Δ)` depth per COMPACT round.
    fn charge_children_broadcast(&self) {
        let groups: Vec<(Slot, Vec<Slot>)> = self
            .alive
            .iter()
            .filter(|&&u| self.child_count[u as usize] > 0)
            .map(|&u| {
                let slots: Vec<Slot> = self
                    .children_list(u)
                    .into_iter()
                    .map(|c| self.slot(c))
                    .collect();
                (self.slot(u), slots)
            })
            .collect();
        charge_broadcast_relays(self.machine, &groups);
    }

    fn viable(&self, v: NodeId) -> bool {
        let p = self.parent[v as usize];
        p != NIL && self.child_count[p as usize] == 1 && self.child_count[v as usize] == 1
    }

    /// One COMPACT round: compress an independent random-mate set of
    /// viable supervertices, then rake leaf supervertices.
    fn compact_round<R: Rng>(&mut self, rng: &mut R) {
        let mut log = StepLog {
            compresses: Vec::new(),
            rakes: Vec::new(),
        };

        // Step 1: branching info.
        self.charge_children_broadcast();

        // Step 2: random-mate selection among viable supervertices.
        for &v in &self.alive {
            self.coin[v as usize] = rng.gen();
        }
        let viable: Vec<NodeId> = self
            .alive
            .iter()
            .copied()
            .filter(|&v| self.viable(v))
            .collect();
        let coin_msgs: Vec<(Slot, Slot)> = viable
            .iter()
            .map(|&v| (self.slot(self.parent[v as usize]), self.slot(v)))
            .collect();
        self.machine.round(&coin_msgs);
        let selected: Vec<NodeId> = viable
            .into_iter()
            .filter(|&v| self.coin[v as usize] && !self.coin[self.parent[v as usize] as usize])
            .collect();

        // Step 3: COMPRESS every selected v with its parent u. The
        // selected set is independent (heads with tails predecessor), so
        // no parent is itself compressed this round.
        let mut compress_msgs = Vec::with_capacity(2 * selected.len());
        for &v in &selected {
            let u = self.parent[v as usize];
            let c = self.first_child[v as usize];
            debug_assert!(c != NIL && self.child_count[v as usize] == 1);
            self.saved_p[v as usize] = self.p[u as usize];
            self.p[u as usize] = self.p[u as usize].combine(self.p[v as usize]);
            // u's only child was v; u inherits v's only child c.
            self.first_child[u as usize] = c;
            self.child_count[u as usize] = 1;
            self.parent[c as usize] = u;
            self.prev_sib[c as usize] = NIL;
            self.next_sib[c as usize] = NIL;
            self.active[v as usize] = false;
            compress_msgs.push((self.slot(v), self.slot(u)));
            compress_msgs.push((self.slot(v), self.slot(c)));
            log.compresses.push(v);
        }
        self.machine.round(&compress_msgs);
        self.stats.compresses += selected.len() as u64;

        // Step 4: refresh branching info after the compresses.
        self.alive.retain(|&v| self.active[v as usize]);
        self.charge_children_broadcast();

        // Step 5: RAKE leaf supervertices wherever all-but-at-most-one
        // children are leaves. All rakes of the round run concurrently:
        // the reduce relays are charged as one batch.
        let parents: Vec<NodeId> = self.alive.clone();
        let mut relay_groups: Vec<(Vec<Slot>, Slot)> = Vec::new();
        for u in parents {
            if self.child_count[u as usize] == 0 {
                continue;
            }
            let children = self.children_list(u);
            let leaves: Vec<NodeId> = children
                .iter()
                .copied()
                .filter(|&c| self.child_count[c as usize] == 0)
                .collect();
            let others = children.len() - leaves.len();
            if leaves.is_empty() || others > 1 {
                continue;
            }
            // The reduce relay spans all children (the non-raked child w
            // contributes the identity, as in the paper).
            relay_groups.push((
                children.iter().map(|&c| self.slot(c)).collect(),
                self.slot(u),
            ));

            let saved = self.p[u as usize];
            let mut acc = M::identity();
            for &v in &leaves {
                acc = acc.combine(self.p[v as usize]);
                self.saved_p[v as usize] = saved;
                self.active[v as usize] = false;
                self.unlink_child(u, v);
            }
            if self.rake_adds_to_p {
                self.p[u as usize] = saved.combine(acc);
            }
            self.stats.rakes += leaves.len() as u64;
            log.rakes.push((u, leaves));
        }
        charge_reduce_relays(self.machine, &mut relay_groups);
        self.alive.retain(|&v| self.active[v as usize]);

        self.steps.push(log);
        self.stats.compact_rounds += 1;
    }

    /// Contracts the whole tree to a single supervertex. Returns the
    /// stats; the random seed affects only costs, never results.
    pub fn contract<R: Rng>(&mut self, rng: &mut R) -> ContractionStats {
        let n = self.tree.n();
        // Rake always removes the deepest leaves, so every round makes
        // progress; the bound below is a defensive cap, not a tuning
        // parameter.
        let cap = 4 * n as u64 + 64;
        while self.alive.len() > 1 {
            let before = self.alive.len();
            self.compact_round(rng);
            debug_assert!(self.alive.len() < before, "COMPACT made no progress");
            assert!(
                (self.stats.compact_rounds as u64) <= cap,
                "contraction failed to converge"
            );
        }
        self.stats
    }

    /// §V-B uncontraction for the bottom-up treefix: returns
    /// `sum(v) = ⊕ values over v's subtree` for every vertex.
    pub fn uncontract_bottom_up(mut self) -> Vec<M> {
        assert!(self.alive.len() <= 1, "contract() must run first");
        let n = self.tree.n() as usize;
        let mut a = vec![M::identity(); n];
        for step in std::mem::take(&mut self.steps).into_iter().rev() {
            // Rakes were executed after compresses within the step; undo
            // them first — all rake groups of the step concurrently.
            let groups: Vec<(Slot, Vec<Slot>)> = step
                .rakes
                .iter()
                .map(|(u, raked)| (self.slot(*u), raked.iter().map(|&v| self.slot(v)).collect()))
                .collect();
            charge_broadcast_relays(self.machine, &groups);
            for (u, raked) in step.rakes.iter().rev() {
                let mut acc = M::identity();
                for &v in raked {
                    acc = acc.combine(self.p[v as usize]);
                    // Leaf supervertices have no outside descendants:
                    // a[v] stays the identity.
                }
                a[*u as usize] = a[*u as usize].combine(acc);
                self.p[*u as usize] = self.saved_p[raked[0] as usize];
            }
            let msgs: Vec<(Slot, Slot)> = step
                .compresses
                .iter()
                .map(|&v| {
                    let u = self.parent_at_merge(v);
                    (self.slot(u), self.slot(v))
                })
                .collect();
            self.machine.round(&msgs);
            for &v in step.compresses.iter().rev() {
                let u = self.parent_at_merge(v);
                // v's outside descendants were u's outside descendants.
                a[v as usize] = a[u as usize];
                a[u as usize] = a[u as usize].combine(self.p[v as usize]);
                self.p[u as usize] = self.saved_p[v as usize];
            }
        }
        (0..n).map(|v| self.p[v].combine(a[v])).collect()
    }

    /// §V-D uncontraction for the top-down treefix: returns
    /// `sum'(v) = ⊕ values along the root → v path` for every vertex.
    /// The engine must have been built with `rake_adds_to_p = false`.
    pub fn uncontract_top_down(mut self, values: &[M]) -> Vec<M> {
        assert!(self.alive.len() <= 1, "contract() must run first");
        assert!(
            !self.rake_adds_to_p,
            "top-down uncontraction needs a path-segment P (rake_adds_to_p = false)"
        );
        let n = self.tree.n() as usize;
        // b[v]: combination of values strictly above supervertex v.
        let mut b = vec![M::identity(); n];
        for step in std::mem::take(&mut self.steps).into_iter().rev() {
            let groups: Vec<(Slot, Vec<Slot>)> = step
                .rakes
                .iter()
                .map(|(u, raked)| (self.slot(*u), raked.iter().map(|&v| self.slot(v)).collect()))
                .collect();
            charge_broadcast_relays(self.machine, &groups);
            for (u, raked) in step.rakes.iter().rev() {
                for &v in raked {
                    // The raked leaves hang below u's whole path segment.
                    b[v as usize] = b[*u as usize].combine(self.p[*u as usize]);
                }
            }
            let msgs: Vec<(Slot, Slot)> = step
                .compresses
                .iter()
                .map(|&v| {
                    let u = self.parent_at_merge(v);
                    (self.slot(u), self.slot(v))
                })
                .collect();
            self.machine.round(&msgs);
            for &v in step.compresses.iter().rev() {
                let u = self.parent_at_merge(v);
                // The segment above v is u's pre-merge segment.
                b[v as usize] = b[u as usize].combine(self.saved_p[v as usize]);
                self.p[u as usize] = self.saved_p[v as usize];
            }
        }
        (0..n).map(|v| b[v].combine(values[v])).collect()
    }

    /// The representative a compressed vertex merged into. The parent
    /// pointer of `v` is frozen at merge time (deactivated vertices are
    /// never re-parented).
    fn parent_at_merge(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Number of still-active supervertices.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }
}
