//! The rake/compress contraction engine (§V-A, §V-B) — allocation-free
//! after setup, rebindable across trees.
//!
//! Supervertices are identified with their representative `R(u)` — the
//! vertex closest to the root, which is also the first vertex of the
//! supervertex in light-first order. Every vertex holds O(1) state:
//! parent pointer, a doubly-linked sibling list (so child sets mutate in
//! O(1) per merge), a partial sum `P`, and — once deactivated — its O(1)
//! share of the distributed contraction log (Fig. 6): the step number,
//! the merge kind, and the parent's pre-merge partial sum. The engine
//! charges every message on the machine; unbounded fan-in/out goes
//! through balanced relays (`spatial-messaging`).
//!
//! # Memory discipline and lifecycle
//!
//! This is the hottest loop in the workspace, so all storage is laid
//! out flat and owned by the engine — there are no borrows, which is
//! what lets the session layer's engine pool retain one engine across
//! many trees. The uniform `reset/reserve/run` lifecycle
//! ([`spatial_model::EngineLifecycle`]):
//!
//! - [`ContractionEngine::with_capacity`] allocates every buffer once;
//! - [`ContractionEngine::bind`] loads a concrete (tree, layout, CSR,
//!   values) instance into the retained buffers — **zero heap
//!   allocation** whenever the tree fits the current capacity;
//! - [`ContractionEngine::contract`] and the `uncontract_*` methods
//!   run the §V algorithm, charging the machine they are given, and
//!   never allocate;
//! - [`spatial_model::EngineLifecycle::reserve`] grows the capacity
//!   (the only allocating step once the engine exists).
//!
//! Per-vertex storage details: initial child lists come from a
//! [`spatial_tree::ChildrenCsr`] arena; the distributed contraction log
//! is three flat arrays with per-round end offsets; message batches and
//! relay groups reuse persistent scratch
//! ([`spatial_messaging::relay::RelayScratch`] plus the engine's own
//! CSR group buffers); every engine round charges through a
//! [`spatial_model::LocalCharge`] session (a non-atomic clock snapshot
//! committed in one batch — identical energy, messages, work, and depth
//! to per-message atomic charging). Zero allocation is asserted by the
//! counting-allocator test `tests/alloc_free.rs`; the seed
//! implementation is retained as [`crate::reference::ReferenceEngine`]
//! and the `csr_vs_reference` suite pins identical results, statistics,
//! and machine charges.

use crate::monoid::CommutativeMonoid;
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::relay::{
    charge_broadcast_relays_csr_into, charge_reduce_relays_csr_into, RelayScratch,
};
use spatial_model::{EngineLifecycle, LocalCharge, LocalChargeScratch, Machine, Slot};
use spatial_tree::{ChildrenCsr, NodeId, Tree, NIL};

/// Cost-relevant counters of one contraction run (Las Vegas evidence:
/// these vary with the seed, the output never does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractionStats {
    /// Number of COMPACT rounds until one supervertex remained.
    pub compact_rounds: u32,
    /// Total COMPRESS merges.
    pub compresses: u64,
    /// Total vertices removed by RAKE merges.
    pub rakes: u64,
}

/// Where the engine currently is in its `bind → contract → uncontract`
/// run cycle (misuse guard; rebinding restarts the cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No tree loaded (fresh, or after [`EngineLifecycle::reset`]).
    Unbound,
    /// A tree is loaded and ready to contract.
    Bound,
    /// [`ContractionEngine::contract`] has run; one `uncontract_*` may.
    Contracted,
    /// The run cycle finished; rebind before running again.
    Done,
}

/// The contraction engine. Create with
/// [`ContractionEngine::with_capacity`] (or the one-shot
/// [`ContractionEngine::new`]), load a tree with
/// [`ContractionEngine::bind`], run [`ContractionEngine::contract`],
/// then exactly one of the `uncontract` methods. The engine owns every
/// buffer, so one instance serves any number of trees.
pub struct ContractionEngine<M: CommutativeMonoid> {
    /// Vertex count of the current binding (0 when unbound).
    n: usize,
    /// Largest vertex count the retained buffers have ever served;
    /// bindings at or below this never allocate.
    cap: usize,
    phase: Phase,
    /// Whether RAKE folds leaf sums into the parent's partial sum
    /// (bottom-up) or leaves it untouched (top-down, where `P` tracks
    /// the supervertex's path-segment values only).
    rake_adds_to_p: bool,

    /// Machine slot of every vertex, copied from the layout at bind so
    /// runs need no layout borrow.
    slot: Vec<Slot>,
    parent: Vec<NodeId>,
    first_child: Vec<NodeId>,
    next_sib: Vec<NodeId>,
    prev_sib: Vec<NodeId>,
    child_count: Vec<u32>,
    p: Vec<M>,
    active: Vec<bool>,
    alive: Vec<NodeId>,

    /// Parent's partial sum before the merge that deactivated this
    /// vertex (the no-inverse replacement for the paper's subtraction).
    saved_p: Vec<M>,

    // ---- Flat contraction log (replaces the seed's Vec<StepLog>). ----
    /// Compressed vertices, all rounds back to back.
    compress_log: Vec<NodeId>,
    /// End offset into `compress_log` after each round.
    compress_ends: Vec<u32>,
    /// Raked vertices, all rounds back to back, in rake order.
    rake_log: Vec<NodeId>,
    /// Rake groups `(parent, start, end)` spanning `rake_log`.
    rake_groups: Vec<(NodeId, u32, u32)>,
    /// End offset into `rake_groups` after each round.
    rake_ends: Vec<u32>,

    // ---- Reusable scratch (allocated once, cleared per use). ----
    /// Selected / viable vertex list.
    nodes_scratch: Vec<NodeId>,
    /// Message batch buffer.
    msgs_scratch: Vec<(Slot, Slot)>,
    /// Relay group endpoint slots (sources or targets).
    group_slots: Vec<Slot>,
    /// Relay group participants, flat.
    group_parts: Vec<Slot>,
    /// Relay group offsets into `group_parts`.
    group_offsets: Vec<u32>,
    /// Relay level-walk scratch.
    relay: RelayScratch,
    /// Clock snapshot + round staging for the local charging sessions
    /// (one per `contract`, one per `uncontract_*`): all engine rounds
    /// charge through plain arithmetic and commit in one batch.
    local: LocalChargeScratch,
    /// Uncontraction accumulator (`A_v` / `B_v`), preallocated.
    acc: Vec<M>,
    /// Output buffer, retained across runs and returned by slice.
    out: Vec<M>,

    stats: ContractionStats,
    coin: Vec<bool>,
}

impl<M: CommutativeMonoid> ContractionEngine<M> {
    /// An unbound engine whose buffers are pre-sized for trees of up to
    /// `cap` vertices; bindings within the capacity never allocate.
    pub fn with_capacity(cap: usize) -> Self {
        ContractionEngine {
            n: 0,
            cap,
            phase: Phase::Unbound,
            rake_adds_to_p: true,
            slot: Vec::with_capacity(cap),
            parent: Vec::with_capacity(cap),
            first_child: Vec::with_capacity(cap),
            next_sib: Vec::with_capacity(cap),
            prev_sib: Vec::with_capacity(cap),
            child_count: Vec::with_capacity(cap),
            p: Vec::with_capacity(cap),
            active: Vec::with_capacity(cap),
            alive: Vec::with_capacity(cap),
            saved_p: Vec::with_capacity(cap),
            compress_log: Vec::with_capacity(cap),
            compress_ends: Vec::with_capacity(cap + 1),
            rake_log: Vec::with_capacity(cap),
            rake_groups: Vec::with_capacity(cap),
            rake_ends: Vec::with_capacity(cap + 1),
            nodes_scratch: Vec::with_capacity(cap),
            msgs_scratch: Vec::with_capacity(2 * cap + 2),
            group_slots: Vec::with_capacity(cap),
            group_parts: Vec::with_capacity(cap),
            group_offsets: Vec::with_capacity(cap + 1),
            relay: RelayScratch::with_capacity(cap, cap),
            local: LocalChargeScratch::with_capacity(cap, 2 * cap + 2),
            acc: Vec::with_capacity(cap),
            out: Vec::with_capacity(cap),
            stats: ContractionStats {
                compact_rounds: 0,
                compresses: 0,
                rakes: 0,
            },
            coin: Vec::with_capacity(cap),
        }
    }

    /// One-shot constructor: capacity for exactly this tree, bound to
    /// it with children in light-first sibling order (matching the
    /// layout's placement).
    pub fn new(tree: &Tree, layout: &Layout, values: &[M], rake_adds_to_p: bool) -> Self {
        let sizes = tree.subtree_sizes();
        let sorted = ChildrenCsr::by_size(tree, &sizes);
        Self::with_children_csr(tree, layout, values, rake_adds_to_p, &sorted)
    }

    /// As [`ContractionEngine::new`], but consuming a prebuilt
    /// light-first [`ChildrenCsr`] — callers that already hold one
    /// (e.g. after threading an Euler tour over the same child order)
    /// skip the re-sort.
    pub fn with_children_csr(
        tree: &Tree,
        layout: &Layout,
        values: &[M],
        rake_adds_to_p: bool,
        sorted: &ChildrenCsr,
    ) -> Self {
        let mut eng = Self::with_capacity(tree.n() as usize);
        eng.bind(tree, layout, sorted, values, rake_adds_to_p);
        eng
    }

    /// Loads a concrete (tree, layout, light-first CSR, values)
    /// instance into the retained buffers, restarting the run cycle.
    /// Performs **zero heap allocation** whenever `tree.n()` is within
    /// the engine's capacity (grow first with
    /// [`EngineLifecycle::reserve`]).
    pub fn bind(
        &mut self,
        tree: &Tree,
        layout: &Layout,
        sorted: &ChildrenCsr,
        values: &[M],
        rake_adds_to_p: bool,
    ) {
        let n = tree.n() as usize;
        assert_eq!(layout.n() as usize, n, "layout size mismatch");
        self.slot.clear();
        self.slot.extend((0..n as u32).map(|v| layout.slot(v)));
        self.bind_inner(tree.parents(), sorted, values, rake_adds_to_p);
    }

    /// [`ContractionEngine::bind`] from the flat pieces a retaining
    /// caller (the batched-LCA engine, the session pool) already holds:
    /// the parent array and the per-vertex machine slots, instead of
    /// `Tree`/`Layout` borrows. Same zero-allocation contract.
    pub fn bind_parts(
        &mut self,
        parents: &[NodeId],
        slots: &[Slot],
        sorted: &ChildrenCsr,
        values: &[M],
        rake_adds_to_p: bool,
    ) {
        assert_eq!(slots.len(), parents.len(), "one slot per vertex");
        self.slot.clear();
        self.slot.extend_from_slice(slots);
        self.bind_inner(parents, sorted, values, rake_adds_to_p);
    }

    fn bind_inner(
        &mut self,
        parents: &[NodeId],
        sorted: &ChildrenCsr,
        values: &[M],
        rake_adds_to_p: bool,
    ) {
        let n = parents.len();
        assert_eq!(values.len(), n, "one value per vertex");
        assert_eq!(sorted.n() as usize, n, "children CSR size mismatch");

        self.n = n;
        self.cap = self.cap.max(n);
        self.phase = Phase::Bound;
        self.rake_adds_to_p = rake_adds_to_p;

        self.parent.clear();
        self.parent.extend_from_slice(parents);
        self.first_child.clear();
        self.first_child.resize(n, NIL);
        self.next_sib.clear();
        self.next_sib.resize(n, NIL);
        self.prev_sib.clear();
        self.prev_sib.resize(n, NIL);
        self.child_count.clear();
        self.child_count.resize(n, 0);
        self.p.clear();
        self.p.extend_from_slice(values);
        self.active.clear();
        self.active.resize(n, true);
        self.alive.clear();
        self.alive.extend(0..n as NodeId);
        self.saved_p.clear();
        self.saved_p.resize(n, M::identity());
        self.compress_log.clear();
        self.compress_ends.clear();
        self.rake_log.clear();
        self.rake_groups.clear();
        self.rake_ends.clear();
        self.acc.clear();
        self.acc.resize(n, M::identity());
        self.out.clear();
        self.out.resize(n, M::identity());
        self.coin.clear();
        self.coin.resize(n, false);
        self.stats = ContractionStats {
            compact_rounds: 0,
            compresses: 0,
            rakes: 0,
        };

        for v in 0..n as NodeId {
            let cs = sorted.children(v);
            self.child_count[v as usize] = cs.len() as u32;
            if let Some(&first) = cs.first() {
                self.first_child[v as usize] = first;
            }
            // Branchless splice over the CSR run: thread the sibling
            // links pairwise without the windows bounds machinery.
            for (&a, &b) in cs.iter().zip(cs.iter().skip(1)) {
                self.next_sib[a as usize] = b;
                self.prev_sib[b as usize] = a;
            }
        }
    }

    fn unlink_child(&mut self, u: NodeId, v: NodeId) {
        let (prev, next) = (self.prev_sib[v as usize], self.next_sib[v as usize]);
        if prev != NIL {
            self.next_sib[prev as usize] = next;
        } else {
            self.first_child[u as usize] = next;
        }
        if next != NIL {
            self.prev_sib[next as usize] = prev;
        }
        self.prev_sib[v as usize] = NIL;
        self.next_sib[v as usize] = NIL;
        self.child_count[u as usize] -= 1;
    }

    /// §V-A3 step 1/4: every supervertex tells its children whether it
    /// is branching. All parents broadcast *simultaneously* (batched
    /// relays, one machine round per relay level): `O(n)` energy and
    /// `O(log Δ)` depth per COMPACT round.
    fn charge_children_broadcast(&mut self, lc: &mut LocalCharge) {
        self.group_slots.clear();
        self.group_parts.clear();
        self.group_offsets.clear();
        self.group_offsets.push(0);
        for &u in &self.alive {
            if self.child_count[u as usize] == 0 {
                continue;
            }
            self.group_slots.push(self.slot[u as usize]);
            let mut c = self.first_child[u as usize];
            while c != NIL {
                self.group_parts.push(self.slot[c as usize]);
                c = self.next_sib[c as usize];
            }
            self.group_offsets.push(self.group_parts.len() as u32);
        }
        charge_broadcast_relays_csr_into(
            lc,
            &self.group_slots,
            &self.group_parts,
            &self.group_offsets,
            &mut self.relay,
        );
    }

    fn viable(&self, v: NodeId) -> bool {
        let p = self.parent[v as usize];
        p != NIL && self.child_count[p as usize] == 1 && self.child_count[v as usize] == 1
    }

    /// One COMPACT round: compress an independent random-mate set of
    /// viable supervertices, then rake leaf supervertices.
    fn compact_round<R: Rng>(&mut self, rng: &mut R, lc: &mut LocalCharge) {
        // Step 1: branching info.
        self.charge_children_broadcast(lc);

        // Step 2: random-mate selection among viable supervertices.
        for &v in &self.alive {
            self.coin[v as usize] = rng.gen();
        }
        // Branchless select/compact passes (SWAR-style: unconditional
        // write, advance the cursor by the predicate — no data-dependent
        // branches for the predictor to miss on random coins). Order,
        // contents, and the charged message rounds are identical to the
        // retained `push`/`retain` formulation, pinned by the
        // differential suite.
        let mut selected = std::mem::take(&mut self.nodes_scratch);
        selected.clear();
        selected.resize(self.alive.len(), 0);
        let mut k = 0usize;
        for i in 0..self.alive.len() {
            let v = self.alive[i];
            let p = self.parent[v as usize];
            // NIL-safe probe: index 0 when parentless, masked out of the
            // predicate by the `p != NIL` factor (cmov, not a branch).
            let safe_p = if p == NIL { 0 } else { p as usize };
            let ok =
                (p != NIL) & (self.child_count[safe_p] == 1) & (self.child_count[v as usize] == 1);
            debug_assert_eq!(ok, self.viable(v));
            selected[k] = v;
            k += ok as usize;
        }
        selected.truncate(k);
        self.msgs_scratch.clear();
        for &v in &selected {
            self.msgs_scratch.push((
                self.slot[self.parent[v as usize] as usize],
                self.slot[v as usize],
            ));
        }
        lc.round(&self.msgs_scratch);
        let mut k = 0usize;
        for i in 0..selected.len() {
            let v = selected[i];
            let keep = self.coin[v as usize] & !self.coin[self.parent[v as usize] as usize];
            selected[k] = v;
            k += keep as usize;
        }
        selected.truncate(k);

        // Step 3: COMPRESS every selected v with its parent u. The
        // selected set is independent (heads with tails predecessor), so
        // no parent is itself compressed this round.
        self.msgs_scratch.clear();
        for &v in &selected {
            let u = self.parent[v as usize];
            let c = self.first_child[v as usize];
            debug_assert!(c != NIL && self.child_count[v as usize] == 1);
            self.saved_p[v as usize] = self.p[u as usize];
            self.p[u as usize] = self.p[u as usize].combine(self.p[v as usize]);
            // u's only child was v; u inherits v's only child c.
            self.first_child[u as usize] = c;
            self.child_count[u as usize] = 1;
            self.parent[c as usize] = u;
            self.prev_sib[c as usize] = NIL;
            self.next_sib[c as usize] = NIL;
            self.active[v as usize] = false;
            self.msgs_scratch
                .push((self.slot[v as usize], self.slot[u as usize]));
            self.msgs_scratch
                .push((self.slot[v as usize], self.slot[c as usize]));
            self.compress_log.push(v);
        }
        lc.round(&self.msgs_scratch);
        self.stats.compresses += selected.len() as u64;
        self.nodes_scratch = selected;

        // Step 4: refresh branching info after the compresses.
        let mut alive = std::mem::take(&mut self.alive);
        compact_by_flag(&mut alive, &self.active);
        self.alive = alive;
        self.charge_children_broadcast(lc);

        // Step 5: RAKE leaf supervertices wherever all-but-at-most-one
        // children are leaves. All rakes of the round run concurrently:
        // the reduce relays are charged as one batch.
        self.group_slots.clear();
        self.group_parts.clear();
        self.group_offsets.clear();
        self.group_offsets.push(0);
        for i in 0..self.alive.len() {
            let u = self.alive[i];
            if self.child_count[u as usize] == 0 {
                continue;
            }
            // First sibling walk: is this a raking parent? Branchless
            // accumulate — both counters advance by a predicate, no
            // per-child branch.
            let mut leaves = 0u64;
            let mut others = 0u64;
            let mut c = self.first_child[u as usize];
            while c != NIL {
                let is_leaf = self.child_count[c as usize] == 0;
                leaves += is_leaf as u64;
                others += !is_leaf as u64;
                c = self.next_sib[c as usize];
            }
            if leaves == 0 || others > 1 {
                continue;
            }
            // The reduce relay spans all children (the non-raked child w
            // contributes the identity, as in the paper).
            self.group_slots.push(self.slot[u as usize]);
            let mut c = self.first_child[u as usize];
            while c != NIL {
                self.group_parts.push(self.slot[c as usize]);
                c = self.next_sib[c as usize];
            }
            self.group_offsets.push(self.group_parts.len() as u32);

            let saved = self.p[u as usize];
            let mut acc = M::identity();
            let group_start = self.rake_log.len() as u32;
            let mut c = self.first_child[u as usize];
            while c != NIL {
                let next = self.next_sib[c as usize];
                if self.child_count[c as usize] == 0 {
                    acc = acc.combine(self.p[c as usize]);
                    self.saved_p[c as usize] = saved;
                    self.active[c as usize] = false;
                    self.unlink_child(u, c);
                    self.rake_log.push(c);
                }
                c = next;
            }
            if self.rake_adds_to_p {
                self.p[u as usize] = saved.combine(acc);
            }
            self.stats.rakes += leaves;
            self.rake_groups
                .push((u, group_start, self.rake_log.len() as u32));
        }
        charge_reduce_relays_csr_into(
            lc,
            &self.group_parts,
            &self.group_offsets,
            &self.group_slots,
            &mut self.relay,
        );
        let mut alive = std::mem::take(&mut self.alive);
        compact_by_flag(&mut alive, &self.active);
        self.alive = alive;

        self.compress_ends.push(self.compress_log.len() as u32);
        self.rake_ends.push(self.rake_groups.len() as u32);
        self.stats.compact_rounds += 1;
    }

    /// Contracts the whole tree to a single supervertex, charging every
    /// round on `machine`. Returns the stats; the random seed affects
    /// only costs, never results.
    pub fn contract<R: Rng>(&mut self, machine: &Machine, rng: &mut R) -> ContractionStats {
        assert_eq!(self.phase, Phase::Bound, "bind() a tree first");
        self.phase = Phase::Contracted;
        let n = self.n as u64;
        // Rake always removes the deepest leaves, so every round makes
        // progress; the bound below is a defensive cap, not a tuning
        // parameter.
        let cap = 4 * n + 64;
        // All rounds of the contraction charge through one local
        // session (identical accounting, no per-message atomics).
        let mut scratch = std::mem::take(&mut self.local);
        let mut lc = machine.begin_local_charge(&mut scratch);
        while self.alive.len() > 1 {
            let before = self.alive.len();
            self.compact_round(rng, &mut lc);
            debug_assert!(self.alive.len() < before, "COMPACT made no progress");
            assert!(
                (self.stats.compact_rounds as u64) <= cap,
                "contraction failed to converge"
            );
        }
        lc.commit();
        self.local = scratch;
        self.stats
    }

    /// Replays one logged round's rake undo broadcasts (group `u` →
    /// its raked leaves) from the flat log.
    fn charge_rake_undo_broadcast(
        &mut self,
        group_range: std::ops::Range<usize>,
        lc: &mut LocalCharge,
    ) {
        self.group_slots.clear();
        self.group_parts.clear();
        self.group_offsets.clear();
        self.group_offsets.push(0);
        for &(u, start, end) in &self.rake_groups[group_range.clone()] {
            self.group_slots.push(self.slot[u as usize]);
            for &v in &self.rake_log[start as usize..end as usize] {
                self.group_parts.push(self.slot[v as usize]);
            }
            self.group_offsets.push(self.group_parts.len() as u32);
        }
        charge_broadcast_relays_csr_into(
            lc,
            &self.group_slots,
            &self.group_parts,
            &self.group_offsets,
            &mut self.relay,
        );
    }

    /// Charges the compress-undo messages (`u → v`) of one logged
    /// round.
    fn charge_compress_undo(&mut self, log_range: std::ops::Range<usize>, lc: &mut LocalCharge) {
        self.msgs_scratch.clear();
        for &v in &self.compress_log[log_range] {
            let u = self.parent_at_merge(v);
            self.msgs_scratch
                .push((self.slot[u as usize], self.slot[v as usize]));
        }
        lc.round(&self.msgs_scratch);
    }

    /// §V-B uncontraction for the bottom-up treefix: returns
    /// `sum(v) = ⊕ values over v's subtree` for every vertex. The slice
    /// lives in the engine's retained output buffer (valid until the
    /// next run).
    pub fn uncontract_bottom_up(&mut self, machine: &Machine) -> &[M] {
        assert_eq!(self.phase, Phase::Contracted, "contract() must run first");
        self.phase = Phase::Done;
        let n = self.n;
        let mut scratch = std::mem::take(&mut self.local);
        let mut lc = machine.begin_local_charge(&mut scratch);
        // a[v]: combination of v's *outside descendants* — subtree
        // values below v that merged past it (preallocated identity).
        for round in (0..self.stats.compact_rounds as usize).rev() {
            let (gs, ge) = round_span(&self.rake_ends, round);
            let (cs, ce) = round_span(&self.compress_ends, round);
            // Rakes were executed after compresses within the step; undo
            // them first — all rake groups of the step concurrently.
            self.charge_rake_undo_broadcast(gs..ge, &mut lc);
            for gi in (gs..ge).rev() {
                let (u, start, end) = self.rake_groups[gi];
                let mut acc = M::identity();
                for &v in &self.rake_log[start as usize..end as usize] {
                    acc = acc.combine(self.p[v as usize]);
                    // Leaf supervertices have no outside descendants:
                    // a[v] stays the identity.
                }
                self.acc[u as usize] = self.acc[u as usize].combine(acc);
                self.p[u as usize] = self.saved_p[self.rake_log[start as usize] as usize];
            }
            self.charge_compress_undo(cs..ce, &mut lc);
            for li in (cs..ce).rev() {
                let v = self.compress_log[li];
                let u = self.parent_at_merge(v);
                // v's outside descendants were u's outside descendants.
                self.acc[v as usize] = self.acc[u as usize];
                self.acc[u as usize] = self.acc[u as usize].combine(self.p[v as usize]);
                self.p[u as usize] = self.saved_p[v as usize];
            }
        }
        lc.commit();
        self.local = scratch;
        let (p, acc) = (&self.p, &self.acc);
        for (v, out) in self.out[..n].iter_mut().enumerate() {
            *out = p[v].combine(acc[v]);
        }
        &self.out[..n]
    }

    /// §V-D uncontraction for the top-down treefix: returns
    /// `sum'(v) = ⊕ values along the root → v path` for every vertex.
    /// The engine must have been bound with `rake_adds_to_p = false`.
    /// The slice lives in the engine's retained output buffer (valid
    /// until the next run).
    pub fn uncontract_top_down(&mut self, machine: &Machine, values: &[M]) -> &[M] {
        assert_eq!(self.phase, Phase::Contracted, "contract() must run first");
        assert!(
            !self.rake_adds_to_p,
            "top-down uncontraction needs a path-segment P (rake_adds_to_p = false)"
        );
        self.phase = Phase::Done;
        let n = self.n;
        let mut scratch = std::mem::take(&mut self.local);
        let mut lc = machine.begin_local_charge(&mut scratch);
        // acc[v] plays b[v]: combination of values strictly above
        // supervertex v.
        for round in (0..self.stats.compact_rounds as usize).rev() {
            let (gs, ge) = round_span(&self.rake_ends, round);
            let (cs, ce) = round_span(&self.compress_ends, round);
            self.charge_rake_undo_broadcast(gs..ge, &mut lc);
            for gi in (gs..ge).rev() {
                let (u, start, end) = self.rake_groups[gi];
                for li in start as usize..end as usize {
                    let v = self.rake_log[li];
                    // The raked leaves hang below u's whole path segment.
                    self.acc[v as usize] = self.acc[u as usize].combine(self.p[u as usize]);
                }
            }
            self.charge_compress_undo(cs..ce, &mut lc);
            for li in (cs..ce).rev() {
                let v = self.compress_log[li];
                let u = self.parent_at_merge(v);
                // The segment above v is u's pre-merge segment.
                self.acc[v as usize] = self.acc[u as usize].combine(self.saved_p[v as usize]);
                self.p[u as usize] = self.saved_p[v as usize];
            }
        }
        lc.commit();
        self.local = scratch;
        let acc = &self.acc;
        for (v, out) in self.out[..n].iter_mut().enumerate() {
            *out = acc[v].combine(values[v]);
        }
        &self.out[..n]
    }

    /// The most recent uncontraction result, re-borrowed (valid after
    /// an `uncontract_*` call, until the next bind).
    pub fn output(&self) -> &[M] {
        assert_eq!(self.phase, Phase::Done, "run an uncontraction first");
        &self.out[..self.n]
    }

    /// The representative a compressed vertex merged into. The parent
    /// pointer of `v` is frozen at merge time (deactivated vertices are
    /// never re-parented).
    fn parent_at_merge(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Number of still-active supervertices.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }
}

impl<M: CommutativeMonoid> EngineLifecycle for ContractionEngine<M> {
    fn capacity(&self) -> usize {
        self.cap
    }

    fn reserve(&mut self, cap: usize) {
        if cap <= self.cap {
            return;
        }
        fn grow<T>(buf: &mut Vec<T>, cap: usize) {
            buf.reserve(cap.saturating_sub(buf.len()));
        }
        grow(&mut self.slot, cap);
        grow(&mut self.parent, cap);
        grow(&mut self.first_child, cap);
        grow(&mut self.next_sib, cap);
        grow(&mut self.prev_sib, cap);
        grow(&mut self.child_count, cap);
        grow(&mut self.p, cap);
        grow(&mut self.active, cap);
        grow(&mut self.alive, cap);
        grow(&mut self.saved_p, cap);
        grow(&mut self.compress_log, cap);
        grow(&mut self.compress_ends, cap + 1);
        grow(&mut self.rake_log, cap);
        grow(&mut self.rake_groups, cap);
        grow(&mut self.rake_ends, cap + 1);
        grow(&mut self.nodes_scratch, cap);
        grow(&mut self.msgs_scratch, 2 * cap + 2);
        grow(&mut self.group_slots, cap);
        grow(&mut self.group_parts, cap);
        grow(&mut self.group_offsets, cap + 1);
        grow(&mut self.acc, cap);
        grow(&mut self.out, cap);
        grow(&mut self.coin, cap);
        self.relay.reserve(cap, cap);
        self.local.reserve(cap, 2 * cap + 2);
        self.cap = cap;
    }

    fn reset(&mut self) {
        self.n = 0;
        self.phase = Phase::Unbound;
    }
}

/// `[start, end)` span of round `r` in a per-round end-offset array.
#[inline]
/// Stable in-place compaction keeping `v` where `flag[v]`: the
/// branchless SWAR replacement for `retain` on the alive list —
/// unconditional write, cursor advanced by the flag, no data-dependent
/// branch on the (random) liveness pattern for the predictor to miss.
fn compact_by_flag(list: &mut Vec<NodeId>, flag: &[bool]) {
    let mut k = 0usize;
    for i in 0..list.len() {
        let v = list[i];
        list[k] = v;
        k += flag[v as usize] as usize;
    }
    list.truncate(k);
}

fn round_span(ends: &[u32], round: usize) -> (usize, usize) {
    let start = if round == 0 {
        0
    } else {
        ends[round - 1] as usize
    };
    (start, ends[round] as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{treefix_bottom_up_host, treefix_top_down_host};
    use crate::monoid::{Add, Max};
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn run_bottom_up<M: CommutativeMonoid>(
        tree: &Tree,
        values: &[M],
        seed: u64,
    ) -> (Vec<M>, ContractionStats) {
        let layout = Layout::light_first(tree, CurveKind::Hilbert);
        let machine = layout.machine();
        let mut eng = ContractionEngine::new(tree, &layout, values, true);
        let stats = eng.contract(&machine, &mut StdRng::seed_from_u64(seed));
        (eng.uncontract_bottom_up(&machine).to_vec(), stats)
    }

    fn run_top_down<M: CommutativeMonoid>(tree: &Tree, values: &[M], seed: u64) -> Vec<M> {
        let layout = Layout::light_first(tree, CurveKind::Hilbert);
        let machine = layout.machine();
        let mut eng = ContractionEngine::new(tree, &layout, values, false);
        eng.contract(&machine, &mut StdRng::seed_from_u64(seed));
        eng.uncontract_top_down(&machine, values).to_vec()
    }

    #[test]
    fn two_vertex_tree() {
        let t = Tree::from_parents(0, vec![NIL, 0]);
        let (got, stats) = run_bottom_up(&t, &[Add(5), Add(7)], 1);
        assert_eq!(got, vec![Add(12), Add(7)]);
        assert_eq!(stats.compact_rounds, 1);
        assert_eq!(stats.rakes, 1);
    }

    #[test]
    fn path_bottom_up() {
        let t = generators::path(10);
        let values: Vec<Add> = (0..10u64).map(Add).collect();
        let (got, _) = run_bottom_up(&t, &values, 3);
        assert_eq!(got, treefix_bottom_up_host(&t, &values));
    }

    #[test]
    fn star_bottom_up() {
        let t = generators::star(100);
        let values: Vec<Add> = (0..100u64).map(|v| Add(v + 1)).collect();
        let (got, stats) = run_bottom_up(&t, &values, 4);
        assert_eq!(got, treefix_bottom_up_host(&t, &values));
        // One rake absorbs all 99 leaves.
        assert_eq!(stats.compact_rounds, 1);
        assert_eq!(stats.rakes, 99);
    }

    #[test]
    fn bottom_up_matches_host_on_families() {
        let mut rng = StdRng::seed_from_u64(5);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(300, &mut rng);
            let n = t.n();
            let values: Vec<Add> = (0..n as u64).map(|v| Add(v * 3 + 1)).collect();
            let (got, _) = run_bottom_up(&t, &values, 6);
            assert_eq!(got, treefix_bottom_up_host(&t, &values), "{fam}");
        }
    }

    #[test]
    fn top_down_matches_host_on_families() {
        let mut rng = StdRng::seed_from_u64(7);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(300, &mut rng);
            let n = t.n();
            let values: Vec<Add> = (0..n as u64).map(|v| Add(v * 5 + 2)).collect();
            let got = run_top_down(&t, &values, 8);
            assert_eq!(got, treefix_top_down_host(&t, &values), "{fam}");
        }
    }

    #[test]
    fn max_monoid_no_inverse() {
        // max has no inverses: this exercises the saved-P undo path.
        let mut rng = StdRng::seed_from_u64(9);
        let t = generators::uniform_random(500, &mut rng);
        let values: Vec<Max> = (0..500u64)
            .map(|v| Max((v * 2_654_435_761) % 1000))
            .collect();
        let (got, _) = run_bottom_up(&t, &values, 10);
        assert_eq!(got, treefix_bottom_up_host(&t, &values));
        let got_td = run_top_down(&t, &values, 11);
        assert_eq!(got_td, treefix_top_down_host(&t, &values));
    }

    #[test]
    fn las_vegas_any_seed_same_result() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = generators::preferential_attachment(200, &mut rng);
        let values: Vec<Add> = (0..200u64).map(Add).collect();
        let expect = treefix_bottom_up_host(&t, &values);
        for seed in 0..8 {
            let (got, _) = run_bottom_up(&t, &values, seed);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn rounds_logarithmic() {
        let mut rng = StdRng::seed_from_u64(13);
        for log_n in [10u32, 13] {
            let n = 1u32 << log_n;
            let t = generators::random_binary(n, &mut rng);
            let values = vec![Add(1); n as usize];
            let (_, stats) = run_bottom_up(&t, &values, 14);
            assert!(
                stats.compact_rounds <= 6 * log_n,
                "n=2^{log_n}: {} rounds",
                stats.compact_rounds
            );
        }
    }

    #[test]
    fn subtree_sizes_via_treefix() {
        let mut rng = StdRng::seed_from_u64(15);
        let t = generators::uniform_random(400, &mut rng);
        let (got, _) = run_bottom_up(&t, &vec![Add(1); 400], 16);
        let sizes: Vec<u64> = got.iter().map(|a| a.0).collect();
        let expect: Vec<u64> = t.subtree_sizes().iter().map(|&s| s as u64).collect();
        assert_eq!(sizes, expect);
    }

    #[test]
    fn single_vertex() {
        let t = Tree::from_parents(0, vec![NIL]);
        let (got, stats) = run_bottom_up(&t, &[Add(42)], 17);
        assert_eq!(got, vec![Add(42)]);
        assert_eq!(stats.compact_rounds, 0);
    }

    #[test]
    fn prebuilt_csr_constructor_agrees() {
        let mut rng = StdRng::seed_from_u64(18);
        let t = generators::uniform_random(300, &mut rng);
        let sizes = t.subtree_sizes();
        let csr = ChildrenCsr::by_size(&t, &sizes);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let values: Vec<Add> = (0..300u64).map(Add).collect();
        let mut eng = ContractionEngine::with_children_csr(&t, &layout, &values, true, &csr);
        eng.contract(&machine, &mut StdRng::seed_from_u64(19));
        assert_eq!(
            eng.uncontract_bottom_up(&machine),
            &treefix_bottom_up_host(&t, &values)[..]
        );
    }

    #[test]
    fn rebinding_across_trees_matches_fresh_engines() {
        // One pooled engine serving trees of sizes n, then 2n+3, then 5
        // answers exactly like a fresh engine per tree, and the charges
        // agree too (the capacity-growth contract of the session pool).
        let n0 = 120u32;
        let mut engine: ContractionEngine<Add> = ContractionEngine::with_capacity(n0 as usize);
        for (i, n) in [n0, 2 * n0 + 3, 5, 2 * n0].into_iter().enumerate() {
            let t = generators::uniform_random(n, &mut StdRng::seed_from_u64(20 + i as u64));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let sizes = t.subtree_sizes();
            let csr = ChildrenCsr::by_size(&t, &sizes);
            let values: Vec<Add> = (0..n as u64).map(|v| Add(v + 1)).collect();

            engine.reserve(n as usize);
            engine.bind(&t, &layout, &csr, &values, true);
            let m_pooled = layout.machine();
            let s_pooled = engine.contract(&m_pooled, &mut StdRng::seed_from_u64(30));
            let got = engine.uncontract_bottom_up(&m_pooled).to_vec();

            let mut fresh = ContractionEngine::new(&t, &layout, &values, true);
            let m_fresh = layout.machine();
            let s_fresh = fresh.contract(&m_fresh, &mut StdRng::seed_from_u64(30));
            let expect = fresh.uncontract_bottom_up(&m_fresh);

            assert_eq!(got, expect, "n={n}");
            assert_eq!(s_pooled, s_fresh, "n={n}");
            assert_eq!(m_pooled.report(), m_fresh.report(), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "bind() a tree first")]
    fn contract_requires_binding() {
        let mut engine: ContractionEngine<Add> = ContractionEngine::with_capacity(8);
        let machine = Machine::on_curve(CurveKind::Hilbert, 8);
        engine.contract(&machine, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "contract() must run first")]
    fn uncontract_requires_contract() {
        let t = generators::path(4);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let values = vec![Add(1); 4];
        let mut engine = ContractionEngine::new(&t, &layout, &values, true);
        engine.uncontract_bottom_up(&machine);
    }
}
