//! Commutative monoids for treefix sums.
//!
//! "Any associative operator may be used instead of a sum" (§V); the
//! uncontraction additionally needs commutativity because sibling
//! aggregates re-attach out of order. Each monoid is a `Copy` newtype so
//! the per-processor state stays a fixed-size value, honouring the
//! model's O(1) memory per processor.

/// A commutative monoid: an associative, commutative [`combine`] with an
/// [`identity`] element.
///
/// [`combine`]: CommutativeMonoid::combine
/// [`identity`]: CommutativeMonoid::identity
pub trait CommutativeMonoid: Copy + Send + Sync + PartialEq + std::fmt::Debug {
    /// The identity element (`identity ⊕ x = x`).
    fn identity() -> Self;
    /// The monoid operation.
    fn combine(self, other: Self) -> Self;
}

/// Addition over `u64` (wrapping, so huge synthetic workloads never
/// panic in debug builds).
///
/// `repr(transparent)` is load-bearing: the session layer serves
/// weights straight out of a mapped `&[u64]` slab and reinterprets it
/// as `&[Add]` without copying, which is only sound while `Add` has
/// exactly `u64`'s layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Add(pub u64);

impl CommutativeMonoid for Add {
    fn identity() -> Self {
        Add(0)
    }
    fn combine(self, other: Self) -> Self {
        Add(self.0.wrapping_add(other.0))
    }
}

/// Maximum over `u64` (identity 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Max(pub u64);

impl CommutativeMonoid for Max {
    fn identity() -> Self {
        Max(0)
    }
    fn combine(self, other: Self) -> Self {
        Max(self.0.max(other.0))
    }
}

/// Minimum over `u64` (identity `u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Min(pub u64);

impl CommutativeMonoid for Min {
    fn identity() -> Self {
        Min(u64::MAX)
    }
    fn combine(self, other: Self) -> Self {
        Min(self.0.min(other.0))
    }
}

/// Bitwise XOR over `u64` — a commutative *group*, handy for tests
/// because every element is its own inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xor(pub u64);

impl CommutativeMonoid for Xor {
    fn identity() -> Self {
        Xor(0)
    }
    fn combine(self, other: Self) -> Self {
        Xor(self.0 ^ other.0)
    }
}

impl<A: CommutativeMonoid, B: CommutativeMonoid> CommutativeMonoid for (A, B) {
    fn identity() -> Self {
        (A::identity(), B::identity())
    }
    fn combine(self, other: Self) -> Self {
        (self.0.combine(other.0), self.1.combine(other.1))
    }
}

impl<A: CommutativeMonoid, B: CommutativeMonoid, C: CommutativeMonoid> CommutativeMonoid
    for (A, B, C)
{
    fn identity() -> Self {
        (A::identity(), B::identity(), C::identity())
    }
    fn combine(self, other: Self) -> Self {
        (
            self.0.combine(other.0),
            self.1.combine(other.1),
            self.2.combine(other.2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_axioms<M: CommutativeMonoid>(items: &[M]) {
        for &a in items {
            assert_eq!(M::identity().combine(a), a, "left identity");
            assert_eq!(a.combine(M::identity()), a, "right identity");
            for &b in items {
                assert_eq!(a.combine(b), b.combine(a), "commutativity");
                for &c in items {
                    assert_eq!(
                        a.combine(b).combine(c),
                        a.combine(b.combine(c)),
                        "associativity"
                    );
                }
            }
        }
    }

    #[test]
    fn add_axioms() {
        check_axioms(&[Add(0), Add(1), Add(17), Add(u64::MAX)]);
    }

    #[test]
    fn max_axioms() {
        check_axioms(&[Max(0), Max(5), Max(u64::MAX)]);
    }

    #[test]
    fn min_axioms() {
        check_axioms(&[Min(0), Min(5), Min(u64::MAX)]);
    }

    #[test]
    fn xor_axioms() {
        check_axioms(&[Xor(0), Xor(0b1010), Xor(u64::MAX)]);
    }

    #[test]
    fn wrapping_add() {
        assert_eq!(Add(u64::MAX).combine(Add(2)), Add(1));
    }

    #[test]
    fn tuple_monoids() {
        check_axioms(&[(Add(1), Max(2)), (Add(0), Max(0)), (Add(9), Max(u64::MAX))]);
        check_axioms(&[(Add(1), Max(2), Min(3)), (Add(7), Max(0), Min(u64::MAX))]);
        // One fused treefix computes several aggregates at once.
        let combined = (Add(3), Max(5), Min(5)).combine((Add(4), Max(2), Min(2)));
        assert_eq!(combined, (Add(7), Max(5), Min(2)));
    }
}
