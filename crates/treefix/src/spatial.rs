//! Driver entry points for the spatial treefix algorithms (§V-C, §V-D).

use crate::contraction::{ContractionEngine, ContractionStats};
use crate::monoid::CommutativeMonoid;
use rand::Rng;
use spatial_layout::Layout;
use spatial_model::Machine;
use spatial_tree::Tree;

/// Result of a spatial treefix run.
#[derive(Debug, Clone)]
pub struct TreefixResult<M> {
    /// Per-vertex result (subtree sums for bottom-up, root-path sums for
    /// top-down).
    pub values: Vec<M>,
    /// Contraction statistics (Las Vegas cost evidence).
    pub stats: ContractionStats,
}

/// Bottom-up treefix sum on the spatial machine: `result[v] = ⊕ values
/// over the subtree of v`.
///
/// `O(n log n)` energy w.h.p.; depth `O(log n)` for bounded-degree trees
/// and `O(log² n)` in general (Lemmas 11–12). The tree must be laid out
/// in an energy-bound light-first order for those bounds to hold — any
/// layout is accepted, the meter simply reports what it costs.
pub fn treefix_bottom_up<M: CommutativeMonoid, R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    values: &[M],
    rng: &mut R,
) -> TreefixResult<M> {
    let mut engine = ContractionEngine::new(tree, layout, values, true);
    let stats = engine.contract(machine, rng);
    TreefixResult {
        values: engine.uncontract_bottom_up(machine).to_vec(),
        stats,
    }
}

/// Top-down treefix sum on the spatial machine: `result[v] = ⊕ values
/// along the root → v path` (inclusive). Costs as
/// [`treefix_bottom_up`].
pub fn treefix_top_down<M: CommutativeMonoid, R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    values: &[M],
    rng: &mut R,
) -> TreefixResult<M> {
    let mut engine = ContractionEngine::new(tree, layout, values, false);
    let stats = engine.contract(machine, rng);
    TreefixResult {
        values: engine.uncontract_top_down(machine, values).to_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{treefix_bottom_up_host, treefix_top_down_host};
    use crate::monoid::Add;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    #[test]
    fn lemma11_bounded_degree_costs() {
        // Bounded degree: O(n log n) energy, O(log n) depth.
        let mut e_norm = Vec::new();
        for log_n in [10u32, 12, 14] {
            let n = 1u32 << log_n;
            let t = generators::random_binary(n, &mut StdRng::seed_from_u64(1));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let m = layout.machine();
            let values = vec![Add(1); n as usize];
            let res = treefix_bottom_up(&m, &layout, &t, &values, &mut StdRng::seed_from_u64(2));
            let r = m.report();
            e_norm.push(r.energy_per_n_log_n(n as u64));
            assert!(
                r.depth as f64 <= 25.0 * log_n as f64,
                "n=2^{log_n}: depth {} not O(log n)",
                r.depth
            );
            // Sanity: correct output.
            assert_eq!(res.values[t.root() as usize], Add(n as u64));
        }
        let (lo, hi) = (
            e_norm.iter().cloned().fold(f64::MAX, f64::min),
            e_norm.iter().cloned().fold(0.0, f64::max),
        );
        assert!(
            hi / lo < 3.0,
            "energy/(n log n) should be near-flat: {e_norm:?}"
        );
    }

    #[test]
    fn lemma12_unbounded_degree_costs() {
        // Unbounded degree: still O(n log n) energy; depth O(log² n).
        for log_n in [10u32, 12] {
            let n = 1u32 << log_n;
            let t = generators::preferential_attachment(n, &mut StdRng::seed_from_u64(3));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let m = layout.machine();
            let values = vec![Add(1); n as usize];
            treefix_bottom_up(&m, &layout, &t, &values, &mut StdRng::seed_from_u64(4));
            let r = m.report();
            assert!(
                r.energy_per_n_log_n(n as u64) < 60.0,
                "n=2^{log_n}: energy/(n log n) = {}",
                r.energy_per_n_log_n(n as u64)
            );
            let log2 = (log_n as f64) * (log_n as f64);
            assert!(
                (r.depth as f64) < 25.0 * log2,
                "n=2^{log_n}: depth {} not O(log² n)",
                r.depth
            );
        }
    }

    #[test]
    fn zorder_layout_same_bounds() {
        // Theorem 2: Z-order light-first is also energy-bound.
        let n = 1u32 << 12;
        let t = generators::random_binary(n, &mut StdRng::seed_from_u64(5));
        let layout = Layout::light_first(&t, CurveKind::ZOrder);
        let m = layout.machine();
        treefix_bottom_up(
            &m,
            &layout,
            &t,
            &vec![Add(1); n as usize],
            &mut StdRng::seed_from_u64(6),
        );
        assert!(m.report().energy_per_n_log_n(n as u64) < 60.0);
    }

    #[test]
    fn bad_layout_costs_more() {
        // The meter doesn't lie: a random layout burns far more energy
        // for the same computation.
        let n = 1u32 << 12;
        let t = generators::random_binary(n, &mut StdRng::seed_from_u64(7));
        let mut rng = StdRng::seed_from_u64(8);

        let good = Layout::light_first(&t, CurveKind::Hilbert);
        let mg = good.machine();
        treefix_bottom_up(&mg, &good, &t, &vec![Add(1); n as usize], &mut rng);

        let bad = Layout::random(&t, CurveKind::Hilbert, &mut rng);
        let mb = bad.machine();
        treefix_bottom_up(&mb, &bad, &t, &vec![Add(1); n as usize], &mut rng);

        assert!(
            mb.report().energy > 4 * mg.report().energy,
            "random layout {} vs light-first {}",
            mb.report().energy,
            mg.report().energy
        );
    }

    #[test]
    fn top_down_driver_matches_host() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = generators::yule(300, &mut rng);
        let n = t.n();
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let m = layout.machine();
        let values: Vec<Add> = (0..n as u64).map(|v| Add(v % 17)).collect();
        let res = treefix_top_down(&m, &layout, &t, &values, &mut rng);
        assert_eq!(res.values, treefix_top_down_host(&t, &values));
    }

    #[test]
    fn bottom_up_driver_matches_host() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = generators::comb(777);
        let values: Vec<Add> = (0..777u64).map(|v| Add(v + 3)).collect();
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let m = layout.machine();
        let res = treefix_bottom_up(&m, &layout, &t, &values, &mut rng);
        assert_eq!(res.values, treefix_bottom_up_host(&t, &values));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::host::{treefix_bottom_up_host, treefix_top_down_host};
    use crate::monoid::{Add, Max, Min};
    use proptest::prelude::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fused product-monoid treefix equals three independent host
        /// treefixes, on any tree and seed.
        #[test]
        fn prop_product_monoid_fuses(
            t in spatial_tree::strategies::arb_tree(200),
            algo_seed in 0u64..10_000,
        ) {
            let n = t.n();
            let layout = spatial_layout::Layout::light_first(&t, CurveKind::Hilbert);
            let machine = layout.machine();
            let values: Vec<(Add, Max, Min)> = (0..n as u64)
                .map(|v| (Add(v + 1), Max(v * 7 % 50), Min(v * 13 % 90)))
                .collect();
            let fused = treefix_bottom_up(
                &machine, &layout, &t, &values, &mut StdRng::seed_from_u64(algo_seed),
            );
            let adds: Vec<Add> = values.iter().map(|v| v.0).collect();
            let maxs: Vec<Max> = values.iter().map(|v| v.1).collect();
            let mins: Vec<Min> = values.iter().map(|v| v.2).collect();
            let ea = treefix_bottom_up_host(&t, &adds);
            let em = treefix_bottom_up_host(&t, &maxs);
            let en = treefix_bottom_up_host(&t, &mins);
            for v in 0..n as usize {
                prop_assert_eq!(fused.values[v], (ea[v], em[v], en[v]));
            }
        }

        /// Top-down and bottom-up treefix agree with host references on
        /// arbitrary bounded-degree trees.
        #[test]
        fn prop_binary_trees_both_directions(
            t in spatial_tree::strategies::arb_tree(250)
                .families(&generators::TreeFamily::BOUNDED_DEGREE),
            algo_seed in 0u64..10_000,
        ) {
            let n = t.n();
            let layout = spatial_layout::Layout::light_first(&t, CurveKind::Hilbert);
            let machine = layout.machine();
            let values: Vec<Add> = (0..n as u64).map(|v| Add(v % 31)).collect();
            let mut rng2 = StdRng::seed_from_u64(algo_seed);
            let bu = treefix_bottom_up(&machine, &layout, &t, &values, &mut rng2);
            prop_assert_eq!(bu.values, treefix_bottom_up_host(&t, &values));
            let td = treefix_top_down(&machine, &layout, &t, &values, &mut rng2);
            prop_assert_eq!(td.values, treefix_top_down_host(&t, &values));
        }
    }
}
