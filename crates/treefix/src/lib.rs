//! Treefix sums via spatial rake-and-compress tree contraction (§V).
//!
//! Given a value in every vertex, the **bottom-up treefix sum** computes
//! for each vertex the combination of all values in its subtree; the
//! **top-down treefix sum** (§V-D) computes the combination of values
//! along the root-to-vertex path. Both generalize prefix sums and are
//! the paper's building blocks for LCA, path decompositions, and the
//! minimum-cut applications it cites.
//!
//! The spatial algorithm adapts Miller–Reif rake/compress contraction:
//!
//! - [`contraction::ContractionEngine`] maintains supervertices with
//!   `O(1)` state per vertex (sibling-linked child lists, a partial sum
//!   at each representative, and a distributed contraction log stored on
//!   deactivated vertices — Fig. 6).
//! - `COMPACT` rounds (§V-A3) pick independent compressible vertices by
//!   random-mate, compress them, then rake leaf supervertices; `O(log n)`
//!   rounds suffice with high probability (Las Vegas: the result is
//!   always exact, only the cost is random).
//! - Uncontraction (§V-B) replays the log backwards, maintaining the
//!   invariant `sum(v) = P_v ⊕ A_v`.
//!
//! Costs on an energy-bound light-first layout: `O(n log n)` energy and
//! `O(log n)` depth for bounded-degree trees, `O(log² n)` depth in
//! general (Lemmas 10–12). All messages are charged on the [`Machine`],
//! with unbounded-degree fan-in/fan-out going through balanced relays
//! (Theorem 3 / the `spatial-messaging` crate).
//!
//! [`Machine`]: spatial_model::Machine
//!
//! The operator must form a **commutative monoid** ([`CommutativeMonoid`]):
//! the uncontraction merges sibling subtree aggregates out of order. The
//! engine stores pre-merge partial sums in the (deactivated) vertices
//! instead of subtracting like the paper's exposition, so non-group
//! monoids such as `max` work unchanged.

pub mod contraction;
pub mod expression;
pub mod host;
pub mod monoid;
#[doc(hidden)]
pub mod reference;
pub mod spatial;

pub use contraction::ContractionStats;
pub use expression::{
    evaluate_expression, evaluate_expression_host, ExprNode, ExprResult, ExprTree,
};
pub use host::{treefix_bottom_up_host, treefix_top_down_host};
pub use monoid::{Add, CommutativeMonoid, Max, Min, Xor};
pub use spatial::{treefix_bottom_up, treefix_top_down, TreefixResult};
