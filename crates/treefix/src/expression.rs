//! Parallel expression tree evaluation (Miller & Reif \[38\], the
//! application §V cites as the origin of treefix-style contraction).
//!
//! An arithmetic expression tree has constants at the leaves and binary
//! `+`/`×` operators at internal vertices. Rake/compress evaluates *all*
//! subexpressions in `O(log n)` COMPACT rounds: raking a known leaf
//! partially applies its parent's operator, turning the parent into an
//! affine function `x ↦ a·x + b` of its remaining operand, and
//! compressing a unary chain composes the affine functions. Affine maps
//! over a (wrapping) semiring are closed under composition, which is
//! the whole trick.
//!
//! Costs mirror the treefix bounds: on an energy-bound light-first
//! layout, `O(n log n)` energy and `O(log n)` depth w.h.p. (expression
//! trees are binary, so the bounded-degree bound of Lemma 11 applies).
//! Arithmetic wraps modulo 2⁶⁴ so adversarial inputs cannot overflow;
//! the host reference wraps identically, keeping verification exact.

use crate::contraction::ContractionStats;
use rand::Rng;
use spatial_layout::Layout;
use spatial_model::{Machine, Slot};
use spatial_tree::{NodeId, Tree, NIL};

/// An expression-tree vertex: a constant leaf or a binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprNode {
    /// A constant leaf.
    Leaf(u64),
    /// Binary addition (wrapping).
    Add,
    /// Binary multiplication (wrapping).
    Mul,
}

/// A well-formed expression tree: every leaf is an [`ExprNode::Leaf`],
/// every internal vertex a binary operator with exactly two children.
#[derive(Debug, Clone)]
pub struct ExprTree {
    tree: Tree,
    nodes: Vec<ExprNode>,
}

impl ExprTree {
    /// Validates and wraps a tree + node labelling.
    ///
    /// # Panics
    /// Panics when a leaf is not a constant or an internal vertex is
    /// not a binary operator with exactly two children.
    pub fn new(tree: Tree, nodes: Vec<ExprNode>) -> Self {
        assert_eq!(nodes.len() as u32, tree.n(), "one node label per vertex");
        for v in tree.vertices() {
            match (tree.num_children(v), nodes[v as usize]) {
                (0, ExprNode::Leaf(_)) => {}
                (2, ExprNode::Add | ExprNode::Mul) => {}
                (k, node) => panic!(
                    "vertex {v} has {k} children but label {node:?}; expression \
                     trees need constant leaves and binary operators"
                ),
            }
        }
        ExprTree { tree, nodes }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The node labels.
    pub fn nodes(&self) -> &[ExprNode] {
        &self.nodes
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.tree.n()
    }

    /// A random expression tree with the given number of leaves:
    /// a uniformly random binary shape with random constants and
    /// operators.
    pub fn random<R: Rng>(leaves: u32, rng: &mut R) -> Self {
        assert!(leaves >= 1);
        let n = 2 * leaves - 1;
        let mut parent = vec![NIL; n as usize];
        // Random binary shape: repeatedly split a random current leaf.
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next = 1 as NodeId;
        while next < n {
            let at = rng.gen_range(0..frontier.len());
            let v = frontier.swap_remove(at);
            parent[next as usize] = v;
            parent[next as usize + 1] = v;
            frontier.push(next);
            frontier.push(next + 1);
            next += 2;
        }
        let tree = Tree::from_parents(0, parent);
        let nodes: Vec<ExprNode> = tree
            .vertices()
            .map(|v| {
                if tree.is_leaf(v) {
                    ExprNode::Leaf(rng.gen_range(0..1000))
                } else if rng.gen_bool(0.5) {
                    ExprNode::Add
                } else {
                    ExprNode::Mul
                }
            })
            .collect();
        ExprTree::new(tree, nodes)
    }
}

/// An affine map `x ↦ a·x + b` over wrapping `u64` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Affine {
    a: u64,
    b: u64,
}

impl Affine {
    const IDENTITY: Affine = Affine { a: 1, b: 0 };

    fn apply(self, x: u64) -> u64 {
        self.a.wrapping_mul(x).wrapping_add(self.b)
    }

    /// `self ∘ other`: first `other`, then `self`.
    fn compose(self, other: Affine) -> Affine {
        Affine {
            a: self.a.wrapping_mul(other.a),
            b: self.a.wrapping_mul(other.b).wrapping_add(self.b),
        }
    }

    /// The operator with one operand fixed: `x ↦ op(c, x)`.
    fn partial(op: ExprNode, c: u64) -> Affine {
        match op {
            ExprNode::Add => Affine { a: 1, b: c },
            ExprNode::Mul => Affine { a: c, b: 0 },
            ExprNode::Leaf(_) => unreachable!("leaves have no operands"),
        }
    }
}

/// Result of a spatial expression evaluation.
#[derive(Debug, Clone)]
pub struct ExprResult {
    /// `values[v]`: the value of the subexpression rooted at `v`.
    pub values: Vec<u64>,
    /// Contraction statistics.
    pub stats: ContractionStats,
}

/// Host reference: evaluates every subexpression bottom-up.
pub fn evaluate_expression_host(expr: &ExprTree) -> Vec<u64> {
    let t = expr.tree();
    let mut values = vec![0u64; t.n() as usize];
    for &v in spatial_tree::traversal::bfs_order(t).iter().rev() {
        values[v as usize] = match expr.nodes()[v as usize] {
            ExprNode::Leaf(c) => c,
            op => {
                let cs = t.children(v);
                let (l, r) = (values[cs[0] as usize], values[cs[1] as usize]);
                match op {
                    ExprNode::Add => l.wrapping_add(r),
                    ExprNode::Mul => l.wrapping_mul(r),
                    ExprNode::Leaf(_) => unreachable!(),
                }
            }
        };
    }
    values
}

/// One undo record, stored on the deactivated vertex (O(1)/processor).
#[derive(Debug, Clone, Copy)]
enum ExprLog {
    /// Raked with a fully known subexpression value.
    Rake { value: u64 },
    /// Compressed; the frozen map takes the merge-time child's value to
    /// this vertex's value.
    Compress { child: NodeId, g: Affine },
}

/// Evaluates every subexpression on the spatial machine via rake and
/// compress contraction with affine-map composition.
///
/// `O(n log n)` energy and `O(log n)` depth w.h.p. on an energy-bound
/// light-first layout (binary trees ⇒ Lemma 11's bounded-degree case).
pub fn evaluate_expression<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    expr: &ExprTree,
    rng: &mut R,
) -> ExprResult {
    let t = expr.tree();
    let n = t.n() as usize;
    assert_eq!(layout.n() as usize, n, "layout size mismatch");
    let slot = |v: NodeId| -> Slot { layout.slot(v) };

    // Mutable contracted-tree state (children ≤ 2 throughout).
    let mut parent: Vec<NodeId> = t.parents().to_vec();
    let mut children: Vec<[NodeId; 2]> = t
        .vertices()
        .map(|v| {
            let cs = t.children(v);
            [
                cs.first().copied().unwrap_or(NIL),
                cs.get(1).copied().unwrap_or(NIL),
            ]
        })
        .collect();
    let child_count = |children: &[[NodeId; 2]], v: NodeId| -> u32 {
        children[v as usize].iter().filter(|&&c| c != NIL).count() as u32
    };
    // Known value for resolved-leaf supervertices.
    let mut value: Vec<Option<u64>> = expr
        .nodes()
        .iter()
        .map(|&nd| match nd {
            ExprNode::Leaf(c) => Some(c),
            _ => None,
        })
        .collect();
    // Pending affine map: value(v) = g[v](op_v(remaining children)).
    let mut g: Vec<Affine> = vec![Affine::IDENTITY; n];
    let mut active = vec![true; n];
    let mut alive: Vec<NodeId> = t.vertices().collect();
    let mut coin = vec![false; n];
    let mut log: Vec<Option<(u32, ExprLog)>> = vec![None; n];
    let mut step_groups: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new(); // (compresses, rakes)
    let mut stats = ContractionStats {
        compact_rounds: 0,
        compresses: 0,
        rakes: 0,
    };

    while alive.len() > 1 {
        let round = stats.compact_rounds;
        let mut compresses = Vec::new();
        let mut rakes = Vec::new();

        // Random-mate COMPRESS over unary chains (vertices whose single
        // remaining operand is a single-child vertex).
        for &v in &alive {
            coin[v as usize] = rng.gen();
        }
        let viable: Vec<NodeId> = alive
            .iter()
            .copied()
            .filter(|&v| {
                let p = parent[v as usize];
                p != NIL
                    && child_count(&children, p) == 1
                    && child_count(&children, v) == 1
                    && value[v as usize].is_none()
                    && value[p as usize].is_none()
            })
            .collect();
        let coin_msgs: Vec<(Slot, Slot)> = viable
            .iter()
            .map(|&v| (slot(parent[v as usize]), slot(v)))
            .collect();
        machine.round(&coin_msgs);
        let selected: Vec<NodeId> = viable
            .into_iter()
            .filter(|&v| coin[v as usize] && !coin[parent[v as usize] as usize])
            .collect();

        let mut compress_msgs = Vec::with_capacity(2 * selected.len());
        for &v in &selected {
            let u = parent[v as usize];
            let c = if children[v as usize][0] != NIL {
                children[v as usize][0]
            } else {
                children[v as usize][1]
            };
            debug_assert!(c != NIL);
            log[v as usize] = Some((
                round,
                ExprLog::Compress {
                    child: c,
                    g: g[v as usize],
                },
            ));
            g[u as usize] = g[u as usize].compose(g[v as usize]);
            children[u as usize] = [c, NIL];
            parent[c as usize] = u;
            active[v as usize] = false;
            compress_msgs.push((slot(v), slot(u)));
            compress_msgs.push((slot(v), slot(c)));
            compresses.push(v);
        }
        machine.round(&compress_msgs);
        stats.compresses += selected.len() as u64;
        alive.retain(|&v| active[v as usize]);

        // RAKE resolved children into their parents.
        let parents: Vec<NodeId> = alive.clone();
        let mut rake_msgs = Vec::new();
        for u in parents {
            if !active[u as usize] || value[u as usize].is_some() {
                continue;
            }
            let kids = children[u as usize];
            let resolved: Vec<NodeId> = kids
                .iter()
                .copied()
                .filter(|&c| c != NIL && value[c as usize].is_some())
                .collect();
            if resolved.is_empty() {
                continue;
            }
            let remaining = child_count(&children, u) - resolved.len() as u32;
            match remaining {
                0 => {
                    // All operands known: u resolves to a constant.
                    let x = match (kids[0], kids[1]) {
                        (a, NIL) => {
                            // Unary u (previous partial application).
                            value[a as usize].expect("resolved")
                        }
                        (a, b) => {
                            let (xa, xb) = (value[a as usize].unwrap(), value[b as usize].unwrap());
                            match expr.nodes()[u as usize] {
                                ExprNode::Add => xa.wrapping_add(xb),
                                ExprNode::Mul => xa.wrapping_mul(xb),
                                ExprNode::Leaf(_) => unreachable!(),
                            }
                        }
                    };
                    value[u as usize] = Some(g[u as usize].apply(x));
                }
                1 => {
                    // One operand known: u becomes an affine map of the
                    // other.
                    let c = resolved[0];
                    let partial =
                        Affine::partial(expr.nodes()[u as usize], value[c as usize].unwrap());
                    g[u as usize] = g[u as usize].compose(partial);
                }
                _ => unreachable!("binary trees have ≤ 2 children"),
            }
            for &c in &resolved {
                log[c as usize] = Some((
                    round,
                    ExprLog::Rake {
                        value: value[c as usize].unwrap(),
                    },
                ));
                active[c as usize] = false;
                rake_msgs.push((slot(c), slot(u)));
                rakes.push(c);
                // Unlink.
                let ks = &mut children[u as usize];
                if ks[0] == c {
                    ks[0] = ks[1];
                }
                ks[1] = NIL;
            }
            stats.rakes += resolved.len() as u64;
        }
        machine.round(&rake_msgs);
        alive.retain(|&v| active[v as usize]);

        step_groups.push((compresses, rakes));
        stats.compact_rounds += 1;
        assert!(
            stats.compact_rounds <= 4 * t.n() + 64,
            "expression contraction failed to converge"
        );
    }

    // The surviving supervertex is the root with its value resolved.
    let root = t.root();
    let mut values = vec![0u64; n];
    values[root as usize] = value[root as usize].expect("root resolves at the end");

    // Uncontraction: rakes ground themselves; compresses evaluate their
    // frozen affine map on the (already recovered) merge-time child.
    for (compresses, rakes) in step_groups.into_iter().rev() {
        let mut msgs = Vec::new();
        for &c in rakes.iter().rev() {
            let Some((_, ExprLog::Rake { value: x })) = log[c as usize] else {
                unreachable!("rake log missing");
            };
            values[c as usize] = x;
            msgs.push((slot(parent[c as usize]), slot(c)));
        }
        machine.round(&msgs);
        let mut msgs = Vec::new();
        for &v in compresses.iter().rev() {
            let Some((_, ExprLog::Compress { child, g: gv })) = log[v as usize] else {
                unreachable!("compress log missing");
            };
            values[v as usize] = gv.apply(values[child as usize]);
            msgs.push((slot(parent[v as usize]), slot(v)));
        }
        machine.round(&msgs);
    }

    ExprResult { values, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;

    fn eval(expr: &ExprTree, seed: u64) -> (ExprResult, spatial_model::CostReport) {
        let layout = Layout::light_first(expr.tree(), CurveKind::Hilbert);
        let machine = layout.machine();
        let res = evaluate_expression(&machine, &layout, expr, &mut StdRng::seed_from_u64(seed));
        (res, machine.report())
    }

    #[test]
    fn tiny_sum() {
        // (3 + 4)
        let tree = Tree::from_parents(0, vec![NIL, 0, 0]);
        let expr = ExprTree::new(
            tree,
            vec![ExprNode::Add, ExprNode::Leaf(3), ExprNode::Leaf(4)],
        );
        let (res, _) = eval(&expr, 1);
        assert_eq!(res.values, vec![7, 3, 4]);
    }

    #[test]
    fn nested_mixed() {
        // (2 + 3) * (4 + (5 * 6)) = 5 * 34 = 170
        //        0(*)
        //      1(+)   2(+)
        //    3:2 4:3  5:4  6(*)
        //                 7:5 8:6
        let tree = Tree::from_parents(0, vec![NIL, 0, 0, 1, 1, 2, 2, 6, 6]);
        let expr = ExprTree::new(
            tree,
            vec![
                ExprNode::Mul,
                ExprNode::Add,
                ExprNode::Add,
                ExprNode::Leaf(2),
                ExprNode::Leaf(3),
                ExprNode::Leaf(4),
                ExprNode::Mul,
                ExprNode::Leaf(5),
                ExprNode::Leaf(6),
            ],
        );
        let (res, _) = eval(&expr, 2);
        assert_eq!(res.values[0], 170);
        assert_eq!(res.values[1], 5);
        assert_eq!(res.values[2], 34);
        assert_eq!(res.values[6], 30);
        assert_eq!(res.values, evaluate_expression_host(&expr));
    }

    #[test]
    fn deep_left_chain() {
        // ((((1+1)+1)+1)+1): exercises compress-heavy contraction.
        let leaves = 64u32;
        let n = 2 * leaves - 1;
        let mut parent = vec![NIL; n as usize];
        let mut nodes = vec![ExprNode::Add; n as usize];
        // Vertex 2k+1 = internal chain continues; 2k+2 = leaf.
        let mut chain = 0 as NodeId;
        let mut next = 1 as NodeId;
        while next + 1 < n {
            parent[next as usize] = chain;
            parent[next as usize + 1] = chain;
            nodes[next as usize + 1] = ExprNode::Leaf(1);
            chain = next;
            next += 2;
        }
        nodes[chain as usize] = ExprNode::Leaf(1);
        // chain became a leaf: rebuild labels so internals are Add.
        let tree = Tree::from_parents(0, parent);
        let nodes: Vec<ExprNode> = tree
            .vertices()
            .map(|v| {
                if tree.is_leaf(v) {
                    ExprNode::Leaf(1)
                } else {
                    ExprNode::Add
                }
            })
            .collect();
        let expr = ExprTree::new(tree, nodes);
        let (res, report) = eval(&expr, 3);
        assert_eq!(res.values[0], leaves as u64);
        assert_eq!(res.values, evaluate_expression_host(&expr));
        assert!(report.depth > 0);
    }

    #[test]
    fn random_expressions_match_host() {
        let mut rng = StdRng::seed_from_u64(4);
        for leaves in [1u32, 2, 3, 10, 100, 1000] {
            let expr = ExprTree::random(leaves, &mut rng);
            let (res, _) = eval(&expr, 5);
            assert_eq!(
                res.values,
                evaluate_expression_host(&expr),
                "leaves={leaves}"
            );
        }
    }

    #[test]
    fn las_vegas_any_seed() {
        let expr = ExprTree::random(200, &mut StdRng::seed_from_u64(6));
        let expect = evaluate_expression_host(&expr);
        for seed in 0..8 {
            let (res, _) = eval(&expr, seed);
            assert_eq!(res.values, expect, "seed {seed}");
        }
    }

    #[test]
    fn costs_match_lemma11() {
        // Binary trees ⇒ bounded degree: O(n log n) energy, O(log n)
        // depth, O(log n) rounds.
        let mut e_norm = Vec::new();
        for log_leaves in [10u32, 12] {
            let expr = ExprTree::random(1 << log_leaves, &mut StdRng::seed_from_u64(7));
            let n = expr.n() as u64;
            let (res, report) = eval(&expr, 8);
            e_norm.push(report.energy_per_n_log_n(n));
            let log_n = (n as f64).log2();
            assert!(
                (report.depth as f64) < 25.0 * log_n,
                "depth {} not O(log n)",
                report.depth
            );
            assert!(res.stats.compact_rounds as f64 <= 6.0 * log_n);
        }
        assert!(
            e_norm[1] / e_norm[0] < 2.0,
            "energy/(n log n) should stay flat: {e_norm:?}"
        );
    }

    #[test]
    fn wrapping_semantics_consistent() {
        // Huge products wrap identically in both evaluators.
        let tree = Tree::from_parents(0, vec![NIL, 0, 0, 1, 1, 2, 2]);
        let expr = ExprTree::new(
            tree,
            vec![
                ExprNode::Mul,
                ExprNode::Mul,
                ExprNode::Mul,
                ExprNode::Leaf(u64::MAX / 3),
                ExprNode::Leaf(12345),
                ExprNode::Leaf(u64::MAX / 7),
                ExprNode::Leaf(67890),
            ],
        );
        let (res, _) = eval(&expr, 9);
        assert_eq!(res.values, evaluate_expression_host(&expr));
    }

    #[test]
    #[should_panic(expected = "expression trees need constant leaves")]
    fn rejects_unary_internal() {
        let tree = Tree::from_parents(0, vec![NIL, 0]);
        let _ = ExprTree::new(tree, vec![ExprNode::Add, ExprNode::Leaf(1)]);
    }

    #[test]
    fn affine_algebra() {
        let f = Affine { a: 2, b: 3 }; // 2x + 3
        let h = Affine { a: 5, b: 7 }; // 5x + 7
                                       // f ∘ h = 2(5x + 7) + 3 = 10x + 17.
        assert_eq!(f.compose(h), Affine { a: 10, b: 17 });
        assert_eq!(f.compose(Affine::IDENTITY), f);
        assert_eq!(Affine::IDENTITY.compose(f), f);
        assert_eq!(f.apply(10), 23);
        assert_eq!(Affine::partial(ExprNode::Add, 9).apply(4), 13);
        assert_eq!(Affine::partial(ExprNode::Mul, 9).apply(4), 36);
    }
}
