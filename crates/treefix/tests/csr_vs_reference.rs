//! Differential property suite: the allocation-free CSR contraction
//! engine must behave *identically* to the retained seed engine — same
//! treefix sums, same `ContractionStats`, and the same machine charges
//! (energy, messages, depth) — on random trees, seeds, and both
//! directions.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_layout::Layout;
use spatial_model::CurveKind;
use spatial_tree::generators::{self, TreeFamily};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::reference::ReferenceEngine;
use spatial_treefix::{Add, Max};

fn compare_bottom_up(t: &spatial_tree::Tree, algo_seed: u64) {
    let n = t.n() as u64;
    let values: Vec<(Add, Max)> = (0..n).map(|v| (Add(v * 7 + 1), Max(v % 97))).collect();
    let layout = Layout::light_first(t, CurveKind::Hilbert);

    let machine_new = layout.machine();
    let mut eng = ContractionEngine::new(t, &layout, &values, true);
    let stats_new = eng.contract(&machine_new, &mut StdRng::seed_from_u64(algo_seed));
    let result_new = eng.uncontract_bottom_up(&machine_new).to_vec();

    let machine_ref = layout.machine();
    let mut reference = ReferenceEngine::new(t, &layout, &machine_ref, &values, true);
    let stats_ref = reference.contract(&mut StdRng::seed_from_u64(algo_seed));
    let result_ref = reference.uncontract_bottom_up();

    assert_eq!(result_new, result_ref, "values diverged");
    assert_eq!(stats_new, stats_ref, "stats diverged");
    assert_eq!(
        machine_new.report(),
        machine_ref.report(),
        "machine charges diverged"
    );
}

fn compare_top_down(t: &spatial_tree::Tree, algo_seed: u64) {
    let n = t.n() as u64;
    let values: Vec<Add> = (0..n).map(|v| Add(v % 31 + 1)).collect();
    let layout = Layout::light_first(t, CurveKind::ZOrder);

    let machine_new = layout.machine();
    let mut eng = ContractionEngine::new(t, &layout, &values, false);
    let stats_new = eng.contract(&machine_new, &mut StdRng::seed_from_u64(algo_seed));
    let result_new = eng.uncontract_top_down(&machine_new, &values).to_vec();

    let machine_ref = layout.machine();
    let mut reference = ReferenceEngine::new(t, &layout, &machine_ref, &values, false);
    let stats_ref = reference.contract(&mut StdRng::seed_from_u64(algo_seed));
    let result_ref = reference.uncontract_top_down(&values);

    assert_eq!(result_new, result_ref, "values diverged");
    assert_eq!(stats_new, stats_ref, "stats diverged");
    assert_eq!(
        machine_new.report(),
        machine_ref.report(),
        "machine charges diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bottom_up_identical_on_random_trees(
        t in spatial_tree::strategies::arb_tree(400),
        algo_seed in 0u64..10_000,
    ) {
        compare_bottom_up(&t, algo_seed);
    }

    #[test]
    fn top_down_identical_on_random_trees(
        t in spatial_tree::strategies::arb_tree(400),
        algo_seed in 0u64..10_000,
    ) {
        compare_top_down(&t, algo_seed);
    }
}

#[test]
fn identical_across_all_families() {
    let mut rng = StdRng::seed_from_u64(99);
    for fam in TreeFamily::ALL {
        let t = fam.generate(500, &mut rng);
        compare_bottom_up(&t, 7);
        compare_top_down(&t, 8);
    }
}

#[test]
fn identical_on_a_larger_instance() {
    let t = generators::preferential_attachment(1 << 13, &mut StdRng::seed_from_u64(3));
    compare_bottom_up(&t, 11);
}
