//! Counting-allocator proof that `contract` and both `uncontract`
//! passes perform **zero heap allocation** after engine setup.
//!
//! A global counting allocator tallies every `alloc`/`realloc` while
//! the gate is open; the gate opens after `ContractionEngine::new`
//! (which is allowed — and expected — to allocate its arenas) and
//! closes before the results are inspected. This binary holds exactly
//! one `#[test]` so no concurrent test can pollute the count.

use rand::prelude::*;
use spatial_layout::Layout;
use spatial_model::CurveKind;
use spatial_model::EngineLifecycle;
use spatial_tree::generators::TreeFamily;
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::{treefix_bottom_up_host, treefix_top_down_host, Add};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the allocation gate open, returning its result and
/// the number of heap allocations performed inside.
fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn contract_and_uncontract_do_not_allocate() {
    use spatial_tree::ChildrenCsr;

    let mut tree_rng = StdRng::seed_from_u64(42);
    // One pooled engine serves every family below: after the first
    // (largest) binding has grown the buffers, every later bind +
    // contract + uncontract — the whole steady-state run cycle — must
    // be allocation-free.
    let mut pooled: ContractionEngine<Add> = ContractionEngine::with_capacity(4096);
    for (fam, n) in [
        (TreeFamily::UniformRandom, 2000u32),
        (TreeFamily::RandomBinary, 4096),
        (TreeFamily::PreferentialAttachment, 1500),
        (TreeFamily::Comb, 1024),
        (TreeFamily::Star, 512),
    ] {
        let t = fam.generate(n, &mut tree_rng);
        let values: Vec<Add> = (0..n as u64).map(|v| Add(v % 101 + 1)).collect();
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let sizes = t.subtree_sizes();
        let csr = ChildrenCsr::by_size(&t, &sizes);
        let expect_bu = treefix_bottom_up_host(&t, &values);
        let expect_td = treefix_top_down_host(&t, &values);

        // Bottom-up: setup allocates, the hot phases must not.
        let machine = layout.machine();
        let mut engine = ContractionEngine::new(&t, &layout, &values, true);
        let mut rng = StdRng::seed_from_u64(7);
        let (stats, allocs) = count_allocations(|| {
            let stats = engine.contract(&machine, &mut rng);
            engine.uncontract_bottom_up(&machine);
            stats
        });
        assert_eq!(engine.output(), &expect_bu[..], "{fam}: wrong result");
        assert!(stats.compact_rounds > 0);
        assert_eq!(
            allocs, 0,
            "{fam} (n = {n}): bottom-up contract/uncontract allocated {allocs} times"
        );

        // Top-down over the same tree.
        let machine = layout.machine();
        let mut engine = ContractionEngine::new(&t, &layout, &values, false);
        let mut rng = StdRng::seed_from_u64(8);
        let (_, allocs) = count_allocations(|| {
            let stats = engine.contract(&machine, &mut rng);
            engine.uncontract_top_down(&machine, &values);
            stats
        });
        assert_eq!(engine.output(), &expect_td[..], "{fam}: wrong result");
        assert_eq!(
            allocs, 0,
            "{fam} (n = {n}): top-down contract/uncontract allocated {allocs} times"
        );

        // The pooled engine: rebinding within capacity is part of the
        // allocation-free contract (the session layer's steady state).
        // Warm up once at the largest size before opening the gate.
        if pooled.capacity() >= n as usize {
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(9);
            let (_, allocs) = count_allocations(|| {
                pooled.bind(&t, &layout, &csr, &values, true);
                let stats = pooled.contract(&machine, &mut rng);
                pooled.uncontract_bottom_up(&machine);
                stats
            });
            assert_eq!(pooled.output(), &expect_bu[..], "{fam}: pooled result");
            assert_eq!(
                allocs, 0,
                "{fam} (n = {n}): pooled bind/contract/uncontract allocated {allocs} times"
            );
        }
    }
}

#[test]
#[ignore = "sanity check for the harness itself: proves the gate counts"]
fn counting_harness_detects_allocations() {
    let ((), allocs) = count_allocations(|| {
        let v: Vec<u64> = (0..100).collect();
        std::hint::black_box(&v);
    });
    assert!(allocs > 0, "gate failed to observe an allocation");
}
