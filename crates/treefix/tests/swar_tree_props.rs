//! Proptest leg over [`spatial_tree::strategies`]: the SWAR batch
//! kernels against the retained scalar batch references on point sets
//! that arise from *real tree layouts* — the clustered, light-first
//! orders the engines actually feed the batch API — rather than the
//! uniform grids the in-crate differential tests sweep. The strategy
//! rotates through every tree family and pins the degenerate sizes
//! (n = 1, 2, non-power-of-two near the cap), so the kernels see odd
//! tails, tiny batches and curve-side rounding boundaries.

use proptest::prelude::*;
use spatial_layout::Layout;
use spatial_sfc::swar;
use spatial_sfc::{CurveKind, GridPoint, HilbertCurve};
use spatial_tree::strategies::arb_tree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn swar_batches_match_scalar_on_layout_points(t in arb_tree(600)) {
        let n = t.n();
        let side = CurveKind::Hilbert.side_for_capacity(n as u64);

        // Light-first layout points on each curve: the exact inputs the
        // engines batch-transform when charging messages.
        for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
            let layout = Layout::light_first(&t, kind);
            let points = layout.grid_points();
            prop_assert_eq!(points.len(), n as usize);

            let mut swar_idx = vec![0u64; points.len()];
            let mut scalar_idx = vec![0u64; points.len()];
            let mut swar_pts = vec![GridPoint::default(); points.len()];
            let mut scalar_pts = vec![GridPoint::default(); points.len()];
            match kind {
                CurveKind::Hilbert => {
                    let curve = HilbertCurve::new(side);
                    swar::hilbert_index_chunk(side, &points, &mut swar_idx);
                    swar::hilbert_index_chunk_scalar(&curve, &points, &mut scalar_idx);
                    prop_assert_eq!(&swar_idx, &scalar_idx, "hilbert index n={}", n);
                    swar::hilbert_point_chunk(side, &swar_idx, &mut swar_pts);
                    swar::hilbert_point_chunk_scalar(&curve, &scalar_idx, &mut scalar_pts);
                }
                CurveKind::ZOrder => {
                    swar::zorder_index_chunk(side, &points, &mut swar_idx);
                    swar::zorder_index_chunk_scalar(side, &points, &mut scalar_idx);
                    prop_assert_eq!(&swar_idx, &scalar_idx, "zorder index n={}", n);
                    swar::zorder_point_chunk(side, &swar_idx, &mut swar_pts);
                    swar::zorder_point_chunk_scalar(side, &scalar_idx, &mut scalar_pts);
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(&swar_pts, &scalar_pts, "{} point n={}", kind, n);
            prop_assert_eq!(&swar_pts, &points, "{} round-trip n={}", kind, n);
        }
    }
}
