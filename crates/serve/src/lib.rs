//! The serving layer: many tenants' [`SpatialForest`]s sharded across
//! a fixed pool of worker threads, fed by bounded submission queues
//! that **coalesce** concurrent requests into charge-batched sessions.
//!
//! The session layer ([`spatial_session`]) serves one tree on one
//! thread. [`ForestService`] scales that out along the axis the
//! paper's machine model suggests: *spatial* partitioning. Each worker
//! thread **exclusively owns** its shard's forests — no lock is ever
//! taken on the query path; the only synchronization is the bounded
//! MPSC hand-off at the shard boundary, and that hand-off carries
//! whole request batches, not individual queries, so its cost is
//! amortized to nothing (measured in `DESIGN.md`; the floor is baked
//! in as [`MIN_COALESCED_BATCH`]).
//!
//! ```
//! use rand::SeedableRng;
//! use spatial_serve::{ForestService, ServiceOptions};
//! use spatial_session::{QueryBatch, Response};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let trees: Vec<_> = (0..4)
//!     .map(|_| spatial_tree::generators::uniform_random(200, &mut rng))
//!     .collect();
//! let service = ForestService::start(&trees, ServiceOptions::new(2));
//!
//! let mut batch = QueryBatch::new();
//! batch.lca(3, 77).subtree_sum(0);
//! let ticket = service.submit(1, batch.requests());
//! let answers = ticket.wait().expect("worker alive");
//! assert_eq!(answers[1], Response::SubtreeSum(200)); // unit weights
//! let report = service.shutdown();
//! assert_eq!(report.total_requests(), 2);
//! ```
//!
//! See `DESIGN.md` next to this crate's manifest for the shard
//! ownership argument, the coalescing queue, backpressure, and the
//! `Send`-refactor notes.

mod service;

pub use service::{
    tenant_seed, DurabilityOptions, ForestService, ServeError, ServiceOptions, ServiceReport,
    ShardReport, TenantLog, Ticket, MIN_COALESCED_BATCH,
};
