//! [`ForestService`]: shard-owned forests behind coalescing bounded
//! queues.

use crossbeam::channel::{bounded, Receiver, Sender};
use rand::prelude::*;
use spatial_session::{ForestOptions, Request, Response, SessionReport, SpatialForest};
use spatial_tree::Tree;
use std::time::Duration;

/// The clock a worker charges its busy time on: per-thread CPU time,
/// so a shard's `busy` means "compute this shard performed", not "wall
/// time during which it happened to hold the core". On hosts with
/// fewer cores than workers (CI containers are single-core) wall-clock
/// deltas would silently include the time a worker sat preempted while
/// its siblings ran, inflating every shard's busy toward the total and
/// erasing the sharding signal the modeled-QPS metric exists to
/// measure.
#[cfg(target_os = "linux")]
mod thread_clock {
    use std::time::Duration;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    /// CPU time consumed by the calling thread so far.
    pub fn now() -> Duration {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        debug_assert_eq!(rc, 0, "CLOCK_THREAD_CPUTIME_ID unavailable");
        Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    }
}

/// Wall-clock fallback where no per-thread CPU clock is exposed; busy
/// figures are then only meaningful with one core per worker.
#[cfg(not(target_os = "linux"))]
mod thread_clock {
    use std::time::{Duration, Instant};

    pub fn now() -> Duration {
        thread_local! {
            static ANCHOR: Instant = Instant::now();
        }
        ANCHOR.with(|a| a.elapsed())
    }
}

/// Minimum number of requests a worker tries to coalesce into one
/// charge-batched session before executing.
///
/// Measured by the dispatch-granularity sweep in
/// `experiments -- bench-json-throughput` (recorded in `DESIGN.md`):
/// a dispatch cycle's cost fits `F/b + c` per query, and at n = 2^13
/// the fixed per-cycle cost F (~15 ms: session setup, structure
/// refresh, and — a distant third — the channel hand-off itself)
/// dwarfs the marginal per-query cost c (~6 µs), so per-query cost
/// falls like `1/b` with cycle size. This constant is the measured
/// smallest cycle within 2× of the batch-everything bound — past it,
/// doubling the cycle (and with it the latency coupling between
/// coalesced jobs) buys less than 2×. Coalescing is opportunistic — a
/// worker never *waits* for this many requests (latency is bounded by
/// work in flight, not by a timer); it just keeps draining its queue
/// without executing while fewer than this many requests are pending
/// and more jobs are available.
pub const MIN_COALESCED_BATCH: usize = 512;

/// Construction options for [`ForestService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Number of worker threads; tenant `t` is owned by shard
    /// `t % workers`.
    pub workers: usize,
    /// Bounded capacity of each shard's submission queue, in **jobs**;
    /// a full queue blocks [`ForestService::submit`] (backpressure).
    pub queue_capacity: usize,
    /// A worker keeps draining pending jobs (without blocking) until
    /// it holds at least this many requests, then executes the lot as
    /// per-tenant charge-batched sessions. See [`MIN_COALESCED_BATCH`].
    pub coalesce_target: usize,
    /// Options for every tenant's [`SpatialForest`].
    pub forest: ForestOptions,
    /// Root seed; each tenant derives its private session RNG from it
    /// (see [`tenant_seed`]), independent of sharding.
    pub seed: u64,
    /// Record every executed per-tenant request stream in the shard
    /// report — the hook the differential fuzz harness uses to replay
    /// the service's exact coalescing on a single-threaded twin.
    pub record_streams: bool,
}

impl ServiceOptions {
    /// Defaults with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        ServiceOptions {
            workers,
            queue_capacity: 256,
            coalesce_target: MIN_COALESCED_BATCH,
            forest: ForestOptions::default(),
            seed: 0x5eed,
            record_streams: false,
        }
    }
}

/// The RNG seed of a tenant's forest sessions: a fixed mix of the
/// service seed and the tenant id. Shard-independent, so a
/// single-threaded twin replaying a tenant's recorded streams with
/// this seed reproduces the service's answers and charges bit for bit.
pub fn tenant_seed(seed: u64, tenant: u32) -> u64 {
    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1))
}

/// One submitted unit of work: a tenant plus a request stream, with
/// the reply channel the owning worker answers on.
struct Job {
    tenant: u32,
    requests: Vec<Request>,
    reply: Sender<Vec<Response>>,
}

/// A handle to one submitted job's pending responses.
#[must_use = "wait() retrieves the responses"]
pub struct Ticket {
    rx: Receiver<Vec<Response>>,
}

impl Ticket {
    /// Blocks until the owning worker has executed the job; responses
    /// align with the submitted requests by index.
    ///
    /// # Panics
    /// Panics if the service shut down before answering (cannot happen
    /// through the public API: [`ForestService::shutdown`] drains every
    /// queue before the workers exit).
    pub fn wait(self) -> Vec<Response> {
        self.rx.recv().expect("service answered before shutdown")
    }
}

/// Everything one worker accumulated for one tenant.
#[derive(Debug, Clone)]
pub struct TenantLog {
    /// The tenant id.
    pub tenant: u32,
    /// One [`SessionReport`] per executed coalesced session, in
    /// execution order.
    pub reports: Vec<SessionReport>,
    /// The executed request streams (one per session, concatenated in
    /// coalescing order) when `record_streams` was set; empty
    /// otherwise.
    pub streams: Vec<Vec<Request>>,
}

/// Shutdown summary of one shard (= one worker thread).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (`0..workers`).
    pub shard: usize,
    /// Jobs the worker answered.
    pub jobs: u64,
    /// Requests across those jobs.
    pub requests: u64,
    /// Coalesced sessions executed (`≤ jobs`; the coalescing win is
    /// `jobs / executes`).
    pub executes: u64,
    /// CPU time this worker spent executing (drain + execute + reply),
    /// excluding idle blocking on the queue, measured on the
    /// per-thread CPU clock so co-scheduled workers on an
    /// oversubscribed host don't leak into each other's figure. The
    /// critical-path denominator of the modeled aggregate throughput.
    pub busy: Duration,
    /// Per-tenant logs for the tenants this shard owns.
    pub tenants: Vec<TenantLog>,
}

/// Shutdown summary of the whole service.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One report per shard, indexed by shard.
    pub shards: Vec<ShardReport>,
}

impl ServiceReport {
    /// Total requests answered across all shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total jobs answered across all shards.
    pub fn total_jobs(&self) -> u64 {
        self.shards.iter().map(|s| s.jobs).sum()
    }

    /// Total coalesced sessions executed across all shards.
    pub fn total_executes(&self) -> u64 {
        self.shards.iter().map(|s| s.executes).sum()
    }

    /// The busiest shard's busy time — the critical path of the run if
    /// every worker had its own core.
    pub fn max_shard_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).max().unwrap_or_default()
    }

    /// Summed busy time across shards (the single-core wall-clock
    /// lower bound).
    pub fn total_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).sum()
    }

    /// **Modeled** aggregate queries/sec: total requests divided by
    /// the busiest shard's busy time. This is the throughput the run's
    /// *load balance* supports when each worker has a dedicated core —
    /// on a machine with fewer cores than workers (CI containers), the
    /// measured wall-clock QPS is lower while this figure isolates the
    /// sharding quality. Both are reported side by side in
    /// `BENCH_throughput.json`.
    pub fn modeled_qps(&self) -> f64 {
        let crit = self.max_shard_busy().as_secs_f64();
        if crit == 0.0 {
            return 0.0;
        }
        self.total_requests() as f64 / crit
    }

    /// The log of one tenant (wherever it was sharded).
    pub fn tenant_log(&self, tenant: u32) -> Option<&TenantLog> {
        self.shards
            .iter()
            .flat_map(|s| s.tenants.iter())
            .find(|t| t.tenant == tenant)
    }
}

/// Per-tenant worker-side state: the forest, its session RNG, and the
/// accumulated logs.
struct TenantState {
    tenant: u32,
    forest: SpatialForest,
    rng: StdRng,
    reports: Vec<SessionReport>,
    streams: Vec<Vec<Request>>,
}

/// A fixed pool of worker threads serving many tenants' forests.
///
/// Tenant `t` is owned by shard `t % workers`: all of a tenant's
/// requests execute on one thread, in submission order, against
/// thread-exclusive state — the hot path takes **no locks** and shares
/// **no cache lines** across shards. Cross-thread communication is
/// confined to the bounded job queue in front of each shard and the
/// per-job reply channel, both carrying whole batches.
pub struct ForestService {
    txs: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<ShardReport>>,
    workers: usize,
    tenants: usize,
}

impl ForestService {
    /// Spawns the worker pool and builds one [`SpatialForest`] per
    /// tenant tree, sharded round-robin across workers.
    ///
    /// # Panics
    /// Panics when `opts.workers == 0` or any option is degenerate.
    pub fn start(trees: &[Tree], opts: ServiceOptions) -> Self {
        assert!(opts.workers >= 1, "need at least one worker");
        assert!(opts.queue_capacity >= 1, "need a non-empty queue");
        let mut per_shard: Vec<Vec<TenantState>> = (0..opts.workers).map(|_| Vec::new()).collect();
        for (t, tree) in trees.iter().enumerate() {
            let tenant = t as u32;
            per_shard[t % opts.workers].push(TenantState {
                tenant,
                forest: SpatialForest::with_options(tree, opts.forest),
                rng: StdRng::seed_from_u64(tenant_seed(opts.seed, tenant)),
                reports: Vec::new(),
                streams: Vec::new(),
            });
        }
        let mut txs = Vec::with_capacity(opts.workers);
        let mut handles = Vec::with_capacity(opts.workers);
        for (shard, states) in per_shard.into_iter().enumerate() {
            let (tx, rx) = bounded::<Job>(opts.queue_capacity);
            let coalesce_target = opts.coalesce_target;
            let record = opts.record_streams;
            handles.push(std::thread::spawn(move || {
                worker_loop(shard, rx, states, coalesce_target, record)
            }));
            txs.push(tx);
        }
        ForestService {
            txs,
            handles,
            workers: opts.workers,
            tenants: trees.len(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants
    }

    /// Enqueues a request stream for a tenant and returns a [`Ticket`]
    /// for its responses. Blocks while the owning shard's queue is
    /// full (backpressure).
    ///
    /// A tenant's requests execute in submission order as long as each
    /// tenant is driven from one thread at a time.
    ///
    /// # Panics
    /// Panics when the tenant id is out of range.
    pub fn submit(&self, tenant: u32, requests: &[Request]) -> Ticket {
        assert!((tenant as usize) < self.tenants, "unknown tenant {tenant}");
        let (reply, rx) = bounded::<Vec<Response>>(1);
        let job = Job {
            tenant,
            requests: requests.to_vec(),
            reply,
        };
        if self.txs[tenant as usize % self.workers].send(job).is_err() {
            unreachable!("shard worker alive until shutdown");
        }
        Ticket { rx }
    }

    /// Disconnects the queues, waits for every worker to drain and
    /// exit, and returns the per-shard reports. Every ticket submitted
    /// before this call is answered first.
    pub fn shutdown(mut self) -> ServiceReport {
        self.txs.clear();
        let shards = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("worker exited cleanly"))
            .collect();
        ServiceReport { shards }
    }
}

impl Drop for ForestService {
    fn drop(&mut self) {
        // A dropped (not shut down) service still drains and joins so
        // no worker outlives the handle; reports are discarded.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The shard worker: blockingly pops one job, opportunistically drains
/// more up to the coalesce target, executes one charge-batched session
/// per tenant present, then replies per job.
fn worker_loop(
    shard: usize,
    rx: Receiver<Job>,
    mut states: Vec<TenantState>,
    coalesce_target: usize,
    record: bool,
) -> ShardReport {
    let mut jobs_total = 0u64;
    let mut requests_total = 0u64;
    let mut executes = 0u64;
    let mut busy = Duration::ZERO;
    // Retained cycle scratch: the drained jobs, the distinct tenants
    // of the cycle, and the concatenated per-tenant request stream.
    let mut jobs: Vec<Job> = Vec::new();
    let mut cycle_tenants: Vec<u32> = Vec::new();
    let mut stream: Vec<Request> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();

    while let Ok(first) = rx.recv() {
        let t0 = thread_clock::now();
        jobs.clear();
        let mut pending = first.requests.len();
        jobs.push(first);
        // Coalesce: drain without blocking while below the target.
        while pending < coalesce_target {
            match rx.try_recv() {
                Ok(job) => {
                    pending += job.requests.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // One charged session per distinct tenant, preserving each
        // tenant's arrival order (the drain above is FIFO).
        cycle_tenants.clear();
        for job in &jobs {
            if !cycle_tenants.contains(&job.tenant) {
                cycle_tenants.push(job.tenant);
            }
        }
        for &tenant in &cycle_tenants {
            stream.clear();
            for job in jobs.iter().filter(|j| j.tenant == tenant) {
                stream.extend_from_slice(&job.requests);
            }
            let state = states
                .iter_mut()
                .find(|s| s.tenant == tenant)
                .expect("tenant sharded to this worker");
            responses.clear();
            responses.extend_from_slice(state.forest.execute(&stream, &mut state.rng));
            state.reports.push(state.forest.last_report());
            if record {
                state.streams.push(stream.clone());
            }
            // Slice the session's responses back out per job.
            let mut off = 0usize;
            for job in jobs.iter().filter(|j| j.tenant == tenant) {
                let len = job.requests.len();
                // A dropped ticket is fine — the work is already done.
                let _ = job.reply.send(responses[off..off + len].to_vec());
                off += len;
            }
            executes += 1;
        }
        jobs_total += jobs.len() as u64;
        requests_total += pending as u64;
        busy += thread_clock::now().saturating_sub(t0);
    }

    ShardReport {
        shard,
        jobs: jobs_total,
        requests: requests_total,
        executes,
        busy,
        tenants: states
            .into_iter()
            .map(|s| TenantLog {
                tenant: s.tenant,
                reports: s.reports,
                streams: s.streams,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_session::QueryBatch;
    use spatial_tree::generators;

    fn trees(n_tenants: usize, n: u32, seed: u64) -> Vec<Tree> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_tenants)
            .map(|_| generators::uniform_random(n, &mut rng))
            .collect()
    }

    #[test]
    fn answers_match_a_direct_forest() {
        let ts = trees(3, 150, 11);
        let opts = ServiceOptions::new(2);
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.lca(3, 77).subtree_sum(0).rank(42).insert_leaf(5);
        let tickets: Vec<_> = (0..3u32)
            .map(|t| service.submit(t, batch.requests()))
            .collect();
        let answers: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let report = service.shutdown();

        for (t, tree) in ts.iter().enumerate() {
            let mut forest = SpatialForest::with_options(tree, opts.forest);
            let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, t as u32));
            let want = forest.execute(batch.requests(), &mut rng).to_vec();
            assert_eq!(answers[t], want, "tenant {t}");
            let log = report.tenant_log(t as u32).expect("tenant served");
            assert_eq!(log.reports, vec![forest.last_report()], "tenant {t}");
        }
        assert_eq!(report.total_jobs(), 3);
        assert_eq!(report.total_requests(), 12);
    }

    #[test]
    fn coalesces_queued_jobs_into_fewer_sessions() {
        let ts = trees(1, 200, 5);
        let mut opts = ServiceOptions::new(1);
        opts.queue_capacity = 64;
        opts.coalesce_target = 1_000;
        let service = ForestService::start(&ts, opts);
        // A bulky first job keeps the worker busy while the pile of
        // small jobs below queues up behind it.
        let mut big = QueryBatch::new();
        for v in 0..180u32 {
            big.lca(v, (v * 7) % 200).subtree_sum(v).rank(v);
        }
        let head = service.submit(0, big.requests());
        let mut batch = QueryBatch::new();
        batch.lca(1, 2).subtree_sum(3);
        // The worker picks up whatever has accumulated by the time it
        // wakes and sessions it together.
        let tickets: Vec<_> = (0..32)
            .map(|_| service.submit(0, batch.requests()))
            .collect();
        assert_eq!(head.wait().len(), 540);
        for t in tickets {
            assert_eq!(t.wait().len(), 2);
        }
        let report = service.shutdown();
        assert_eq!(report.total_jobs(), 33);
        assert!(
            report.total_executes() < 32,
            "expected coalescing, got {} sessions for 32 jobs",
            report.total_executes()
        );
    }

    #[test]
    fn per_tenant_order_is_preserved_across_inserts() {
        let ts = trees(2, 100, 9);
        let service = ForestService::start(&ts, ServiceOptions::new(2));
        // Two inserts then a query that can only see both.
        let mut b1 = QueryBatch::new();
        b1.insert_leaf(0).insert_leaf(0);
        let mut b2 = QueryBatch::new();
        b2.subtree_sum(0);
        let t1 = service.submit(1, b1.requests());
        let t2 = service.submit(1, b2.requests());
        assert_eq!(
            t1.wait(),
            vec![Response::InsertedLeaf(100), Response::InsertedLeaf(101)]
        );
        assert_eq!(t2.wait(), vec![Response::SubtreeSum(102)]);
        service.shutdown();
    }

    #[test]
    fn backpressure_blocks_then_completes() {
        let ts = trees(1, 64, 3);
        let mut opts = ServiceOptions::new(1);
        opts.queue_capacity = 2;
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.lca(0, 1);
        // More jobs than queue slots: submit blocks transiently but
        // every job completes.
        let tickets: Vec<_> = (0..16)
            .map(|_| service.submit(0, batch.requests()))
            .collect();
        assert_eq!(tickets.len(), 16);
        for t in tickets {
            assert_eq!(t.wait().len(), 1);
        }
        service.shutdown();
    }

    #[test]
    fn record_streams_reproduce_the_run() {
        let ts = trees(2, 120, 21);
        let mut opts = ServiceOptions::new(2);
        opts.record_streams = true;
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.insert_leaf(3).lca(2, 9).subtree_sum(1);
        let tickets: Vec<_> = (0..2u32)
            .flat_map(|t| (0..3).map(move |_| t))
            .map(|t| service.submit(t, batch.requests()))
            .collect();
        let answers: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let report = service.shutdown();

        for tenant in 0..2u32 {
            let log = report.tenant_log(tenant).expect("served");
            // Twin: replay the recorded streams on a fresh forest.
            let mut twin = SpatialForest::with_options(&ts[tenant as usize], opts.forest);
            let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, tenant));
            let mut twin_answers = Vec::new();
            let mut twin_reports = Vec::new();
            for stream in &log.streams {
                twin_answers.extend_from_slice(twin.execute(stream, &mut rng));
                twin_reports.push(twin.last_report());
            }
            let service_answers: Vec<Response> = answers
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u32) / 3 == tenant)
                .flat_map(|(_, a)| a.iter().copied())
                .collect();
            assert_eq!(twin_answers, service_answers, "tenant {tenant}");
            assert_eq!(twin_reports, log.reports, "tenant {tenant}");
        }
    }
}
