//! [`ForestService`]: shard-owned forests behind coalescing bounded
//! queues.

use crossbeam::channel::{bounded, Receiver, Sender};
use rand::prelude::*;
use spatial_session::{ForestOptions, Request, Response, SessionReport, SpatialForest};
use spatial_store::{
    apply_pending_delta, read_journal, ForestSnapshot, JournalWriter, MappedSnapshot, Record,
    StoreError,
};
use spatial_tree::Tree;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The clock a worker charges its busy time on: per-thread CPU time,
/// so a shard's `busy` means "compute this shard performed", not "wall
/// time during which it happened to hold the core". On hosts with
/// fewer cores than workers (CI containers are single-core) wall-clock
/// deltas would silently include the time a worker sat preempted while
/// its siblings ran, inflating every shard's busy toward the total and
/// erasing the sharding signal the modeled-QPS metric exists to
/// measure.
#[cfg(target_os = "linux")]
mod thread_clock {
    use std::time::Duration;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    /// CPU time consumed by the calling thread so far.
    pub fn now() -> Duration {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        debug_assert_eq!(rc, 0, "CLOCK_THREAD_CPUTIME_ID unavailable");
        Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    }
}

/// Wall-clock fallback where no per-thread CPU clock is exposed; busy
/// figures are then only meaningful with one core per worker.
#[cfg(not(target_os = "linux"))]
mod thread_clock {
    use std::time::{Duration, Instant};

    pub fn now() -> Duration {
        thread_local! {
            static ANCHOR: Instant = Instant::now();
        }
        ANCHOR.with(|a| a.elapsed())
    }
}

/// Minimum number of requests a worker tries to coalesce into one
/// charge-batched session before executing.
///
/// Measured by the dispatch-granularity sweep in
/// `experiments -- bench-json-throughput` (recorded in `DESIGN.md`):
/// a dispatch cycle's cost fits `F/b + c` per query, and at n = 2^13
/// the fixed per-cycle cost F (~15 ms: session setup, structure
/// refresh, and — a distant third — the channel hand-off itself)
/// dwarfs the marginal per-query cost c (~6 µs), so per-query cost
/// falls like `1/b` with cycle size. This constant is the measured
/// smallest cycle within 2× of the batch-everything bound — past it,
/// doubling the cycle (and with it the latency coupling between
/// coalesced jobs) buys less than 2×. Coalescing is opportunistic — a
/// worker never *waits* for this many requests (latency is bounded by
/// work in flight, not by a timer); it just keeps draining its queue
/// without executing while fewer than this many requests are pending
/// and more jobs are available.
pub const MIN_COALESCED_BATCH: usize = 512;

/// Construction options for [`ForestService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Number of worker threads; tenant `t` is owned by shard
    /// `t % workers`.
    pub workers: usize,
    /// Bounded capacity of each shard's submission queue, in **jobs**;
    /// a full queue blocks [`ForestService::submit`] (backpressure).
    pub queue_capacity: usize,
    /// A worker keeps draining pending jobs (without blocking) until
    /// it holds at least this many requests, then executes the lot as
    /// per-tenant charge-batched sessions. See [`MIN_COALESCED_BATCH`].
    pub coalesce_target: usize,
    /// Options for every tenant's [`SpatialForest`].
    pub forest: ForestOptions,
    /// Root seed; each tenant derives its private session RNG from it
    /// (see [`tenant_seed`]), independent of sharding.
    pub seed: u64,
    /// Record every executed per-tenant request stream in the shard
    /// report — the hook the differential fuzz harness uses to replay
    /// the service's exact coalescing on a single-threaded twin.
    pub record_streams: bool,
}

impl ServiceOptions {
    /// Defaults with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        ServiceOptions {
            workers,
            queue_capacity: 256,
            coalesce_target: MIN_COALESCED_BATCH,
            forest: ForestOptions::default(),
            seed: 0x5eed,
            record_streams: false,
        }
    }
}

/// The RNG seed of a tenant's forest sessions: a fixed mix of the
/// service seed and the tenant id. Shard-independent, so a
/// single-threaded twin replaying a tenant's recorded streams with
/// this seed reproduces the service's answers and charges bit for bit.
pub fn tenant_seed(seed: u64, tenant: u32) -> u64 {
    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1))
}

/// What went wrong serving a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's worker thread died (panicked) before answering this
    /// job. The tenant's shard is permanently out of service for the
    /// lifetime of this [`ForestService`]; [`ForestService::shutdown`]
    /// reports it as poisoned.
    WorkerLost {
        /// The dead shard's index.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WorkerLost { shard } => {
                write!(f, "shard {shard} worker died before answering")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One submitted unit of work: a tenant plus a request stream, with
/// the reply channel the owning worker answers on.
struct Job {
    tenant: u32,
    requests: Vec<Request>,
    reply: Sender<Vec<Response>>,
}

/// A handle to one submitted job's pending responses.
#[must_use = "wait() retrieves the responses"]
pub struct Ticket {
    rx: Receiver<Vec<Response>>,
    shard: usize,
}

impl Ticket {
    /// Blocks until the owning worker has executed the job; responses
    /// align with the submitted requests by index.
    ///
    /// Returns [`ServeError::WorkerLost`] when the shard's worker died
    /// before answering — whether it panicked executing this very job,
    /// crashed with the job still queued behind it, or was already dead
    /// at submission. Never hangs on a dead worker: the reply channel
    /// disconnects when the job is dropped, queued or in flight.
    pub fn wait(self) -> Result<Vec<Response>, ServeError> {
        self.rx
            .recv()
            .map_err(|_| ServeError::WorkerLost { shard: self.shard })
    }
}

/// Everything one worker accumulated for one tenant.
#[derive(Debug, Clone)]
pub struct TenantLog {
    /// The tenant id.
    pub tenant: u32,
    /// One [`SessionReport`] per executed coalesced session, in
    /// execution order.
    pub reports: Vec<SessionReport>,
    /// The executed request streams (one per session, concatenated in
    /// coalescing order) when `record_streams` was set; empty
    /// otherwise.
    pub streams: Vec<Vec<Request>>,
}

/// Shutdown summary of one shard (= one worker thread).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (`0..workers`).
    pub shard: usize,
    /// Jobs the worker answered.
    pub jobs: u64,
    /// Requests across those jobs.
    pub requests: u64,
    /// Coalesced sessions executed (`≤ jobs`; the coalescing win is
    /// `jobs / executes`).
    pub executes: u64,
    /// CPU time this worker spent executing (drain + execute + reply),
    /// excluding idle blocking on the queue, measured on the
    /// per-thread CPU clock so co-scheduled workers on an
    /// oversubscribed host don't leak into each other's figure. The
    /// critical-path denominator of the modeled aggregate throughput.
    pub busy: Duration,
    /// Whether the shard's worker died (panicked) instead of exiting
    /// cleanly. A poisoned shard's counters and logs cover only what
    /// the unwind left recoverable — nothing, with the current
    /// thread-owned state — so they read as zero/empty.
    pub poisoned: bool,
    /// Per-tenant logs for the tenants this shard owns.
    pub tenants: Vec<TenantLog>,
}

impl ShardReport {
    /// The placeholder report of a shard whose worker panicked: zeroed
    /// counters, no tenant logs, `poisoned` set.
    fn lost(shard: usize) -> Self {
        ShardReport {
            shard,
            jobs: 0,
            requests: 0,
            executes: 0,
            busy: Duration::ZERO,
            poisoned: true,
            tenants: Vec::new(),
        }
    }
}

/// Shutdown summary of the whole service.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One report per shard, indexed by shard.
    pub shards: Vec<ShardReport>,
}

impl ServiceReport {
    /// Total requests answered across all shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total jobs answered across all shards.
    pub fn total_jobs(&self) -> u64 {
        self.shards.iter().map(|s| s.jobs).sum()
    }

    /// Total coalesced sessions executed across all shards.
    pub fn total_executes(&self) -> u64 {
        self.shards.iter().map(|s| s.executes).sum()
    }

    /// The busiest shard's busy time — the critical path of the run if
    /// every worker had its own core.
    pub fn max_shard_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).max().unwrap_or_default()
    }

    /// Summed busy time across shards (the single-core wall-clock
    /// lower bound).
    pub fn total_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).sum()
    }

    /// **Modeled** aggregate queries/sec: total requests divided by
    /// the busiest shard's busy time. This is the throughput the run's
    /// *load balance* supports when each worker has a dedicated core —
    /// on a machine with fewer cores than workers (CI containers), the
    /// measured wall-clock QPS is lower while this figure isolates the
    /// sharding quality. Both are reported side by side in
    /// `BENCH_throughput.json`.
    pub fn modeled_qps(&self) -> f64 {
        let crit = self.max_shard_busy().as_secs_f64();
        if crit == 0.0 {
            return 0.0;
        }
        self.total_requests() as f64 / crit
    }

    /// Indices of shards whose workers died instead of exiting cleanly
    /// (empty on a healthy run).
    pub fn poisoned_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.poisoned)
            .map(|s| s.shard)
            .collect()
    }

    /// The log of one tenant (wherever it was sharded).
    pub fn tenant_log(&self, tenant: u32) -> Option<&TenantLog> {
        self.shards
            .iter()
            .flat_map(|s| s.tenants.iter())
            .find(|t| t.tenant == tenant)
    }
}

/// Durability settings of a [`ForestService::start_durable`] service.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding every tenant's snapshot + journal files
    /// (created if absent). One snapshot `tenant-<t>.snapshot` and one
    /// live journal `tenant-<t>.<generation>.journal` per tenant.
    pub dir: PathBuf,
    /// Number of committed sessions between checkpoints: after this
    /// many, the tenant's forest is re-checkpointed (incrementally when
    /// the on-disk base still matches) and the journal restarts at the
    /// next generation (bounding recovery replay).
    pub checkpoint_interval: u64,
    /// Recover tenants over mmap-backed snapshots: slabs are served
    /// zero-copy out of the snapshot file until a mutation promotes
    /// them, and restart cost scales with the tenants actually touched
    /// instead of the fleet size. v1 snapshot files (packed slabs, not
    /// mappable) fall back to the owned decoder per tenant. Answers
    /// and charges are bit-identical either way, modulo the explicit
    /// paging rows of [`ForestOptions::paging`].
    pub mapped: bool,
    /// Batch-size hint for [`SpatialForest::warmstart`] after recovery:
    /// engine and scratch capacities are pre-sized from the snapshot
    /// header so the first post-restart session allocates nothing on
    /// the steady-state path.
    pub warmstart_batch: usize,
}

impl DurabilityOptions {
    /// Durability under `dir` with a checkpoint every 8 sessions,
    /// mapped recovery, and warmstart sized for one coalesced batch.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            checkpoint_interval: 8,
            mapped: true,
            warmstart_batch: MIN_COALESCED_BATCH,
        }
    }
}

/// Per-tenant durability bookkeeping (worker-side).
struct TenantDurability {
    dir: PathBuf,
    /// Current journal generation — also written into the snapshot's
    /// `tag`, which is what makes the checkpoint's snapshot/journal
    /// switch crash-safe: whichever snapshot survives names the one
    /// journal file that goes with it.
    generation: u64,
    sessions_since_checkpoint: u64,
    interval: u64,
}

/// Per-tenant worker-side state: the forest, its session RNG, and the
/// accumulated logs.
struct TenantState {
    tenant: u32,
    forest: SpatialForest,
    rng: StdRng,
    reports: Vec<SessionReport>,
    streams: Vec<Vec<Request>>,
    durable: Option<TenantDurability>,
}

/// One tenant slot of a shard. Durable tenants start `Lazy` and are
/// recovered on their first job, so restarting a large fleet faults in
/// (and re-checkpoints) only the tenants actually receiving traffic —
/// a never-touched tenant's durable files are left exactly as the
/// previous run published them.
enum TenantSlot {
    /// A live tenant forest (non-durable tenants start here).
    Ready(Box<TenantState>),
    /// A durable tenant not yet recovered; holds the non-persisted
    /// half of its identity (the seed tree) until the first job.
    Lazy { tenant: u32, tree: Tree },
}

impl TenantSlot {
    fn tenant(&self) -> u32 {
        match self {
            TenantSlot::Ready(s) => s.tenant,
            TenantSlot::Lazy { tenant, .. } => *tenant,
        }
    }
}

fn snapshot_path(dir: &Path, tenant: u32) -> PathBuf {
    dir.join(format!("tenant-{tenant}.snapshot"))
}

fn journal_path(dir: &Path, tenant: u32, generation: u64) -> PathBuf {
    dir.join(format!("tenant-{tenant}.{generation}.journal"))
}

/// Opens a tenant's snapshot, mapped or owned per
/// [`DurabilityOptions::mapped`]. `None` means no snapshot exists yet
/// (a fresh tenant); a pending incremental-checkpoint delta is applied
/// first on every path (crash recovery).
fn open_tenant_snapshot(
    tenant: u32,
    opts: &ServiceOptions,
    dur: &DurabilityOptions,
) -> Option<(SpatialForest, u64)> {
    let spath = snapshot_path(&dur.dir, tenant);
    let not_found =
        |e: &StoreError| matches!(e, StoreError::Io(e) if e.kind() == std::io::ErrorKind::NotFound);
    if dur.mapped {
        // `MappedSnapshot::open` applies a pending delta itself.
        match MappedSnapshot::open(&spath) {
            Ok(mapped) => {
                let generation = mapped.header().tag;
                let forest = SpatialForest::from_mapped(&Arc::new(mapped), opts.forest);
                return Some((forest, generation));
            }
            // A v1 snapshot (packed slabs) is not mappable — decode it
            // the owned way below; the next checkpoint rewrites it as
            // a mappable v2 file.
            Err(StoreError::UnsupportedVersion(1)) => {}
            Err(ref e) if not_found(e) => return None,
            Err(e) => panic!("tenant {tenant} snapshot unmappable: {e}"),
        }
    } else if let Err(e) = apply_pending_delta(&spath) {
        assert!(not_found(&e), "tenant {tenant} delta unrecoverable: {e}");
    }
    match ForestSnapshot::read_from(&spath) {
        Ok(snap) => Some((SpatialForest::from_snapshot(&snap, opts.forest), snap.tag)),
        Err(ref e) if not_found(e) => None,
        Err(e) => panic!("tenant {tenant} snapshot unreadable: {e}"),
    }
}

/// Builds one tenant's state from its durable files: recover from the
/// snapshot + committed journal prefix when a snapshot exists, start
/// fresh otherwise. A recovered tenant whose journal is completely
/// empty keeps its generation and re-attaches the same journal for
/// append — restarting a cleanly-checkpointed fleet rewrites nothing.
/// Every other path ends on a brand-new checkpoint generation. Either
/// way the forest is warmstarted so the first session's steady-state
/// path allocates nothing.
fn start_tenant_durable(
    tenant: u32,
    tree: &Tree,
    opts: &ServiceOptions,
    dur: &DurabilityOptions,
) -> TenantState {
    let durable = |generation| {
        Some(TenantDurability {
            dir: dur.dir.clone(),
            generation,
            sessions_since_checkpoint: 0,
            interval: dur.checkpoint_interval.max(1),
        })
    };
    let fresh_rng = || StdRng::seed_from_u64(tenant_seed(opts.seed, tenant));
    let mut state = match open_tenant_snapshot(tenant, opts, dur) {
        Some((mut forest, generation)) => {
            let jpath = journal_path(&dur.dir, tenant, generation);
            let records = read_journal(&jpath).expect("tenant journal unreadable");
            // Session-atomic replay: the RngState marker appended after
            // each executed session is the commit point. Everything
            // past the last marker is a session the crash interrupted
            // mid-write — drop it wholesale rather than replay half of
            // it.
            let committed = records
                .iter()
                .rposition(|r| matches!(r, Record::RngState(_)))
                .map_or(0, |i| i + 1);
            forest.apply_journal(&records[..committed]);
            let rng = records[..committed]
                .iter()
                .rev()
                .find_map(|r| match r {
                    Record::RngState(s) => Some(StdRng::from_state(*s)),
                    _ => None,
                })
                .unwrap_or_else(fresh_rng);
            let mut state = TenantState {
                tenant,
                forest,
                rng,
                reports: Vec::new(),
                streams: Vec::new(),
                durable: durable(generation),
            };
            // An entirely byte-empty journal has nothing to compact:
            // skip the startup checkpoint and keep appending to the
            // same generation. Any bytes at all — even a torn partial
            // record — force the checkpoint below, which truncates
            // them.
            let journal_bytes = std::fs::metadata(&jpath).map_or(0, |m| m.len());
            if records.is_empty() && journal_bytes == 0 {
                let writer = JournalWriter::open_append(&jpath).expect("reopen tenant journal");
                state.forest.attach_journal(writer);
            } else {
                checkpoint_tenant(&mut state);
            }
            state
        }
        None => {
            let mut state = TenantState {
                tenant,
                forest: SpatialForest::with_options(tree, opts.forest),
                rng: fresh_rng(),
                reports: Vec::new(),
                streams: Vec::new(),
                durable: durable(0),
            };
            // A fresh tenant checkpoints immediately: its first
            // snapshot plus the generation-1 journal.
            checkpoint_tenant(&mut state);
            state
        }
    };
    state.forest.warmstart(dur.warmstart_batch);
    state
}

/// Re-checkpoints the tenant and switches to the next journal
/// generation. The snapshot write goes through
/// [`SpatialForest::checkpoint_to`]: when the on-disk base still
/// matches the forest's tracked generation, only the dirty slab
/// extents are patched through the crash-safe delta protocol instead
/// of rewriting the whole file. Crash-safe at every step: the next
/// generation's journal is created *before* the snapshot that names
/// it is published (atomic rename or delta commit), and the old
/// journal is only removed after — a crash anywhere leaves exactly
/// one (snapshot, journal) pair that recovery will agree on.
fn checkpoint_tenant(state: &mut TenantState) {
    let d = state
        .durable
        .as_ref()
        .expect("checkpoint of durable tenant");
    let (dir, generation) = (d.dir.clone(), d.generation);
    let next = generation + 1;
    let writer = JournalWriter::create(journal_path(&dir, state.tenant, next))
        .expect("create next journal generation");
    state
        .forest
        .checkpoint_to(snapshot_path(&dir, state.tenant), next)
        .expect("write checkpoint snapshot");
    state.forest.detach_journal();
    state.forest.attach_journal(writer);
    let _ = std::fs::remove_file(journal_path(&dir, state.tenant, generation));
    let d = state
        .durable
        .as_mut()
        .expect("checkpoint of durable tenant");
    d.generation = next;
    d.sessions_since_checkpoint = 0;
}

/// Commits one executed session to the tenant's journal (the RngState
/// marker + fsync), checkpointing when the interval is due. A no-op
/// for non-durable tenants.
fn commit_session(state: &mut TenantState) {
    if state.durable.is_none() {
        return;
    }
    let marker = Record::RngState(state.rng.state());
    {
        let journal = state
            .forest
            .journal_mut()
            .expect("durable tenant has a journal attached");
        journal
            .append(marker)
            .expect("journal append failed (fail-stop)");
        journal.sync().expect("journal sync failed (fail-stop)");
    }
    let d = state.durable.as_mut().expect("checked above");
    d.sessions_since_checkpoint += 1;
    if d.sessions_since_checkpoint >= d.interval {
        checkpoint_tenant(state);
    }
}

/// A fixed pool of worker threads serving many tenants' forests.
///
/// Tenant `t` is owned by shard `t % workers`: all of a tenant's
/// requests execute on one thread, in submission order, against
/// thread-exclusive state — the hot path takes **no locks** and shares
/// **no cache lines** across shards. Cross-thread communication is
/// confined to the bounded job queue in front of each shard and the
/// per-job reply channel, both carrying whole batches.
pub struct ForestService {
    txs: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<ShardReport>>,
    workers: usize,
    tenants: usize,
}

impl ForestService {
    /// Spawns the worker pool and builds one [`SpatialForest`] per
    /// tenant tree, sharded round-robin across workers.
    ///
    /// # Panics
    /// Panics when `opts.workers == 0` or any option is degenerate.
    pub fn start(trees: &[Tree], opts: ServiceOptions) -> Self {
        Self::start_inner(trees, opts, None)
    }

    /// [`ForestService::start`] with durable tenants: each tenant whose
    /// snapshot exists under `dur.dir` is **recovered** from it (plus
    /// the committed prefix of its journal) instead of built from its
    /// tree; every tenant then journals its mutations session by
    /// session and re-checkpoints every `dur.checkpoint_interval`
    /// committed sessions — incrementally, patching only the dirty
    /// slab extents, when the on-disk base still matches. Recovery is
    /// **lazy** and (by default) **mapped**: a tenant is opened on its
    /// shard's thread at its first job, zero-copy over the mmap'd
    /// snapshot, so restarting a large fleet pays only for the tenants
    /// that actually receive traffic. Pass the same `trees`,
    /// `opts.forest`, and `opts.seed` across restarts — they are the
    /// non-persisted half of the tenant identity.
    pub fn start_durable(trees: &[Tree], opts: ServiceOptions, dur: DurabilityOptions) -> Self {
        std::fs::create_dir_all(&dur.dir).expect("create durability directory");
        Self::start_inner(trees, opts, Some(dur))
    }

    fn start_inner(trees: &[Tree], opts: ServiceOptions, dur: Option<DurabilityOptions>) -> Self {
        assert!(opts.workers >= 1, "need at least one worker");
        assert!(opts.queue_capacity >= 1, "need a non-empty queue");
        let mut per_shard: Vec<Vec<TenantSlot>> = (0..opts.workers).map(|_| Vec::new()).collect();
        for (t, tree) in trees.iter().enumerate() {
            let tenant = t as u32;
            per_shard[t % opts.workers].push(match &dur {
                // Durable tenants recover lazily, on their shard's
                // thread, at first job.
                Some(_) => TenantSlot::Lazy {
                    tenant,
                    tree: tree.clone(),
                },
                None => TenantSlot::Ready(Box::new(TenantState {
                    tenant,
                    forest: SpatialForest::with_options(tree, opts.forest),
                    rng: StdRng::seed_from_u64(tenant_seed(opts.seed, tenant)),
                    reports: Vec::new(),
                    streams: Vec::new(),
                    durable: None,
                })),
            });
        }
        let mut txs = Vec::with_capacity(opts.workers);
        let mut handles = Vec::with_capacity(opts.workers);
        for (shard, slots) in per_shard.into_iter().enumerate() {
            let (tx, rx) = bounded::<Job>(opts.queue_capacity);
            let dur = dur.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(shard, rx, slots, opts, dur)
            }));
            txs.push(tx);
        }
        ForestService {
            txs,
            handles,
            workers: opts.workers,
            tenants: trees.len(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants
    }

    /// Enqueues a request stream for a tenant and returns a [`Ticket`]
    /// for its responses. Blocks while the owning shard's queue is
    /// full (backpressure).
    ///
    /// A tenant's requests execute in submission order as long as each
    /// tenant is driven from one thread at a time.
    ///
    /// Submitting to a shard whose worker has died does not block and
    /// does not panic: the returned ticket reports
    /// [`ServeError::WorkerLost`] from [`Ticket::wait`].
    ///
    /// # Panics
    /// Panics when the tenant id is out of range.
    pub fn submit(&self, tenant: u32, requests: &[Request]) -> Ticket {
        assert!((tenant as usize) < self.tenants, "unknown tenant {tenant}");
        let shard = tenant as usize % self.workers;
        let (reply, rx) = bounded::<Vec<Response>>(1);
        let job = Job {
            tenant,
            requests: requests.to_vec(),
            reply,
        };
        // A dead worker's queue is disconnected; the failed send drops
        // `job` — and with it the only reply sender — right here, so
        // the ticket's recv disconnects instead of hanging.
        let _ = self.txs[shard].send(job);
        Ticket { rx, shard }
    }

    /// Disconnects the queues, waits for every worker to drain and
    /// exit, and returns the per-shard reports. Every ticket submitted
    /// before this call is answered first (or, on a shard whose worker
    /// died, reports [`ServeError::WorkerLost`]). A dead worker does
    /// not panic the shutdown: its shard comes back as a poisoned
    /// placeholder report ([`ShardReport::poisoned`]).
    pub fn shutdown(mut self) -> ServiceReport {
        self.txs.clear();
        let shards = self
            .handles
            .drain(..)
            .enumerate()
            .map(|(shard, h)| h.join().unwrap_or_else(|_| ShardReport::lost(shard)))
            .collect();
        ServiceReport { shards }
    }
}

impl Drop for ForestService {
    fn drop(&mut self) {
        // A dropped (not shut down) service still drains and joins so
        // no worker outlives the handle; reports are discarded.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The shard worker: blockingly pops one job, opportunistically drains
/// more up to the coalesce target, executes one charge-batched session
/// per tenant present, then replies per job. A durable tenant's slot
/// is materialized (recovered from its snapshot + journal, warmstarted)
/// the first time a job names it.
fn worker_loop(
    shard: usize,
    rx: Receiver<Job>,
    mut slots: Vec<TenantSlot>,
    opts: ServiceOptions,
    dur: Option<DurabilityOptions>,
) -> ShardReport {
    let coalesce_target = opts.coalesce_target;
    let record = opts.record_streams;
    let mut jobs_total = 0u64;
    let mut requests_total = 0u64;
    let mut executes = 0u64;
    let mut busy = Duration::ZERO;
    // Retained cycle scratch: the drained jobs, the distinct tenants
    // of the cycle, and the concatenated per-tenant request stream.
    let mut jobs: Vec<Job> = Vec::new();
    let mut cycle_tenants: Vec<u32> = Vec::new();
    let mut stream: Vec<Request> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();

    while let Ok(first) = rx.recv() {
        let t0 = thread_clock::now();
        jobs.clear();
        let mut pending = first.requests.len();
        jobs.push(first);
        // Coalesce: drain without blocking while below the target.
        while pending < coalesce_target {
            match rx.try_recv() {
                Ok(job) => {
                    pending += job.requests.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // One charged session per distinct tenant, preserving each
        // tenant's arrival order (the drain above is FIFO).
        cycle_tenants.clear();
        for job in &jobs {
            if !cycle_tenants.contains(&job.tenant) {
                cycle_tenants.push(job.tenant);
            }
        }
        for &tenant in &cycle_tenants {
            stream.clear();
            for job in jobs.iter().filter(|j| j.tenant == tenant) {
                stream.extend_from_slice(&job.requests);
            }
            let slot = slots
                .iter_mut()
                .find(|s| s.tenant() == tenant)
                .expect("tenant sharded to this worker");
            if let TenantSlot::Lazy { tenant, tree } = slot {
                let dur = dur.as_ref().expect("lazy slots are durable");
                *slot =
                    TenantSlot::Ready(Box::new(start_tenant_durable(*tenant, tree, &opts, dur)));
            }
            let state = match slot {
                TenantSlot::Ready(state) => state,
                TenantSlot::Lazy { .. } => unreachable!("materialized above"),
            };
            responses.clear();
            responses.extend_from_slice(state.forest.execute(&stream, &mut state.rng));
            state.reports.push(state.forest.last_report());
            if record {
                state.streams.push(stream.clone());
            }
            // Durable tenants commit (marker + fsync, maybe a
            // checkpoint) *before* replying: an answered ticket is
            // always a recoverable session.
            commit_session(state);
            // Slice the session's responses back out per job.
            let mut off = 0usize;
            for job in jobs.iter().filter(|j| j.tenant == tenant) {
                let len = job.requests.len();
                // A dropped ticket is fine — the work is already done.
                let _ = job.reply.send(responses[off..off + len].to_vec());
                off += len;
            }
            executes += 1;
        }
        jobs_total += jobs.len() as u64;
        requests_total += pending as u64;
        busy += thread_clock::now().saturating_sub(t0);
    }

    ShardReport {
        shard,
        jobs: jobs_total,
        requests: requests_total,
        executes,
        busy,
        poisoned: false,
        tenants: slots
            .into_iter()
            .map(|slot| match slot {
                TenantSlot::Ready(s) => TenantLog {
                    tenant: s.tenant,
                    reports: s.reports,
                    streams: s.streams,
                },
                // Never materialized: no job ever named this tenant.
                TenantSlot::Lazy { tenant, .. } => TenantLog {
                    tenant,
                    reports: Vec::new(),
                    streams: Vec::new(),
                },
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_session::QueryBatch;
    use spatial_tree::generators;

    fn trees(n_tenants: usize, n: u32, seed: u64) -> Vec<Tree> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_tenants)
            .map(|_| generators::uniform_random(n, &mut rng))
            .collect()
    }

    #[test]
    fn answers_match_a_direct_forest() {
        let ts = trees(3, 150, 11);
        let opts = ServiceOptions::new(2);
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.lca(3, 77).subtree_sum(0).rank(42).insert_leaf(5);
        let tickets: Vec<_> = (0..3u32)
            .map(|t| service.submit(t, batch.requests()))
            .collect();
        let answers: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("answered"))
            .collect();
        let report = service.shutdown();
        assert!(report.poisoned_shards().is_empty());

        for (t, tree) in ts.iter().enumerate() {
            let mut forest = SpatialForest::with_options(tree, opts.forest);
            let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, t as u32));
            let want = forest.execute(batch.requests(), &mut rng).to_vec();
            assert_eq!(answers[t], want, "tenant {t}");
            let log = report.tenant_log(t as u32).expect("tenant served");
            assert_eq!(log.reports, vec![forest.last_report()], "tenant {t}");
        }
        assert_eq!(report.total_jobs(), 3);
        assert_eq!(report.total_requests(), 12);
    }

    #[test]
    fn coalesces_queued_jobs_into_fewer_sessions() {
        let ts = trees(1, 200, 5);
        let mut opts = ServiceOptions::new(1);
        opts.queue_capacity = 64;
        opts.coalesce_target = 1_000;
        let service = ForestService::start(&ts, opts);
        // A bulky first job keeps the worker busy while the pile of
        // small jobs below queues up behind it.
        let mut big = QueryBatch::new();
        for v in 0..180u32 {
            big.lca(v, (v * 7) % 200).subtree_sum(v).rank(v);
        }
        let head = service.submit(0, big.requests());
        let mut batch = QueryBatch::new();
        batch.lca(1, 2).subtree_sum(3);
        // The worker picks up whatever has accumulated by the time it
        // wakes and sessions it together.
        let tickets: Vec<_> = (0..32)
            .map(|_| service.submit(0, batch.requests()))
            .collect();
        assert_eq!(head.wait().expect("answered").len(), 540);
        for t in tickets {
            assert_eq!(t.wait().expect("answered").len(), 2);
        }
        let report = service.shutdown();
        assert_eq!(report.total_jobs(), 33);
        assert!(
            report.total_executes() < 32,
            "expected coalescing, got {} sessions for 32 jobs",
            report.total_executes()
        );
    }

    #[test]
    fn per_tenant_order_is_preserved_across_inserts() {
        let ts = trees(2, 100, 9);
        let service = ForestService::start(&ts, ServiceOptions::new(2));
        // Two inserts then a query that can only see both.
        let mut b1 = QueryBatch::new();
        b1.insert_leaf(0).insert_leaf(0);
        let mut b2 = QueryBatch::new();
        b2.subtree_sum(0);
        let t1 = service.submit(1, b1.requests());
        let t2 = service.submit(1, b2.requests());
        assert_eq!(
            t1.wait().expect("answered"),
            vec![Response::InsertedLeaf(100), Response::InsertedLeaf(101)]
        );
        assert_eq!(
            t2.wait().expect("answered"),
            vec![Response::SubtreeSum(102)]
        );
        service.shutdown();
    }

    #[test]
    fn backpressure_blocks_then_completes() {
        let ts = trees(1, 64, 3);
        let mut opts = ServiceOptions::new(1);
        opts.queue_capacity = 2;
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.lca(0, 1);
        // More jobs than queue slots: submit blocks transiently but
        // every job completes.
        let tickets: Vec<_> = (0..16)
            .map(|_| service.submit(0, batch.requests()))
            .collect();
        assert_eq!(tickets.len(), 16);
        for t in tickets {
            assert_eq!(t.wait().expect("answered").len(), 1);
        }
        service.shutdown();
    }

    #[test]
    fn record_streams_reproduce_the_run() {
        let ts = trees(2, 120, 21);
        let mut opts = ServiceOptions::new(2);
        opts.record_streams = true;
        let service = ForestService::start(&ts, opts);
        let mut batch = QueryBatch::new();
        batch.insert_leaf(3).lca(2, 9).subtree_sum(1);
        let tickets: Vec<_> = (0..2u32)
            .flat_map(|t| (0..3).map(move |_| t))
            .map(|t| service.submit(t, batch.requests()))
            .collect();
        let answers: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("answered"))
            .collect();
        let report = service.shutdown();

        for tenant in 0..2u32 {
            let log = report.tenant_log(tenant).expect("served");
            // Twin: replay the recorded streams on a fresh forest.
            let mut twin = SpatialForest::with_options(&ts[tenant as usize], opts.forest);
            let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, tenant));
            let mut twin_answers = Vec::new();
            let mut twin_reports = Vec::new();
            for stream in &log.streams {
                twin_answers.extend_from_slice(twin.execute(stream, &mut rng));
                twin_reports.push(twin.last_report());
            }
            let service_answers: Vec<Response> = answers
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u32) / 3 == tenant)
                .flat_map(|(_, a)| a.iter().copied())
                .collect();
            assert_eq!(twin_answers, service_answers, "tenant {tenant}");
            assert_eq!(twin_reports, log.reports, "tenant {tenant}");
        }
    }
}
