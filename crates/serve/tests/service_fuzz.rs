//! Deterministic multi-threaded differential fuzz: random mixed
//! streams (including inserts) for 8 tenants sharded across 4
//! workers, with every executed stream recorded. After shutdown a
//! **single-threaded twin** [`SpatialForest`] per tenant replays the
//! recorded coalesced streams with the same derived seed — answers
//! and per-session [`SessionReport`]s must match **bit for bit**.
//! Concurrency must be a pure scheduling change: it may alter *which*
//! jobs coalesce into a session (that's what the recorded streams
//! capture), never what any session computes or charges.

use rand::prelude::*;
use spatial_serve::{tenant_seed, ForestService, ServiceOptions};
use spatial_session::{QueryBatch, Request, Response, SessionReport, SpatialForest};
use spatial_tree::{generators, Tree};

/// Appends `len` random requests valid for a tenant currently holding
/// `n` vertices; returns the vertex count after the stream's inserts.
fn random_stream(
    batch: &mut QueryBatch,
    mut n: u32,
    len: usize,
    insert_pct: u32,
    rng: &mut StdRng,
) -> u32 {
    for _ in 0..len {
        let kind = rng.gen_range(0..100);
        if kind < insert_pct {
            batch.insert_leaf_weighted(rng.gen_range(0..n), rng.gen_range(1..5));
            n += 1;
        } else if kind < insert_pct + 30 {
            batch.lca(rng.gen_range(0..n), rng.gen_range(0..n));
        } else if kind < insert_pct + 65 {
            batch.subtree_sum(rng.gen_range(0..n));
        } else {
            batch.rank(rng.gen_range(0..n));
        }
    }
    n
}

/// Drives `tenants` tenants × `rounds` jobs through a service with the
/// given worker count, then pins every tenant's answers and session
/// reports against its single-threaded twin replaying the recorded
/// streams.
fn differential_run(workers: usize, tenants: u32, rounds: usize, seed: u64) {
    let mut tree_rng = StdRng::seed_from_u64(seed);
    let trees: Vec<Tree> = (0..tenants)
        .map(|_| generators::uniform_random(tree_rng.gen_range(120..260), &mut tree_rng))
        .collect();
    let mut opts = ServiceOptions::new(workers);
    opts.seed = seed ^ 0xab;
    opts.record_streams = true;

    let service = ForestService::start(&trees, opts);
    let mut stream_rng = StdRng::seed_from_u64(seed ^ 0xcd);
    let mut sizes: Vec<u32> = trees.iter().map(Tree::n).collect();
    let mut batch = QueryBatch::new();
    // Round-robin submission keeps every shard's queue mixed; per
    // tenant the jobs still arrive in order, which is the service's
    // ordering contract.
    let mut tickets: Vec<(u32, spatial_serve::Ticket)> = Vec::new();
    for _ in 0..rounds {
        for tenant in 0..tenants {
            batch.clear();
            sizes[tenant as usize] =
                random_stream(&mut batch, sizes[tenant as usize], 30, 15, &mut stream_rng);
            tickets.push((tenant, service.submit(tenant, batch.requests())));
        }
    }
    let mut service_answers: Vec<Vec<Response>> = vec![Vec::new(); tenants as usize];
    for (tenant, ticket) in tickets {
        service_answers[tenant as usize].extend(ticket.wait().expect("answered"));
    }
    let report = service.shutdown();
    assert_eq!(report.shards.len(), workers);
    assert_eq!(report.total_jobs(), rounds as u64 * tenants as u64);

    for tenant in 0..tenants {
        let log = report.tenant_log(tenant).expect("tenant served");
        assert_eq!(
            log.streams.iter().map(Vec::len).sum::<usize>(),
            rounds * 30,
            "tenant {tenant}: recorded streams cover every request"
        );
        let mut twin = SpatialForest::with_options(&trees[tenant as usize], opts.forest);
        let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, tenant));
        let mut twin_answers: Vec<Response> = Vec::new();
        let mut twin_reports: Vec<SessionReport> = Vec::new();
        for stream in &log.streams {
            twin_answers.extend_from_slice(twin.execute(stream, &mut rng));
            twin_reports.push(twin.last_report());
        }
        assert_eq!(
            twin_answers, service_answers[tenant as usize],
            "tenant {tenant}: answers diverged from the single-threaded twin"
        );
        assert_eq!(
            twin_reports, log.reports,
            "tenant {tenant}: session charges diverged from the twin"
        );
        // The replayed streams really were mixed and mutating.
        let inserts: usize = log
            .streams
            .iter()
            .flatten()
            .filter(|r| matches!(r, Request::InsertLeaf { .. }))
            .count();
        assert!(inserts > 0, "tenant {tenant}: no inserts in the mix");
        assert!(
            log.reports.iter().any(|r| r.grid.energy > 0),
            "tenant {tenant}: queries were never priced"
        );
    }
}

/// The headline configuration from the issue: 8 tenants on 4 workers,
/// three seeds.
#[test]
fn four_worker_service_matches_single_threaded_twins() {
    for seed in [1u64, 7, 4242] {
        differential_run(4, 8, 5, seed);
    }
}

/// Worker counts that don't divide the tenant count evenly still pin.
#[test]
fn uneven_sharding_matches_twins() {
    differential_run(3, 7, 4, 99);
}

/// Fixed-seed 2-worker / 2-tenant smoke for both CI legs: small,
/// fast, and exercises the full submit → coalesce → execute → reply →
/// shutdown cycle with debug assertions armed.
#[test]
fn fixed_seed_two_worker_smoke() {
    let mut tree_rng = StdRng::seed_from_u64(0x5140);
    let trees: Vec<Tree> = (0..2)
        .map(|_| generators::uniform_random(200, &mut tree_rng))
        .collect();
    let service = ForestService::start(&trees, ServiceOptions::new(2));
    let mut batch = QueryBatch::new();
    batch.lca(5, 190).subtree_sum(0).rank(17).insert_leaf(3);
    let t0 = service.submit(0, batch.requests());
    let t1 = service.submit(1, batch.requests());
    assert_eq!(t0.wait().expect("answered").len(), 4);
    let answers1 = t1.wait().expect("answered");
    assert_eq!(answers1[1], Response::SubtreeSum(200), "unit weights");
    assert_eq!(answers1[3], Response::InsertedLeaf(200));
    let report = service.shutdown();
    assert_eq!(report.total_requests(), 8);
    assert_eq!(report.shards.len(), 2);
    assert!(report.modeled_qps() > 0.0);
    assert!(report
        .shards
        .iter()
        .all(|s| s.tenants.len() == 1 && s.jobs == 1));
}
