//! Serve-layer failure paths and durable round-trips.
//!
//! The failure half kills a worker for real — an out-of-range `Rank`
//! query panics inside `SpatialForest::execute` on the worker thread —
//! and checks the contract around the corpse: tickets resolve to
//! [`ServeError::WorkerLost`] instead of hanging or aborting, sibling
//! shards keep serving, and shutdown reports the shard as poisoned.
//!
//! The durable half restarts a [`ForestService::start_durable`] service
//! and checks the recovered tenants continue bit-identically (answers
//! and charges) with a never-stopped twin.

use rand::prelude::*;
use spatial_serve::{tenant_seed, DurabilityOptions, ForestService, ServeError, ServiceOptions};
use spatial_session::{QueryBatch, Response, SessionReport, SpatialForest};
use spatial_tree::{generators, Tree};

fn trees(n_tenants: usize, n: u32, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_tenants)
        .map(|_| generators::uniform_random(n, &mut rng))
        .collect()
}

/// Silences the killed worker's panic backtrace for the duration of
/// `f` (the panic is the point of the test, not noise to print).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn dead_worker_fails_tickets_instead_of_hanging() {
    with_quiet_panics(|| {
        let ts = trees(4, 120, 31);
        let service = ForestService::start(&ts, ServiceOptions::new(2));

        // Tenants 0 and 2 live on shard 0; tenant 1 on shard 1. Kill
        // shard 0 with an out-of-range rank query.
        let mut poison = QueryBatch::new();
        poison.rank(10_000);
        let killed = service.submit(0, poison.requests());
        assert_eq!(killed.wait(), Err(ServeError::WorkerLost { shard: 0 }));

        // A job submitted after the worker died: the send fails, the
        // ticket still resolves (to the same error), no panic, no hang.
        let mut batch = QueryBatch::new();
        batch.lca(1, 2).subtree_sum(0);
        let dead = service.submit(2, batch.requests());
        assert_eq!(dead.wait(), Err(ServeError::WorkerLost { shard: 0 }));

        // The sibling shard is unaffected.
        let alive = service.submit(1, batch.requests());
        assert_eq!(alive.wait().expect("shard 1 alive").len(), 2);

        // Shutdown survives the dead worker and marks the shard.
        let report = service.shutdown();
        assert_eq!(report.poisoned_shards(), vec![0]);
        assert!(report.shards[0].poisoned);
        assert!(!report.shards[1].poisoned);
        assert_eq!(report.shards[1].requests, 2);
    });
}

#[test]
fn jobs_queued_behind_the_killer_disconnect_promptly() {
    with_quiet_panics(|| {
        let ts = trees(1, 100, 32);
        let mut opts = ServiceOptions::new(1);
        opts.queue_capacity = 32;
        let service = ForestService::start(&ts, opts);

        // A bulky job keeps the worker busy while the poison pill and
        // an innocent job queue up behind it — the innocent job dies in
        // the queue when the worker unwinds, and its ticket must
        // disconnect rather than wait forever.
        let mut big = QueryBatch::new();
        for v in 0..90u32 {
            big.lca(v, (v * 7) % 100).subtree_sum(v);
        }
        let head = service.submit(0, big.requests());
        let mut poison = QueryBatch::new();
        poison.rank(u32::MAX);
        let killer = service.submit(0, poison.requests());
        let mut small = QueryBatch::new();
        small.subtree_sum(0);
        let queued = service.submit(0, small.requests());

        // The head job may complete or die with the worker depending on
        // coalescing — what must hold is that nothing hangs and the
        // poisoned batch itself fails.
        let _ = head.wait();
        assert_eq!(killer.wait(), Err(ServeError::WorkerLost { shard: 0 }));
        assert_eq!(queued.wait(), Err(ServeError::WorkerLost { shard: 0 }));

        // Dropping the service (not shutdown) must not abort either.
        drop(service);
    });
}

#[test]
fn durable_service_recovers_bit_identical_across_restart() {
    let dir = std::env::temp_dir().join(format!("spatial-serve-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let ts = trees(3, 150, 33);
    let mut opts = ServiceOptions::new(2);
    opts.record_streams = true;
    // Interval 2 forces checkpoints (and journal-generation switches)
    // mid-run, not just the one at startup.
    let mut dur = DurabilityOptions::new(&dir);
    dur.checkpoint_interval = 2;

    let mk_batch = |round: u32| {
        let mut b = QueryBatch::new();
        for i in 0..12u32 {
            b.insert_leaf((round * 7 + i) % 150)
                .lca(i, (i * 13 + round) % 150)
                .subtree_sum((i * 3) % 150)
                .rank((round + i) % 150);
        }
        b
    };

    // Phase 1: serve five rounds durably, then shut down cleanly.
    let mut twin_streams: Vec<Vec<Vec<spatial_session::Request>>> = vec![Vec::new(); 3];
    {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        for round in 0..5u32 {
            let b = mk_batch(round);
            let tickets: Vec<_> = (0..3u32).map(|t| service.submit(t, b.requests())).collect();
            for t in tickets {
                t.wait().expect("answered");
            }
        }
        let report = service.shutdown();
        assert!(report.poisoned_shards().is_empty());
        for tenant in 0..3u32 {
            twin_streams[tenant as usize] =
                report.tenant_log(tenant).expect("served").streams.clone();
        }
    }

    // Phase 2: restart from the durable files, serve five more rounds.
    let service = ForestService::start_durable(&ts, opts, dur.clone());
    let mut recovered_answers: Vec<Vec<Response>> = vec![Vec::new(); 3];
    for round in 5..10u32 {
        let b = mk_batch(round);
        let tickets: Vec<_> = (0..3u32).map(|t| service.submit(t, b.requests())).collect();
        for (tenant, t) in tickets.into_iter().enumerate() {
            recovered_answers[tenant].extend(t.wait().expect("answered"));
        }
    }
    let report = service.shutdown();
    assert!(report.poisoned_shards().is_empty());

    // Twin: a never-stopped forest replaying phase 1's exact streams,
    // then phase 2's batches — answers AND charges must match the
    // recovered service.
    for tenant in 0..3u32 {
        let mut twin = SpatialForest::with_options(&ts[tenant as usize], opts.forest);
        let mut rng = StdRng::seed_from_u64(tenant_seed(opts.seed, tenant));
        for stream in &twin_streams[tenant as usize] {
            twin.execute(stream, &mut rng);
        }
        let mut twin_answers: Vec<Response> = Vec::new();
        let mut twin_reports: Vec<SessionReport> = Vec::new();
        for round in 5..10u32 {
            let b = mk_batch(round);
            twin_answers.extend_from_slice(twin.execute(b.requests(), &mut rng));
            twin_reports.push(twin.last_report());
        }
        assert_eq!(
            twin_answers, recovered_answers[tenant as usize],
            "tenant {tenant}: answers diverged across the restart"
        );
        let log = report.tenant_log(tenant).expect("served");
        assert_eq!(
            twin_reports, log.reports,
            "tenant {tenant}: charges diverged across the restart"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_restart_without_new_work_is_stable() {
    let dir =
        std::env::temp_dir().join(format!("spatial-serve-durable-idle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ts = trees(2, 80, 34);
    let opts = ServiceOptions::new(1);
    let dur = DurabilityOptions::new(&dir);

    // Start → mutate → stop, then restart twice with no traffic: each
    // restart re-checkpoints without corrupting anything.
    {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        let mut b = QueryBatch::new();
        b.insert_leaf(0).insert_leaf(1).subtree_sum(0);
        for t in 0..2u32 {
            service.submit(t, b.requests()).wait().expect("answered");
        }
        service.shutdown();
    }
    for _ in 0..2 {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        service.shutdown();
    }

    // The forests still carry the inserts.
    let service = ForestService::start_durable(&ts, opts, dur.clone());
    let mut probe = QueryBatch::new();
    probe.subtree_sum(0);
    let answers = service
        .submit(0, probe.requests())
        .wait()
        .expect("answered");
    assert_eq!(answers, vec![Response::SubtreeSum(82)], "80 + 2 inserts");
    service.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}
