//! Static `Send` coverage for every type the sharded service moves
//! into worker threads. Compile-time only: if any engine, the pool, or
//! the forest regresses to `!Send` (an `Rc`, a raw pointer without an
//! explicit `unsafe impl`, a thread-bound guard held across fields),
//! this file stops compiling — the service's whole-crate
//! `thread::spawn` would too, but here the offending *type* is named.

use spatial_euler::RankingEngine;
use spatial_layout::LayoutEngine;
use spatial_lca::LcaEngine;
use spatial_model::Machine;
use spatial_pram::PramEngine;
use spatial_serve::{ForestService, ServiceReport, Ticket};
use spatial_session::{EnginePool, SpatialForest};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::{Add, Max, Min, Xor};

fn assert_send<T: Send>() {}

#[test]
fn session_layer_is_send() {
    assert_send::<SpatialForest>();
    assert_send::<EnginePool>();
}

#[test]
fn every_engine_lifecycle_engine_is_send() {
    assert_send::<ContractionEngine<Add>>();
    assert_send::<ContractionEngine<Max>>();
    assert_send::<ContractionEngine<Min>>();
    assert_send::<ContractionEngine<Xor>>();
    assert_send::<LcaEngine>();
    assert_send::<RankingEngine>();
    assert_send::<LayoutEngine>();
    assert_send::<PramEngine>();
}

#[test]
fn machine_and_service_handles_are_send() {
    assert_send::<Machine>();
    assert_send::<ForestService>();
    assert_send::<Ticket>();
    assert_send::<ServiceReport>();
}
