//! Out-of-core serving contracts of the durable restart path.
//!
//! Two properties the lazy-mapped recovery is responsible for:
//!
//! 1. **Restart cost scales with traffic, not fleet size.** A durable
//!    tenant is recovered on its shard's thread at its *first job* —
//!    restarting a 64-tenant service and driving two tenants must
//!    leave every other tenant's snapshot and journal files
//!    byte-for-byte untouched on disk.
//! 2. **A cleanly-checkpointed tenant restarts without rewriting.**
//!    When the journal is empty at startup (the shutdown landed
//!    exactly on a checkpoint boundary), the tenant keeps its
//!    generation and re-attaches the same journal instead of paying a
//!    startup checkpoint — observable as exactly one generation bump
//!    per committed interval, never an extra one per restart.

use rand::prelude::*;
use spatial_serve::{DurabilityOptions, ForestService, ServiceOptions};
use spatial_session::{QueryBatch, Response};
use spatial_tree::{generators, Tree};
use std::collections::BTreeMap;
use std::path::Path;

fn trees(n_tenants: usize, n: u32, seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_tenants)
        .map(|_| generators::uniform_random(n, &mut rng))
        .collect()
}

/// Every durable file under `dir`, name → contents.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read durability dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf8 name");
        files.insert(name, std::fs::read(entry.path()).expect("file bytes"));
    }
    files
}

#[test]
fn restart_of_64_tenants_touches_only_the_tenants_with_traffic() {
    let dir = std::env::temp_dir().join(format!("spatial-serve-lazy-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let ts = trees(64, 24, 41);
    let opts = ServiceOptions::new(4);
    let dur = DurabilityOptions::new(&dir);

    // Phase 1: every tenant gets one mutating job, so all 64 have a
    // snapshot and a journal with at least one committed session.
    {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        let mut b = QueryBatch::new();
        b.insert_leaf(0).subtree_sum(0);
        let tickets: Vec<_> = (0..64u32)
            .map(|t| service.submit(t, b.requests()))
            .collect();
        for t in tickets {
            t.wait().expect("answered");
        }
        assert!(service.shutdown().poisoned_shards().is_empty());
    }
    let before = dir_contents(&dir);
    assert_eq!(before.len(), 128, "one snapshot + one journal per tenant");

    // Phase 2: restart the full fleet, drive exactly two tenants.
    let touched = [3u32, 17];
    let report = {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        let mut probe = QueryBatch::new();
        probe.subtree_sum(0);
        for &t in &touched {
            let answers = service
                .submit(t, probe.requests())
                .wait()
                .expect("answered");
            assert_eq!(answers, vec![Response::SubtreeSum(25)], "24 + 1 insert");
        }
        service.shutdown()
    };
    let after = dir_contents(&dir);

    let file_tenant = |name: &str| -> u32 {
        name.strip_prefix("tenant-")
            .and_then(|rest| rest.split('.').next())
            .and_then(|t| t.parse().ok())
            .expect("durable file name")
    };
    // Untouched tenants: the byte-identical file set survives the
    // restart — no startup checkpoint, no journal switch, nothing.
    let untouched_before: BTreeMap<_, _> = before
        .iter()
        .filter(|(name, _)| !touched.contains(&file_tenant(name)))
        .collect();
    let untouched_after: BTreeMap<_, _> = after
        .iter()
        .filter(|(name, _)| !touched.contains(&file_tenant(name)))
        .collect();
    assert_eq!(
        untouched_before, untouched_after,
        "restart rewrote files of tenants that saw no traffic"
    );
    // The driven tenants did re-checkpoint (their journals held a
    // committed session, so startup compacts to a new generation).
    for &t in &touched {
        let journal_gen = |files: &BTreeMap<String, Vec<u8>>| -> u64 {
            files
                .keys()
                .filter(|n| *n != &format!("tenant-{t}.snapshot"))
                .filter(|n| file_tenant(n) == t)
                .map(|n| n.split('.').nth(1).expect("gen").parse().expect("gen"))
                .max()
                .expect("journal present")
        };
        assert!(
            journal_gen(&after) > journal_gen(&before),
            "tenant {t} should have compacted its journal on first job"
        );
    }
    // And the shutdown report reflects the laziness: only the driven
    // tenants executed sessions.
    for log in report.shards.iter().flat_map(|s| s.tenants.iter()) {
        if touched.contains(&log.tenant) {
            assert_eq!(log.reports.len(), 1, "tenant {}", log.tenant);
        } else {
            assert!(log.reports.is_empty(), "tenant {}", log.tenant);
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_journal_restart_keeps_the_generation() {
    let dir = std::env::temp_dir().join(format!("spatial-serve-emptyj-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let ts = trees(1, 30, 43);
    let opts = ServiceOptions::new(1);
    let mut dur = DurabilityOptions::new(&dir);
    // Interval 1: every committed session checkpoints immediately, so a
    // clean shutdown always leaves a byte-empty journal.
    dur.checkpoint_interval = 1;

    let journal_gens = || -> Vec<u64> {
        let mut gens: Vec<u64> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .filter(|n| n.ends_with(".journal"))
            .map(|n| n.split('.').nth(1).expect("gen").parse().expect("gen"))
            .collect();
        gens.sort_unstable();
        gens
    };

    // Fresh tenant: startup checkpoint → generation 1; one mutating
    // session → checkpoint → generation 2.
    {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        let mut b = QueryBatch::new();
        b.insert_leaf(0);
        service.submit(0, b.requests()).wait().expect("answered");
        service.shutdown();
    }
    assert_eq!(journal_gens(), vec![2], "fresh start + one session");

    // Restart onto the empty generation-2 journal and run one query
    // session. The startup checkpoint is skipped (nothing to compact),
    // so the only bump is the session's own: generation 3 — not 4.
    {
        let service = ForestService::start_durable(&ts, opts, dur.clone());
        let mut probe = QueryBatch::new();
        probe.subtree_sum(0);
        let answers = service
            .submit(0, probe.requests())
            .wait()
            .expect("answered");
        assert_eq!(answers, vec![Response::SubtreeSum(31)], "30 + 1 insert");
        service.shutdown();
    }
    assert_eq!(
        journal_gens(),
        vec![3],
        "an empty journal must not cost a startup checkpoint generation"
    );

    std::fs::remove_dir_all(&dir).ok();
}
