//! Euler tour construction over darts (directed edge copies).
//!
//! Every non-root vertex `v` owns two darts: `down(v) = 2v` (the edge
//! `parent(v) → v`) and `up(v) = 2v + 1` (the edge `v → parent(v)`).
//! The tour links darts in traversal order for a chosen child order;
//! ranking the resulting list gives, per §IV:
//!
//! - the subtree size of `v`: "half the difference between the first and
//!   last index of `v` in the tour" —
//!   `s(v) = (rank(up(v)) − rank(down(v)) + 1) / 2`;
//! - the first-occurrence order of the vertices, which for a light-first
//!   child order *is* the light-first linear order.

use spatial_tree::{NodeId, Tree};

/// Sentinel dart id for "end of tour".
pub const END: u32 = u32::MAX;

/// Child order used when threading the tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildOrder {
    /// Children in tree construction order.
    Natural,
    /// Children in increasing subtree size (ties by id) — the order that
    /// makes the first-occurrence order light-first (§IV step 2).
    LightFirst,
}

/// An Euler tour of a rooted tree, as a successor-linked list of darts.
#[derive(Debug, Clone)]
pub struct EulerTour {
    /// Successor dart of each dart (`END` terminates; unused slots for
    /// the root's darts hold `END`).
    next: Vec<u32>,
    /// First dart of the tour (`END` for a single-vertex tree).
    start: u32,
    /// Number of darts in the list (`2(n−1)`).
    len: u32,
}

impl EulerTour {
    /// Threads the tour of `tree` with the given child order.
    pub fn new(tree: &Tree, order: ChildOrder) -> Self {
        match order {
            ChildOrder::Natural => Self::with_children(tree, |v| tree.children(v)),
            ChildOrder::LightFirst => {
                // Flat CSR child lists: one arena allocation instead of
                // n nested Vecs (the same representation the treefix
                // contraction engine consumes downstream).
                let sizes = tree.subtree_sizes();
                let sorted = spatial_tree::ChildrenCsr::by_size(tree, &sizes);
                Self::with_children(tree, |v| sorted.children(v))
            }
        }
    }

    /// Threads the light-first tour from prebuilt CSR child lists,
    /// letting callers that already hold a [`spatial_tree::ChildrenCsr`]
    /// (the contraction engine, the layout builder) avoid re-sorting.
    pub fn light_first_from_csr(tree: &Tree, sorted: &spatial_tree::ChildrenCsr) -> Self {
        Self::with_children(tree, |v| sorted.children(v))
    }

    /// Threads the tour with an explicit per-vertex child order.
    pub fn with_children<'a, F>(tree: &Tree, children_of: F) -> Self
    where
        F: Fn(NodeId) -> &'a [NodeId],
    {
        let n = tree.n() as usize;
        let mut next = vec![END; 2 * n];
        let root = tree.root();

        for v in tree.vertices() {
            let cs = children_of(v);
            // Chain sibling darts: up(cᵢ) → down(cᵢ₊₁).
            for w in cs.windows(2) {
                next[up(w[0]) as usize] = down(w[1]);
            }
            if let Some(&first) = cs.first() {
                if v != root {
                    // Arriving at v continues into its first child.
                    next[down(v) as usize] = down(first);
                }
            }
            if let Some(&last) = cs.last() {
                // Leaving the last child returns to v, then upward.
                if v != root {
                    next[up(last) as usize] = up(v);
                } else {
                    next[up(last) as usize] = END;
                }
            }
            if v != root && cs.is_empty() {
                // Leaf: bounce straight back up.
                next[down(v) as usize] = up(v);
            }
        }

        let start = match children_of(root).first() {
            Some(&c) => down(c),
            None => END,
        };
        EulerTour {
            next,
            start,
            len: 2 * (n as u32 - 1),
        }
    }

    /// The successor array over darts (`END`-terminated).
    pub fn next_darts(&self) -> &[u32] {
        &self.next
    }

    /// First dart of the tour, or `END` when the tree has one vertex.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of darts in the tour.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the tour is empty (single-vertex tree).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks the tour sequentially, returning darts in visit order.
    pub fn sequence(&self) -> Vec<u32> {
        let mut seq = Vec::with_capacity(self.len as usize);
        let mut at = self.start;
        while at != END {
            seq.push(at);
            at = self.next[at as usize];
        }
        seq
    }

    /// Rank of every dart (position in the tour), computed by a
    /// sequential walk. Unused darts get `u32::MAX`.
    pub fn ranks(&self) -> Vec<u32> {
        let mut rank = vec![u32::MAX; self.next.len()];
        for (i, d) in self.sequence().into_iter().enumerate() {
            rank[d as usize] = i as u32;
        }
        rank
    }
}

/// The down dart (`parent(v) → v`) of a non-root vertex.
#[inline]
pub fn down(v: NodeId) -> u32 {
    2 * v
}

/// The up dart (`v → parent(v)`) of a non-root vertex.
#[inline]
pub fn up(v: NodeId) -> u32 {
    2 * v + 1
}

/// The vertex owning a dart.
#[inline]
pub fn dart_vertex(d: u32) -> NodeId {
    d / 2
}

/// Whether a dart is a down dart.
#[inline]
pub fn is_down(d: u32) -> bool {
    d.is_multiple_of(2)
}

/// Subtree sizes from tour ranks (§IV step 1b): for non-root `v`,
/// `s(v) = (rank(up(v)) − rank(down(v)) + 1) / 2`; the root's size is `n`.
pub fn subtree_sizes_from_ranks(tree: &Tree, ranks: &[u32]) -> Vec<u32> {
    let n = tree.n();
    let mut sizes = vec![0u32; n as usize];
    for v in tree.vertices() {
        if v == tree.root() {
            sizes[v as usize] = n;
        } else {
            let first = ranks[down(v) as usize];
            let last = ranks[up(v) as usize];
            debug_assert!(last >= first, "up dart must come after down dart");
            debug_assert!((last - first) % 2 == 1, "dart span must be odd");
            sizes[v as usize] = (last - first).div_ceil(2);
        }
    }
    sizes
}

/// First-occurrence vertex order from tour ranks (§IV step 3): the root,
/// then every vertex in order of its down dart's rank. With a
/// light-first tour this is the light-first linear order.
pub fn first_occurrence_order(tree: &Tree, ranks: &[u32]) -> Vec<NodeId> {
    let n = tree.n() as usize;
    let root = tree.root();
    let mut keyed: Vec<(u32, NodeId)> = tree
        .vertices()
        .filter(|&v| v != root)
        .map(|v| (ranks[down(v) as usize], v))
        .collect();
    keyed.sort_unstable();
    let mut order = Vec::with_capacity(n);
    order.push(root);
    order.extend(keyed.into_iter().map(|(_, v)| v));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;
    use spatial_tree::traversal;
    use spatial_tree::NIL;

    fn sample_tree() -> Tree {
        // 0 → {1, 2, 3}; 1 → {4, 5}; 3 → {6}; 6 → {7}.
        Tree::from_parents(0, vec![NIL, 0, 0, 0, 1, 1, 3, 6])
    }

    #[test]
    fn tour_visits_each_dart_once() {
        let t = sample_tree();
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        let seq = tour.sequence();
        assert_eq!(seq.len(), 14);
        let mut seen = std::collections::HashSet::new();
        for d in &seq {
            assert!(seen.insert(*d), "dart {d} repeated");
        }
    }

    #[test]
    fn tour_natural_order_matches_dfs() {
        let t = sample_tree();
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        let ranks = tour.ranks();
        let order = first_occurrence_order(&t, &ranks);
        assert_eq!(order, traversal::dfs_preorder(&t));
    }

    #[test]
    fn tour_light_first_order_matches() {
        let t = sample_tree();
        let tour = EulerTour::new(&t, ChildOrder::LightFirst);
        let ranks = tour.ranks();
        let order = first_occurrence_order(&t, &ranks);
        assert_eq!(order, traversal::light_first_order(&t));
    }

    #[test]
    fn subtree_sizes_from_tour() {
        let t = sample_tree();
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        let sizes = subtree_sizes_from_ranks(&t, &tour.ranks());
        assert_eq!(sizes, t.subtree_sizes());
    }

    #[test]
    fn single_vertex_tour_is_empty() {
        let t = Tree::from_parents(0, vec![NIL]);
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        assert!(tour.is_empty());
        assert_eq!(tour.start(), END);
        assert!(tour.sequence().is_empty());
        assert_eq!(subtree_sizes_from_ranks(&t, &tour.ranks()), vec![1]);
    }

    #[test]
    fn two_vertex_tour() {
        let t = Tree::from_parents(0, vec![NIL, 0]);
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        assert_eq!(tour.sequence(), vec![down(1), up(1)]);
    }

    #[test]
    fn random_trees_roundtrip() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [2u32, 3, 17, 100, 1234] {
            for order in [ChildOrder::Natural, ChildOrder::LightFirst] {
                let t = generators::uniform_random(n, &mut rng);
                let tour = EulerTour::new(&t, order);
                let seq = tour.sequence();
                assert_eq!(seq.len() as u32, 2 * (n - 1), "n={n}");
                let sizes = subtree_sizes_from_ranks(&t, &tour.ranks());
                assert_eq!(sizes, t.subtree_sizes(), "n={n} {order:?}");
            }
        }
    }

    #[test]
    fn path_tour_goes_down_then_up() {
        let t = generators::path(4);
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        assert_eq!(
            tour.sequence(),
            vec![down(1), down(2), down(3), up(3), up(2), up(1)]
        );
    }

    #[test]
    fn star_tour_bounces() {
        let t = generators::star(4);
        let tour = EulerTour::new(&t, ChildOrder::Natural);
        assert_eq!(
            tour.sequence(),
            vec![down(1), up(1), down(2), up(2), down(3), up(3)]
        );
    }

    #[test]
    fn dart_helpers() {
        assert_eq!(down(3), 6);
        assert_eq!(up(3), 7);
        assert_eq!(dart_vertex(6), 3);
        assert_eq!(dart_vertex(7), 3);
        assert!(is_down(6));
        assert!(!is_down(7));
    }
}
