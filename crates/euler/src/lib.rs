//! Euler tours and list ranking (§IV of the paper).
//!
//! The light-first layout is computed through Euler tours: duplicating
//! every tree edge into a *down* and an *up* dart and linking them in
//! traversal order yields a linked list whose ranks encode subtree sizes
//! and first occurrences. Ranking that list is the bottleneck of layout
//! creation; the paper adapts the randomized contraction algorithm of
//! Anderson & Miller to the spatial setting, obtaining `O(n^{3/2})`
//! energy and `O(log n)` depth with high probability (Theorem 5).
//!
//! This crate provides:
//!
//! - [`tour::EulerTour`]: dart-based tour construction for any child
//!   order (natural or light-first).
//! - [`ranking`]: list ranking as
//!   - a sequential walk ([`ranking::rank_sequential`]),
//!   - a host-parallel Wyllie pointer-jumping ranking
//!     ([`ranking::rank_parallel`]) for wall-clock benchmarks, and
//!   - the spatial random-mate contraction
//!     ([`ranking::rank_spatial`]) with full energy/depth accounting.
//! - [`tour`] helpers deriving subtree sizes and first-occurrence
//!   (DFS) orders from tour ranks — steps 1–3 of the §IV pipeline.

pub mod ranking;
pub mod tour;

pub use ranking::{rank_parallel, rank_sequential, rank_spatial, SpatialRanking};
pub use tour::{ChildOrder, EulerTour};
