//! Euler tours and list ranking (§IV of the paper).
//!
//! The light-first layout is computed through Euler tours: duplicating
//! every tree edge into a *down* and an *up* dart and linking them in
//! traversal order yields a linked list whose ranks encode subtree sizes
//! and first occurrences. Ranking that list is the bottleneck of layout
//! creation; the paper adapts the randomized contraction algorithm of
//! Anderson & Miller to the spatial setting, obtaining `O(n^{3/2})`
//! energy and `O(log n)` depth with high probability (Theorem 5).
//!
//! This crate provides:
//!
//! - [`tour::EulerTour`]: dart-based tour construction for any child
//!   order (natural or light-first).
//! - [`ranking`]: list ranking as
//!   - a sequential walk ([`ranking::rank_sequential`]),
//!   - a host-parallel Wyllie pointer-jumping ranking
//!     ([`ranking::rank_parallel`]) for wall-clock benchmarks, and
//!   - the spatial random-mate contraction
//!     ([`ranking::RankingEngine`], one-shot wrapper
//!     [`ranking::rank_spatial`]) with full energy/depth accounting —
//!     a flat splice log with per-round offsets, zero heap allocation
//!     after setup (the §IV cost bounds: `O(n^{3/2})` energy and
//!     `O(log n)` depth w.h.p., Theorem 5).
//! - [`tour`] helpers deriving subtree sizes and first-occurrence
//!   (DFS) orders from tour ranks — steps 1–3 of the §IV pipeline.
//!
//! The seed contraction (nested per-round splice `Vec`s) is retained in
//! [`reference`] and pinned by the `ranking_props` differential suite.

pub mod ranking;
#[doc(hidden)]
pub mod reference;
pub mod tour;

pub use ranking::{rank_parallel, rank_sequential, rank_spatial, RankingEngine, SpatialRanking};
pub use tour::{ChildOrder, EulerTour};
