//! List ranking: sequential, host-parallel (Wyllie), and spatial
//! random-mate contraction (Theorem 5).
//!
//! List ranking determines the index of every element in a linked list.
//! The spatial algorithm follows §IV of the paper: repeatedly select an
//! independent set of elements by *random-mate* (heads whose predecessor
//! flipped tails), splice them out while accumulating rank weights, solve
//! the base case sequentially once `O(log n)` elements remain, and then
//! undo the splices level by level. Each contraction round costs
//! `O(n′·√n)` energy (pointers reach across the grid) and `O(1)` depth;
//! with high probability a constant fraction of elements is removed per
//! round, giving `O(n^{3/2})` energy and `O(log n)` depth overall.

use rand::Rng;
use rayon::prelude::*;
use spatial_model::{Machine, Slot};

/// Sentinel for "end of list" (same convention as the tour darts).
pub const END: u32 = u32::MAX;

/// Rank value for elements that are not on the list.
pub const UNRANKED: u64 = u64::MAX;

/// Sequential list ranking: index of each element from `start`.
/// Elements not on the list get [`UNRANKED`].
pub fn rank_sequential(next: &[u32], start: u32) -> Vec<u64> {
    let mut ranks = vec![UNRANKED; next.len()];
    if start == END {
        return ranks;
    }
    let mut at = start;
    let mut r = 0u64;
    while at != END {
        debug_assert_eq!(ranks[at as usize], UNRANKED, "cycle in list");
        ranks[at as usize] = r;
        r += 1;
        at = next[at as usize];
    }
    ranks
}

/// Host-parallel Wyllie pointer jumping (rayon): `O(n log n)` work,
/// `O(log n)` span. Used for wall-clock comparisons; charge-free.
pub fn rank_parallel(next: &[u32], start: u32) -> Vec<u64> {
    let n = next.len();
    let mut ranks = vec![UNRANKED; n];
    if start == END {
        return ranks;
    }
    // suffix[v] = number of elements from v to the end, inclusive.
    let mut suffix: Vec<u64> = next.par_iter().map(|_| 1u64).collect();
    let mut nxt: Vec<u32> = next.to_vec();
    let mut hops = 1usize;
    while hops < 2 * n {
        let stepped: Vec<(u64, u32)> = (0..n)
            .into_par_iter()
            .map(|v| {
                let w = nxt[v];
                if w == END {
                    (suffix[v], END)
                } else {
                    (suffix[v] + suffix[w as usize], nxt[w as usize])
                }
            })
            .collect();
        let mut changed = false;
        for (v, (s, w)) in stepped.into_iter().enumerate() {
            if nxt[v] != END {
                changed = true;
            }
            suffix[v] = s;
            nxt[v] = w;
        }
        if !changed {
            break;
        }
        hops *= 2;
    }
    let total = suffix[start as usize];
    // rank(v) = total − suffix(v) for elements on the list. Membership:
    // walkable from start — recover by marking via the original list in
    // parallel-friendly fashion: an element is on the list iff it is the
    // start or is someone's successor *and* reachable; for the tours we
    // rank, every element with a finite suffix computed from the start
    // chain is a member. We mark members from the original next array.
    for (v, on) in list_membership(next, start).into_iter().enumerate() {
        if on {
            ranks[v] = total - suffix[v];
        }
    }
    ranks
}

/// Marks which elements lie on the list starting at `start`.
fn list_membership(next: &[u32], start: u32) -> Vec<bool> {
    let mut on = vec![false; next.len()];
    let mut at = start;
    while at != END {
        debug_assert!(!on[at as usize], "cycle in list");
        on[at as usize] = true;
        at = next[at as usize];
    }
    on
}

/// Result of the spatial list ranking.
#[derive(Debug, Clone)]
pub struct SpatialRanking {
    /// Rank (index from the start) of each element; [`UNRANKED`] off-list.
    pub ranks: Vec<u64>,
    /// Number of random-mate contraction rounds executed (Las Vegas:
    /// `O(log n)` with high probability).
    pub rounds: u32,
}

/// A spliced-out element: `mid` was removed from between `left` and its
/// successor; `weight_mid` is the rank weight `mid` carried.
#[derive(Debug, Clone, Copy)]
struct Splice {
    mid: u32,
    left: u32,
    weight_mid: u64,
}

/// Spatial list ranking by random-mate contraction (§IV, Theorem 5).
///
/// Element `i` of the list lives at machine slot `i`; the machine must
/// have at least `next.len()` slots. Every pointer access is charged as
/// a message between the slots involved — initially `Θ(√n)` on average,
/// which is where the `O(n^{3/2})` energy comes from.
pub fn rank_spatial<R: Rng>(m: &Machine, next: &[u32], start: u32, rng: &mut R) -> SpatialRanking {
    let n = next.len();
    assert!(n as u32 <= m.n_slots(), "need one slot per list element");
    let mut ranks = vec![UNRANKED; n];
    if start == END {
        return SpatialRanking { ranks, rounds: 0 };
    }

    let membership = list_membership(next, start);
    let mut alive: Vec<u32> = (0..n as u32).filter(|&v| membership[v as usize]).collect();
    let list_len = alive.len();

    let mut nxt = next.to_vec();
    let mut prev = vec![END; n];
    for &v in &alive {
        let w = nxt[v as usize];
        if w != END {
            prev[w as usize] = v;
        }
    }
    let mut weight = vec![1u64; n];
    let mut coin = vec![false; n];

    // Contract until O(log n) elements remain.
    let threshold = (2 * (usize::BITS - list_len.leading_zeros()) as usize).max(4);
    let mut history: Vec<Vec<Splice>> = Vec::new();
    while alive.len() > threshold {
        // Every alive element flips a coin and tells its successor —
        // one synchronous communication round over the current list.
        for &v in &alive {
            coin[v as usize] = rng.gen();
        }
        let coin_energy: u64 = alive
            .par_iter()
            .filter(|&&v| nxt[v as usize] != END)
            .map(|&v| m.dist(v as Slot, nxt[v as usize] as Slot))
            .sum();
        let coin_msgs = alive.iter().filter(|&&v| nxt[v as usize] != END).count() as u64;
        m.charge_bulk(coin_energy, coin_msgs, coin_msgs);
        m.advance_all(1);

        // Select: heads whose predecessor flipped tails (never the
        // start element — it anchors the ranking).
        let selected: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|&v| {
                v != start
                    && coin[v as usize]
                    && prev[v as usize] != END
                    && !coin[prev[v as usize] as usize]
            })
            .collect();

        // Splice each selected element out: its left neighbour inherits
        // its weight and pointer (message mid → left), and its right
        // neighbour learns its new predecessor (message mid → right).
        let mut splices = Vec::with_capacity(selected.len());
        let mut splice_energy = 0u64;
        let mut splice_msgs = 0u64;
        for &mid in &selected {
            let left = prev[mid as usize];
            let right = nxt[mid as usize];
            debug_assert_ne!(left, END);
            splice_energy += m.dist(mid as Slot, left as Slot);
            splice_msgs += 1;
            if right != END {
                splice_energy += m.dist(mid as Slot, right as Slot);
                splice_msgs += 1;
                prev[right as usize] = left;
            }
            nxt[left as usize] = right;
            weight[left as usize] += weight[mid as usize];
            splices.push(Splice {
                mid,
                left,
                weight_mid: weight[mid as usize],
            });
        }
        m.charge_bulk(splice_energy, splice_msgs, splice_msgs);
        m.advance_all(1);
        history.push(splices);

        let removed: std::collections::HashSet<u32> = selected.into_iter().collect();
        alive.retain(|v| !removed.contains(v));
    }

    // Base case: walk the remaining list sequentially, charging each hop.
    let mut at = start;
    let mut acc = 0u64;
    while at != END {
        ranks[at as usize] = acc;
        acc += weight[at as usize];
        let nx = nxt[at as usize];
        if nx != END {
            m.send(at as Slot, nx as Slot);
        }
        at = nx;
    }

    // Uncontraction: undo iterations in reverse; all splices of one
    // iteration resolve in parallel (they were an independent set).
    let rounds = history.len() as u32;
    for splices in history.into_iter().rev() {
        let mut energy = 0u64;
        let msgs = splices.len() as u64;
        for s in &splices {
            energy += m.dist(s.left as Slot, s.mid as Slot);
            weight[s.left as usize] -= s.weight_mid;
            ranks[s.mid as usize] = ranks[s.left as usize] + weight[s.left as usize];
        }
        m.charge_bulk(energy, msgs, msgs);
        m.advance_all(1);
    }

    SpatialRanking { ranks, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;

    /// A list 0 → 1 → … → n−1 stored at shuffled slots is uninteresting;
    /// instead build a random permutation list over n elements.
    fn random_list(n: usize, rng: &mut StdRng) -> (Vec<u32>, u32) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut next = vec![END; n];
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        (next, order[0])
    }

    #[test]
    fn sequential_ranks_identity_list() {
        let next = vec![1, 2, 3, END];
        let r = rank_sequential(&next, 0);
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sequential_skips_off_list() {
        let next = vec![2, END, END, END];
        let r = rank_sequential(&next, 0);
        assert_eq!(r[0], 0);
        assert_eq!(r[2], 1);
        assert_eq!(r[1], UNRANKED);
        assert_eq!(r[3], UNRANKED);
    }

    #[test]
    fn empty_list() {
        assert!(rank_sequential(&[], END).is_empty());
        let m = Machine::on_curve(CurveKind::Hilbert, 4);
        let r = rank_spatial(&m, &[END, END], END, &mut StdRng::seed_from_u64(0));
        assert_eq!(r.ranks, vec![UNRANKED, UNRANKED]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 100, 1000, 4097] {
            let (next, start) = random_list(n, &mut rng);
            assert_eq!(
                rank_parallel(&next, start),
                rank_sequential(&next, start),
                "n={n}"
            );
        }
    }

    #[test]
    fn spatial_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1usize, 2, 5, 33, 256, 2000] {
            let (next, start) = random_list(n, &mut rng);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut rng);
            assert_eq!(got.ranks, rank_sequential(&next, start), "n={n}");
        }
    }

    #[test]
    fn spatial_is_las_vegas_always_correct() {
        // Different seeds change costs, never results.
        let (next, start) = random_list(500, &mut StdRng::seed_from_u64(1));
        let expect = rank_sequential(&next, start);
        for seed in 0..10 {
            let m = Machine::on_curve(CurveKind::Hilbert, 500);
            let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(seed));
            assert_eq!(got.ranks, expect, "seed={seed}");
        }
    }

    #[test]
    fn spatial_rounds_logarithmic() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1024usize, 8192] {
            let (next, start) = random_list(n, &mut rng);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut rng);
            let bound = 8 * (n as f64).log2() as u32;
            assert!(
                got.rounds <= bound,
                "n={n}: {} rounds > {bound}",
                got.rounds
            );
        }
    }

    #[test]
    fn spatial_energy_matches_theorem5() {
        // Energy / n^{3/2} roughly flat; depth O(log n).
        let mut ratios = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1usize << log_n;
            let (next, start) = random_list(n, &mut StdRng::seed_from_u64(3));
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let res = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(4));
            let r = m.report();
            ratios.push(r.energy_per_n_three_halves(n as u64));
            assert!(
                (r.depth as f64) < 30.0 * log_n as f64,
                "n={n}: depth {} not O(log n)",
                r.depth
            );
            assert_eq!(res.ranks[start as usize], 0);
        }
        let (lo, hi) = (ratios[0].min(ratios[1]), ratios[0].max(ratios[1]));
        assert!(hi / lo < 3.0, "energy/n^1.5 not flat: {ratios:?}");
    }

    #[test]
    fn singleton_list() {
        let m = Machine::on_curve(CurveKind::Hilbert, 1);
        let r = rank_spatial(&m, &[END], 0, &mut StdRng::seed_from_u64(0));
        assert_eq!(r.ranks, vec![0]);
        assert_eq!(r.rounds, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::{rank_parallel, rank_sequential, rank_spatial, END};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use spatial_model::{CurveKind, Machine};

    fn list_from_perm(perm: &[u32]) -> (Vec<u32>, u32) {
        let mut next = vec![END; perm.len()];
        for w in perm.windows(2) {
            next[w[0] as usize] = w[1];
        }
        (next, perm[0])
    }

    proptest! {
        /// Ranks are exactly the positions in the permutation, for any
        /// list shape and any algorithm seed.
        #[test]
        fn prop_spatial_ranks_any_list(
            shuffle_seed in 0u64..10_000,
            algo_seed in 0u64..10_000,
            n in 1usize..300,
        ) {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let (next, start) = list_from_perm(&perm);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(algo_seed));
            for (pos, &el) in perm.iter().enumerate() {
                prop_assert_eq!(got.ranks[el as usize], pos as u64);
            }
        }

        /// Parallel Wyllie agrees with the sequential walk.
        #[test]
        fn prop_parallel_agrees(shuffle_seed in 0u64..10_000, n in 1usize..400) {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let (next, start) = list_from_perm(&perm);
            prop_assert_eq!(rank_parallel(&next, start), rank_sequential(&next, start));
        }
    }
}
