//! List ranking: sequential, host-parallel (Wyllie), and spatial
//! random-mate contraction (Theorem 5).
//!
//! List ranking determines the index of every element in a linked list.
//! The spatial algorithm follows §IV of the paper: repeatedly select an
//! independent set of elements by *random-mate* (heads whose predecessor
//! flipped tails), splice them out while accumulating rank weights, solve
//! the base case sequentially once `O(log n)` elements remain, and then
//! undo the splices level by level. Each contraction round costs
//! `O(n′·√n)` energy (pointers reach across the grid) and `O(1)` depth;
//! with high probability a constant fraction of elements is removed per
//! round, giving `O(n^{3/2})` energy and `O(log n)` depth overall.
//!
//! # Memory discipline
//!
//! The contraction is the inner loop of on-machine layout creation
//! (§IV runs it twice per layout), so [`RankingEngine`] lays every
//! piece of state out flat and allocates once in
//! [`RankingEngine::new`]:
//!
//! - the splice log is three flat arrays (`mid`, `left`, carried
//!   weight) with per-round end offsets — replacing the seed's
//!   per-round `Vec<Splice>` history of nested `Vec`s;
//! - per-round removals mark a flag array swept by `retain`, replacing
//!   the seed's per-round `HashSet`;
//! - pointer-distance charging goes through the machine's batched
//!   hooks ([`Machine::dist_sum`] over the live successor pairs,
//!   [`Machine::charge_pointer_round`] per synchronous round).
//!
//! After `new` returns, [`RankingEngine::rank`] performs **zero heap
//! allocation** (asserted by the counting-allocator test
//! `tests/alloc_free.rs`, the same harness as the treefix engine's).
//! The seed implementation is retained as
//! [`crate::reference::rank_spatial_reference`]; the `ranking_props`
//! suite asserts both produce identical ranks, round counts, and
//! machine charges.

use rand::Rng;
use rayon::prelude::*;
use spatial_model::{EngineLifecycle, Machine, RoundCharger, Slot};

/// Sentinel for "end of list" (same convention as the tour darts).
pub const END: u32 = u32::MAX;

/// Rank value for elements that are not on the list.
pub const UNRANKED: u64 = u64::MAX;

/// Sequential list ranking: index of each element from `start`.
/// Elements not on the list get [`UNRANKED`].
pub fn rank_sequential(next: &[u32], start: u32) -> Vec<u64> {
    let mut ranks = vec![UNRANKED; next.len()];
    if start == END {
        return ranks;
    }
    let mut at = start;
    let mut r = 0u64;
    while at != END {
        debug_assert_eq!(ranks[at as usize], UNRANKED, "cycle in list");
        ranks[at as usize] = r;
        r += 1;
        at = next[at as usize];
    }
    ranks
}

/// Host-parallel Wyllie pointer jumping (rayon): `O(n log n)` work,
/// `O(log n)` span. Used for wall-clock comparisons; charge-free.
///
/// Lists shorter than the measured
/// [`spatial_sfc::thresholds::RANKING_SPLICE`] crossover fall back to
/// [`rank_sequential`] — the `O(n log n)` jumping plus fork overhead
/// can never beat the linear walk there (identical results either
/// way).
pub fn rank_parallel(next: &[u32], start: u32) -> Vec<u64> {
    let n = next.len();
    if n < spatial_sfc::thresholds::RANKING_SPLICE.min_par_items() {
        return rank_sequential(next, start);
    }
    let mut ranks = vec![UNRANKED; n];
    if start == END {
        return ranks;
    }
    // suffix[v] = number of elements from v to the end, inclusive.
    let mut suffix: Vec<u64> = next.par_iter().map(|_| 1u64).collect();
    let mut nxt: Vec<u32> = next.to_vec();
    let mut hops = 1usize;
    while hops < 2 * n {
        let stepped: Vec<(u64, u32)> = (0..n)
            .into_par_iter()
            .map(|v| {
                let w = nxt[v];
                if w == END {
                    (suffix[v], END)
                } else {
                    (suffix[v] + suffix[w as usize], nxt[w as usize])
                }
            })
            .collect();
        let mut changed = false;
        for (v, (s, w)) in stepped.into_iter().enumerate() {
            if nxt[v] != END {
                changed = true;
            }
            suffix[v] = s;
            nxt[v] = w;
        }
        if !changed {
            break;
        }
        hops *= 2;
    }
    let total = suffix[start as usize];
    // rank(v) = total − suffix(v) for elements on the list. Membership:
    // walkable from start — recover by marking via the original list in
    // parallel-friendly fashion: an element is on the list iff it is the
    // start or is someone's successor *and* reachable; for the tours we
    // rank, every element with a finite suffix computed from the start
    // chain is a member. We mark members from the original next array.
    for (v, on) in list_membership(next, start).into_iter().enumerate() {
        if on {
            ranks[v] = total - suffix[v];
        }
    }
    ranks
}

/// Marks which elements lie on the list starting at `start`.
pub(crate) fn list_membership(next: &[u32], start: u32) -> Vec<bool> {
    let mut on = vec![false; next.len()];
    let mut at = start;
    while at != END {
        debug_assert!(!on[at as usize], "cycle in list");
        on[at as usize] = true;
        at = next[at as usize];
    }
    on
}

/// Result of the spatial list ranking.
#[derive(Debug, Clone)]
pub struct SpatialRanking {
    /// Rank (index from the start) of each element; [`UNRANKED`] off-list.
    pub ranks: Vec<u64>,
    /// Number of random-mate contraction rounds executed (Las Vegas:
    /// `O(log n)` with high probability).
    pub rounds: u32,
}

/// The reusable spatial list-ranking engine (§IV, Theorem 5): flat
/// splice log, per-round end offsets, zero heap allocation after
/// setup. Create with [`RankingEngine::new`], then call
/// [`RankingEngine::rank`] any number of times (each run re-ranks the
/// same list with fresh randomness, charging the machine it is given).
pub struct RankingEngine {
    /// Original successor array (the list never changes across runs).
    next0: Vec<u32>,
    start: u32,
    /// Elements on the list, in id order (the initial alive set).
    alive0: Vec<u32>,
    /// Contract until at most this many elements remain.
    threshold: usize,
    /// Largest element count the retained buffers have ever served;
    /// bindings at or below this never allocate.
    cap: usize,

    // ---- Per-run mutable state (reset at the top of `rank`). ----
    nxt: Vec<u32>,
    prev: Vec<u32>,
    weight: Vec<u64>,
    coin: Vec<bool>,
    dead: Vec<bool>,
    alive: Vec<u32>,
    ranks: Vec<u64>,

    // ---- Flat splice log (replaces the seed's Vec<Vec<Splice>>). ----
    /// Spliced-out elements, all rounds back to back.
    splice_mid: Vec<u32>,
    /// Left neighbour each splice merged into.
    splice_left: Vec<u32>,
    /// Rank weight the spliced element carried.
    splice_weight: Vec<u64>,
    /// End offset into the splice arrays after each round.
    round_ends: Vec<u32>,
    /// Random-mate selection scratch.
    selected: Vec<u32>,
    rounds: u32,
}

impl RankingEngine {
    /// Prepares the engine for the list `next` starting at `start`.
    /// All arrays are allocated here; [`RankingEngine::rank`] never
    /// allocates.
    pub fn new(next: &[u32], start: u32) -> Self {
        let mut engine = Self::with_capacity(next.len());
        engine.bind(next, start);
        engine
    }

    /// An unbound engine whose buffers are pre-sized for lists of up to
    /// `cap` elements; [`RankingEngine::bind`] calls within the
    /// capacity never allocate.
    pub fn with_capacity(cap: usize) -> Self {
        RankingEngine {
            next0: Vec::with_capacity(cap),
            start: END,
            alive0: Vec::with_capacity(cap),
            threshold: 4,
            cap,
            nxt: Vec::with_capacity(cap),
            prev: Vec::with_capacity(cap),
            weight: Vec::with_capacity(cap),
            coin: Vec::with_capacity(cap),
            dead: Vec::with_capacity(cap),
            alive: Vec::with_capacity(cap),
            ranks: Vec::with_capacity(cap),
            splice_mid: Vec::with_capacity(cap),
            splice_left: Vec::with_capacity(cap),
            splice_weight: Vec::with_capacity(cap),
            // Every round appends one end offset, including rounds that
            // splice nothing; the capacity is a generous bound on the
            // O(log n) w.h.p. round count.
            round_ends: Vec::with_capacity(cap + 64),
            selected: Vec::with_capacity(cap),
            rounds: 0,
        }
    }

    /// Loads a new list into the retained buffers, restarting the run
    /// cycle — **zero heap allocation** whenever `next.len()` is within
    /// the engine's capacity (grow first with
    /// [`EngineLifecycle::reserve`]).
    pub fn bind(&mut self, next: &[u32], start: u32) {
        let n = next.len();
        self.cap = self.cap.max(n);
        self.next0.clear();
        self.next0.extend_from_slice(next);
        self.start = start;
        // Membership walk through the retained coin buffer (reset to
        // all-false first; `coin` is otherwise per-round scratch).
        self.coin.clear();
        self.coin.resize(n, false);
        if start != END {
            let mut at = start;
            while at != END {
                debug_assert!(!self.coin[at as usize], "cycle in list");
                self.coin[at as usize] = true;
                at = next[at as usize];
            }
        }
        self.alive0.clear();
        let coin = &self.coin;
        self.alive0
            .extend((0..n as u32).filter(|&v| coin[v as usize]));
        let list_len = self.alive0.len();
        self.threshold = (2 * (usize::BITS - list_len.leading_zeros()) as usize).max(4);
        // Per-run arrays track the element count (`resize` both grows
        // and shrinks); `reset_run` (called at the top of every
        // `rank`) fills them.
        self.nxt.resize(n, END);
        self.prev.resize(n, END);
        self.weight.resize(n, 1);
        self.dead.resize(n, false);
        self.ranks.resize(n, UNRANKED);
        self.rounds = 0;
    }

    /// Number of elements on the list.
    pub fn list_len(&self) -> usize {
        self.alive0.len()
    }

    /// The ranks of the most recent [`RankingEngine::rank`] run
    /// ([`UNRANKED`] off-list, or everywhere before the first run).
    pub fn ranks(&self) -> &[u64] {
        &self.ranks
    }

    /// Resets the per-run state to the pristine list. (Named apart
    /// from [`EngineLifecycle::reset`]: a private inherent `reset`
    /// would shadow the trait method and make `engine.reset()` a
    /// private-method error for downstream callers.)
    fn reset_run(&mut self) {
        self.nxt.copy_from_slice(&self.next0);
        self.prev.fill(END);
        for &v in &self.alive0 {
            let w = self.nxt[v as usize];
            if w != END {
                self.prev[w as usize] = v;
            }
        }
        self.weight.fill(1);
        self.dead.fill(false);
        self.alive.clear();
        self.alive.extend_from_slice(&self.alive0);
        self.ranks.fill(UNRANKED);
        self.splice_mid.clear();
        self.splice_left.clear();
        self.splice_weight.clear();
        self.round_ends.clear();
        self.rounds = 0;
    }

    /// Ranks the list by random-mate contraction, charging every
    /// pointer round on `m`. Returns the number of contraction rounds;
    /// read the ranks via [`RankingEngine::ranks`]. The seed affects
    /// only costs, never ranks. Performs no heap allocation.
    pub fn rank<R: Rng>(&mut self, m: &Machine, rng: &mut R) -> u32 {
        let mut charger = m;
        self.rank_into(m, &mut charger, rng)
    }

    /// [`RankingEngine::rank`] with the charges routed through any
    /// [`RoundCharger`] — the machine itself, or a
    /// [`spatial_model::LocalCharge`] session over it (the layout
    /// engine's hot path: plain-arithmetic clock math, one batch
    /// commit). `m` supplies the geometry (distances); `charger`
    /// receives the identical charge sequence either way, so reports
    /// are bit-equal across the two paths.
    pub fn rank_into<R: Rng, C: RoundCharger>(
        &mut self,
        m: &Machine,
        charger: &mut C,
        rng: &mut R,
    ) -> u32 {
        let n = self.next0.len();
        assert!(n as u32 <= m.n_slots(), "need one slot per list element");
        self.reset_run();
        if self.start == END {
            return 0;
        }
        let start = self.start;

        // ---- Contract until O(log n) elements remain. ----
        while self.alive.len() > self.threshold {
            // Every alive element flips a coin and tells its successor —
            // one synchronous communication round over the current list,
            // charged through the batched pointer-distance hooks.
            for &v in &self.alive {
                self.coin[v as usize] = rng.gen();
            }
            fn live_pairs<'a>(
                alive: &'a [u32],
                nxt: &'a [u32],
            ) -> impl Iterator<Item = (Slot, Slot)> + 'a {
                alive
                    .iter()
                    .filter(move |&&v| nxt[v as usize] != END)
                    .map(move |&v| (v as Slot, nxt[v as usize] as Slot))
            }
            let coin_energy = m.dist_sum(live_pairs(&self.alive, &self.nxt));
            let coin_msgs = live_pairs(&self.alive, &self.nxt).count() as u64;
            charger.charge_pointer_round(coin_energy, coin_msgs);

            // Select: heads whose predecessor flipped tails (never the
            // start element — it anchors the ranking). Selection is
            // evaluated against the pre-splice pointers, as a
            // branchless compact pass: unconditional write, cursor
            // advanced by the predicate — the coin pattern is random,
            // so a data-dependent branch here mispredicts half the
            // time. The END-guarded probe reads index 0 and is masked
            // out by the `!= END` factor (cmov, not a branch).
            self.selected.clear();
            self.selected.resize(self.alive.len(), 0);
            let mut k = 0usize;
            for i in 0..self.alive.len() {
                let v = self.alive[i];
                let pv = self.prev[v as usize];
                let safe_pv = if pv == END { 0 } else { pv as usize };
                let ok = (v != start) & self.coin[v as usize] & (pv != END) & !self.coin[safe_pv];
                self.selected[k] = v;
                k += ok as usize;
            }
            self.selected.truncate(k);

            // Splice each selected element out: its left neighbour
            // inherits its weight and pointer (message mid → left), and
            // its right neighbour learns its new predecessor (message
            // mid → right). The splice is logged flat.
            let mut splice_energy = 0u64;
            let mut splice_msgs = 0u64;
            for &mid in &self.selected {
                let left = self.prev[mid as usize];
                let right = self.nxt[mid as usize];
                debug_assert_ne!(left, END);
                splice_energy += m.dist(mid as Slot, left as Slot);
                splice_msgs += 1;
                if right != END {
                    splice_energy += m.dist(mid as Slot, right as Slot);
                    splice_msgs += 1;
                    self.prev[right as usize] = left;
                }
                self.nxt[left as usize] = right;
                self.weight[left as usize] += self.weight[mid as usize];
                self.splice_mid.push(mid);
                self.splice_left.push(left);
                self.splice_weight.push(self.weight[mid as usize]);
                self.dead[mid as usize] = true;
            }
            charger.charge_pointer_round(splice_energy, splice_msgs);
            self.round_ends.push(self.splice_mid.len() as u32);
            self.rounds += 1;

            // Branchless sweep of the dead flags (same stable order as
            // the `retain` it replaces).
            let Self { alive, dead, .. } = &mut *self;
            let mut k = 0usize;
            for i in 0..alive.len() {
                let v = alive[i];
                alive[k] = v;
                k += !dead[v as usize] as usize;
            }
            alive.truncate(k);
        }

        // ---- Base case: walk the remaining list sequentially, ----
        // ---- charging each hop.                                ----
        let mut at = start;
        let mut acc = 0u64;
        while at != END {
            self.ranks[at as usize] = acc;
            acc += self.weight[at as usize];
            let nx = self.nxt[at as usize];
            if nx != END {
                charger.charge_send(at as Slot, nx as Slot);
            }
            at = nx;
        }

        // ---- Uncontraction: undo rounds in reverse; all splices of ----
        // ---- one round resolve in parallel (independent set).      ----
        for round in (0..self.rounds as usize).rev() {
            let lo = if round == 0 {
                0
            } else {
                self.round_ends[round - 1] as usize
            };
            let hi = self.round_ends[round] as usize;
            let mut energy = 0u64;
            let msgs = (hi - lo) as u64;
            for i in lo..hi {
                let mid = self.splice_mid[i];
                let left = self.splice_left[i];
                energy += m.dist(left as Slot, mid as Slot);
                self.weight[left as usize] -= self.splice_weight[i];
                self.ranks[mid as usize] = self.ranks[left as usize] + self.weight[left as usize];
            }
            charger.charge_pointer_round(energy, msgs);
        }

        self.rounds
    }
}

impl EngineLifecycle for RankingEngine {
    fn capacity(&self) -> usize {
        self.cap
    }

    fn reserve(&mut self, cap: usize) {
        if cap <= self.cap {
            return;
        }
        fn grow<T>(buf: &mut Vec<T>, cap: usize) {
            buf.reserve(cap.saturating_sub(buf.len()));
        }
        grow(&mut self.next0, cap);
        grow(&mut self.alive0, cap);
        grow(&mut self.nxt, cap);
        grow(&mut self.prev, cap);
        grow(&mut self.weight, cap);
        grow(&mut self.coin, cap);
        grow(&mut self.dead, cap);
        grow(&mut self.alive, cap);
        grow(&mut self.ranks, cap);
        grow(&mut self.splice_mid, cap);
        grow(&mut self.splice_left, cap);
        grow(&mut self.splice_weight, cap);
        grow(&mut self.round_ends, cap + 64);
        grow(&mut self.selected, cap);
        self.cap = cap;
    }

    fn reset(&mut self) {
        self.next0.clear();
        self.alive0.clear();
        self.start = END;
        self.rounds = 0;
    }
}

/// Spatial list ranking by random-mate contraction (§IV, Theorem 5).
///
/// Element `i` of the list lives at machine slot `i`; the machine must
/// have at least `next.len()` slots. Every pointer access is charged as
/// a message between the slots involved — initially `Θ(√n)` on average,
/// which is where the `O(n^{3/2})` energy comes from.
///
/// One-shot wrapper over [`RankingEngine`]; callers that rank the same
/// list repeatedly (Las Vegas retries, cost experiments) should hold an
/// engine and call [`RankingEngine::rank`] directly.
pub fn rank_spatial<R: Rng>(m: &Machine, next: &[u32], start: u32, rng: &mut R) -> SpatialRanking {
    let mut engine = RankingEngine::new(next, start);
    let rounds = engine.rank(m, rng);
    SpatialRanking {
        ranks: engine.ranks().to_vec(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;

    /// A list 0 → 1 → … → n−1 stored at shuffled slots is uninteresting;
    /// instead build a random permutation list over n elements.
    fn random_list(n: usize, rng: &mut StdRng) -> (Vec<u32>, u32) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut next = vec![END; n];
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        (next, order[0])
    }

    #[test]
    fn sequential_ranks_identity_list() {
        let next = vec![1, 2, 3, END];
        let r = rank_sequential(&next, 0);
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sequential_skips_off_list() {
        let next = vec![2, END, END, END];
        let r = rank_sequential(&next, 0);
        assert_eq!(r[0], 0);
        assert_eq!(r[2], 1);
        assert_eq!(r[1], UNRANKED);
        assert_eq!(r[3], UNRANKED);
    }

    #[test]
    fn empty_list() {
        assert!(rank_sequential(&[], END).is_empty());
        let m = Machine::on_curve(CurveKind::Hilbert, 4);
        let r = rank_spatial(&m, &[END, END], END, &mut StdRng::seed_from_u64(0));
        assert_eq!(r.ranks, vec![UNRANKED, UNRANKED]);
    }

    #[test]
    fn rebinding_across_lists_matches_fresh_engines() {
        // One pooled engine rebound across lists of sizes n, 2n+3, 5
        // ranks and charges exactly like a fresh engine per list.
        let n0 = 100usize;
        let mut engine = RankingEngine::with_capacity(n0);
        let mut rng = StdRng::seed_from_u64(77);
        for n in [n0, 2 * n0 + 3, 5, n0] {
            let (next, start) = random_list(n, &mut rng);
            engine.reserve(n);
            engine.bind(&next, start);
            let m_pooled = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let rounds = engine.rank(&m_pooled, &mut StdRng::seed_from_u64(5));
            let mut fresh = RankingEngine::new(&next, start);
            let m_fresh = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let fresh_rounds = fresh.rank(&m_fresh, &mut StdRng::seed_from_u64(5));
            assert_eq!(engine.ranks(), fresh.ranks(), "n={n}");
            assert_eq!(rounds, fresh_rounds, "n={n}");
            assert_eq!(m_pooled.report(), m_fresh.report(), "n={n}");
            assert_eq!(engine.ranks(), &rank_sequential(&next, start)[..], "n={n}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 100, 1000, 4097] {
            let (next, start) = random_list(n, &mut rng);
            assert_eq!(
                rank_parallel(&next, start),
                rank_sequential(&next, start),
                "n={n}"
            );
        }
    }

    #[test]
    fn spatial_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1usize, 2, 5, 33, 256, 2000] {
            let (next, start) = random_list(n, &mut rng);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut rng);
            assert_eq!(got.ranks, rank_sequential(&next, start), "n={n}");
        }
    }

    #[test]
    fn spatial_is_las_vegas_always_correct() {
        // Different seeds change costs, never results.
        let (next, start) = random_list(500, &mut StdRng::seed_from_u64(1));
        let expect = rank_sequential(&next, start);
        for seed in 0..10 {
            let m = Machine::on_curve(CurveKind::Hilbert, 500);
            let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(seed));
            assert_eq!(got.ranks, expect, "seed={seed}");
        }
    }

    #[test]
    fn engine_reuse_across_runs() {
        // One engine, many runs with different seeds: always correct,
        // and a repeated seed reproduces ranks, rounds, and charges.
        let (next, start) = random_list(700, &mut StdRng::seed_from_u64(2));
        let expect = rank_sequential(&next, start);
        let mut engine = RankingEngine::new(&next, start);
        let mut first: Option<(Vec<u64>, u32, spatial_model::CostReport)> = None;
        for run in 0..6u64 {
            let m = Machine::on_curve(CurveKind::Hilbert, 700);
            let rounds = engine.rank(&m, &mut StdRng::seed_from_u64(run % 3));
            assert_eq!(engine.ranks(), &expect[..], "run {run}");
            if run % 3 == 0 {
                match &first {
                    None => first = Some((engine.ranks().to_vec(), rounds, m.report())),
                    Some((r, c, rep)) => {
                        assert_eq!(engine.ranks(), &r[..], "repeat run ranks");
                        assert_eq!(rounds, *c, "repeat run rounds");
                        assert_eq!(m.report(), *rep, "repeat run charges");
                    }
                }
            }
        }
    }

    #[test]
    fn rank_through_local_charge_matches_machine() {
        // Charging through a LocalCharge session must reproduce the
        // atomic path bit for bit: same ranks, rounds, and report.
        let (next, start) = random_list(600, &mut StdRng::seed_from_u64(3));
        let m_atomic = Machine::on_curve(CurveKind::Hilbert, 600);
        let mut e1 = RankingEngine::new(&next, start);
        let r1 = e1.rank(&m_atomic, &mut StdRng::seed_from_u64(5));

        let m_local = Machine::on_curve(CurveKind::Hilbert, 600);
        let mut e2 = RankingEngine::new(&next, start);
        let mut scratch = spatial_model::LocalChargeScratch::new();
        let mut lc = m_local.begin_local_charge(&mut scratch);
        let r2 = e2.rank_into(&m_local, &mut lc, &mut StdRng::seed_from_u64(5));
        lc.commit();

        assert_eq!(e1.ranks(), e2.ranks());
        assert_eq!(r1, r2);
        assert_eq!(m_atomic.report(), m_local.report());
    }

    #[test]
    fn spatial_rounds_logarithmic() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1024usize, 8192] {
            let (next, start) = random_list(n, &mut rng);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut rng);
            let bound = 8 * (n as f64).log2() as u32;
            assert!(
                got.rounds <= bound,
                "n={n}: {} rounds > {bound}",
                got.rounds
            );
        }
    }

    #[test]
    fn spatial_energy_matches_theorem5() {
        // Energy / n^{3/2} roughly flat; depth O(log n).
        let mut ratios = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1usize << log_n;
            let (next, start) = random_list(n, &mut StdRng::seed_from_u64(3));
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let res = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(4));
            let r = m.report();
            ratios.push(r.energy_per_n_three_halves(n as u64));
            assert!(
                (r.depth as f64) < 30.0 * log_n as f64,
                "n={n}: depth {} not O(log n)",
                r.depth
            );
            assert_eq!(res.ranks[start as usize], 0);
        }
        let (lo, hi) = (ratios[0].min(ratios[1]), ratios[0].max(ratios[1]));
        assert!(hi / lo < 3.0, "energy/n^1.5 not flat: {ratios:?}");
    }

    #[test]
    fn singleton_list() {
        let m = Machine::on_curve(CurveKind::Hilbert, 1);
        let r = rank_spatial(&m, &[END], 0, &mut StdRng::seed_from_u64(0));
        assert_eq!(r.ranks, vec![0]);
        assert_eq!(r.rounds, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::{rank_parallel, rank_sequential, rank_spatial, END};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use spatial_model::{CurveKind, Machine};

    fn list_from_perm(perm: &[u32]) -> (Vec<u32>, u32) {
        let mut next = vec![END; perm.len()];
        for w in perm.windows(2) {
            next[w[0] as usize] = w[1];
        }
        (next, perm[0])
    }

    proptest! {
        /// Ranks are exactly the positions in the permutation, for any
        /// list shape and any algorithm seed.
        #[test]
        fn prop_spatial_ranks_any_list(
            shuffle_seed in 0u64..10_000,
            algo_seed in 0u64..10_000,
            n in 1usize..300,
        ) {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let (next, start) = list_from_perm(&perm);
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(algo_seed));
            for (pos, &el) in perm.iter().enumerate() {
                prop_assert_eq!(got.ranks[el as usize], pos as u64);
            }
        }

        /// Parallel Wyllie agrees with the sequential walk.
        #[test]
        fn prop_parallel_agrees(shuffle_seed in 0u64..10_000, n in 1usize..400) {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let (next, start) = list_from_perm(&perm);
            prop_assert_eq!(rank_parallel(&next, start), rank_sequential(&next, start));
        }
    }
}
