//! The seed spatial list ranking, retained verbatim as the
//! differential baseline for the flat splice-log engine in
//! [`crate::ranking`].
//!
//! This implementation allocates per round: a `Vec<Splice>` per
//! contraction round collected into a `history` of nested `Vec`s, plus
//! a `HashSet` for the per-round removals. The `ranking_props` suite
//! pins the optimized engine to it — identical ranks, round counts,
//! and machine charges on arbitrary lists and seeds.

use crate::ranking::{SpatialRanking, END, UNRANKED};
use rand::Rng;
use rayon::prelude::*;
use spatial_model::{Machine, Slot};

/// Marks which elements lie on the list starting at `start`.
fn list_membership(next: &[u32], start: u32) -> Vec<bool> {
    let mut on = vec![false; next.len()];
    let mut at = start;
    while at != END {
        debug_assert!(!on[at as usize], "cycle in list");
        on[at as usize] = true;
        at = next[at as usize];
    }
    on
}

/// A spliced-out element: `mid` was removed from between `left` and its
/// successor; `weight_mid` is the rank weight `mid` carried.
#[derive(Debug, Clone, Copy)]
struct Splice {
    mid: u32,
    left: u32,
    weight_mid: u64,
}

/// The seed random-mate contraction (§IV, Theorem 5), kept as the
/// differential baseline. Same contract as
/// [`crate::ranking::rank_spatial`].
pub fn rank_spatial_reference<R: Rng>(
    m: &Machine,
    next: &[u32],
    start: u32,
    rng: &mut R,
) -> SpatialRanking {
    let n = next.len();
    assert!(n as u32 <= m.n_slots(), "need one slot per list element");
    let mut ranks = vec![UNRANKED; n];
    if start == END {
        return SpatialRanking { ranks, rounds: 0 };
    }

    let membership = list_membership(next, start);
    let mut alive: Vec<u32> = (0..n as u32).filter(|&v| membership[v as usize]).collect();
    let list_len = alive.len();

    let mut nxt = next.to_vec();
    let mut prev = vec![END; n];
    for &v in &alive {
        let w = nxt[v as usize];
        if w != END {
            prev[w as usize] = v;
        }
    }
    let mut weight = vec![1u64; n];
    let mut coin = vec![false; n];

    // Contract until O(log n) elements remain.
    let threshold = (2 * (usize::BITS - list_len.leading_zeros()) as usize).max(4);
    let mut history: Vec<Vec<Splice>> = Vec::new();
    while alive.len() > threshold {
        // Every alive element flips a coin and tells its successor —
        // one synchronous communication round over the current list.
        for &v in &alive {
            coin[v as usize] = rng.gen();
        }
        let coin_energy: u64 = alive
            .par_iter()
            .filter(|&&v| nxt[v as usize] != END)
            .map(|&v| m.dist(v as Slot, nxt[v as usize] as Slot))
            .sum();
        let coin_msgs = alive.iter().filter(|&&v| nxt[v as usize] != END).count() as u64;
        m.charge_bulk(coin_energy, coin_msgs, coin_msgs);
        m.advance_all(1);

        // Select: heads whose predecessor flipped tails (never the
        // start element — it anchors the ranking).
        let selected: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|&v| {
                v != start
                    && coin[v as usize]
                    && prev[v as usize] != END
                    && !coin[prev[v as usize] as usize]
            })
            .collect();

        // Splice each selected element out: its left neighbour inherits
        // its weight and pointer (message mid → left), and its right
        // neighbour learns its new predecessor (message mid → right).
        let mut splices = Vec::with_capacity(selected.len());
        let mut splice_energy = 0u64;
        let mut splice_msgs = 0u64;
        for &mid in &selected {
            let left = prev[mid as usize];
            let right = nxt[mid as usize];
            debug_assert_ne!(left, END);
            splice_energy += m.dist(mid as Slot, left as Slot);
            splice_msgs += 1;
            if right != END {
                splice_energy += m.dist(mid as Slot, right as Slot);
                splice_msgs += 1;
                prev[right as usize] = left;
            }
            nxt[left as usize] = right;
            weight[left as usize] += weight[mid as usize];
            splices.push(Splice {
                mid,
                left,
                weight_mid: weight[mid as usize],
            });
        }
        m.charge_bulk(splice_energy, splice_msgs, splice_msgs);
        m.advance_all(1);
        history.push(splices);

        let removed: std::collections::HashSet<u32> = selected.into_iter().collect();
        alive.retain(|v| !removed.contains(v));
    }

    // Base case: walk the remaining list sequentially, charging each hop.
    let mut at = start;
    let mut acc = 0u64;
    while at != END {
        ranks[at as usize] = acc;
        acc += weight[at as usize];
        let nx = nxt[at as usize];
        if nx != END {
            m.send(at as Slot, nx as Slot);
        }
        at = nx;
    }

    // Uncontraction: undo iterations in reverse; all splices of one
    // iteration resolve in parallel (they were an independent set).
    let rounds = history.len() as u32;
    for splices in history.into_iter().rev() {
        let mut energy = 0u64;
        let msgs = splices.len() as u64;
        for s in &splices {
            energy += m.dist(s.left as Slot, s.mid as Slot);
            weight[s.left as usize] -= s.weight_mid;
            ranks[s.mid as usize] = ranks[s.left as usize] + weight[s.left as usize];
        }
        m.charge_bulk(energy, msgs, msgs);
        m.advance_all(1);
    }

    SpatialRanking { ranks, rounds }
}
