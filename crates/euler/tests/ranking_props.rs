//! Property suite for spatial list ranking: the flat splice-log engine
//! must (a) equal the sequential walk after every contract/uncontract
//! round trip, (b) preserve the `UNRANKED`/`END` sentinel conventions,
//! and (c) behave *identically* to the retained seed implementation —
//! same ranks, round counts, and machine charges.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_euler::ranking::{rank_sequential, rank_spatial, RankingEngine, END, UNRANKED};
use spatial_euler::reference::rank_spatial_reference;
use spatial_model::{CurveKind, Machine};

/// A random permutation list over `n` elements.
fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut next = vec![END; n];
    for w in perm.windows(2) {
        next[w[0] as usize] = w[1];
    }
    (next, perm[0])
}

/// A list over `n` slots where only every `stride`-th element is on the
/// list (exercises the off-list sentinel paths).
fn sparse_list(n: usize, stride: usize) -> (Vec<u32>, u32) {
    let mut next = vec![END; n];
    let members: Vec<u32> = (0..n).step_by(stride).map(|v| v as u32).collect();
    for w in members.windows(2) {
        next[w[0] as usize] = w[1];
    }
    (next, members[0])
}

fn compare_engines(next: &[u32], start: u32, n_slots: u32, algo_seed: u64) {
    let m_new = Machine::on_curve(CurveKind::Hilbert, n_slots);
    let got = rank_spatial(&m_new, next, start, &mut StdRng::seed_from_u64(algo_seed));

    let m_ref = Machine::on_curve(CurveKind::Hilbert, n_slots);
    let expect = rank_spatial_reference(&m_ref, next, start, &mut StdRng::seed_from_u64(algo_seed));

    assert_eq!(got.ranks, expect.ranks, "ranks diverged");
    assert_eq!(got.rounds, expect.rounds, "round counts diverged");
    assert_eq!(m_new.report(), m_ref.report(), "machine charges diverged");
}

#[test]
fn round_trip_equals_sequential_on_permutations() {
    for (n, seed) in [(1usize, 0u64), (2, 1), (7, 2), (64, 3), (513, 4), (2048, 5)] {
        let (next, start) = random_list(n, seed);
        let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
        let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(seed + 100));
        assert_eq!(got.ranks, rank_sequential(&next, start), "n={n}");
    }
}

#[test]
fn sentinels_preserved_on_sparse_lists() {
    // Off-list elements stay UNRANKED; the END-terminated walk ranks
    // exactly the members.
    for stride in [2usize, 3, 7] {
        let n = 600;
        let (next, start) = sparse_list(n, stride);
        let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
        let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(9));
        for v in 0..n {
            if v % stride == 0 {
                assert_eq!(got.ranks[v], (v / stride) as u64, "member {v}");
            } else {
                assert_eq!(got.ranks[v], UNRANKED, "off-list {v}");
            }
        }
        // The input successor array is not mutated by the engine.
        let engine = RankingEngine::new(&next, start);
        assert_eq!(engine.list_len(), n.div_ceil(stride));
    }
}

#[test]
fn empty_and_singleton_sentinels() {
    let m = Machine::on_curve(CurveKind::Hilbert, 4);
    let got = rank_spatial(&m, &[END, END, END], END, &mut StdRng::seed_from_u64(0));
    assert_eq!(got.ranks, vec![UNRANKED; 3]);
    assert_eq!(got.rounds, 0);
    assert_eq!(m.report().energy, 0, "empty list charges nothing");

    let got = rank_spatial(&m, &[END], 0, &mut StdRng::seed_from_u64(0));
    assert_eq!(got.ranks, vec![0]);
}

#[test]
fn identical_to_reference_on_fixed_sizes() {
    for (n, list_seed, algo_seed) in [
        (2usize, 0u64, 0u64),
        (16, 1, 7),
        (100, 2, 8),
        (777, 3, 9),
        (4096, 4, 10),
    ] {
        let (next, start) = random_list(n, list_seed);
        compare_engines(&next, start, n as u32, algo_seed);
    }
}

#[test]
fn identical_to_reference_on_sparse_lists() {
    let (next, start) = sparse_list(500, 3);
    for algo_seed in 0..5 {
        compare_engines(&next, start, 500, algo_seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Contract/uncontract round trip equals sequential ranking and the
    /// seed engine bit for bit, for any list shape and seed.
    #[test]
    fn prop_engine_identical_to_reference(
        n in 1usize..400,
        list_seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
    ) {
        let (next, start) = random_list(n, list_seed);
        compare_engines(&next, start, n as u32, algo_seed);
        let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
        let got = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(algo_seed));
        prop_assert_eq!(got.ranks, rank_sequential(&next, start));
    }

    /// Reusing one engine across seeds matches fresh reference runs.
    #[test]
    fn prop_engine_reuse_identical(
        n in 2usize..300,
        list_seed in 0u64..10_000,
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
    ) {
        let (next, start) = random_list(n, list_seed);
        let mut engine = RankingEngine::new(&next, start);
        for algo_seed in [seed_a, seed_b, seed_a] {
            let m_new = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let rounds = engine.rank(&m_new, &mut StdRng::seed_from_u64(algo_seed));
            let m_ref = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let expect = rank_spatial_reference(
                &m_ref, &next, start, &mut StdRng::seed_from_u64(algo_seed),
            );
            prop_assert_eq!(engine.ranks(), &expect.ranks[..]);
            prop_assert_eq!(rounds, expect.rounds);
            prop_assert_eq!(m_new.report(), m_ref.report());
        }
    }
}
