//! Counting-allocator proof that [`RankingEngine::rank`] performs
//! **zero heap allocation** after engine setup — the same harness as
//! the treefix contraction engine's `alloc_free` test.
//!
//! A global counting allocator tallies every `alloc`/`realloc` while
//! the gate is open; the gate opens after [`RankingEngine::new`] (which
//! is allowed — and expected — to allocate its arrays) and closes
//! before the results are inspected. This binary holds exactly one
//! live `#[test]` so no concurrent test can pollute the count.

use rand::prelude::*;
use spatial_euler::ranking::{rank_sequential, RankingEngine, END};
use spatial_model::{CurveKind, Machine};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the allocation gate open, returning its result and
/// the number of heap allocations performed inside.
fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

/// A random permutation list over `n` elements.
fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut next = vec![END; n];
    for w in perm.windows(2) {
        next[w[0] as usize] = w[1];
    }
    (next, perm[0])
}

#[test]
fn rank_does_not_allocate() {
    for (n, list_seed) in [(256usize, 1u64), (2000, 2), (4096, 3)] {
        let (next, start) = random_list(n, list_seed);
        let expect = rank_sequential(&next, start);
        let machine = Machine::on_curve(CurveKind::Hilbert, n as u32);
        // Warm the machine's round staging (the engine charges in bulk
        // and never stages rounds, but keep symmetry with treefix).
        let mut engine = RankingEngine::new(&next, start);
        let mut rng = StdRng::seed_from_u64(7);

        // Two runs inside the gate: the first exercises the pristine
        // engine, the second the reset path — both must be clean.
        let (rounds, allocs) = count_allocations(|| {
            let r1 = engine.rank(&machine, &mut rng);
            let r2 = engine.rank(&machine, &mut rng);
            (r1, r2)
        });
        assert_eq!(engine.ranks(), &expect[..], "n = {n}: wrong ranks");
        assert!(rounds.0 > 0 && rounds.1 > 0);
        assert_eq!(
            allocs, 0,
            "n = {n}: rank() allocated {allocs} times after setup"
        );
    }
}

#[test]
#[ignore = "sanity check for the harness itself: proves the gate counts"]
fn counting_harness_detects_allocations() {
    let ((), allocs) = count_allocations(|| {
        let v: Vec<u64> = (0..100).collect();
        std::hint::black_box(&v);
    });
    assert!(allocs > 0, "gate failed to observe an allocation");
}
