//! The mmap-backed reader: zero-copy alignment safety, validation, and
//! equivalence with the owned decoder.

use spatial_store::{ForestSnapshot, MappedSnapshot, StoreError};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("spatial-store-mapped-{tag}-{}", std::process::id()))
}

fn sample(n: usize) -> ForestSnapshot {
    ForestSnapshot {
        curve: 0,
        root: 0,
        layout_dirty: false,
        rebuilds: 2,
        grows: 1,
        reserved: (2 * n as u64).max(4),
        baseline_energy: 123,
        insertions: n as u64,
        tag: 41,
        parents: (0..n as u32)
            .map(|v| if v == 0 { u32::MAX } else { (v - 1) / 2 })
            .collect(),
        order: (0..n as u32).rev().collect(),
        weights: (0..n as u64).map(|v| v.wrapping_mul(0x9E37_79B9)).collect(),
    }
}

#[test]
fn zero_copy_views_are_alignment_safe_and_exact() {
    let path = temp_path("align");
    // An odd vertex count exercises the slab padding (4·n not a
    // multiple of 8).
    let snap = sample(501);
    snap.write_to(&path).expect("write");
    let mapped = MappedSnapshot::open(&path).expect("open");

    // The zero-copy contract: every typed view sits on a properly
    // aligned address inside the mapped file.
    assert_eq!(mapped.parents().as_ptr() as usize % 4, 0);
    assert_eq!(mapped.order().as_ptr() as usize % 4, 0);
    assert_eq!(mapped.weights().as_ptr() as usize % 8, 0);
    for (off, _) in [
        mapped.parents_span(),
        mapped.order_span(),
        mapped.weights_span(),
    ] {
        assert_eq!(off % 8, 0, "slab offset {off} not 8-aligned");
    }

    assert_eq!(mapped.parents(), &snap.parents[..]);
    assert_eq!(mapped.order(), &snap.order[..]);
    assert_eq!(mapped.weights(), &snap.weights[..]);
    assert_eq!(mapped.header().tag, 41);
    assert_eq!(mapped.header().reserved, snap.reserved);
    assert_eq!(mapped.to_snapshot(), snap);
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_verifies_per_slab_crcs() {
    let path = temp_path("crc");
    let snap = sample(64);
    snap.write_to(&path).expect("write");

    // Corrupt one weight entry directly on disk: the header CRC still
    // matches, but the weights slab CRC must catch it on open.
    let mut bytes = std::fs::read(&path).expect("read");
    let (woff, _) = MappedSnapshot::open(&path).expect("open").weights_span();
    bytes[woff as usize + 5] ^= 0x10;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(matches!(
        MappedSnapshot::open(&path),
        Err(StoreError::BadChecksum { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_files_are_not_mappable() {
    let path = temp_path("v1");
    let snap = sample(16);
    std::fs::write(&path, snap.encode_v1()).expect("write v1");
    // The mapped reader refuses (packed v1 slabs are unaligned); the
    // owned decoder still reads it — the fallback recovery path.
    assert!(matches!(
        MappedSnapshot::open(&path),
        Err(StoreError::UnsupportedVersion(1))
    ));
    assert_eq!(
        ForestSnapshot::read_from(&path).expect("owned decode"),
        snap
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_missing_files_fail_cleanly() {
    let path = temp_path("empty");
    std::fs::write(&path, b"").expect("write");
    assert!(matches!(
        MappedSnapshot::open(&path),
        Err(StoreError::Truncated)
    ));
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        MappedSnapshot::open(temp_path("never-written")),
        Err(StoreError::Io(_))
    ));
}

#[test]
fn mapped_views_survive_cross_thread_sharing() {
    let path = temp_path("threads");
    let snap = sample(256);
    snap.write_to(&path).expect("write");
    let mapped = std::sync::Arc::new(MappedSnapshot::open(&path).expect("open"));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = mapped.clone();
            let expect = snap.weights.clone();
            std::thread::spawn(move || {
                assert_eq!(m.weights(), &expect[..]);
                m.parents().iter().map(|&p| p as u64).sum::<u64>()
            })
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }
    std::fs::remove_file(&path).ok();
}
