//! Crash injection for the incremental-checkpoint extent protocol.
//!
//! The protocol's claim: after the delta file is committed (atomic
//! rename), a crash at *any* byte position of the in-place patch is
//! recoverable — re-applying the pending delta yields a base file
//! bit-identical to the one an uninterrupted checkpoint produces.
//! These tests actually kill the patch at every interesting cut point
//! and check exactly that.

use spatial_store::delta::{
    commit_delta_without_applying_for_tests, partially_apply_pending_delta_for_tests,
};
use spatial_store::{
    apply_pending_delta, delta_path, write_incremental, DirtyExtents, ForestSnapshot,
    MappedSnapshot,
};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spatial-store-delta-{tag}-{}", std::process::id()))
}

fn base_snapshot(n: usize, reserved: u64) -> ForestSnapshot {
    ForestSnapshot {
        curve: 0,
        root: 0,
        layout_dirty: false,
        rebuilds: 0,
        grows: 0,
        reserved,
        baseline_energy: 7,
        insertions: n as u64,
        tag: 1,
        parents: (0..n as u32)
            .map(|v| if v == 0 { u32::MAX } else { (v - 1) / 2 })
            .collect(),
        order: (0..n as u32).collect(),
        weights: vec![1u64; n],
    }
}

/// The base mutated the way a journal tail would: appended vertices,
/// scattered weight overwrites, bumped counters.
fn next_generation(base: &ForestSnapshot, appends: usize) -> (ForestSnapshot, DirtyExtents) {
    let mut snap = base.clone();
    let b = base.parents.len();
    for i in 0..appends {
        let v = (b + i) as u32;
        snap.parents.push(v / 2);
        snap.order.push(v);
        snap.weights.push(100 + i as u64);
    }
    snap.insertions += appends as u64;
    snap.tag += 1;
    let mut dirty = DirtyExtents {
        base_len: b as u32,
        order_rewritten: false,
        weight_cells: Vec::new(),
    };
    // Scattered single cells plus a coalescible run, duplicates
    // included — the writer must sort/dedup/merge them.
    for &c in &[3u32, 17, 4, 5, 3, 40] {
        if (c as usize) < b {
            snap.weights[c as usize] = 1000 + c as u64;
            dirty.weight_cells.push(c);
        }
    }
    (snap, dirty)
}

#[test]
fn recovery_is_bit_identical_at_every_crash_cut() {
    let path = temp_path("cuts");
    let base = base_snapshot(300, 1024);
    base.write_to(&path).expect("write base");
    let base_bytes = std::fs::read(&path).expect("read base");
    let base_crcs = base.slab_crcs();
    let (snap, dirty) = next_generation(&base, 41);

    // Reference: the uninterrupted incremental checkpoint.
    let written = write_incremental(&path, &snap, &dirty, base_crcs)
        .expect("incremental")
        .expect("base should validate");
    assert!(written > 0);
    assert!(!delta_path(&path).exists());
    let reference = std::fs::read(&path).expect("read patched");
    assert_eq!(ForestSnapshot::read_from(&path).expect("decode"), snap);

    // Now replay the same checkpoint, crashing the patch at a spread
    // of byte cuts: 0 (nothing patched), mid-header, mid-extent, just
    // short of complete.
    std::fs::write(&path, &base_bytes).expect("restore base");
    let delta_len = commit_delta_without_applying_for_tests(&path, &snap, &dirty, base_crcs)
        .expect("commit")
        .expect("base should validate");
    assert!(delta_len > 0);
    let delta_bytes = std::fs::read(delta_path(&path)).expect("read delta");

    let full_patch = partially_apply_pending_delta_for_tests(&path, u64::MAX).expect("full");
    let cuts: Vec<u64> = (0..full_patch)
        .step_by(7)
        .chain([1, full_patch - 1])
        .collect();
    for cut in cuts {
        // Reconstruct the committed-but-unapplied state, then tear.
        std::fs::write(&path, &base_bytes).expect("restore base");
        std::fs::write(delta_path(&path), &delta_bytes).expect("restore delta");
        let torn = partially_apply_pending_delta_for_tests(&path, cut).expect("tear");
        assert!(torn <= cut, "tore past the limit");
        assert!(
            delta_path(&path).exists(),
            "delta must survive a torn patch"
        );

        // Public recovery path: apply the pending delta, then read.
        assert!(apply_pending_delta(&path).expect("recover"));
        assert!(!delta_path(&path).exists());
        let recovered = std::fs::read(&path).expect("read recovered");
        assert_eq!(recovered, reference, "crash at byte {cut} diverged");

        // And the mapped reader (which self-recovers) agrees.
        std::fs::write(&path, &base_bytes).expect("restore base");
        std::fs::write(delta_path(&path), &delta_bytes).expect("restore delta");
        partially_apply_pending_delta_for_tests(&path, cut).expect("tear");
        let mapped = MappedSnapshot::open(&path).expect("mapped self-recovery");
        assert_eq!(mapped.to_snapshot(), snap, "mapped recovery at byte {cut}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_or_grown_base_falls_back_to_full_rewrite() {
    let path = temp_path("fallback");
    let base = base_snapshot(100, 256);
    base.write_to(&path).expect("write base");
    let (snap, dirty) = next_generation(&base, 10);

    // Wrong base CRCs (the tracker is stale) → Ok(None).
    assert!(write_incremental(&path, &snap, &dirty, [1, 2, 3])
        .expect("runs")
        .is_none());

    // A capacity change since the base (grow) → Ok(None).
    let mut grown = snap.clone();
    grown.reserved = 512;
    assert!(write_incremental(&path, &grown, &dirty, base.slab_crcs())
        .expect("runs")
        .is_none());

    // Base vertex count disagreeing with the tracker → Ok(None).
    let mut wrong = dirty.clone();
    wrong.base_len += 1;
    assert!(write_incremental(&path, &snap, &wrong, base.slab_crcs())
        .expect("runs")
        .is_none());

    // The base file is untouched by all three refusals.
    assert_eq!(ForestSnapshot::read_from(&path).expect("decode"), base);
    assert!(!delta_path(&path).exists());
    std::fs::remove_file(&path).ok();
}

#[test]
fn incremental_is_much_smaller_than_full_rewrite_on_dirty_tail() {
    let path = temp_path("ratio");
    let base = base_snapshot(4096, 8192);
    base.write_to(&path).expect("write base");
    let full_bytes = std::fs::read(&path).expect("read").len() as u64;
    let (snap, dirty) = next_generation(&base, 16);
    let written = write_incremental(&path, &snap, &dirty, base.slab_crcs())
        .expect("incremental")
        .expect("validates");
    // The acceptance gate for the whole feature: a small dirty tail
    // must not cost anywhere near a full rewrite.
    assert!(
        written * 4 <= full_bytes,
        "incremental wrote {written} of {full_bytes} bytes"
    );
    assert_eq!(ForestSnapshot::read_from(&path).expect("decode"), snap);
    std::fs::remove_file(&path).ok();
}

#[test]
fn rebuild_rewrites_order_slab_and_still_recovers() {
    let path = temp_path("rebuild");
    let base = base_snapshot(200, 512);
    base.write_to(&path).expect("write base");
    let (mut snap, mut dirty) = next_generation(&base, 5);
    snap.order.reverse(); // a light-first rebuild permutes the order
    snap.rebuilds += 1;
    dirty.order_rewritten = true;

    let base_bytes = std::fs::read(&path).expect("read");
    write_incremental(&path, &snap, &dirty, base.slab_crcs())
        .expect("incremental")
        .expect("validates");
    let reference = std::fs::read(&path).expect("read patched");
    assert_eq!(ForestSnapshot::read_from(&path).expect("decode"), snap);

    // Crash mid-order-extent, recover, compare.
    std::fs::write(&path, &base_bytes).expect("restore");
    commit_delta_without_applying_for_tests(&path, &snap, &dirty, base.slab_crcs())
        .expect("commit")
        .expect("validates");
    partially_apply_pending_delta_for_tests(&path, 150).expect("tear");
    assert!(apply_pending_delta(&path).expect("recover"));
    assert_eq!(std::fs::read(&path).expect("read"), reference);
    std::fs::remove_file(&path).ok();
}
