//! Append-only line log: the run-store twin of the mutation journal.
//!
//! The write-ahead journal frames fixed-width binary records; the line
//! log frames variable-width text records (one per line, e.g. JSONL)
//! under the same durability discipline:
//!
//! - **Append-only.** [`append_line`] opens the file in append mode,
//!   writes `payload + '\n'` in one `write_all`, and fsyncs before
//!   returning, so a completed append survives a crash.
//! - **Torn-tail tolerant.** A crash mid-append leaves at most one
//!   unterminated final line. [`read_lines`] returns the intact prefix:
//!   every `'\n'`-terminated line, dropping a trailing fragment (and
//!   reporting how many bytes it dropped) — the journal's
//!   intact-prefix rule, applied to text.
//!
//! Content-level validation (checksums, schema) belongs to the caller:
//! this module moves framed bytes, like the rest of the crate.

use std::io::Write;
use std::path::Path;

/// Appends one record to the log at `path` (created, along with its
/// parent directory, if absent). The payload must not contain `'\n'` —
/// the newline is the frame delimiter — and is written together with
/// its delimiter in a single `write_all`, then fsynced.
pub fn append_line(path: impl AsRef<Path>, payload: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    if payload.contains(&b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "line-log payload must not contain '\\n'",
        ));
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut frame = Vec::with_capacity(payload.len() + 1);
    frame.extend_from_slice(payload);
    frame.push(b'\n');
    file.write_all(&frame)?;
    file.sync_all()
}

/// The intact prefix of a line log: complete lines plus how many
/// trailing bytes were dropped as a torn tail.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct LogLines {
    /// Every `'\n'`-terminated line, in append order.
    pub lines: Vec<String>,
    /// Bytes of unterminated tail dropped (0 on a clean log).
    pub torn_tail_bytes: usize,
}

/// Reads the intact prefix of the log at `path`. A missing file is an
/// empty log; a final line without its `'\n'` delimiter is a torn tail
/// from an interrupted append and is dropped, not an error. Invalid
/// UTF-8 inside a terminated line IS an error — appends are atomic at
/// line granularity, so mid-log corruption means something other than
/// a crash damaged the file, which the caller must see.
pub fn read_lines(path: impl AsRef<Path>) -> std::io::Result<LogLines> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LogLines::default()),
        Err(e) => return Err(e),
    };
    let intact_len = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|at| at + 1)
        .unwrap_or(0);
    let mut lines = Vec::new();
    for raw in bytes[..intact_len].split(|&b| b == b'\n') {
        if raw.is_empty() {
            continue; // the split after the final delimiter, or a blank line
        }
        let line = std::str::from_utf8(raw)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        lines.push(line.to_string());
    }
    Ok(LogLines {
        lines,
        torn_tail_bytes: bytes.len() - intact_len,
    })
}

#[cfg(test)]
mod tests {
    use super::{append_line, read_lines};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "spatial-store-log-{tag}-{}/runs.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn append_then_read_roundtrip() {
        let path = temp_path("roundtrip");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
        append_line(&path, b"{\"a\":1}").expect("append");
        append_line(&path, b"{\"b\":2}").expect("append");
        let got = read_lines(&path).expect("read");
        assert_eq!(got.lines, ["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(got.torn_tail_bytes, 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_log_is_empty() {
        let got = read_lines(temp_path("absent")).expect("read");
        assert!(got.lines.is_empty());
        assert_eq!(got.torn_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
        append_line(&path, b"first").expect("append");
        append_line(&path, b"second").expect("append");
        // Simulate a crash mid-append: truncate into the last line.
        let full = std::fs::read(&path).expect("read back");
        for cut in (full.len() - 4)..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let got = read_lines(&path).expect("read");
            assert_eq!(got.lines, ["first"], "cut at {cut}");
            assert_eq!(got.torn_tail_bytes, cut - b"first\n".len());
        }
        // Appending after a torn tail... the tail bytes stay dead, but
        // freshly appended intact lines after them would be glued onto
        // the fragment. Real writers truncate or accept the glue; the
        // reader's contract is only the intact-prefix rule.
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rejects_embedded_newline() {
        let err = append_line(temp_path("reject"), b"two\nlines").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
