//! Copy-on-write slabs: owned `Vec<T>` or a borrowed view into a
//! shared [`MappedSnapshot`], promoted to owned on first mutation.
//!
//! This is the backing abstraction the forest layers thread through
//! (`ForestBacking::Owned` vs `Mapped` in `spatial_session`): queries
//! read [`CowSlab::as_slice`] identically for both backings; the first
//! mutation calls [`CowSlab::make_mut`], which copies the mapped
//! entries into a freshly reserved vector exactly once. The `Arc`
//! keeps the mapped region alive for as long as any view borrows it —
//! and [`MappedSnapshot`] never moves its region after construction,
//! so the captured pointer stays valid for the `Arc`'s lifetime.

use crate::mapped::MappedSnapshot;
use std::sync::Arc;

/// A slab of `Copy` entries that is either owned or a zero-copy view
/// of a mapped snapshot.
pub struct CowSlab<T: Copy> {
    vec: Vec<T>,
    mapped: Option<MappedView<T>>,
}

struct MappedView<T> {
    /// Keeps the region (and therefore `ptr`) alive.
    _snap: Arc<MappedSnapshot>,
    ptr: *const T,
    len: usize,
}

// The view is read-only and the region outlives it via the Arc; the
// raw pointer carries no thread affinity.
unsafe impl<T: Copy + Send + Sync> Send for MappedView<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for MappedView<T> {}

impl<T: Copy> CowSlab<T> {
    /// An owned slab.
    pub fn owned(vec: Vec<T>) -> Self {
        CowSlab { vec, mapped: None }
    }

    /// A mapped view. `slice` must borrow from `snap`'s region — the
    /// constructors on [`MappedSnapshot`] uphold this.
    pub(crate) fn mapped(snap: Arc<MappedSnapshot>, slice: &[T]) -> Self {
        CowSlab {
            vec: Vec::new(),
            mapped: Some(MappedView {
                ptr: slice.as_ptr(),
                len: slice.len(),
                _snap: snap,
            }),
        }
    }

    /// Whether the slab is still a mapped view (no mutation yet).
    pub fn is_mapped(&self) -> bool {
        self.mapped.is_some()
    }

    /// The entries, whichever backing holds them.
    pub fn as_slice(&self) -> &[T] {
        match &self.mapped {
            Some(view) => unsafe { std::slice::from_raw_parts(view.ptr, view.len) },
            None => &self.vec,
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        match &self.mapped {
            Some(view) => view.len,
            None => self.vec.len(),
        }
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable access, promoting a mapped view to owned on first use
    /// (one copy, reserved to at least `min_capacity` entries so the
    /// promotion also pre-sizes for growth).
    pub fn make_mut(&mut self, min_capacity: usize) -> &mut Vec<T> {
        if let Some(view) = self.mapped.take() {
            let slice = unsafe { std::slice::from_raw_parts(view.ptr, view.len) };
            self.vec = Vec::with_capacity(min_capacity.max(view.len));
            self.vec.extend_from_slice(slice);
        }
        &mut self.vec
    }

    /// Reserves capacity for `additional` more entries when owned
    /// (no-op on a mapped view — promotion sizes the copy instead).
    pub fn reserve(&mut self, additional: usize) {
        if self.mapped.is_none() {
            self.vec.reserve(additional);
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for CowSlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CowSlab")
            .field("mapped", &self.is_mapped())
            .field("len", &self.len())
            .finish()
    }
}

impl MappedSnapshot {
    /// The parents slab as a CoW view over this mapping.
    pub fn parents_slab(self: &Arc<Self>) -> CowSlab<u32> {
        CowSlab::mapped(self.clone(), self.parents())
    }

    /// The order slab as a CoW view over this mapping.
    pub fn order_slab(self: &Arc<Self>) -> CowSlab<u32> {
        CowSlab::mapped(self.clone(), self.order())
    }

    /// The weights slab as a CoW view over this mapping.
    pub fn weights_slab(self: &Arc<Self>) -> CowSlab<u64> {
        CowSlab::mapped(self.clone(), self.weights())
    }
}
