//! The append-only mutation journal.
//!
//! Every record is **fixed width** ([`RECORD_BYTES`] = 44 bytes):
//!
//! ```text
//! [len: u32][kind: u32][a: u64][b: u64][c: u64][d: u64][crc: u32]
//! ```
//!
//! `len` is the byte count of the `kind + payload` section (always 36 —
//! the length prefix makes the framing self-describing so a future
//! version can grow records without breaking old readers), and `crc` is
//! the CRC-32 of that section. Replay ([`read_journal`]) parses records
//! front to back and **stops at the first incomplete or corrupt
//! record**: a crash mid-append tears at most the final record, and the
//! torn tail simply isn't part of the durable history. Unused payload
//! words of short records are zero.

use crate::crc32;
use std::io::{Read, Write};
use std::path::Path;

/// On-disk width of one journal record.
pub const RECORD_BYTES: usize = 44;

/// Width of the `kind + payload` section covered by `len` and `crc`.
const BODY_BYTES: usize = 36;

/// One durable forest mutation (or marker), in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// A leaf insert under `parent` with the given subtree-sum weight.
    InsertLeaf {
        /// Parent of the new leaf.
        parent: u32,
        /// Weight of the new leaf.
        weight: u64,
    },
    /// A weight overwrite on an existing vertex.
    SetWeight {
        /// The vertex whose weight changed.
        vertex: u32,
        /// The new weight.
        weight: u64,
    },
    /// A query-triggered light-first rebuild. Threshold rebuilds inside
    /// an insert are deterministic replays of the insert stream and are
    /// **not** journaled; rebuilds forced by the query path depend on
    /// which queries arrived and must be.
    Rebuild,
    /// A session RNG checkpoint (the four xoshiro256++ state words),
    /// appended by the serve layer after each executed session — it
    /// doubles as the session **commit marker** for session-atomic
    /// replay.
    RngState([u64; 4]),
}

impl Record {
    fn kind(&self) -> u32 {
        match self {
            Record::InsertLeaf { .. } => 1,
            Record::SetWeight { .. } => 2,
            Record::Rebuild => 3,
            Record::RngState(_) => 4,
        }
    }

    fn payload(&self) -> [u64; 4] {
        match *self {
            Record::InsertLeaf { parent, weight } => [parent as u64, weight, 0, 0],
            Record::SetWeight { vertex, weight } => [vertex as u64, weight, 0, 0],
            Record::Rebuild => [0; 4],
            Record::RngState(s) => s,
        }
    }

    /// Serializes the record into its fixed-width frame.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut frame = [0u8; RECORD_BYTES];
        frame[0..4].copy_from_slice(&(BODY_BYTES as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&self.kind().to_le_bytes());
        for (i, w) in self.payload().iter().enumerate() {
            frame[8 + 8 * i..16 + 8 * i].copy_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&frame[4..4 + BODY_BYTES]);
        frame[4 + BODY_BYTES..].copy_from_slice(&crc.to_le_bytes());
        frame
    }

    /// Parses one frame; `None` when the frame is torn or corrupt (the
    /// replay stop condition, not an error).
    pub fn decode(frame: &[u8]) -> Option<Record> {
        if frame.len() < RECORD_BYTES {
            return None;
        }
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        if len != BODY_BYTES {
            return None;
        }
        let stored = u32::from_le_bytes(frame[4 + BODY_BYTES..RECORD_BYTES].try_into().unwrap());
        if crc32(&frame[4..4 + BODY_BYTES]) != stored {
            return None;
        }
        let kind = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let mut w = [0u64; 4];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u64::from_le_bytes(frame[8 + 8 * i..16 + 8 * i].try_into().unwrap());
        }
        match kind {
            1 => Some(Record::InsertLeaf {
                parent: w[0] as u32,
                weight: w[1],
            }),
            2 => Some(Record::SetWeight {
                vertex: w[0] as u32,
                weight: w[1],
            }),
            3 => Some(Record::Rebuild),
            4 => Some(Record::RngState(w)),
            _ => None,
        }
    }
}

/// An open journal file accepting appends.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` — the checkpoint
    /// path: a fresh snapshot makes the old history redundant.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JournalWriter {
            file: std::fs::File::create(path)?,
        })
    }

    /// Opens the journal at `path` for appending, creating it empty if
    /// absent.
    pub fn open_append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JournalWriter {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }

    /// Appends one record (write-ahead: call before applying the
    /// mutation in memory, so the durable history is never behind the
    /// live state).
    pub fn append(&mut self, record: Record) -> std::io::Result<()> {
        self.file.write_all(&record.encode())
    }

    /// Forces appended records to disk (fsync).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Reads every intact record of the journal at `path`, in order,
/// stopping silently at a torn or corrupt tail (see the module docs).
/// A missing file is an empty journal — the state right after a
/// checkpoint truncation.
pub fn read_journal(path: impl AsRef<Path>) -> std::io::Result<Vec<Record>> {
    let mut bytes = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    Ok(parse_journal(&bytes))
}

/// [`read_journal`] over in-memory bytes (the crash-injection hook:
/// truncate the byte prefix, parse what survives).
pub fn parse_journal(bytes: &[u8]) -> Vec<Record> {
    let mut records = Vec::with_capacity(bytes.len() / RECORD_BYTES);
    let mut off = 0;
    while let Some(rec) = Record::decode(&bytes[off..]) {
        records.push(rec);
        off += RECORD_BYTES;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "spatial-store-journal-{tag}-{}",
            std::process::id()
        ))
    }

    fn sample() -> Vec<Record> {
        vec![
            Record::InsertLeaf {
                parent: 7,
                weight: 3,
            },
            Record::SetWeight {
                vertex: 2,
                weight: 100,
            },
            Record::Rebuild,
            Record::RngState([1, u64::MAX, 0xDEAD_BEEF, 42]),
            Record::InsertLeaf {
                parent: 8,
                weight: 1,
            },
        ]
    }

    #[test]
    fn roundtrip_through_a_file() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).expect("create");
        for r in sample() {
            w.append(r).expect("append");
        }
        w.sync().expect("sync");
        assert_eq!(read_journal(&path).expect("read"), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        assert_eq!(
            read_journal(temp_path("never-written")).expect("read"),
            Vec::new()
        );
    }

    #[test]
    fn open_append_continues_the_history() {
        let path = temp_path("append");
        let mut w = JournalWriter::create(&path).expect("create");
        w.append(sample()[0]).expect("append");
        drop(w);
        let mut w = JournalWriter::open_append(&path).expect("reopen");
        w.append(sample()[1]).expect("append");
        drop(w);
        assert_eq!(read_journal(&path).expect("read"), sample()[..2].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_drops_only_the_last_record() {
        let mut bytes = Vec::new();
        for r in sample() {
            bytes.extend_from_slice(&r.encode());
        }
        // Every truncation point keeps exactly the complete records.
        for cut in 0..=bytes.len() {
            let records = parse_journal(&bytes[..cut]);
            assert_eq!(
                records,
                sample()[..cut / RECORD_BYTES].to_vec(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut bytes = Vec::new();
        for r in sample() {
            bytes.extend_from_slice(&r.encode());
        }
        // Flip a payload byte of the third record: replay keeps the
        // first two and refuses everything from the corruption on.
        bytes[2 * RECORD_BYTES + 10] ^= 0x40;
        assert_eq!(parse_journal(&bytes), sample()[..2].to_vec());
    }

    #[test]
    fn unknown_kind_stops_replay() {
        let mut frame = Record::Rebuild.encode();
        frame[4] = 99; // kind no current reader understands
        let crc = crc32(&frame[4..40]);
        frame[40..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Record::decode(&frame), None);
    }
}
