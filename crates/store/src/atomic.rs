//! Temp-file + atomic-rename writes.

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the bytes land in a temp file
/// in the same directory (same filesystem, so the rename is atomic),
/// are synced to disk, and the temp file is renamed over `path`. A
/// reader — or a crash — at any point sees either the old complete
/// file or the new complete file, never a torn mix; an interrupted
/// write can no longer truncate a committed artifact in place.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best effort: don't leave the temp file behind on failure.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::atomic_write;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spatial-store-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = temp_dir("rw");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        atomic_write(&path, b"second, longer content").expect("overwrite");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"second, longer content"
        );
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files remain: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_file_name_works() {
        // Paths without a directory component write into the cwd.
        let name = format!("spatial-store-bare-{}.tmp-artifact", std::process::id());
        atomic_write(&name, b"x").expect("write");
        assert_eq!(std::fs::read(&name).expect("read"), b"x");
        std::fs::remove_file(&name).ok();
    }
}
