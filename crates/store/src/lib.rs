//! Durable forest persistence: the snapshot + journal split.
//!
//! The engines above this crate keep everything in flat spatially-laid-
//! out arrays, which makes persistence nearly free: a snapshot is the
//! arrays themselves ([`ForestSnapshot`] — straight little-endian
//! `u32`/`u64` slabs behind a checksummed, versioned header, written
//! via temp-file + atomic rename), and the mutation history between
//! snapshots is an append-only journal of fixed-width [`Record`]s
//! (length-prefixed, per-record CRC, torn-tail tolerant on replay).
//! Recovery = snapshot load + journal replay; the session layer
//! (`spatial_session::SpatialForest::recover_from`) pins the result
//! bit-identical — answers *and* charges — to the live forest.
//!
//! This crate is deliberately dependency-free and knows nothing about
//! trees or layouts: it moves validated bytes. The semantic mapping
//! (which arrays, what a record means) lives with the forest types; the
//! format contract lives in `DESIGN.md` next to this manifest.

mod atomic;
pub mod delta;
mod journal;
mod log;
mod mapped;
mod slab;
mod snapshot;

pub use atomic::atomic_write;
pub use log::{append_line, read_lines, LogLines};
pub use delta::{
    apply_pending_delta, delta_path, write_incremental, DirtyExtents, DELTA_MAGIC, DELTA_VERSION,
};
pub use journal::{parse_journal, read_journal, JournalWriter, Record, RECORD_BYTES};
pub use mapped::MappedSnapshot;
pub use slab::CowSlab;
pub use snapshot::{ForestSnapshot, SnapshotHeader, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// Why a snapshot or journal could not be decoded.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header.
    BadChecksum {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// The file is shorter than its header claims (a torn snapshot
    /// write — impossible through [`atomic_write`], possible for files
    /// produced by other means).
    Truncated,
    /// A delta and its base snapshot disagree structurally (capacity,
    /// file length, slab ids) — the incremental checkpoint cannot be
    /// applied safely.
    Inconsistent(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic => write!(f, "not a forest snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            StoreError::BadChecksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header {stored:#010x}, payload {computed:#010x}"
            ),
            StoreError::Truncated => write!(f, "snapshot shorter than its header claims"),
            StoreError::Inconsistent(what) => {
                write!(f, "incremental checkpoint inconsistency: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
/// checksum guarding the snapshot payload and each journal record. The
/// table is built at compile time; no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn crc32_known_vectors() {
        // The standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
