//! Incremental checkpoints: journal compaction that rewrites only the
//! dirty slab extents against the previous snapshot generation.
//!
//! A full checkpoint rewrites `O(file)` bytes however small the journal
//! tail was. The v2 snapshot layout makes a cheaper contract possible:
//! slabs are capacity-sized, so as long as `reserved` is unchanged (no
//! capacity doubling since the base generation), every slab offset is
//! identical between generations, and the new generation differs from
//! the base only in the header plus a set of **extents** — appended
//! tail entries, individually overwritten weight cells, and (after a
//! rebuild) the order slab.
//!
//! ## The extent protocol
//!
//! 1. Encode a *delta file* (`<snapshot>.delta`, layout below) holding
//!    the complete new header and every dirty extent, and publish it
//!    with [`crate::atomic_write`]. **The rename is the commit point.**
//! 2. Patch the base snapshot in place: header bytes, then each extent
//!    at its absolute offset; `fsync`.
//! 3. Delete the delta file.
//!
//! A crash anywhere is safe: before the rename, the base file is the
//! intact previous generation; after it, recovery re-applies the delta
//! ([`apply_pending_delta`] — every write is an absolute-offset
//! overwrite, so re-application is idempotent at any interleaving,
//! including over a half-patched file). Only after the patch is fully
//! synced is the delta removed.
//!
//! ```text
//! [magic "SFSD"][version: u32][crc: u32]   // crc over everything after
//! [new header: 68 bytes]                   // same encoding as snapshot v2
//! [extent_count: u32]
//! repeated: [slab: u32][start: u64][len: u64][len × entry bytes]
//! ```
//!
//! `slab` is 0 = parents (u32 entries), 1 = order (u32), 2 = weights
//! (u64); `start`/`len` are entry indexes into the capacity-sized slab.
//!
//! The *writer*-side validation ([`write_incremental`]) is strict: the
//! base file must carry the exact per-slab CRCs the caller tracked its
//! dirty extents against, so a stale tracker or a foreign file falls
//! back to a full rewrite instead of silently patching the wrong base.
//! The *apply*-side validation is deliberately weaker (magic, version,
//! file length): it must succeed over a torn half-patched base, whose
//! header bytes cannot be trusted.

use crate::snapshot::{
    slab_offsets, u32_bytes, u64_bytes, validate_v2_prologue, SnapshotHeader, HEADER_BYTES,
    PROLOGUE_BYTES, SLABS_OFFSET, SNAPSHOT_MAGIC,
};
use crate::{atomic_write, crc32, ForestSnapshot, StoreError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The four magic bytes every incremental-checkpoint delta starts with.
pub const DELTA_MAGIC: [u8; 4] = *b"SFSD";

/// The delta format version this build writes and reads.
pub const DELTA_VERSION: u32 = 1;

/// Where the pending delta for `snapshot_path` lives: the snapshot
/// path with `.delta` appended.
pub fn delta_path(snapshot_path: &Path) -> PathBuf {
    let mut os = snapshot_path.as_os_str().to_os_string();
    os.push(".delta");
    PathBuf::from(os)
}

/// The dirty state a forest tracked since its base generation — the
/// input [`write_incremental`] turns into extents.
#[derive(Debug, Clone, Default)]
pub struct DirtyExtents {
    /// Vertex count at the base generation. Entries `>= base_len` in
    /// every slab are dirty (appends only ever extend the tail).
    pub base_len: u32,
    /// Whether a light-first rebuild rewrote the order slab (the order
    /// is slot-indexed; a rebuild permutes all of it).
    pub order_rewritten: bool,
    /// Individually overwritten weight cells below `base_len`
    /// (unsorted, may contain duplicates).
    pub weight_cells: Vec<u32>,
}

const SLAB_PARENTS: u32 = 0;
const SLAB_ORDER: u32 = 1;
const SLAB_WEIGHTS: u32 = 2;

fn entry_width(slab: u32) -> u64 {
    match slab {
        SLAB_WEIGHTS => 8,
        _ => 4,
    }
}

/// Writes the new generation `snap` over the base snapshot at `path`
/// as an incremental checkpoint, returning the total bytes written
/// (delta file + in-place patch). Returns `Ok(None)` — *fall back to a
/// full rewrite* — when the base is unusable: missing, not v2, a
/// different capacity (a grow happened), a different vertex count than
/// `dirty.base_len`, or per-slab CRCs that don't match
/// `base_slab_crcs` (the generation the caller tracked against).
pub fn write_incremental(
    snapshot_path: impl AsRef<Path>,
    snap: &ForestSnapshot,
    dirty: &DirtyExtents,
    base_slab_crcs: [u32; 3],
) -> Result<Option<u64>, StoreError> {
    let path = snapshot_path.as_ref();
    let bytes = match commit_delta(path, snap, dirty, base_slab_crcs)? {
        Some(b) => b,
        None => return Ok(None),
    };

    // ---- Patch the base in place, then retire the delta. ----
    let patched = patch_base(path, &bytes, None)?;
    std::fs::remove_file(delta_path(path))?;
    Ok(Some(bytes.len() as u64 + patched))
}

/// Steps 1 of the extent protocol: validate the base, encode the delta,
/// and publish it atomically. Returns the delta bytes, or `None` for
/// the full-rewrite fallback. Stopping here is exactly the crash state
/// "committed but not yet applied".
fn commit_delta(
    path: &Path,
    snap: &ForestSnapshot,
    dirty: &DirtyExtents,
    base_slab_crcs: [u32; 3],
) -> Result<Option<Vec<u8>>, StoreError> {
    // Finish any committed-but-unapplied previous checkpoint first, so
    // the base we validate below is a whole generation.
    apply_pending_delta(path)?;

    let header = snap.header();
    let n = header.n;
    if n < dirty.base_len || header.slab_cap() != header.reserved {
        return Ok(None);
    }
    let base = match read_base_header(path) {
        Some(b) => b,
        None => return Ok(None),
    };
    let (base_header, base_crcs) = base;
    if base_header.n != dirty.base_len
        || base_header.reserved != header.reserved
        || base_header.slab_cap() != header.slab_cap()
        || base_crcs != base_slab_crcs
    {
        return Ok(None);
    }
    let off = slab_offsets(header.slab_cap());
    match std::fs::metadata(path) {
        Ok(m) if m.len() == off.file_len => {}
        _ => return Ok(None),
    }

    // ---- Extent list. ----
    let b = dirty.base_len as usize;
    let nn = n as usize;
    let mut extents: Vec<(u32, u64, &[u8])> = Vec::new();
    if nn > b {
        extents.push((SLAB_PARENTS, b as u64, u32_bytes(&snap.parents[b..])));
    }
    if dirty.order_rewritten {
        extents.push((SLAB_ORDER, 0, u32_bytes(&snap.order)));
    } else if nn > b {
        extents.push((SLAB_ORDER, b as u64, u32_bytes(&snap.order[b..])));
    }
    let mut cells: Vec<u32> = dirty
        .weight_cells
        .iter()
        .copied()
        .filter(|&c| (c as usize) < b)
        .collect();
    cells.sort_unstable();
    cells.dedup();
    let mut i = 0;
    while i < cells.len() {
        let start = cells[i] as usize;
        let mut end = start + 1;
        i += 1;
        while i < cells.len() && cells[i] as usize == end {
            end += 1;
            i += 1;
        }
        extents.push((
            SLAB_WEIGHTS,
            start as u64,
            u64_bytes(&snap.weights[start..end]),
        ));
    }
    if nn > b {
        extents.push((SLAB_WEIGHTS, b as u64, u64_bytes(&snap.weights[b..])));
    }

    // ---- Encode + commit the delta. ----
    let header_bytes = header.encode(snap.slab_crcs());
    let mut bytes = Vec::with_capacity(
        SLABS_OFFSET + 4 + extents.iter().map(|e| 20 + e.2.len()).sum::<usize>(),
    );
    bytes.extend_from_slice(&DELTA_MAGIC);
    bytes.extend_from_slice(&DELTA_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes()); // crc patched below
    bytes.extend_from_slice(&header_bytes);
    bytes.extend_from_slice(&(extents.len() as u32).to_le_bytes());
    for (slab, start, data) in &extents {
        bytes.extend_from_slice(&slab.to_le_bytes());
        bytes.extend_from_slice(&start.to_le_bytes());
        let len_entries = data.len() as u64 / entry_width(*slab);
        bytes.extend_from_slice(&len_entries.to_le_bytes());
        bytes.extend_from_slice(data);
    }
    let crc = crc32(&bytes[PROLOGUE_BYTES..]);
    bytes[8..12].copy_from_slice(&crc.to_le_bytes());
    atomic_write(delta_path(path), &bytes)?; // the commit point
    Ok(Some(bytes))
}

/// Reads the base file's prologue + header; `None` when missing, too
/// short, or not a valid v2 header.
fn read_base_header(path: &Path) -> Option<(SnapshotHeader, [u32; 3])> {
    let mut file = std::fs::File::open(path).ok()?;
    let mut head = [0u8; SLABS_OFFSET];
    file.read_exact(&mut head).ok()?;
    validate_v2_prologue(&head).ok()
}

/// Applies the pending delta for `snapshot_path`, if one exists:
/// patches the base file and removes the delta. Returns whether a
/// delta was applied. Idempotent and crash-safe — recovery paths call
/// this before reading a snapshot (the mmap reader does so itself).
pub fn apply_pending_delta(snapshot_path: impl AsRef<Path>) -> Result<bool, StoreError> {
    let path = snapshot_path.as_ref();
    let dpath = delta_path(path);
    let bytes = match std::fs::read(&dpath) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    patch_base(path, &bytes, None)?;
    std::fs::remove_file(&dpath)?;
    Ok(true)
}

/// Validates `delta` and writes its header + extents into the base
/// snapshot at absolute offsets, fsyncing before returning the number
/// of patched bytes. `limit` (crash injection) stops after that many
/// patched bytes — possibly mid-write — without syncing or erring.
fn patch_base(path: &Path, delta: &[u8], limit: Option<u64>) -> Result<u64, StoreError> {
    // Validate the delta as a whole before touching the base.
    if delta.len() < SLABS_OFFSET + 4 {
        return Err(StoreError::Truncated);
    }
    if delta[0..4] != DELTA_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(delta[4..8].try_into().unwrap());
    if version != DELTA_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let stored = u32::from_le_bytes(delta[8..12].try_into().unwrap());
    let computed = crc32(&delta[PROLOGUE_BYTES..]);
    if stored != computed {
        return Err(StoreError::BadChecksum { stored, computed });
    }
    let header_bytes = &delta[PROLOGUE_BYTES..SLABS_OFFSET];
    let (header, _) = SnapshotHeader::decode(header_bytes);
    // `reserved` (hence the capacity and every slab offset) is
    // identical between the base and the delta's generation, so it is
    // trustworthy even when a previous crash left the base header torn.
    let cap = header.slab_cap();
    let off = slab_offsets(cap);

    let mut ops: Vec<(u64, &[u8])> = Vec::new();
    let mut at = SLABS_OFFSET;
    let count = u32::from_le_bytes(delta[at..at + 4].try_into().unwrap());
    at += 4;
    for _ in 0..count {
        if delta.len() < at + 20 {
            return Err(StoreError::Truncated);
        }
        let slab = u32::from_le_bytes(delta[at..at + 4].try_into().unwrap());
        let start = u64::from_le_bytes(delta[at + 4..at + 12].try_into().unwrap());
        let len = u64::from_le_bytes(delta[at + 12..at + 20].try_into().unwrap());
        at += 20;
        if slab > SLAB_WEIGHTS {
            return Err(StoreError::Inconsistent("unknown delta slab id"));
        }
        let width = entry_width(slab);
        if start.checked_add(len).is_none_or(|end| end > cap) {
            return Err(StoreError::Inconsistent("delta extent beyond capacity"));
        }
        let data_len = (len * width) as usize;
        if delta.len() < at + data_len {
            return Err(StoreError::Truncated);
        }
        let slab_off = match slab {
            SLAB_PARENTS => off.parents,
            SLAB_ORDER => off.order,
            _ => off.weights,
        };
        ops.push((slab_off + start * width, &delta[at..at + data_len]));
        at += data_len;
    }
    if at != delta.len() {
        return Err(StoreError::Truncated);
    }

    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut base_prologue = [0u8; 8];
    file.read_exact(&mut base_prologue)?;
    if base_prologue[0..4] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let base_version = u32::from_le_bytes(base_prologue[4..8].try_into().unwrap());
    if base_version != 2 {
        return Err(StoreError::Inconsistent("delta against a non-v2 base"));
    }
    if file.metadata()?.len() != off.file_len {
        return Err(StoreError::Inconsistent("delta/base file length mismatch"));
    }

    // The header patch: new header CRC + new header, one contiguous
    // write at offset 8 (magic + version stay untouched).
    let mut head_patch = [0u8; 4 + HEADER_BYTES];
    head_patch[0..4].copy_from_slice(&crc32(header_bytes).to_le_bytes());
    head_patch[4..].copy_from_slice(header_bytes);

    let mut written = 0u64;
    let budget = limit.unwrap_or(u64::MAX);
    for (offset, data) in std::iter::once((8u64, &head_patch[..])).chain(ops) {
        if written >= budget {
            return Ok(written);
        }
        let take = ((budget - written) as usize).min(data.len());
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&data[..take])?;
        written += take as u64;
        if take < data.len() {
            return Ok(written); // simulated crash mid-write
        }
    }
    file.sync_all()?;
    Ok(written)
}

/// Crash-injection hook for tests: applies only the first
/// `limit_bytes` patched bytes of the pending delta (possibly tearing
/// a write in half), leaving the delta file in place — exactly the
/// state a kill mid-patch produces. Returns the bytes patched.
/// Crash-injection hook for tests: runs the protocol only through its
/// commit point — the delta is published, the base is untouched — as
/// if the process died between rename and patch. Returns the delta
/// size, or `None` when the base failed writer-side validation.
#[doc(hidden)]
pub fn commit_delta_without_applying_for_tests(
    snapshot_path: impl AsRef<Path>,
    snap: &ForestSnapshot,
    dirty: &DirtyExtents,
    base_slab_crcs: [u32; 3],
) -> Result<Option<u64>, StoreError> {
    Ok(commit_delta(snapshot_path.as_ref(), snap, dirty, base_slab_crcs)?.map(|b| b.len() as u64))
}

#[doc(hidden)]
pub fn partially_apply_pending_delta_for_tests(
    snapshot_path: impl AsRef<Path>,
    limit_bytes: u64,
) -> Result<u64, StoreError> {
    let path = snapshot_path.as_ref();
    let bytes = std::fs::read(delta_path(path))?;
    patch_base(path, &bytes, Some(limit_bytes))
}
