//! The versioned, checksummed forest snapshot.
//!
//! Format v2 (all integers little-endian):
//!
//! ```text
//! [magic "SFSN"][version: u32][header_crc: u32]          // 12-byte prologue
//! [curve: u32][root: u32][layout_dirty: u32][rebuilds: u32][grows: u32][n: u32]
//! [reserved: u64][baseline_energy: u64][insertions: u64][tag: u64]
//! [parents_crc: u32][order_crc: u32][weights_crc: u32]   // 68-byte header
//! [parents: cap × u32, 8-padded][order: cap × u32, 8-padded][weights: cap × u64]
//! ```
//!
//! Two properties distinguish v2 from the packed v1 layout (which this
//! reader still decodes):
//!
//! - **Every slab starts 8-byte-aligned** (the prologue + header is 80
//!   bytes; each slab's byte length is padded to a multiple of 8), so a
//!   reader may overlay `&[u32]`/`&[u64]` views directly on the file
//!   bytes — the zero-copy contract behind [`crate::MappedSnapshot`].
//! - **Slabs are capacity-sized**: each slab holds `cap =
//!   max(reserved, n)` entries with a zero tail beyond `n`. Because
//!   `reserved` only changes on a capacity doubling, slab offsets are
//!   *stable across inserts between grows* — the enabler for in-place
//!   extent patching by incremental checkpoints (see [`crate::delta`]).
//!
//! Integrity is split: `header_crc` covers the 68 header bytes, and one
//! CRC-32 per slab covers that slab's `n` *valid* entries (the zero
//! padding is never interpreted and is not covered). v1 carried a
//! single whole-payload CRC; decoding v1 still verifies it.
//!
//! Snapshots are only ever produced through [`crate::atomic_write`],
//! which rules out torn files from this writer; the checksums guard
//! against every other producer and against storage corruption. The
//! slabs mirror the in-memory arrays of the dynamic layout (`parents`,
//! the layout's slot → vertex `order`) and the forest (`weights`)
//! verbatim: encoding is a copy, not a traversal.

use crate::{atomic_write, crc32, StoreError};
use std::path::Path;

// The zero-copy overlay (and the slab-CRC byte views below) reinterpret
// the little-endian file bytes as host integers in place.
#[cfg(target_endian = "big")]
compile_error!("spatial-store v2 snapshots require a little-endian host");

/// The four magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SFSN";

/// The format version this build writes (and the newest it reads).
pub const SNAPSHOT_VERSION: u32 = 2;

pub(crate) const PROLOGUE_BYTES: usize = 12;
/// v2 header: 6 × u32 + 4 × u64 + 3 slab CRCs.
pub(crate) const HEADER_BYTES: usize = 6 * 4 + 4 * 8 + 3 * 4;
/// Offset of the first slab — `12 + 68 = 80`, a multiple of 8.
pub(crate) const SLABS_OFFSET: usize = PROLOGUE_BYTES + HEADER_BYTES;
/// v1 payload header (no slab CRCs, packed slabs).
const HEADER_BYTES_V1: usize = 6 * 4 + 4 * 8;

/// The scalar header shared by every v2 artifact: the owned snapshot,
/// the mmap'd reader ([`crate::MappedSnapshot`]), and the incremental
/// checkpoint delta ([`crate::delta`]). Field semantics belong to the
/// forest types; this struct is the format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Curve family, as the forest's stable curve index.
    pub curve: u32,
    /// Root vertex id.
    pub root: u32,
    /// Whether tail appends had left the layout non-light-first.
    pub layout_dirty: bool,
    /// Lifetime light-first rebuild count.
    pub rebuilds: u32,
    /// Lifetime capacity-doubling count.
    pub grows: u32,
    /// Vertex count (valid entries per slab).
    pub n: u32,
    /// Reserved curve capacity (vertex count of the next doubling).
    pub reserved: u64,
    /// Kernel energy right after the last rebuild (the quality-
    /// threshold anchor).
    pub baseline_energy: u64,
    /// Lifetime insert count.
    pub insertions: u64,
    /// Caller-owned tag (the serve layer stores its journal generation
    /// here so a checkpoint can switch journal files crash-safely).
    pub tag: u64,
}

impl SnapshotHeader {
    /// Entries per slab in the v2 file: `max(reserved, n)`. Stable
    /// across inserts until a capacity doubling changes `reserved`.
    pub fn slab_cap(&self) -> u64 {
        self.reserved.max(self.n as u64)
    }

    pub(crate) fn encode(&self, slab_crcs: [u32; 3]) -> [u8; HEADER_BYTES] {
        let mut h = [0u8; HEADER_BYTES];
        h[0..4].copy_from_slice(&self.curve.to_le_bytes());
        h[4..8].copy_from_slice(&self.root.to_le_bytes());
        h[8..12].copy_from_slice(&(self.layout_dirty as u32).to_le_bytes());
        h[12..16].copy_from_slice(&self.rebuilds.to_le_bytes());
        h[16..20].copy_from_slice(&self.grows.to_le_bytes());
        h[20..24].copy_from_slice(&self.n.to_le_bytes());
        h[24..32].copy_from_slice(&self.reserved.to_le_bytes());
        h[32..40].copy_from_slice(&self.baseline_energy.to_le_bytes());
        h[40..48].copy_from_slice(&self.insertions.to_le_bytes());
        h[48..56].copy_from_slice(&self.tag.to_le_bytes());
        h[56..60].copy_from_slice(&slab_crcs[0].to_le_bytes());
        h[60..64].copy_from_slice(&slab_crcs[1].to_le_bytes());
        h[64..68].copy_from_slice(&slab_crcs[2].to_le_bytes());
        h
    }

    /// Parses the 68 header bytes (caller has already checked length
    /// and `header_crc`).
    pub(crate) fn decode(h: &[u8]) -> (SnapshotHeader, [u32; 3]) {
        let u32_at = |o: usize| u32::from_le_bytes(h[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(h[o..o + 8].try_into().unwrap());
        (
            SnapshotHeader {
                curve: u32_at(0),
                root: u32_at(4),
                layout_dirty: u32_at(8) != 0,
                rebuilds: u32_at(12),
                grows: u32_at(16),
                n: u32_at(20),
                reserved: u64_at(24),
                baseline_energy: u64_at(32),
                insertions: u64_at(40),
                tag: u64_at(48),
            },
            [u32_at(56), u32_at(60), u32_at(64)],
        )
    }
}

/// Byte offsets of the three v2 slabs for a given capacity — all
/// multiples of 8 by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlabOffsets {
    pub parents: u64,
    pub order: u64,
    pub weights: u64,
    pub file_len: u64,
}

pub(crate) const fn pad8(bytes: u64) -> u64 {
    (bytes + 7) & !7
}

pub(crate) fn slab_offsets(cap: u64) -> SlabOffsets {
    let parents = SLABS_OFFSET as u64;
    let order = parents + pad8(4 * cap);
    let weights = order + pad8(4 * cap);
    SlabOffsets {
        parents,
        order,
        weights,
        file_len: weights + 8 * cap,
    }
}

/// The in-place byte view of a `u32` slab on a little-endian host.
pub(crate) fn u32_bytes(slab: &[u32]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(slab.as_ptr().cast::<u8>(), 4 * slab.len()) }
}

/// The in-place byte view of a `u64` slab on a little-endian host.
pub(crate) fn u64_bytes(slab: &[u64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(slab.as_ptr().cast::<u8>(), 8 * slab.len()) }
}

/// The durable image of one forest's structure: everything needed to
/// restore a `DynamicLayout` (and the forest's weights) bit-identical
/// to the live instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestSnapshot {
    /// Curve family, as the forest's stable curve index.
    pub curve: u32,
    /// Root vertex id.
    pub root: u32,
    /// Whether tail appends had left the layout non-light-first.
    pub layout_dirty: bool,
    /// Lifetime light-first rebuild count.
    pub rebuilds: u32,
    /// Lifetime capacity-doubling count.
    pub grows: u32,
    /// Reserved curve capacity (vertex count of the next doubling).
    pub reserved: u64,
    /// Kernel energy right after the last rebuild (the quality-
    /// threshold anchor).
    pub baseline_energy: u64,
    /// Lifetime insert count.
    pub insertions: u64,
    /// Caller-owned tag (see [`SnapshotHeader::tag`]).
    pub tag: u64,
    /// Parent of every vertex (`u32::MAX` for the root).
    pub parents: Vec<u32>,
    /// The layout's linear order: `order[slot] = vertex`.
    pub order: Vec<u32>,
    /// Subtree-sum weight of every vertex.
    pub weights: Vec<u64>,
}

impl ForestSnapshot {
    /// The scalar header of this snapshot.
    pub fn header(&self) -> SnapshotHeader {
        SnapshotHeader {
            curve: self.curve,
            root: self.root,
            layout_dirty: self.layout_dirty,
            rebuilds: self.rebuilds,
            grows: self.grows,
            n: self.parents.len() as u32,
            reserved: self.reserved,
            baseline_energy: self.baseline_energy,
            insertions: self.insertions,
            tag: self.tag,
        }
    }

    /// Entries per slab in the encoded v2 file (see
    /// [`SnapshotHeader::slab_cap`]).
    pub fn slab_cap(&self) -> u64 {
        self.header().slab_cap()
    }

    /// CRC-32 of each slab's valid entries, in `[parents, order,
    /// weights]` order — the per-slab integrity words of the v2 header,
    /// also used by incremental checkpoints to validate that the base
    /// file on disk is the generation the dirty extents were tracked
    /// against.
    pub fn slab_crcs(&self) -> [u32; 3] {
        [
            crc32(u32_bytes(&self.parents)),
            crc32(u32_bytes(&self.order)),
            crc32(u64_bytes(&self.weights)),
        ]
    }

    /// Serializes the snapshot to its on-disk v2 byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.parents.len();
        assert_eq!(self.order.len(), n, "order/parents length mismatch");
        assert_eq!(self.weights.len(), n, "weights/parents length mismatch");
        let off = slab_offsets(self.slab_cap());
        let mut bytes = vec![0u8; off.file_len as usize];
        bytes[0..4].copy_from_slice(&SNAPSHOT_MAGIC);
        bytes[4..8].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let header = self.header().encode(self.slab_crcs());
        bytes[8..12].copy_from_slice(&crc32(&header).to_le_bytes());
        bytes[PROLOGUE_BYTES..SLABS_OFFSET].copy_from_slice(&header);
        let p = off.parents as usize;
        bytes[p..p + 4 * n].copy_from_slice(u32_bytes(&self.parents));
        let o = off.order as usize;
        bytes[o..o + 4 * n].copy_from_slice(u32_bytes(&self.order));
        let w = off.weights as usize;
        bytes[w..w + 8 * n].copy_from_slice(u64_bytes(&self.weights));
        bytes
    }

    /// The packed v1 encoding — kept only so tests (and tooling) can
    /// exercise the v1 read-back compatibility path.
    #[doc(hidden)]
    pub fn encode_v1(&self) -> Vec<u8> {
        let n = self.parents.len();
        let mut bytes = Vec::with_capacity(PROLOGUE_BYTES + HEADER_BYTES_V1 + 16 * n);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // crc patched below
        bytes.extend_from_slice(&self.curve.to_le_bytes());
        bytes.extend_from_slice(&self.root.to_le_bytes());
        bytes.extend_from_slice(&(self.layout_dirty as u32).to_le_bytes());
        bytes.extend_from_slice(&self.rebuilds.to_le_bytes());
        bytes.extend_from_slice(&self.grows.to_le_bytes());
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        bytes.extend_from_slice(&self.reserved.to_le_bytes());
        bytes.extend_from_slice(&self.baseline_energy.to_le_bytes());
        bytes.extend_from_slice(&self.insertions.to_le_bytes());
        bytes.extend_from_slice(&self.tag.to_le_bytes());
        for &p in &self.parents {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        for &v in &self.order {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for &w in &self.weights {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&bytes[PROLOGUE_BYTES..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses and validates a snapshot (magic, version, checksums, slab
    /// lengths). Reads both v2 and the packed v1 layout.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < PROLOGUE_BYTES {
            return Err(StoreError::Truncated);
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        match version {
            1 => Self::decode_v1(bytes),
            2 => Self::decode_v2(bytes),
            v => Err(StoreError::UnsupportedVersion(v)),
        }
    }

    fn decode_v2(bytes: &[u8]) -> Result<Self, StoreError> {
        let (header, slab_crcs) = validate_v2_prologue(bytes)?;
        let off = slab_offsets(header.slab_cap());
        if bytes.len() as u64 != off.file_len {
            return Err(StoreError::Truncated);
        }
        let n = header.n as usize;
        let read_u32s = |start: u64| {
            let s = start as usize;
            (0..n)
                .map(|i| u32::from_le_bytes(bytes[s + 4 * i..s + 4 * i + 4].try_into().unwrap()))
                .collect::<Vec<u32>>()
        };
        let parents = read_u32s(off.parents);
        let order = read_u32s(off.order);
        let w = off.weights as usize;
        let weights: Vec<u64> = (0..n)
            .map(|i| u64::from_le_bytes(bytes[w + 8 * i..w + 8 * i + 8].try_into().unwrap()))
            .collect();
        for (&stored, data) in
            slab_crcs
                .iter()
                .zip([u32_bytes(&parents), u32_bytes(&order), u64_bytes(&weights)])
        {
            let computed = crc32(data);
            if stored != computed {
                return Err(StoreError::BadChecksum { stored, computed });
            }
        }
        Ok(Self::from_header(header, parents, order, weights))
    }

    fn decode_v1(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < PROLOGUE_BYTES + HEADER_BYTES_V1 {
            return Err(StoreError::Truncated);
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let computed = crc32(&bytes[PROLOGUE_BYTES..]);
        if stored != computed {
            return Err(StoreError::BadChecksum { stored, computed });
        }
        let mut off = PROLOGUE_BYTES;
        let mut next_u32 = |bytes: &[u8]| {
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            off += 4;
            v
        };
        let curve = next_u32(bytes);
        let root = next_u32(bytes);
        let layout_dirty = next_u32(bytes) != 0;
        let rebuilds = next_u32(bytes);
        let grows = next_u32(bytes);
        let n = next_u32(bytes) as usize;
        let mut next_u64 = |bytes: &[u8]| {
            let v = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            off += 8;
            v
        };
        let reserved = next_u64(bytes);
        let baseline_energy = next_u64(bytes);
        let insertions = next_u64(bytes);
        let tag = next_u64(bytes);
        if bytes.len() != off + 16 * n {
            return Err(StoreError::Truncated);
        }
        let mut parents = Vec::with_capacity(n);
        for i in 0..n {
            parents.push(u32::from_le_bytes(
                bytes[off + 4 * i..off + 4 * i + 4].try_into().unwrap(),
            ));
        }
        off += 4 * n;
        let mut order = Vec::with_capacity(n);
        for i in 0..n {
            order.push(u32::from_le_bytes(
                bytes[off + 4 * i..off + 4 * i + 4].try_into().unwrap(),
            ));
        }
        off += 4 * n;
        let mut weights = Vec::with_capacity(n);
        for i in 0..n {
            weights.push(u64::from_le_bytes(
                bytes[off + 8 * i..off + 8 * i + 8].try_into().unwrap(),
            ));
        }
        Ok(ForestSnapshot {
            curve,
            root,
            layout_dirty,
            rebuilds,
            grows,
            reserved,
            baseline_energy,
            insertions,
            tag,
            parents,
            order,
            weights,
        })
    }

    pub(crate) fn from_header(
        h: SnapshotHeader,
        parents: Vec<u32>,
        order: Vec<u32>,
        weights: Vec<u64>,
    ) -> Self {
        ForestSnapshot {
            curve: h.curve,
            root: h.root,
            layout_dirty: h.layout_dirty,
            rebuilds: h.rebuilds,
            grows: h.grows,
            reserved: h.reserved,
            baseline_energy: h.baseline_energy,
            insertions: h.insertions,
            tag: h.tag,
            parents,
            order,
            weights,
        }
    }

    /// Writes the snapshot to `path` via temp-file + atomic rename.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, &self.encode())
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// Does **not** apply a pending incremental-checkpoint delta —
    /// recovery paths call [`crate::apply_pending_delta`] first (the
    /// mmap reader [`crate::MappedSnapshot::open`] does so itself).
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::decode(&std::fs::read(path)?)
    }
}

/// Checks magic, version == 2, and the header CRC; returns the parsed
/// header + slab CRCs. Shared by the owned decoder, the mmap reader,
/// and the delta applier.
pub(crate) fn validate_v2_prologue(bytes: &[u8]) -> Result<(SnapshotHeader, [u32; 3]), StoreError> {
    if bytes.len() < SLABS_OFFSET {
        return Err(StoreError::Truncated);
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != 2 {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let computed = crc32(&bytes[PROLOGUE_BYTES..SLABS_OFFSET]);
    if stored != computed {
        return Err(StoreError::BadChecksum { stored, computed });
    }
    Ok(SnapshotHeader::decode(&bytes[PROLOGUE_BYTES..SLABS_OFFSET]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForestSnapshot {
        ForestSnapshot {
            curve: 0,
            root: 2,
            layout_dirty: true,
            rebuilds: 3,
            grows: 1,
            reserved: 16,
            baseline_energy: 77,
            insertions: 5,
            tag: 9,
            parents: vec![2, 0, u32::MAX, 1, 1],
            order: vec![2, 0, 1, 3, 4],
            weights: vec![1, 10, 1, 4, 1],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        assert_eq!(
            ForestSnapshot::decode(&snap.encode()).expect("decode"),
            snap
        );
    }

    #[test]
    fn v1_readback_compat() {
        let snap = sample();
        assert_eq!(
            ForestSnapshot::decode(&snap.encode_v1()).expect("decode v1"),
            snap
        );
    }

    #[test]
    fn v2_slabs_are_capacity_sized_and_aligned() {
        let snap = sample();
        let bytes = snap.encode();
        let off = slab_offsets(snap.slab_cap());
        assert_eq!(bytes.len() as u64, off.file_len);
        for o in [off.parents, off.order, off.weights] {
            assert_eq!(o % 8, 0, "slab offset {o} not 8-aligned");
        }
        // cap = reserved (16) here: growing n without growing reserved
        // must keep every slab offset identical.
        let mut grown = snap.clone();
        grown.parents.push(0);
        grown.order.push(5);
        grown.weights.push(2);
        assert_eq!(slab_offsets(grown.slab_cap()), off);
        assert_eq!(grown.encode().len(), bytes.len());
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "spatial-store-snap-roundtrip-{}",
            std::process::id()
        ));
        sample().write_to(&path).expect("write");
        assert_eq!(ForestSnapshot::read_from(&path).expect("read"), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let snap = sample();
        let good = snap.encode();
        let off = slab_offsets(snap.slab_cap());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            ForestSnapshot::decode(&bad_magic),
            Err(StoreError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ForestSnapshot::decode(&bad_version),
            Err(StoreError::UnsupportedVersion(99))
        ));

        // A flipped bit in the header or in any slab's valid entries
        // fails a checksum (the zero padding is not interpreted and not
        // covered).
        let n = snap.parents.len();
        for at in [
            PROLOGUE_BYTES,
            PROLOGUE_BYTES + 20,
            off.parents as usize,
            off.order as usize + 4 * n - 1,
            off.weights as usize + 8 * n - 1,
        ] {
            let mut flipped = good.clone();
            flipped[at] ^= 1;
            assert!(
                matches!(
                    ForestSnapshot::decode(&flipped),
                    Err(StoreError::BadChecksum { .. })
                ),
                "flip at {at}"
            );
        }

        // A truncated file fails before the checksum can even be read.
        assert!(matches!(
            ForestSnapshot::decode(&good[..8]),
            Err(StoreError::Truncated)
        ));
        assert!(matches!(
            ForestSnapshot::decode(&good[..good.len() - 8]),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn empty_forest_snapshot() {
        let snap = ForestSnapshot {
            curve: 1,
            root: 0,
            layout_dirty: false,
            rebuilds: 0,
            grows: 0,
            reserved: 4,
            baseline_energy: 1,
            insertions: 0,
            tag: 0,
            parents: Vec::new(),
            order: Vec::new(),
            weights: Vec::new(),
        };
        assert_eq!(
            ForestSnapshot::decode(&snap.encode()).expect("decode"),
            snap
        );
    }
}
