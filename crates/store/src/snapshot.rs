//! The versioned, checksummed forest snapshot.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic "SFSN"][version: u32][crc: u32]   // 12-byte prologue
//! [curve: u32][root: u32][layout_dirty: u32][rebuilds: u32][grows: u32]
//! [n: u32][reserved: u64][baseline_energy: u64][insertions: u64][tag: u64]
//! [parents: n × u32][order: n × u32][weights: n × u64]
//! ```
//!
//! `crc` is the CRC-32 of everything after the prologue, so a torn or
//! bit-rotted snapshot is rejected as a whole — snapshots are only ever
//! produced through [`crate::atomic_write`], which already rules out
//! torn files from this writer; the checksum guards against every other
//! producer and against storage corruption. The slabs mirror the
//! in-memory arrays of the dynamic layout (`parents`, the layout's
//! slot → vertex `order`) and the forest (`weights`) verbatim: encoding
//! is a copy, not a traversal.

use crate::{atomic_write, crc32, StoreError};
use std::path::Path;

/// The four magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SFSN";

/// The format version this build writes (and the newest it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// The durable image of one forest's structure: everything needed to
/// restore a `DynamicLayout` (and the forest's weights) bit-identical
/// to the live instance. Field semantics belong to the forest types;
/// this struct is the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestSnapshot {
    /// Curve family, as the forest's stable curve index.
    pub curve: u32,
    /// Root vertex id.
    pub root: u32,
    /// Whether tail appends had left the layout non-light-first.
    pub layout_dirty: bool,
    /// Lifetime light-first rebuild count.
    pub rebuilds: u32,
    /// Lifetime capacity-doubling count.
    pub grows: u32,
    /// Reserved curve capacity (vertex count of the next doubling).
    pub reserved: u64,
    /// Kernel energy right after the last rebuild (the quality-
    /// threshold anchor).
    pub baseline_energy: u64,
    /// Lifetime insert count.
    pub insertions: u64,
    /// Caller-owned tag (the serve layer stores its journal generation
    /// here so a checkpoint can switch journal files crash-safely).
    pub tag: u64,
    /// Parent of every vertex (`u32::MAX` for the root).
    pub parents: Vec<u32>,
    /// The layout's linear order: `order[slot] = vertex`.
    pub order: Vec<u32>,
    /// Subtree-sum weight of every vertex.
    pub weights: Vec<u64>,
}

const PROLOGUE_BYTES: usize = 12;
const HEADER_BYTES: usize = 6 * 4 + 4 * 8; // payload header after the prologue

impl ForestSnapshot {
    /// Serializes the snapshot to its on-disk byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.parents.len();
        assert_eq!(self.order.len(), n, "order/parents length mismatch");
        assert_eq!(self.weights.len(), n, "weights/parents length mismatch");
        let mut bytes = Vec::with_capacity(PROLOGUE_BYTES + HEADER_BYTES + 16 * n);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // crc patched below
        bytes.extend_from_slice(&self.curve.to_le_bytes());
        bytes.extend_from_slice(&self.root.to_le_bytes());
        bytes.extend_from_slice(&(self.layout_dirty as u32).to_le_bytes());
        bytes.extend_from_slice(&self.rebuilds.to_le_bytes());
        bytes.extend_from_slice(&self.grows.to_le_bytes());
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        bytes.extend_from_slice(&self.reserved.to_le_bytes());
        bytes.extend_from_slice(&self.baseline_energy.to_le_bytes());
        bytes.extend_from_slice(&self.insertions.to_le_bytes());
        bytes.extend_from_slice(&self.tag.to_le_bytes());
        for &p in &self.parents {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        for &v in &self.order {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for &w in &self.weights {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&bytes[PROLOGUE_BYTES..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses and validates a snapshot (magic, version, checksum,
    /// slab lengths).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < PROLOGUE_BYTES + HEADER_BYTES {
            return Err(StoreError::Truncated);
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let computed = crc32(&bytes[PROLOGUE_BYTES..]);
        if stored != computed {
            return Err(StoreError::BadChecksum { stored, computed });
        }
        let mut off = PROLOGUE_BYTES;
        let mut next_u32 = |bytes: &[u8]| {
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            off += 4;
            v
        };
        let curve = next_u32(bytes);
        let root = next_u32(bytes);
        let layout_dirty = next_u32(bytes) != 0;
        let rebuilds = next_u32(bytes);
        let grows = next_u32(bytes);
        let n = next_u32(bytes) as usize;
        let mut next_u64 = |bytes: &[u8]| {
            let v = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            off += 8;
            v
        };
        let reserved = next_u64(bytes);
        let baseline_energy = next_u64(bytes);
        let insertions = next_u64(bytes);
        let tag = next_u64(bytes);
        if bytes.len() != off + 16 * n {
            return Err(StoreError::Truncated);
        }
        let mut parents = Vec::with_capacity(n);
        for i in 0..n {
            parents.push(u32::from_le_bytes(
                bytes[off + 4 * i..off + 4 * i + 4].try_into().unwrap(),
            ));
        }
        off += 4 * n;
        let mut order = Vec::with_capacity(n);
        for i in 0..n {
            order.push(u32::from_le_bytes(
                bytes[off + 4 * i..off + 4 * i + 4].try_into().unwrap(),
            ));
        }
        off += 4 * n;
        let mut weights = Vec::with_capacity(n);
        for i in 0..n {
            weights.push(u64::from_le_bytes(
                bytes[off + 8 * i..off + 8 * i + 8].try_into().unwrap(),
            ));
        }
        Ok(ForestSnapshot {
            curve,
            root,
            layout_dirty,
            rebuilds,
            grows,
            reserved,
            baseline_energy,
            insertions,
            tag,
            parents,
            order,
            weights,
        })
    }

    /// Writes the snapshot to `path` via temp-file + atomic rename.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, &self.encode())
    }

    /// Reads and validates the snapshot at `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::decode(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForestSnapshot {
        ForestSnapshot {
            curve: 0,
            root: 2,
            layout_dirty: true,
            rebuilds: 3,
            grows: 1,
            reserved: 16,
            baseline_energy: 77,
            insertions: 5,
            tag: 9,
            parents: vec![2, 0, u32::MAX, 1, 1],
            order: vec![2, 0, 1, 3, 4],
            weights: vec![1, 10, 1, 4, 1],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        assert_eq!(
            ForestSnapshot::decode(&snap.encode()).expect("decode"),
            snap
        );
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "spatial-store-snap-roundtrip-{}",
            std::process::id()
        ));
        sample().write_to(&path).expect("write");
        assert_eq!(ForestSnapshot::read_from(&path).expect("read"), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let snap = sample();
        let good = snap.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            ForestSnapshot::decode(&bad_magic),
            Err(StoreError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ForestSnapshot::decode(&bad_version),
            Err(StoreError::UnsupportedVersion(99))
        ));

        // A flipped payload bit anywhere fails the checksum.
        for at in [12, 20, good.len() - 1] {
            let mut flipped = good.clone();
            flipped[at] ^= 1;
            assert!(
                matches!(
                    ForestSnapshot::decode(&flipped),
                    Err(StoreError::BadChecksum { .. })
                ),
                "flip at {at}"
            );
        }

        // A truncated file fails before the checksum can even be read.
        assert!(matches!(
            ForestSnapshot::decode(&good[..8]),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn empty_forest_snapshot() {
        let snap = ForestSnapshot {
            curve: 1,
            root: 0,
            layout_dirty: false,
            rebuilds: 0,
            grows: 0,
            reserved: 4,
            baseline_energy: 1,
            insertions: 0,
            tag: 0,
            parents: Vec::new(),
            order: Vec::new(),
            weights: Vec::new(),
        };
        assert_eq!(
            ForestSnapshot::decode(&snap.encode()).expect("decode"),
            snap
        );
    }
}
