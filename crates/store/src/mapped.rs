//! Zero-copy, mmap-backed snapshot reading.
//!
//! [`MappedSnapshot`] opens a v2 snapshot file and serves the three
//! slabs as borrowed `&[u32]`/`&[u64]` views directly over the mapped
//! bytes — no decode, no heap copy of the slabs. The v2 format
//! guarantees every slab offset is 8-byte-aligned and mmap regions are
//! page-aligned, so the overlay casts are alignment-safe (asserted,
//! and pinned by `tests/mapped.rs`). All three per-slab CRCs are
//! verified on open; after that the region is immutable and shared
//! freely across threads.
//!
//! On non-Unix targets (no `mmap`) the file is read into an 8-byte-
//! aligned heap buffer instead; the view API is identical, only the
//! out-of-core property is lost.
//!
//! Safe in-place patching: incremental checkpoints
//! ([`crate::write_incremental`]) patch the *file* while a reader may
//! still hold a mapping. This is sound because the mapping is private
//! (`MAP_PRIVATE`) and every patched byte range is either the header,
//! a slab tail beyond the mapped generation's `n`, or an extent whose
//! slab the owning forest has already promoted to owned memory — the
//! `n` valid entries a live view can observe never change value.

use crate::snapshot::{slab_offsets, validate_v2_prologue, SnapshotHeader};
use crate::{crc32, ForestSnapshot, StoreError};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// The backing bytes: a private read-only mapping on Unix, an aligned
/// heap buffer elsewhere. Never mutated after construction.
enum Region {
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    #[allow(dead_code)] // the only variant off-Unix
    Heap { buf: Vec<u64>, len: usize },
}

// The region is read-only after construction: shared access from any
// thread is safe, and the raw pointer is owned (unmapped on drop).
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    #[cfg(unix)]
    fn map(path: &Path) -> std::io::Result<Region> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap rejects zero-length maps; an empty file can't be a
            // snapshot anyway — hand back an empty heap region and let
            // validation report Truncated.
            return Ok(Region::Heap {
                buf: Vec::new(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Region::Mmap {
            ptr: ptr.cast(),
            len,
        })
    }

    #[cfg(not(unix))]
    fn map(path: &Path) -> std::io::Result<Region> {
        Self::read_aligned(path)
    }

    /// The fallback: the whole file in a `u64`-backed (so 8-aligned)
    /// heap buffer.
    #[allow(dead_code)]
    fn read_aligned(path: &Path) -> std::io::Result<Region> {
        let bytes = std::fs::read(path)?;
        let len = bytes.len();
        let mut buf = vec![0u64; len.div_ceil(8)];
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast::<u8>(), len);
        }
        Ok(Region::Heap { buf, len })
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Region::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Region::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
            },
        }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Region::Mmap { ptr, len } = self {
            unsafe {
                sys::munmap(ptr.cast(), *len);
            }
        }
    }
}

/// A validated v2 snapshot served zero-copy from an mmap'd (or, off-
/// Unix, aligned heap) region. See the module docs for the safety
/// argument around concurrent in-place patching.
pub struct MappedSnapshot {
    region: Region,
    header: SnapshotHeader,
    slab_crcs: [u32; 3],
    parents_off: usize,
    order_off: usize,
    weights_off: usize,
}

impl std::fmt::Debug for MappedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSnapshot")
            .field("header", &self.header)
            .field("file_len", &self.region.bytes().len())
            .finish()
    }
}

impl MappedSnapshot {
    /// Maps and validates the v2 snapshot at `path`: magic, version,
    /// header CRC, file length, and all three slab CRCs. A pending
    /// incremental-checkpoint delta is applied (crash recovery) before
    /// mapping. v1 snapshots are not mappable and return
    /// [`StoreError::UnsupportedVersion`]`(1)` — callers that must read
    /// them fall back to [`ForestSnapshot::read_from`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        crate::delta::apply_pending_delta(path)?;
        let region = Region::map(path)?;
        let bytes = region.bytes();
        let (header, slab_crcs) = validate_v2_prologue(bytes)?;
        let off = slab_offsets(header.slab_cap());
        if bytes.len() as u64 != off.file_len {
            return Err(StoreError::Truncated);
        }
        let n = header.n as usize;
        let slabs = [
            (off.parents as usize, 4 * n),
            (off.order as usize, 4 * n),
            (off.weights as usize, 8 * n),
        ];
        for ((start, len), &stored) in slabs.into_iter().zip(&slab_crcs) {
            let computed = crc32(&bytes[start..start + len]);
            if stored != computed {
                return Err(StoreError::BadChecksum { stored, computed });
            }
        }
        assert_eq!(
            bytes.as_ptr() as usize % 8,
            0,
            "mapped region must be 8-byte-aligned"
        );
        Ok(MappedSnapshot {
            region,
            header,
            slab_crcs,
            parents_off: off.parents as usize,
            order_off: off.order as usize,
            weights_off: off.weights as usize,
        })
    }

    /// The scalar header.
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Vertex count (valid entries per slab).
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Total mapped file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.region.bytes().len() as u64
    }

    /// The stored per-slab CRCs (`[parents, order, weights]`) — the
    /// base-generation identity used by incremental checkpoints.
    pub fn slab_crcs(&self) -> [u32; 3] {
        self.slab_crcs
    }

    fn view<T>(&self, off: usize) -> &[T] {
        let bytes = self.region.bytes();
        let ptr = unsafe { bytes.as_ptr().add(off) };
        debug_assert_eq!(
            ptr as usize % std::mem::align_of::<T>(),
            0,
            "slab view misaligned"
        );
        unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), self.n()) }
    }

    /// Zero-copy view of the parents slab.
    pub fn parents(&self) -> &[u32] {
        self.view(self.parents_off)
    }

    /// Zero-copy view of the layout-order slab.
    pub fn order(&self) -> &[u32] {
        self.view(self.order_off)
    }

    /// Zero-copy view of the weights slab.
    pub fn weights(&self) -> &[u64] {
        self.view(self.weights_off)
    }

    /// Byte span `(offset, len)` of the valid parents entries within
    /// the file — the unit the paging charge model prices.
    pub fn parents_span(&self) -> (u64, u64) {
        (self.parents_off as u64, 4 * self.n() as u64)
    }

    /// Byte span of the valid order entries.
    pub fn order_span(&self) -> (u64, u64) {
        (self.order_off as u64, 4 * self.n() as u64)
    }

    /// Byte span of the valid weights entries.
    pub fn weights_span(&self) -> (u64, u64) {
        (self.weights_off as u64, 8 * self.n() as u64)
    }

    /// Materializes an owned [`ForestSnapshot`] (copies the slabs).
    pub fn to_snapshot(&self) -> ForestSnapshot {
        ForestSnapshot::from_header(
            self.header,
            self.parents().to_vec(),
            self.order().to_vec(),
            self.weights().to_vec(),
        )
    }
}
