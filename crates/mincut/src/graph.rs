//! Weighted graphs with a designated spanning tree.

use rand::Rng;
use spatial_tree::{generators, NodeId, Tree};

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Edge weight.
    pub weight: u64,
}

/// A connected weighted graph given as a spanning tree plus non-tree
/// edges — the input shape of Karger's 1-respecting cut subproblem.
#[derive(Debug, Clone)]
pub struct SpannedGraph {
    tree: Tree,
    /// Weights of the tree edges, indexed by the child endpoint
    /// (`tree_weight[v]` is the weight of the edge `parent(v) — v`;
    /// unused at the root).
    tree_weight: Vec<u64>,
    /// The non-tree edges.
    extra: Vec<WeightedEdge>,
}

impl SpannedGraph {
    /// Wraps a spanning tree, per-tree-edge weights, and non-tree edges.
    ///
    /// # Panics
    /// Panics on endpoint out of range, self-loop non-tree edges, or a
    /// weight vector of the wrong length.
    pub fn new(tree: Tree, tree_weight: Vec<u64>, extra: Vec<WeightedEdge>) -> Self {
        assert_eq!(
            tree_weight.len() as u32,
            tree.n(),
            "one weight per vertex (child endpoint)"
        );
        for e in &extra {
            assert!(
                e.a < tree.n() && e.b < tree.n(),
                "edge endpoint out of range"
            );
            assert_ne!(e.a, e.b, "self-loops have no cut contribution");
        }
        SpannedGraph {
            tree,
            tree_weight,
            extra,
        }
    }

    /// The spanning tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.tree.n()
    }

    /// Weight of the tree edge above `v`.
    pub fn tree_weight(&self, v: NodeId) -> u64 {
        self.tree_weight[v as usize]
    }

    /// The non-tree edges.
    pub fn extra_edges(&self) -> &[WeightedEdge] {
        &self.extra
    }

    /// Weighted degree of each vertex (sum over all incident edges,
    /// tree and non-tree).
    pub fn weighted_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n() as usize];
        for v in self.tree.vertices() {
            if let Some(p) = self.tree.parent(v) {
                deg[v as usize] += self.tree_weight[v as usize];
                deg[p as usize] += self.tree_weight[v as usize];
            }
        }
        for e in &self.extra {
            deg[e.a as usize] += e.weight;
            deg[e.b as usize] += e.weight;
        }
        deg
    }

    /// A random connected graph: a uniform random spanning tree over
    /// `n` vertices plus `extra` random non-tree edges, all weights in
    /// `1..=max_weight`.
    pub fn random<R: Rng>(n: u32, extra: usize, max_weight: u64, rng: &mut R) -> Self {
        assert!(n >= 2, "cuts need at least two vertices");
        let tree = generators::uniform_random(n, rng);
        let mut tree_weight = vec![0u64; n as usize];
        for v in tree.vertices() {
            if tree.parent(v).is_some() {
                tree_weight[v as usize] = rng.gen_range(1..=max_weight);
            }
        }
        let extra_edges = (0..extra)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                WeightedEdge {
                    a,
                    b,
                    weight: rng.gen_range(1..=max_weight),
                }
            })
            .collect();
        SpannedGraph::new(tree, tree_weight, extra_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::NIL;

    #[test]
    fn weighted_degrees_count_both_sides() {
        // Path 0—1—2 with weights 5, 7 and one extra edge (0, 2, w=3).
        let tree = Tree::from_parents(0, vec![NIL, 0, 1]);
        let g = SpannedGraph::new(
            tree,
            vec![0, 5, 7],
            vec![WeightedEdge {
                a: 0,
                b: 2,
                weight: 3,
            }],
        );
        assert_eq!(g.weighted_degrees(), vec![8, 12, 10]);
    }

    #[test]
    fn random_graph_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SpannedGraph::random(100, 50, 10, &mut rng);
        assert_eq!(g.n(), 100);
        assert_eq!(g.extra_edges().len(), 50);
        assert!(g.extra_edges().iter().all(|e| e.a != e.b));
        assert!(g
            .tree()
            .vertices()
            .filter(|&v| g.tree().parent(v).is_some())
            .all(|v| g.tree_weight(v) >= 1));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let tree = Tree::from_parents(0, vec![NIL, 0]);
        let _ = SpannedGraph::new(
            tree,
            vec![0, 1],
            vec![WeightedEdge {
                a: 1,
                b: 1,
                weight: 1,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "one weight per vertex")]
    fn rejects_wrong_weight_len() {
        let tree = Tree::from_parents(0, vec![NIL, 0]);
        let _ = SpannedGraph::new(tree, vec![0], vec![]);
    }
}
