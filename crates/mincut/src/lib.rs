//! Tree-respecting minimum cuts on the spatial computer — the
//! application the paper cites for its treefix and LCA primitives
//! (Karger \[28\]; Anderson & Blelloch \[1\]; Geissmann & Gianinazzi \[19\]).
//!
//! Karger's minimum-cut framework reduces global minimum cut to many
//! instances of: *given a spanning tree `T` of a weighted graph `G`,
//! find the minimum cut that crosses exactly one tree edge* (a
//! "1-respecting" cut). For the tree edge above vertex `v`, that cut's
//! weight is the total weight of graph edges with exactly one endpoint
//! in `v`'s subtree:
//!
//! ```text
//! cut(v) = wdeg(subtree(v)) − 2·internal(subtree(v))
//! ```
//!
//! where `wdeg` sums the weighted degrees over the subtree and
//! `internal` sums the weights of edges with *both* endpoints inside.
//! Both terms are treefix sums: `wdeg` directly, and `internal` after
//! observing that both endpoints of edge `e = (a, b)` lie in
//! `subtree(v)` iff `LCA(a, b)` does — so scattering each edge's weight
//! onto its LCA and running one more bottom-up treefix gives
//! `internal`. The pipeline is exactly the paper's toolbox:
//!
//! 1. batched LCA over the non-tree edges (§VI),
//! 2. two bottom-up treefix sums (§V),
//!
//! for `O((n + q) log n)` energy and `O(log² n)` depth w.h.p., where
//! `q` is the number of non-tree edges.
//!
//! The pipeline runs on the flat-array engines:
//! [`respect::MinCutPipeline`] holds a reusable
//! [`spatial_lca::LcaEngine`] (layer-indexed CSR subtree cover,
//! precomputed relay schedule) and shares its light-first child CSR
//! with the fused treefix, so repeated Las Vegas passes over the same
//! graph pay the structural setup once. The seed pipeline is retained
//! in [`reference`] and pinned by differential tests (identical cuts,
//! minima, and machine charges).

pub mod graph;
#[doc(hidden)]
pub mod reference;
pub mod respect;

pub use graph::{SpannedGraph, WeightedEdge};
pub use respect::{min_cut_host, one_respecting_cuts, MinCutPipeline, MinCutResult};
