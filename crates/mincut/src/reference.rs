//! The seed 1-respecting min-cut pipeline, retained as the
//! differential baseline: it drives the retained seed LCA
//! implementation ([`spatial_lca::reference`]) and rebuilds all state
//! per call. The `pipeline_vs_reference` suite pins the optimized
//! [`crate::respect::MinCutPipeline`] to it — identical cuts, minima,
//! and machine charges.

use crate::graph::SpannedGraph;
use crate::respect::MinCutResult;
use rand::Rng;
use spatial_layout::Layout;
use spatial_lca::reference::batched_lca_reference;
use spatial_model::{collectives, Machine};
use spatial_tree::NodeId;
use spatial_treefix::{treefix_bottom_up, Add};

/// The seed pipeline (batched LCA → weight scatter → fused treefix →
/// all-reduce), kept as the differential baseline. Same contract as
/// [`crate::respect::one_respecting_cuts`].
pub fn one_respecting_cuts_reference<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    graph: &SpannedGraph,
    rng: &mut R,
) -> MinCutResult {
    let tree = graph.tree();
    let n = tree.n();

    // Step 1: batched LCA of the non-tree edges.
    let queries: Vec<(NodeId, NodeId)> = graph.extra_edges().iter().map(|e| (e.a, e.b)).collect();
    let lca = if queries.is_empty() {
        None
    } else {
        Some(batched_lca_reference(machine, layout, tree, &queries, rng))
    };

    // Step 2: scatter each edge's weight onto its LCA's processor (one
    // message per edge, charged at the true grid distance from the
    // endpoint that answered the query).
    let mut lca_weight = vec![0u64; n as usize];
    if let Some(lca) = &lca {
        for (e, &w) in graph.extra_edges().iter().zip(lca.answers.iter()) {
            machine.send(layout.slot(e.a), layout.slot(w));
            lca_weight[w as usize] += e.weight;
        }
    }

    // Step 3: one fused treefix over (wdeg, tree-edge weight, LCA
    // weight).
    let wdeg = graph.weighted_degrees();
    let values: Vec<(Add, Add, Add)> = (0..n)
        .map(|v| {
            (
                Add(wdeg[v as usize]),
                Add(graph.tree_weight(v)),
                Add(lca_weight[v as usize]),
            )
        })
        .collect();
    let sums = treefix_bottom_up(machine, layout, tree, &values, rng);

    // Step 4: each non-root vertex computes its cut locally.
    let cuts: Vec<u64> = (0..n)
        .map(|v| {
            if tree.parent(v).is_none() {
                return u64::MAX;
            }
            let (Add(deg_sum), Add(tree_in), Add(extra_in)) = sums.values[v as usize];
            let internal = (tree_in - graph.tree_weight(v)) + extra_in;
            deg_sum - 2 * internal
        })
        .collect();

    // Step 5: all-reduce the minimum over the grid.
    let slot_keyed: Vec<(u64, NodeId)> = (0..n)
        .map(|s| {
            let v = layout.vertex_at(s);
            (cuts[v as usize], v)
        })
        .collect();
    let (best_weight, best_vertex) =
        collectives::all_reduce(machine, &slot_keyed, &|a, b| a.min(b));

    MinCutResult {
        cuts,
        best_vertex,
        best_weight,
        lca_layers: lca.map(|l| l.stats.layers).unwrap_or(0),
    }
}
