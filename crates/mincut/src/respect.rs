//! 1-respecting minimum cuts: the full spatial pipeline.
//!
//! For each non-root vertex `v`, the cut crossing only the tree edge
//! above `v` weighs
//!
//! ```text
//! cut(v) = Σ_{u ∈ S} wdeg(u) − 2·internal(S),      S = subtree(v)
//! ```
//!
//! where `internal(S)` splits into tree edges inside `S` (a subtree sum
//! of the child-endpoint weights, minus the cut edge itself) and
//! non-tree edges inside `S` (both endpoints in `S` ⟺ their LCA is in
//! `S`, so: batched LCA, scatter weights onto LCAs, subtree sum). The
//! three subtree sums fuse into one treefix over the product monoid
//! `(Add, Add, Add)`, and the final minimum is an all-reduce.
//!
//! [`MinCutPipeline`] runs the whole sequence on the flat-array
//! engines: a reusable [`LcaEngine`] (CSR subtree cover, precomputed
//! relay schedule) answers the non-tree-edge batch, and the fused
//! treefix shares the engine's light-first child CSR. Costs:
//! `O((n + q) log n)` energy and `O(log² n)` depth w.h.p. for `q`
//! non-tree edges with `O(1)` edges per vertex (§VI-C applied to
//! Karger's 1-respecting reduction). The seed pipeline is retained in
//! [`crate::reference`] and pinned by the differential tests below.

use crate::graph::SpannedGraph;
use rand::Rng;
use spatial_layout::Layout;
use spatial_lca::LcaEngine;
use spatial_model::{collectives, Machine};
use spatial_tree::{ChildrenCsr, NodeId};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::Add;

/// Result of the 1-respecting cut computation.
#[derive(Debug, Clone)]
pub struct MinCutResult {
    /// `cuts[v]`: the weight of the cut at the tree edge above `v`
    /// (`u64::MAX` at the root, which has no edge above it).
    pub cuts: Vec<u64>,
    /// The vertex whose tree edge yields the minimum cut.
    pub best_vertex: NodeId,
    /// The minimum 1-respecting cut weight.
    pub best_weight: u64,
    /// Layers used by the LCA phase (cost evidence).
    pub lca_layers: u32,
}

/// The reusable 1-respecting min-cut pipeline: structure once per
/// graph + layout, any number of (Las Vegas) runs.
pub struct MinCutPipeline<'a> {
    graph: &'a SpannedGraph,
    layout: &'a Layout,
    /// The batched-LCA engine over the spanning tree (absent when the
    /// graph has no non-tree edges — the LCA phase is skipped then).
    lca: Option<LcaEngine>,
    /// Light-first child CSR for the fused treefix when no LCA engine
    /// exists to share one.
    csr: Option<ChildrenCsr>,
    /// One LCA query per non-tree edge.
    queries: Vec<(NodeId, NodeId)>,
}

impl<'a> MinCutPipeline<'a> {
    /// Precomputes the pipeline structure for one graph + layout pair.
    pub fn new(graph: &'a SpannedGraph, layout: &'a Layout) -> Self {
        let queries: Vec<(NodeId, NodeId)> =
            graph.extra_edges().iter().map(|e| (e.a, e.b)).collect();
        let (lca, csr) = if queries.is_empty() {
            let tree = graph.tree();
            let sizes = tree.subtree_sizes();
            (None, Some(ChildrenCsr::by_size(tree, &sizes)))
        } else {
            (Some(LcaEngine::new(layout, graph.tree())), None)
        };
        MinCutPipeline {
            graph,
            layout,
            lca,
            csr,
            queries,
        }
    }

    /// Computes every 1-respecting cut and the minimum, charging the
    /// machine. The random seed affects only costs, never cuts.
    pub fn run<R: Rng>(&mut self, machine: &Machine, rng: &mut R) -> MinCutResult {
        let graph = self.graph;
        let layout = self.layout;
        let tree = graph.tree();
        let n = tree.n();

        // Step 1: batched LCA of the non-tree edges.
        let lca = self
            .lca
            .as_mut()
            .map(|engine| engine.run(machine, &self.queries, rng));

        // Step 2: scatter each edge's weight onto its LCA's processor
        // (one message per edge, charged at the true grid distance from
        // the endpoint that answered the query).
        let mut lca_weight = vec![0u64; n as usize];
        if let Some(lca) = &lca {
            for (e, &w) in graph.extra_edges().iter().zip(lca.answers.iter()) {
                machine.send(layout.slot(e.a), layout.slot(w));
                lca_weight[w as usize] += e.weight;
            }
        }

        // Step 3: one fused treefix over (wdeg, tree-edge weight, LCA
        // weight), sharing the LCA engine's light-first child CSR.
        let wdeg = graph.weighted_degrees();
        let values: Vec<(Add, Add, Add)> = (0..n)
            .map(|v| {
                (
                    Add(wdeg[v as usize]),
                    Add(graph.tree_weight(v)),
                    Add(lca_weight[v as usize]),
                )
            })
            .collect();
        let csr = match &self.lca {
            Some(engine) => engine.children_csr(),
            None => self.csr.as_ref().expect("csr built when lca is absent"),
        };
        let mut treefix = ContractionEngine::with_children_csr(tree, layout, &values, true, csr);
        treefix.contract(machine, rng);
        let sums = treefix.uncontract_bottom_up(machine);

        // Step 4: each non-root vertex computes its cut locally.
        let cuts: Vec<u64> = (0..n)
            .map(|v| {
                if tree.parent(v).is_none() {
                    return u64::MAX;
                }
                let (Add(deg_sum), Add(tree_in), Add(extra_in)) = sums[v as usize];
                let internal = (tree_in - graph.tree_weight(v)) + extra_in;
                deg_sum - 2 * internal
            })
            .collect();

        // Step 5: all-reduce the minimum over the grid.
        let slot_keyed: Vec<(u64, NodeId)> = (0..n)
            .map(|s| {
                let v = layout.vertex_at(s);
                (cuts[v as usize], v)
            })
            .collect();
        let (best_weight, best_vertex) =
            collectives::all_reduce(machine, &slot_keyed, &|a, b| a.min(b));

        MinCutResult {
            cuts,
            best_vertex,
            best_weight,
            lca_layers: lca.map(|l| l.stats.layers).unwrap_or(0),
        }
    }
}

/// Computes every 1-respecting cut and the minimum, on the machine.
///
/// Costs `O((n + q) log n)` energy and `O(log² n)` depth w.h.p. for `q`
/// non-tree edges with `O(1)` edges per vertex. One-shot wrapper over
/// [`MinCutPipeline`]; callers running several Las Vegas passes over
/// the same graph should hold a pipeline.
pub fn one_respecting_cuts<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    graph: &SpannedGraph,
    rng: &mut R,
) -> MinCutResult {
    MinCutPipeline::new(graph, layout).run(machine, rng)
}

/// Host reference: brute-force cut weights by subtree marking.
pub fn min_cut_host(graph: &SpannedGraph) -> Vec<u64> {
    let tree = graph.tree();
    let n = tree.n();
    let sizes = tree.subtree_sizes();
    // Light-first positions give O(1) subtree membership tests.
    let order = spatial_tree::traversal::light_first_order(tree);
    let pos = spatial_tree::traversal::positions_of(&order);
    let inside = |v: NodeId, u: NodeId| -> bool {
        pos[u as usize] >= pos[v as usize] && pos[u as usize] < pos[v as usize] + sizes[v as usize]
    };
    (0..n)
        .map(|v| {
            if tree.parent(v).is_none() {
                return u64::MAX;
            }
            let mut cut = 0u64;
            for u in tree.vertices() {
                if let Some(p) = tree.parent(u) {
                    if inside(v, u) != inside(v, p) {
                        cut += graph.tree_weight(u);
                    }
                }
            }
            for e in graph.extra_edges() {
                if inside(v, e.a) != inside(v, e.b) {
                    cut += e.weight;
                }
            }
            cut
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedEdge;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::{Tree, NIL};

    fn run(graph: &SpannedGraph, seed: u64) -> MinCutResult {
        let layout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
        let machine = layout.machine();
        one_respecting_cuts(&machine, &layout, graph, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn path_with_shortcut() {
        // Path 0—1—2—3 (weights 4, 1, 4) plus shortcut (0, 3, w=2).
        // Cutting above v=2 severs tree edge w=1 and the shortcut w=2.
        let tree = Tree::from_parents(0, vec![NIL, 0, 1, 2]);
        let g = SpannedGraph::new(
            tree,
            vec![0, 4, 1, 4],
            vec![WeightedEdge {
                a: 0,
                b: 3,
                weight: 2,
            }],
        );
        let res = run(&g, 1);
        assert_eq!(res.cuts[1], 4 + 2);
        assert_eq!(res.cuts[2], 1 + 2);
        assert_eq!(res.cuts[3], 4 + 2);
        assert_eq!(res.best_vertex, 2);
        assert_eq!(res.best_weight, 3);
        assert_eq!(res.cuts, min_cut_host(&g));
    }

    #[test]
    fn tree_only_graph() {
        // No extra edges: cut(v) = weight of the tree edge above v.
        let mut rng = StdRng::seed_from_u64(2);
        let g = SpannedGraph::random(100, 0, 9, &mut rng);
        let res = run(&g, 3);
        for v in 1..100u32 {
            if g.tree().parent(v).is_some() {
                assert_eq!(res.cuts[v as usize], g.tree_weight(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn matches_host_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        for (n, extra) in [(10u32, 5usize), (50, 40), (200, 150), (333, 500)] {
            let g = SpannedGraph::random(n, extra, 20, &mut rng);
            let res = run(&g, 5);
            let host = min_cut_host(&g);
            assert_eq!(res.cuts, host, "n={n} extra={extra}");
            let best = host
                .iter()
                .enumerate()
                .filter(|&(v, _)| g.tree().parent(v as u32).is_some())
                .min_by_key(|&(_, &c)| c)
                .unwrap();
            assert_eq!(res.best_weight, *best.1);
            assert_eq!(
                host[res.best_vertex as usize], res.best_weight,
                "reported vertex must achieve the reported weight"
            );
        }
    }

    #[test]
    fn las_vegas_seeds() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = SpannedGraph::random(150, 100, 10, &mut rng);
        let expect = run(&g, 0).cuts;
        for seed in 1..6 {
            assert_eq!(run(&g, seed).cuts, expect, "seed {seed}");
        }
    }

    #[test]
    fn costs_near_linear() {
        let mut e_norm = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1u32 << log_n;
            let mut rng = StdRng::seed_from_u64(7);
            let g = SpannedGraph::random(n, n as usize / 2, 100, &mut rng);
            let layout = Layout::light_first(g.tree(), CurveKind::Hilbert);
            let machine = layout.machine();
            one_respecting_cuts(&machine, &layout, &g, &mut rng);
            let r = machine.report();
            e_norm.push(r.energy_per_n_log_n(n as u64));
            let log2 = (log_n as f64) * (log_n as f64);
            assert!(
                (r.depth as f64) < 50.0 * log2,
                "depth {} not O(log² n)",
                r.depth
            );
        }
        assert!(
            e_norm[1] / e_norm[0] < 2.0,
            "mincut energy/(n log n) should stay flat: {e_norm:?}"
        );
    }
}

#[cfg(test)]
mod pipeline_vs_reference {
    use super::*;
    use crate::reference::one_respecting_cuts_reference;
    use rand::prelude::*;
    use spatial_model::CurveKind;

    fn compare(graph: &SpannedGraph, algo_seed: u64) {
        let layout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
        let machine_new = layout.machine();
        let res_new = one_respecting_cuts(
            &machine_new,
            &layout,
            graph,
            &mut StdRng::seed_from_u64(algo_seed),
        );
        let machine_ref = layout.machine();
        let res_ref = one_respecting_cuts_reference(
            &machine_ref,
            &layout,
            graph,
            &mut StdRng::seed_from_u64(algo_seed),
        );
        assert_eq!(res_new.cuts, res_ref.cuts, "cuts diverged");
        assert_eq!(res_new.best_vertex, res_ref.best_vertex);
        assert_eq!(res_new.best_weight, res_ref.best_weight);
        assert_eq!(res_new.lca_layers, res_ref.lca_layers);
        assert_eq!(
            machine_new.report(),
            machine_ref.report(),
            "machine charges diverged"
        );
    }

    #[test]
    fn identical_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(50);
        for (n, extra) in [(2u32, 0usize), (50, 40), (200, 150), (333, 500)] {
            let g = SpannedGraph::random(n, extra, 20, &mut rng);
            for seed in [0u64, 9] {
                compare(&g, seed);
            }
        }
    }

    #[test]
    fn identical_without_extra_edges() {
        // The no-LCA path (treefix-only) must also charge identically.
        let mut rng = StdRng::seed_from_u64(51);
        let g = SpannedGraph::random(120, 0, 9, &mut rng);
        compare(&g, 3);
    }

    #[test]
    fn pipeline_reuse_charges_like_fresh_runs() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = SpannedGraph::random(150, 120, 10, &mut rng);
        let layout = Layout::light_first(g.tree(), CurveKind::Hilbert);
        let mut pipeline = MinCutPipeline::new(&g, &layout);
        for seed in 0..3u64 {
            let machine_new = layout.machine();
            let res_new = pipeline.run(&machine_new, &mut StdRng::seed_from_u64(seed));
            let machine_ref = layout.machine();
            let res_ref = one_respecting_cuts_reference(
                &machine_ref,
                &layout,
                &g,
                &mut StdRng::seed_from_u64(seed),
            );
            assert_eq!(res_new.cuts, res_ref.cuts, "seed {seed}");
            assert_eq!(machine_new.report(), machine_ref.report(), "seed {seed}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::SpannedGraph;
    use proptest::prelude::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Spatial cut values equal brute force on arbitrary random
        /// graphs and seeds.
        #[test]
        fn prop_cuts_match_host(
            n in 2u32..120,
            extra in 0usize..200,
            graph_seed in 0u64..10_000,
            algo_seed in 0u64..10_000,
        ) {
            let mut rng = StdRng::seed_from_u64(graph_seed);
            let g = SpannedGraph::random(n, extra, 50, &mut rng);
            let layout = Layout::light_first(g.tree(), CurveKind::Hilbert);
            let machine = layout.machine();
            let res = one_respecting_cuts(
                &machine, &layout, &g, &mut StdRng::seed_from_u64(algo_seed),
            );
            prop_assert_eq!(res.cuts, min_cut_host(&g));
        }

        /// cut(v) is invariant under doubling all weights (scales 2×).
        #[test]
        fn prop_cut_scales_linearly(n in 2u32..80, seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = SpannedGraph::random(n, (n / 2) as usize, 10, &mut rng);
            let doubled = SpannedGraph::new(
                g.tree().clone(),
                (0..n).map(|v| 2 * g.tree_weight(v)).collect(),
                g.extra_edges()
                    .iter()
                    .map(|e| crate::graph::WeightedEdge {
                        a: e.a,
                        b: e.b,
                        weight: 2 * e.weight,
                    })
                    .collect(),
            );
            let base = min_cut_host(&g);
            let scaled = min_cut_host(&doubled);
            for v in 1..n as usize {
                if base[v] != u64::MAX {
                    prop_assert_eq!(scaled[v], 2 * base[v]);
                }
            }
        }
    }
}
