//! The bench lab's durability and gate contracts: append/read
//! roundtrip through a real file, torn-tail and damaged-line
//! tolerance (kill-at-offset, the `store/tests` style), and the
//! noise-aware regression gate on synthetic histories — a real
//! regression is flagged, run-to-run noise is tolerated, and
//! deterministic machine-charge drift is always flagged.

use spatial_bench::lab::{
    append_run, read_runs, regression_report, ChargeStatus, GateConfig, RunRecord, ScenarioRow,
    WallKind, WallMetric, WallStatus,
};

fn temp_store(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "spatial-bench-lab-{tag}-{}/runs.jsonl",
        std::process::id()
    ))
}

fn charge_row(energy: u64, det: bool) -> ScenarioRow {
    ScenarioRow {
        scenario: "subtree_sums".into(),
        impl_name: "spatial".into(),
        family: "random_binary".into(),
        n: 8192,
        curve: "hilbert".into(),
        energy,
        depth: 40,
        messages: 7,
        work: 9000,
        steps: None,
        det,
    }
}

fn run_at(rev: &str, energy: u64, speedup: f64) -> RunRecord {
    RunRecord {
        bench: "sfc_treefix".into(),
        git_rev: rev.into(),
        timestamp: 1,
        config: vec![("profile".into(), "release".into())],
        scenarios: vec![charge_row(energy, true)],
        wall: vec![WallMetric {
            name: "kernel.speedup".into(),
            value: speedup,
            kind: WallKind::Ratio,
        }],
    }
}

#[test]
fn append_then_read_roundtrip() {
    let path = temp_store("roundtrip");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
    let a = run_at("rev-a", 100, 2.2);
    let b = run_at("rev-b", 100, 2.1);
    append_run(&path, &a).expect("append a");
    append_run(&path, &b).expect("append b");
    let history = read_runs(&path).expect("read");
    assert_eq!(history.runs, vec![a, b]);
    assert_eq!(history.dropped_lines, 0);
    assert_eq!(history.torn_tail_bytes, 0);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn torn_tail_is_dropped_at_every_offset() {
    let path = temp_store("torn");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
    let a = run_at("rev-a", 100, 2.2);
    let b = run_at("rev-b", 100, 2.1);
    append_run(&path, &a).expect("append a");
    append_run(&path, &b).expect("append b");
    let full = std::fs::read(&path).expect("read back");
    let first_len = a.to_line().len() + 1;
    // Kill the append at every offset inside the second line: the
    // intact prefix (run a) must always survive.
    for cut in first_len..full.len() {
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let history = read_runs(&path).expect("read");
        assert_eq!(history.runs, vec![a.clone()], "cut at {cut}");
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn damaged_line_drops_itself_and_everything_after() {
    let path = temp_store("damaged");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
    for rev in ["rev-a", "rev-b", "rev-c"] {
        append_run(&path, &run_at(rev, 100, 2.2)).expect("append");
    }
    // Flip one byte inside the SECOND line's payload: its CRC fails,
    // and per the journal's intact-prefix rule the third (intact) line
    // is not trusted either.
    let mut bytes = std::fs::read(&path).expect("read back");
    let first_len = run_at("rev-a", 100, 2.2).to_line().len() + 1;
    let at = first_len + 40;
    bytes[at] = bytes[at].wrapping_add(1);
    std::fs::write(&path, &bytes).expect("rewrite");
    let history = read_runs(&path).expect("read");
    assert_eq!(history.runs.len(), 1);
    assert_eq!(history.runs[0].git_rev, "rev-a");
    assert_eq!(history.dropped_lines, 2);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn gate_flags_synthetic_wall_regression() {
    // Two prior runs at ~2.2x, then the latest rev collapses to 0.9x —
    // far beyond max(rel_eps·2.2, k·MAD).
    let runs = vec![
        run_at("rev-a", 100, 2.25),
        run_at("rev-a", 100, 2.15),
        run_at("rev-b", 100, 0.9),
    ];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert_eq!(report.latest_rev, "rev-b");
    assert_eq!(report.benches[0].prior_rev.as_deref(), Some("rev-a"));
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.violations[0].contains("kernel.speedup"));
    let wall = &report.benches[0].wall[0];
    assert_eq!(wall.status, WallStatus::Regressed);
    assert_eq!(wall.prior_median, Some(2.2));
    assert_eq!(wall.samples, (2, 1));
}

#[test]
fn gate_tolerates_run_to_run_noise() {
    // Same code re-measured: charges identical, speedup wobbles within
    // the band (2.2 → 1.9 is well inside rel_eps = 0.5).
    let runs = vec![
        run_at("rev-a", 100, 2.2),
        run_at("rev-a", 100, 2.3),
        run_at("rev-b", 100, 1.9),
        run_at("rev-b", 100, 2.0),
    ];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.benches[0].charge[0].status, ChargeStatus::Exact);
    assert_eq!(report.benches[0].wall[0].status, WallStatus::Ok);
}

#[test]
fn gate_always_flags_deterministic_charge_drift() {
    // Wall metrics identical; one deterministic energy unit moved.
    // Machine charges have a zero noise budget — this must violate no
    // matter how small the drift or how wide the noise band.
    let runs = vec![run_at("rev-a", 100, 2.2), run_at("rev-b", 101, 2.2)];
    let cfg = GateConfig {
        rel_eps: 10.0,
        mad_k: 100.0,
        ..GateConfig::default()
    };
    let report = regression_report(&runs, &cfg, None);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(matches!(
        report.benches[0].charge[0].status,
        ChargeStatus::Drift {
            field: "energy",
            prior: 100,
            latest: 101,
        }
    ));
}

#[test]
fn gate_flags_within_rev_nondeterminism_of_det_rows() {
    // Two runs at the SAME rev disagree on a row marked deterministic:
    // that is a determinism bug, not a regression, and must violate.
    let runs = vec![run_at("rev-a", 100, 2.2), run_at("rev-a", 104, 2.2)];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(matches!(
        report.benches[0].charge[0].status,
        ChargeStatus::Nondeterministic { field: "energy" }
    ));
}

#[test]
fn gate_compares_nondet_rows_under_the_noise_band() {
    let mk = |rev: &str, energy: u64| RunRecord {
        bench: "throughput".into(),
        git_rev: rev.into(),
        timestamp: 1,
        config: vec![("profile".into(), "release".into())],
        scenarios: vec![charge_row(energy, false)],
        wall: vec![],
    };
    // 1000 → 1100 is within rel_eps = 0.5; no violation even though
    // the values differ.
    let report = regression_report(
        &[mk("rev-a", 1000), mk("rev-b", 1100)],
        &GateConfig::default(),
        None,
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(
        report.benches[0].charge[0].status,
        ChargeStatus::NoisyWithin
    );
    // 1000 → 5000 is beyond any reasonable band.
    let report = regression_report(
        &[mk("rev-a", 1000), mk("rev-b", 5000)],
        &GateConfig::default(),
        None,
    );
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
}

#[test]
fn gate_passes_first_ever_revision_and_improvements() {
    // A single rev has nothing to compare against.
    let report = regression_report(&[run_at("rev-a", 100, 2.2)], &GateConfig::default(), None);
    assert!(report.violations.is_empty());
    assert_eq!(report.benches[0].wall[0].status, WallStatus::NoHistory);
    // Getting faster is never a violation.
    let runs = vec![run_at("rev-a", 100, 2.2), run_at("rev-b", 100, 9.0)];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert!(report.violations.is_empty());
    assert_eq!(report.benches[0].wall[0].status, WallStatus::Improved);
}

#[test]
fn wall_comparisons_are_profile_stratified() {
    // A debug run at the prior rev must not feed the release
    // comparison: debug timings would make any release run look like a
    // huge improvement (or regression) for free.
    let mut debug_prior = run_at("rev-a", 100, 0.4);
    debug_prior.config = vec![("profile".into(), "debug".into())];
    let runs = vec![
        debug_prior,
        run_at("rev-a", 100, 2.2),
        run_at("rev-b", 100, 2.1),
    ];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let wall = &report.benches[0].wall[0];
    assert_eq!(wall.prior_median, Some(2.2), "debug sample must be excluded");
    // Charges are profile-free: the debug run's identical charge row
    // participates in the exact comparison.
    assert_eq!(report.benches[0].charge[0].status, ChargeStatus::Exact);
}

#[test]
fn time_metrics_are_not_gated_by_default() {
    let mk = |rev: &str, ms: f64| RunRecord {
        bench: "lca_mincut".into(),
        git_rev: rev.into(),
        timestamp: 1,
        config: vec![("profile".into(), "release".into())],
        scenarios: vec![],
        wall: vec![WallMetric {
            name: "kernel.optimized".into(),
            value: ms,
            kind: WallKind::Time,
        }],
    };
    // A 10x wall-time blowup alone (e.g. a slower CI box) must not
    // fail the gate...
    let runs = [mk("rev-a", 10.0), mk("rev-b", 100.0)];
    let report = regression_report(&runs, &GateConfig::default(), None);
    assert!(report.violations.is_empty());
    assert_eq!(report.benches[0].wall[0].status, WallStatus::Ungated);
    // ...unless gate_time is opted in.
    let cfg = GateConfig {
        gate_time: true,
        ..GateConfig::default()
    };
    let report = regression_report(&runs, &cfg, None);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
}
