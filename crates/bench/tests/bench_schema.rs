//! Schema-consistency check across the checked-in `BENCH_*.json`
//! baselines.
//!
//! Every baseline file carries a `scenarios` array whose rows share one
//! machine-cost schema — `scenario`, `n`, `curve`, `energy`, `depth`,
//! `messages` (plus `impl`/`family`/`work`, and `steps` on PRAM rows) —
//! so downstream tooling can join the baseline files on the shared keys.
//! The writers emit one row object per line; this suite validates the
//! shared keys and the numeric fields without a JSON dependency (the
//! offline workspace has none).

use std::path::PathBuf;

const FILES: [&str; 8] = [
    "BENCH_sfc_treefix.json",
    "BENCH_lca_mincut.json",
    "BENCH_layout.json",
    "BENCH_pram.json",
    "BENCH_service.json",
    "BENCH_throughput.json",
    "BENCH_durability.json",
    "BENCH_ooc.json",
];

/// Keys every scenarios row must carry, in every file.
const SHARED_KEYS: [&str; 6] = [
    "\"scenario\"",
    "\"n\"",
    "\"curve\"",
    "\"energy\"",
    "\"depth\"",
    "\"messages\"",
];

/// Numeric fields: `"key": <u64>`.
const NUMERIC_KEYS: [&str; 4] = ["n", "energy", "depth", "messages"];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn numeric_value(row: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = row
        .find(&needle)
        .unwrap_or_else(|| panic!("missing key {key} in row: {row}"));
    let rest = &row[at + needle.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in row: {row}"))
}

#[test]
fn every_bench_file_shares_the_scenarios_schema() {
    let root = workspace_root();
    for file in FILES {
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{file} must be checked in at the workspace root: {e}"));
        assert!(
            text.contains("\"scenarios\": ["),
            "{file}: missing the shared `scenarios` section"
        );
        // Balanced-brace sanity so a truncated regeneration can't slip
        // through CI.
        let opens = text.matches(['{', '[']).count();
        let closes = text.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{file}: unbalanced JSON brackets");

        let rows: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"scenario\":"))
            .collect();
        assert!(!rows.is_empty(), "{file}: no scenarios rows");
        for row in rows {
            for key in SHARED_KEYS {
                assert!(
                    row.contains(&format!("{key}: ")),
                    "{file}: row missing shared key {key}: {row}"
                );
            }
            for key in NUMERIC_KEYS {
                numeric_value(row, key);
            }
            assert!(
                numeric_value(row, "n") > 0,
                "{file}: scenario with n = 0: {row}"
            );
        }
    }
}

#[test]
fn committed_lab_history_seeds_the_regression_gate() {
    // The bench lab ships with a committed run history so the FIRST
    // gated CI comparison already has a prior: at least two distinct
    // revisions, every bench represented, zero torn/dropped lines, and
    // the noise-aware gate passes on the committed history itself
    // (committed runs must never violate their own baseline).
    use spatial_bench::lab;
    let path = workspace_root().join("lab/runs.jsonl");
    let history = lab::read_runs(&path).expect("lab/runs.jsonl must be checked in and readable");
    assert_eq!(history.dropped_lines, 0, "committed store has damaged lines");
    assert_eq!(history.torn_tail_bytes, 0, "committed store has a torn tail");
    let revs = lab::rev_order(&history.runs);
    assert!(
        revs.len() >= 2,
        "the gate needs >= 2 distinct revisions of committed history, got {revs:?}"
    );
    for bench in [
        "sfc_treefix",
        "lca_mincut",
        "layout",
        "pram",
        "service",
        "throughput",
        "durability",
        "ooc",
    ] {
        assert!(
            history.runs.iter().any(|r| r.bench == bench),
            "no committed lab run for bench {bench}"
        );
    }
    let report = lab::regression_report(&history.runs, &lab::GateConfig::default(), None);
    assert!(
        report.violations.is_empty(),
        "committed lab history violates its own gate: {:?}",
        report.violations
    );
}

#[test]
fn sfc_treefix_file_shows_the_swar_win() {
    // The SWAR acceptance bar, checked against the committed data: the
    // lane-parallel batch kernels must beat the retained pre-PR scalar
    // batch loops (`sfc::swar::*_chunk_scalar`, `run_bitonic_reference`)
    // by at least 1.5x on the Hilbert and Z-order index batches and the
    // bitonic sort (the bench runner asserts the same bar at generation
    // time; the kernels are pinned bit-identical by the differential
    // tests, so the rows compare equal work).
    let text = std::fs::read_to_string(workspace_root().join("BENCH_sfc_treefix.json"))
        .expect("BENCH_sfc_treefix.json checked in");
    for name in [
        "hilbert_index_batch_order10",
        "zorder_index_batch_order10",
        "bitonic_sort_2^16",
    ] {
        let row = text
            .lines()
            .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
            .unwrap_or_else(|| panic!("missing results row {name}"));
        let needle = "\"speedup\": ";
        let at = row.find(needle).expect("speedup field");
        let speedup: f64 = row[at + needle.len()..]
            .trim_end_matches(['}', ',', ' '])
            .parse()
            .expect("numeric speedup");
        assert!(
            speedup >= 1.5,
            "{name}: SWAR kernel must beat the scalar batch reference by >= 1.5x, committed {speedup}"
        );
    }
}

#[test]
fn service_file_shows_the_session_reuse_win() {
    // The PR 5 acceptance bar, checked against the committed data:
    // mixed-batch engine reuse through `SpatialForest` beats per-query
    // fresh-engine builds by at least 1.5x, and the crossover scenario
    // prices the PRAM shadow strictly above the spatial run.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_service.json"))
        .expect("BENCH_service.json checked in");
    let row = text
        .lines()
        .find(|l| l.contains("\"name\": \"service_mixed_2^13_reuse_vs_fresh_engines\""))
        .expect("fresh-engines result row");
    let needle = "\"speedup\": ";
    let at = row.find(needle).expect("speedup field");
    let speedup: f64 = row[at + needle.len()..]
        .trim_end_matches(['}', ',', ' '])
        .parse()
        .expect("numeric speedup");
    assert!(
        speedup >= 1.5,
        "mixed-batch reuse must beat per-query fresh engines by >= 1.5x, committed {speedup}"
    );

    let crossover: Vec<u64> = text
        .lines()
        .filter(|l| l.contains("\"scenario\": \"service_sums_crossover\""))
        .map(|l| numeric_value(l, "energy"))
        .collect();
    assert_eq!(crossover.len(), 2, "spatial + pram crossover rows");
    assert!(
        crossover[1] > crossover[0],
        "PRAM shadow must cost more energy: {crossover:?}"
    );
}

#[test]
fn throughput_file_shows_the_sharding_win() {
    // The PR 6 acceptance bar, checked noise-aware against the
    // committed data: modeled aggregate QPS (total requests / busiest
    // shard CPU-busy time — the load-balance critical path with one
    // core per worker) must scale at least 2x from 1 to 8 workers
    // (the bench runner itself asserts the full 3x at generation
    // time; the committed-data gate leaves headroom for rerun noise).
    let text = std::fs::read_to_string(workspace_root().join("BENCH_throughput.json"))
        .expect("BENCH_throughput.json checked in");
    let needle = "\"speedup_modeled_8w_vs_1w\": ";
    let at = text.find(needle).expect("modeled speedup field");
    let speedup: f64 = text[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect::<String>()
        .parse()
        .expect("numeric modeled speedup");
    assert!(
        speedup >= 2.0,
        "sharding must scale modeled QPS >= 2x from 1 to 8 workers, committed {speedup}"
    );

    // Every worker-count row reports both throughput figures and the
    // client-observed latency tail.
    for workers in [1, 2, 4, 8] {
        let row = text
            .lines()
            .find(|l| l.contains(&format!("\"workers\": {workers},")))
            .unwrap_or_else(|| panic!("missing results row for {workers} workers"));
        for key in [
            "\"wall_qps\"",
            "\"modeled_qps\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
        ] {
            assert!(
                row.contains(&format!("{key}: ")),
                "{workers}-worker row missing {key}: {row}"
            );
        }
    }

    // The dispatch-granularity sweep backs the baked-in constant.
    assert!(
        text.contains("\"granularity_sweep\": ["),
        "missing granularity sweep section"
    );
    assert!(
        text.contains("\"min_coalesced_batch\": "),
        "missing baked-in coalesce constant"
    );
}

#[test]
fn durability_file_shows_the_recovery_win() {
    // The PR 7 acceptance bar, checked against the committed data:
    // restarting from the checkpoint snapshot plus the short journal
    // tail must beat replaying the full mutation history by at least
    // 2x (the bench runner asserts the same bar at generation time;
    // both paths are verified bit-identical against the never-stopped
    // forest before timing).
    let text = std::fs::read_to_string(workspace_root().join("BENCH_durability.json"))
        .expect("BENCH_durability.json checked in");
    let needle = "\"speedup_recover_vs_rebuild\": ";
    let at = text.find(needle).expect("recovery speedup field");
    let speedup: f64 = text[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect::<String>()
        .parse()
        .expect("numeric recovery speedup");
    assert!(
        speedup >= 2.0,
        "checkpoint recovery must beat full-history replay by >= 2x, committed {speedup}"
    );

    // The tail the recovery path replays is a small fraction of the
    // history the rebuild path replays — the structural reason the
    // speedup exists at all.
    let field = |key: &str| -> u64 {
        let needle = format!("\"{key}\": ");
        let at = text
            .find(&needle)
            .unwrap_or_else(|| panic!("missing {key}"));
        text[at + needle.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}"))
    };
    let (history, tail) = (field("history_records"), field("tail_records"));
    assert!(
        tail * 4 < history,
        "tail ({tail}) must be a small fraction of history ({history})"
    );
}

#[test]
fn ooc_file_shows_the_incremental_and_paging_wins() {
    // The PR 9 acceptance bars, checked against the committed data:
    // (a) on the dirty-tail workload the incremental checkpoint writes
    // at most 25% of a full snapshot rewrite (the bench runner asserts
    // the same bar at generation time, after verifying the patched
    // file recovers bit-identically); (b) the sweep contains cells
    // where the slab footprint exceeds the resident-page budget, and
    // every such cell reports paging faults — the mapped forest really
    // served out of core, not from a budget that quietly held
    // everything. Fault counts must also be monotone non-increasing in
    // the budget per size (LRU is a stack algorithm).
    let text = std::fs::read_to_string(workspace_root().join("BENCH_ooc.json"))
        .expect("BENCH_ooc.json checked in");
    let needle = "\"incremental_ratio\": ";
    let at = text.find(needle).expect("incremental ratio field");
    let ratio: f64 = text[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect::<String>()
        .parse()
        .expect("numeric incremental ratio");
    assert!(
        ratio <= 0.25,
        "incremental checkpoint must write <= 25% of a full rewrite, committed {ratio}"
    );

    let mut beyond_budget = 0u32;
    let mut faults_by_n: std::collections::BTreeMap<u64, Vec<u64>> =
        std::collections::BTreeMap::new();
    for row in text.lines().filter(|l| l.contains("\"resident_pages\":")) {
        let budget = numeric_value(row, "budget_bytes");
        let footprint = numeric_value(row, "snapshot_bytes");
        let faults = numeric_value(row, "faults");
        if budget < footprint {
            beyond_budget += 1;
            assert!(
                faults > 0,
                "a below-footprint budget must report paging faults: {row}"
            );
        }
        faults_by_n
            .entry(numeric_value(row, "n"))
            .or_default()
            .push(faults);
    }
    assert!(
        beyond_budget >= 2,
        "the sweep must include forests larger than the resident budget"
    );
    for (n, faults) in faults_by_n {
        assert!(
            faults.windows(2).all(|w| w[1] <= w[0]),
            "n={n}: faults must not increase with the budget: {faults:?}"
        );
    }
}

#[test]
fn pram_file_shows_the_e8_crossover() {
    // The acceptance bar, checked against the committed data: for list
    // ranking (layout-aware list) and subtree sums, PRAM energy grows
    // strictly faster than spatial energy across the checked-in sizes.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_pram.json"))
        .expect("BENCH_pram.json checked in");
    for (scenario, family) in [
        ("subtree_sums", "random-binary"),
        ("list_ranking", "in-order-list"),
    ] {
        let mut by_impl: std::collections::BTreeMap<u64, [Option<u64>; 2]> =
            std::collections::BTreeMap::new();
        for row in text.lines().filter(|l| {
            l.contains(&format!("\"scenario\": \"{scenario}\""))
                && l.contains(&format!("\"family\": \"{family}\""))
                && l.contains("\"curve\": \"hilbert\"")
        }) {
            let n = numeric_value(row, "n");
            let e = numeric_value(row, "energy");
            let slot = if row.contains("\"impl\": \"pram\"") {
                1
            } else {
                0
            };
            by_impl.entry(n).or_insert([None, None])[slot] = Some(e);
        }
        assert!(
            by_impl.len() >= 3,
            "{scenario}/{family}: expected ≥ 3 sizes, got {by_impl:?}"
        );
        let ratios: Vec<f64> = by_impl
            .values()
            .map(|pair| {
                let (s, p) = (pair[0].expect("spatial row"), pair[1].expect("pram row"));
                p as f64 / s as f64
            })
            .collect();
        assert!(
            ratios.windows(2).all(|w| w[1] > w[0]),
            "{scenario}/{family}: PRAM/spatial energy ratio must grow with n: {ratios:?}"
        );
    }
}
