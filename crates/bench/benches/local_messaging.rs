//! E4 wall-clock: virtual-tree construction and local messaging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_bench::workload;
use spatial_trees::layout::Layout;
use spatial_trees::messaging::{local_broadcast, local_reduce, VirtualTree};
use spatial_trees::model::CurveKind;
use spatial_trees::tree::generators::TreeFamily;
use std::hint::black_box;

fn bench_virtual_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_tree_build");
    group.sample_size(10);
    for family in [TreeFamily::Star, TreeFamily::PreferentialAttachment] {
        let tree = workload(family, 1 << 16, 9);
        group.bench_function(BenchmarkId::from_parameter(family.name()), |b| {
            b.iter(|| VirtualTree::new(black_box(&tree)))
        });
    }
    group.finish();
}

fn bench_local_ops(c: &mut Criterion) {
    let tree = workload(TreeFamily::PreferentialAttachment, 1 << 16, 9);
    let layout = Layout::light_first(&tree, CurveKind::Hilbert);
    let vt = VirtualTree::new(&tree);
    let values: Vec<u64> = (0..tree.n() as u64).collect();
    let mut group = c.benchmark_group("local_messaging_2^16");
    group.sample_size(10);
    group.bench_function("broadcast", |b| {
        b.iter(|| {
            let machine = layout.machine();
            local_broadcast(&machine, &layout, &vt, black_box(&tree), &values)
        })
    });
    group.bench_function("reduce", |b| {
        b.iter(|| {
            let machine = layout.machine();
            local_reduce(
                &machine,
                &layout,
                &vt,
                black_box(&tree),
                &values,
                &|a, b| a + b,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_virtual_tree, bench_local_ops);
criterion_main!(benches);
