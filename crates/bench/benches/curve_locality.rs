//! E3 wall-clock: curve transform throughput and locality measurement.
//!
//! `point`/`index` are the inner loop of every energy charge, so their
//! throughput bounds how large an instance the simulator can meter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_trees::sfc::locality::alpha_estimate;
use spatial_trees::sfc::{Curve, CurveKind};
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_point");
    group.sample_size(20);
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::Peano] {
        let curve = kind.for_capacity(1 << 20);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in (0..curve.len()).step_by(31) {
                    let p = curve.point(black_box(i));
                    acc += p.x as u64 + p.y as u64;
                }
                acc
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_roundtrip");
    group.sample_size(20);
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.for_capacity(1 << 16);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut ok = 0u64;
                for i in 0..curve.len() {
                    ok += u64::from(curve.index(curve.point(black_box(i))) == i);
                }
                ok
            })
        });
    }
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_estimate");
    group.sample_size(10);
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.for_capacity(128 * 128);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| alpha_estimate(black_box(&curve), 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms, bench_alpha);
criterion_main!(benches);
