//! E3 wall-clock: curve transform throughput and locality measurement.
//!
//! `point`/`index` are the inner loop of every energy charge, so their
//! throughput bounds how large an instance the simulator can meter.
//! The `*_scalar_reference` entries measure the retained seed
//! implementations (`spatial_sfc::reference`); the acceptance bar for
//! the optimized paths is ≥ 2× on the order-10 grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_trees::sfc::locality::alpha_estimate;
use spatial_trees::sfc::reference as scalar_ref;
use spatial_trees::sfc::{Curve, CurveKind, GridPoint};
use std::hint::black_box;

/// The acceptance-criterion grid: order 10, 1024×1024.
const ORDER10_SIDE: u32 = 1 << 10;

fn bench_hilbert_order10(c: &mut Criterion) {
    // Concrete type: the reference is a direct call, so the LUT path
    // must not pay AnyCurve enum dispatch.
    let curve = spatial_trees::sfc::HilbertCurve::new(ORDER10_SIDE);
    let n = curve.len();
    let points: Vec<GridPoint> = curve.all_points();

    let mut group = c.benchmark_group("hilbert_point_order10");
    group.sample_size(20);
    group.bench_function("lut", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let p = curve.point(black_box(i));
                acc += p.x as u64 + p.y as u64;
            }
            acc
        })
    });
    group.bench_function("lut_batch", |b| {
        let indices: Vec<u64> = (0..n).collect();
        let mut out = vec![GridPoint::default(); n as usize];
        b.iter(|| {
            curve.point_batch(black_box(&indices), &mut out);
            out[out.len() - 1]
        })
    });
    group.bench_function("lut_range_batch", |b| {
        let mut out = vec![GridPoint::default(); n as usize];
        b.iter(|| {
            curve.point_range_batch(black_box(0), &mut out);
            out[out.len() - 1]
        })
    });
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let p = scalar_ref::hilbert_point_scalar(ORDER10_SIDE, black_box(i));
                acc += p.x as u64 + p.y as u64;
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hilbert_index_order10");
    group.sample_size(20);
    group.bench_function("lut", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc += curve.index(black_box(p));
            }
            acc
        })
    });
    group.bench_function("lut_batch", |b| {
        let mut out = vec![0u64; points.len()];
        b.iter(|| {
            curve.index_batch(black_box(&points), &mut out);
            out[out.len() - 1]
        })
    });
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc += scalar_ref::hilbert_index_scalar(ORDER10_SIDE, black_box(p));
            }
            acc
        })
    });
    group.finish();
}

fn bench_zorder_order10(c: &mut Criterion) {
    let curve = spatial_trees::sfc::zorder::ZOrderCurve::new(ORDER10_SIDE);
    let n = curve.len();
    let points: Vec<GridPoint> = curve.all_points();

    let mut group = c.benchmark_group("zorder_encode_order10");
    group.sample_size(20);
    group.bench_function("magic_mask", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc += curve.index(black_box(p));
            }
            acc
        })
    });
    group.bench_function("magic_mask_batch", |b| {
        let mut out = vec![0u64; points.len()];
        b.iter(|| {
            curve.index_batch(black_box(&points), &mut out);
            out[out.len() - 1]
        })
    });
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc += scalar_ref::zorder_index_scalar(ORDER10_SIDE, black_box(p));
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("zorder_decode_order10");
    group.sample_size(20);
    group.bench_function("magic_mask", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let p = curve.point(black_box(i));
                acc += p.x as u64 + p.y as u64;
            }
            acc
        })
    });
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let p = scalar_ref::zorder_point_scalar(ORDER10_SIDE, black_box(i));
                acc += p.x as u64 + p.y as u64;
            }
            acc
        })
    });
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // point_range_batch against a scalar loop: the batch path hoists
    // the bounds check and goes parallel above the threshold.
    let mut group = c.benchmark_group("point_range_batch_2^20");
    group.sample_size(10);
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.for_capacity(1 << 20);
        let n = curve.len() as usize;
        group.bench_function(BenchmarkId::new("batch", kind.name()), |b| {
            let mut out = vec![GridPoint::default(); n];
            b.iter(|| {
                curve.point_range_batch(0, &mut out);
                out[n - 1]
            })
        });
        group.bench_function(BenchmarkId::new("scalar_loop", kind.name()), |b| {
            let mut out = vec![GridPoint::default(); n];
            b.iter(|| {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = curve.point(black_box(i as u64));
                }
                out[n - 1]
            })
        });
    }
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_estimate");
    group.sample_size(10);
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.for_capacity(128 * 128);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| alpha_estimate(black_box(&curve), 7))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hilbert_order10,
    bench_zorder_order10,
    bench_batch_throughput,
    bench_alpha
);
criterion_main!(benches);
