//! E6 wall-clock: spatial treefix (with full accounting) across tree
//! families and directions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_bench::workload;
use spatial_trees::layout::Layout;
use spatial_trees::model::CurveKind;
use spatial_trees::prelude::*;
use spatial_trees::tree::generators::TreeFamily;
use spatial_trees::treefix::contraction::ContractionEngine;
use spatial_trees::treefix::reference::ReferenceEngine;
use spatial_trees::treefix::{treefix_bottom_up, treefix_top_down};
use std::hint::black_box;

/// The tentpole comparison: the allocation-free CSR engine against the
/// retained seed engine (per-round Vec allocations), same tree, same
/// seed, identical results.
fn bench_engine_old_vs_new(c: &mut Criterion) {
    for (family, n) in [
        (TreeFamily::RandomBinary, 1u32 << 14),
        (TreeFamily::PreferentialAttachment, 1u32 << 14),
    ] {
        let tree = workload(family, n, 5);
        let layout = Layout::light_first(&tree, CurveKind::Hilbert);
        let values = vec![Add(1); tree.n() as usize];
        let mut group = c.benchmark_group(format!("contraction_2^14/{}", family.name()));
        group.sample_size(10);
        group.bench_function("csr_alloc_free", |b| {
            b.iter(|| {
                let machine = layout.machine();
                let mut rng = StdRng::seed_from_u64(6);
                let mut eng = ContractionEngine::new(black_box(&tree), &layout, &values, true);
                eng.contract(&machine, &mut rng);
                eng.uncontract_bottom_up(&machine)[0]
            })
        });
        group.bench_function("seed_reference", |b| {
            b.iter(|| {
                let machine = layout.machine();
                let mut rng = StdRng::seed_from_u64(6);
                let mut eng =
                    ReferenceEngine::new(black_box(&tree), &layout, &machine, &values, true);
                eng.contract(&mut rng);
                eng.uncontract_bottom_up()
            })
        });
        group.finish();
    }
}

fn bench_spatial_treefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_treefix_2^14");
    group.sample_size(10);
    for family in [TreeFamily::RandomBinary, TreeFamily::PreferentialAttachment] {
        let tree = workload(family, 1 << 14, 5);
        let layout = Layout::light_first(&tree, CurveKind::Hilbert);
        let values = vec![Add(1); tree.n() as usize];
        group.bench_function(BenchmarkId::new("bottom_up", family.name()), |b| {
            b.iter(|| {
                let machine = layout.machine();
                let mut rng = StdRng::seed_from_u64(6);
                treefix_bottom_up(&machine, &layout, black_box(&tree), &values, &mut rng)
            })
        });
        group.bench_function(BenchmarkId::new("top_down", family.name()), |b| {
            b.iter(|| {
                let machine = layout.machine();
                let mut rng = StdRng::seed_from_u64(6);
                treefix_top_down(&machine, &layout, black_box(&tree), &values, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_expression(c: &mut Criterion) {
    let expr = spatial_trees::treefix::ExprTree::random(1 << 13, &mut StdRng::seed_from_u64(7));
    let layout = Layout::light_first(expr.tree(), CurveKind::Hilbert);
    let mut group = c.benchmark_group("expression_eval_2^13_leaves");
    group.sample_size(10);
    group.bench_function("spatial_rake_compress", |b| {
        b.iter(|| {
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(8);
            spatial_trees::treefix::evaluate_expression(
                &machine,
                &layout,
                black_box(&expr),
                &mut rng,
            )
        })
    });
    group.bench_function("host_sequential", |b| {
        b.iter(|| spatial_trees::treefix::evaluate_expression_host(black_box(&expr)))
    });
    group.finish();
}

fn bench_mincut(c: &mut Criterion) {
    let graph = spatial_trees::mincut::SpannedGraph::random(
        1 << 12,
        1 << 11,
        100,
        &mut StdRng::seed_from_u64(9),
    );
    let layout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
    let mut group = c.benchmark_group("mincut_2^12");
    group.sample_size(10);
    group.bench_function("one_respecting_cuts", |b| {
        b.iter(|| {
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(10);
            spatial_trees::mincut::one_respecting_cuts(
                &machine,
                &layout,
                black_box(&graph),
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_old_vs_new,
    bench_spatial_treefix,
    bench_expression,
    bench_mincut
);
criterion_main!(benches);
