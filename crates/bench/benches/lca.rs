//! E7 wall-clock: batched spatial LCA vs the host binary-lifting oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_bench::workload;
use spatial_trees::layout::Layout;
use spatial_trees::lca::{batched_lca, HostLca};
use spatial_trees::model::CurveKind;
use spatial_trees::prelude::*;
use spatial_trees::tree::generators::TreeFamily;
use std::hint::black_box;

fn bench_lca(c: &mut Criterion) {
    let n = 1u32 << 13;
    let tree = workload(TreeFamily::UniformRandom, n, 8);
    let layout = Layout::light_first(&tree, CurveKind::Hilbert);
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
        .map(|_| (rng.gen_range(0..tree.n()), rng.gen_range(0..tree.n())))
        .collect();

    let mut group = c.benchmark_group("lca_2^13_batch");
    group.sample_size(10);
    group.bench_function("spatial_batched", |b| {
        b.iter(|| {
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(10);
            batched_lca(&machine, &layout, black_box(&tree), &queries, &mut rng)
        })
    });
    group.bench_function("host_binary_lifting", |b| {
        b.iter(|| {
            let oracle = HostLca::new(black_box(&tree));
            queries
                .iter()
                .map(|&(a, b)| oracle.query(a, b))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lca);
criterion_main!(benches);
