//! E1 wall-clock: layout construction and kernel-energy measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_bench::workload;
use spatial_trees::layout::{local_kernel_energy, Layout};
use spatial_trees::model::CurveKind;
use spatial_trees::tree::generators::TreeFamily;
use std::hint::black_box;

fn bench_layout_build(c: &mut Criterion) {
    let tree = workload(TreeFamily::UniformRandom, 1 << 16, 7);
    let mut group = c.benchmark_group("layout_build_2^16");
    group.sample_size(10);
    group.bench_function("light_first_seq", |b| {
        b.iter(|| Layout::light_first(black_box(&tree), CurveKind::Hilbert))
    });
    group.bench_function("light_first_rayon", |b| {
        b.iter(|| Layout::light_first_par(black_box(&tree), CurveKind::Hilbert))
    });
    group.bench_function("bfs", |b| {
        b.iter(|| Layout::bfs(black_box(&tree), CurveKind::Hilbert))
    });
    group.finish();
}

fn bench_kernel_energy(c: &mut Criterion) {
    let tree = workload(TreeFamily::UniformRandom, 1 << 16, 7);
    let mut group = c.benchmark_group("kernel_energy_2^16");
    group.sample_size(10);
    for curve in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let layout = Layout::light_first(&tree, curve);
        group.bench_function(BenchmarkId::from_parameter(curve.name()), |b| {
            b.iter(|| local_kernel_energy(black_box(&tree), black_box(&layout)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout_build, bench_kernel_energy);
criterion_main!(benches);
