//! E10 wall-clock: the "low depth ⇒ real CPU parallelism" claim.
//!
//! The paper's algorithms have poly-log depth; on a multicore host the
//! same structure yields fork-join speedups. This bench compares the
//! sequential and rayon implementations of the three tree primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_bench::workload;
use spatial_trees::tree::generators::TreeFamily;
use spatial_trees::tree::traversal::{light_first_order, light_first_order_par, subtree_sizes_par};
use spatial_trees::treefix::host::{
    treefix_bottom_up_host, treefix_bottom_up_par, treefix_top_down_host, treefix_top_down_par,
};
use spatial_trees::treefix::Add;
use std::hint::black_box;

fn bench_light_first(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_light_first_order");
    group.sample_size(10);
    for log_n in [18u32, 20] {
        let tree = workload(TreeFamily::UniformRandom, 1 << log_n, 13);
        group.bench_function(BenchmarkId::new("sequential", format!("2^{log_n}")), |b| {
            b.iter(|| light_first_order(black_box(&tree)))
        });
        group.bench_function(BenchmarkId::new("rayon", format!("2^{log_n}")), |b| {
            b.iter(|| light_first_order_par(black_box(&tree)))
        });
    }
    group.finish();
}

fn bench_subtree_sizes(c: &mut Criterion) {
    let tree = workload(TreeFamily::UniformRandom, 1 << 20, 13);
    let mut group = c.benchmark_group("host_subtree_sizes_2^20");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(&tree).subtree_sizes())
    });
    group.bench_function("rayon_levels", |b| {
        b.iter(|| subtree_sizes_par(black_box(&tree)))
    });
    group.finish();
}

fn bench_host_treefix(c: &mut Criterion) {
    let tree = workload(TreeFamily::Yule, 1 << 19, 13);
    let values = vec![Add(1); tree.n() as usize];
    let mut group = c.benchmark_group("host_treefix_yule_2^19");
    group.sample_size(10);
    group.bench_function("bottom_up_seq", |b| {
        b.iter(|| treefix_bottom_up_host(black_box(&tree), &values))
    });
    group.bench_function("bottom_up_rayon", |b| {
        b.iter(|| treefix_bottom_up_par(black_box(&tree), &values))
    });
    group.bench_function("top_down_seq", |b| {
        b.iter(|| treefix_top_down_host(black_box(&tree), &values))
    });
    group.bench_function("top_down_rayon", |b| {
        b.iter(|| treefix_top_down_par(black_box(&tree), &values))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_light_first,
    bench_subtree_sizes,
    bench_host_treefix
);
criterion_main!(benches);
