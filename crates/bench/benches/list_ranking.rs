//! E5 wall-clock: list ranking — sequential vs rayon Wyllie vs spatial
//! random-mate (the latter includes all cost accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_bench::random_list;
use spatial_trees::euler::{rank_parallel, rank_sequential, rank_spatial};
use spatial_trees::model::{CurveKind, Machine};
use std::hint::black_box;

fn bench_ranking(c: &mut Criterion) {
    let n = 1usize << 16;
    let (next, start) = random_list(n, 3);
    let mut group = c.benchmark_group("list_ranking_2^16");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| rank_sequential(black_box(&next), start))
    });
    group.bench_function("rayon_wyllie", |b| {
        b.iter(|| rank_parallel(black_box(&next), start))
    });
    group.bench_function("spatial_random_mate", |b| {
        b.iter(|| {
            let machine = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let mut rng = StdRng::seed_from_u64(4);
            rank_spatial(&machine, black_box(&next), start, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
