//! E8 wall-clock: the PRAM-simulation baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_bench::workload;
use spatial_trees::pram::{pram_subtree_sums, PramEngine, PramTreefix};
use spatial_trees::tree::generators::TreeFamily;
use std::hint::black_box;

fn bench_pram(c: &mut Criterion) {
    let tree = workload(TreeFamily::RandomBinary, 1 << 13, 11);
    let values: Vec<u64> = (0..tree.n() as u64).collect();
    let mut group = c.benchmark_group("pram_2^13");
    group.sample_size(10);
    group.bench_function("subtree_sums", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(12);
            let mut pram = PramEngine::new(2 * tree.n(), 2 * tree.n(), &mut rng);
            pram_subtree_sums(&mut pram, black_box(&tree), &values, &mut rng)
        })
    });
    // The reuse path: placement + tour + scratch built once, each
    // iteration pays only the run (allocation-free after warm-up).
    let mut pram = PramEngine::new(2 * tree.n(), 2 * tree.n(), &mut StdRng::seed_from_u64(12));
    let mut engine = PramTreefix::new(&tree);
    group.bench_function("subtree_sums_engine_reuse", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(13);
            pram.reset();
            engine
                .subtree_sums(&mut pram, black_box(&values), &mut rng)
                .last()
                .copied()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pram);
criterion_main!(benches);
