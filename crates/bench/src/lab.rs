//! The bench lab: an append-only run store plus the analysis views and
//! regression gate over it.
//!
//! Every `bench-json-*` invocation of the `experiments` binary appends
//! one [`RunRecord`] — git revision, timestamp, config, the
//! machine-charge scenario rows, and the wall-clock metrics — to
//! `lab/runs.jsonl` (see [`runs_path`]), while still writing the
//! compatible `BENCH_*.json` snapshot. The store is JSONL under the
//! write-ahead journal's durability discipline
//! ([`spatial_trees::store::append_line`]): appends are fsynced, a
//! crash leaves at most one torn tail line, and readers keep the
//! intact prefix. Each line additionally carries a CRC-32 over its own
//! bytes, so a damaged line (and everything after it, per the
//! journal's prefix rule) is dropped rather than trusted.
//!
//! Three views answer the questions one-shot `BENCH_*.json` snapshots
//! cannot (`experiments -- lab-regress | lab-sweep | lab-ab`), and
//! [`regression_report`] backs the noise-aware CI gate
//! (`experiments -- lab-gate`): deterministic machine-charge rows are
//! compared **exactly** against the prior revision (zero noise
//! budget), wall-clock ratios under a tolerance derived from the
//! stored runs' own dispersion — `max(rel_eps · prior_median,
//! mad_k · MAD)`. The noise model is documented in
//! `crates/bench/DESIGN.md`.

use spatial_trees::model::CostReport;
use spatial_trees::store;
use std::collections::BTreeMap;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Minimal JSON (the offline workspace has no serde): a parser for the
// subset the lab emits — objects, arrays, strings, finite numbers,
// booleans, null.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the lab's integers stay exact well
    /// below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|v| v.is_finite())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("invalid utf-8 in string: {e}"))
            }
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(hex).ok_or("bad \\u codepoint")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".into())
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "lab metrics must be finite");
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

// ---------------------------------------------------------------------------
// The run record.
// ---------------------------------------------------------------------------

/// Current line format version.
pub const LAB_FORMAT_VERSION: u64 = 1;

/// One machine-charge scenario row, mirroring the shared `scenarios`
/// schema of the `BENCH_*.json` files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRow {
    /// Scenario name (e.g. `subtree_sums`).
    pub scenario: String,
    /// Implementation under that scenario (e.g. `spatial`, `pram`).
    pub impl_name: String,
    /// Workload family (e.g. `uniform_random`, `in-order-list`).
    pub family: String,
    /// Problem size.
    pub n: u64,
    /// Curve name.
    pub curve: String,
    /// Machine-model charges.
    pub energy: u64,
    /// Depth charge.
    pub depth: u64,
    /// Message count.
    pub messages: u64,
    /// Work charge.
    pub work: u64,
    /// PRAM step count, when the impl reports one.
    pub steps: Option<u64>,
    /// Whether the charges are deterministic for fixed code + seeds.
    /// Deterministic rows get a zero noise budget in the gate;
    /// non-deterministic rows (e.g. totals that depend on queue-timing
    /// coalescing) are compared under the wall-noise tolerance.
    pub det: bool,
}

impl ScenarioRow {
    /// The identity the views and the gate join rows on.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/n={}/{}",
            self.scenario, self.impl_name, self.family, self.n, self.curve
        )
    }

    /// The gated charge fields, by name.
    pub fn fields(&self) -> [(&'static str, u64); 4] {
        [
            ("energy", self.energy),
            ("depth", self.depth),
            ("messages", self.messages),
            ("work", self.work),
        ]
    }
}

/// How a wall metric is interpreted by the views and the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallKind {
    /// A duration (any unit — the name says which): lower is better.
    /// Not gated by default — absolute times do not transfer across
    /// machines; the machine-portable ratios carry the gate.
    Time,
    /// A dimensionless speedup (optimized vs reference on the same
    /// box): higher is better, gated noise-aware against prior runs.
    Ratio,
    /// Recorded for the views, never gated (e.g. QPS figures whose
    /// scale is machine-bound).
    Info,
}

impl WallKind {
    fn name(self) -> &'static str {
        match self {
            WallKind::Time => "time",
            WallKind::Ratio => "ratio",
            WallKind::Info => "info",
        }
    }

    fn from_name(s: &str) -> Option<WallKind> {
        match s {
            "time" => Some(WallKind::Time),
            "ratio" => Some(WallKind::Ratio),
            "info" => Some(WallKind::Info),
            _ => None,
        }
    }
}

/// One wall-clock (or derived) metric of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WallMetric {
    /// Metric name, unique within the run's bench.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Interpretation (see [`WallKind`]).
    pub kind: WallKind,
}

/// One appended lab run: everything a later session needs to compare a
/// revision's performance claims against history.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Which bench family wrote the run (e.g. `sfc_treefix`).
    pub bench: String,
    /// Git revision of the tree that produced the run.
    pub git_rev: String,
    /// Unix seconds at append time.
    pub timestamp: u64,
    /// Free-form config axes (`profile` is always present).
    pub config: Vec<(String, String)>,
    /// Machine-charge rows.
    pub scenarios: Vec<ScenarioRow>,
    /// Wall metrics.
    pub wall: Vec<WallMetric>,
}

impl RunRecord {
    /// Config lookup.
    pub fn config_get(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The build profile the run was measured under.
    pub fn profile(&self) -> &str {
        self.config_get("profile").unwrap_or("release")
    }

    /// Serializes the record as one CRC-framed JSONL line (no trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(1024);
        // Fixed-width CRC window at bytes 8..16, patched below.
        s.push_str("{\"crc\":\"00000000\"");
        s.push_str(&format!(",\"v\":{LAB_FORMAT_VERSION}"));
        s.push_str(&format!(",\"bench\":\"{}\"", escape_json(&self.bench)));
        s.push_str(&format!(",\"rev\":\"{}\"", escape_json(&self.git_rev)));
        s.push_str(&format!(",\"ts\":{}", self.timestamp));
        s.push_str(",\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        s.push_str("},\"scenarios\":[");
        for (i, row) in self.scenarios.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let steps = row
                .steps
                .map(|v| format!(",\"steps\":{v}"))
                .unwrap_or_default();
            s.push_str(&format!(
                "{{\"scenario\":\"{}\",\"impl\":\"{}\",\"family\":\"{}\",\"n\":{},\"curve\":\"{}\",\"energy\":{},\"depth\":{},\"messages\":{},\"work\":{}{steps},\"det\":{}}}",
                escape_json(&row.scenario),
                escape_json(&row.impl_name),
                escape_json(&row.family),
                row.n,
                escape_json(&row.curve),
                row.energy,
                row.depth,
                row.messages,
                row.work,
                row.det,
            ));
        }
        s.push_str("],\"wall\":[");
        for (i, m) in self.wall.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"value\":{},\"kind\":\"{}\"}}",
                escape_json(&m.name),
                fmt_f64(m.value),
                m.kind.name(),
            ));
        }
        s.push_str("]}");
        // CRC-32 over the line with the CRC window zeroed, then patch
        // the window — readers re-zero and verify.
        let crc = store::crc32(s.as_bytes());
        s.replace_range(8..16, &format!("{crc:08x}"));
        s
    }

    /// Parses and CRC-verifies one line produced by [`Self::to_line`].
    pub fn from_line(line: &str) -> Result<RunRecord, String> {
        const WINDOW: std::ops::Range<usize> = 8..16;
        if !line.starts_with("{\"crc\":\"") || line.len() < 17 {
            return Err("not a lab run line (missing crc frame)".into());
        }
        let stored = u32::from_str_radix(&line[WINDOW], 16)
            .map_err(|_| "crc field is not hex".to_string())?;
        let mut zeroed = line.as_bytes().to_vec();
        zeroed[WINDOW].fill(b'0');
        let computed = store::crc32(&zeroed);
        if computed != stored {
            return Err(format!(
                "crc mismatch: stored {stored:08x}, computed {computed:08x}"
            ));
        }
        let doc = parse_json(line)?;
        let version = doc.get("v").and_then(Json::as_u64).ok_or("missing v")?;
        if version != LAB_FORMAT_VERSION {
            return Err(format!("unsupported lab format version {version}"));
        }
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key}"))
        };
        let mut config = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("config") {
            for (k, v) in fields {
                config.push((
                    k.clone(),
                    v.as_str().ok_or("non-string config value")?.to_string(),
                ));
            }
        }
        let mut scenarios = Vec::new();
        for row in doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("missing scenarios")?
        {
            let s = |key: &str| -> Result<String, String> {
                row.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("scenario row missing {key}"))
            };
            let u = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("scenario row missing {key}"))
            };
            scenarios.push(ScenarioRow {
                scenario: s("scenario")?,
                impl_name: s("impl")?,
                family: s("family")?,
                n: u("n")?,
                curve: s("curve")?,
                energy: u("energy")?,
                depth: u("depth")?,
                messages: u("messages")?,
                work: u("work")?,
                steps: row.get("steps").and_then(Json::as_u64),
                det: matches!(row.get("det"), Some(Json::Bool(true)) | None),
            });
        }
        let mut wall = Vec::new();
        for m in doc
            .get("wall")
            .and_then(Json::as_arr)
            .ok_or("missing wall")?
        {
            wall.push(WallMetric {
                name: m
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("wall metric missing name")?
                    .to_string(),
                value: m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("wall metric missing value")?,
                kind: m
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(WallKind::from_name)
                    .ok_or("wall metric missing kind")?,
            });
        }
        Ok(RunRecord {
            bench: str_field("bench")?,
            git_rev: str_field("rev")?,
            timestamp: doc.get("ts").and_then(Json::as_u64).ok_or("missing ts")?,
            config,
            scenarios,
            wall,
        })
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// Where the run store lives: `$LAB_DIR/runs.jsonl`, default
/// `lab/runs.jsonl` relative to the working directory (the workspace
/// root for CI and the documented invocations).
pub fn runs_path() -> PathBuf {
    let dir = std::env::var("LAB_DIR").unwrap_or_else(|_| "lab".into());
    PathBuf::from(dir).join("runs.jsonl")
}

/// The readable history of a run store, with its damage accounting.
#[derive(Debug, Default)]
pub struct RunHistory {
    /// Intact, CRC-verified runs in append order.
    pub runs: Vec<RunRecord>,
    /// Complete lines dropped because of a CRC/parse failure (the
    /// first bad line and everything after it, per the journal's
    /// intact-prefix rule).
    pub dropped_lines: usize,
    /// Bytes of unterminated torn tail dropped by the framing layer.
    pub torn_tail_bytes: usize,
}

/// Appends one run to the store at `path`.
pub fn append_run(path: impl AsRef<std::path::Path>, record: &RunRecord) -> std::io::Result<()> {
    store::append_line(path, record.to_line().as_bytes())
}

/// Reads the intact prefix of the store at `path`: framing drops a
/// torn tail; a CRC or schema failure on a complete line drops that
/// line and everything after it (the journal's prefix discipline —
/// nothing beyond the first damage is trusted).
pub fn read_runs(path: impl AsRef<std::path::Path>) -> std::io::Result<RunHistory> {
    let framed = store::read_lines(path)?;
    let mut history = RunHistory {
        torn_tail_bytes: framed.torn_tail_bytes,
        ..RunHistory::default()
    };
    for (i, line) in framed.lines.iter().enumerate() {
        match RunRecord::from_line(line) {
            Ok(run) => history.runs.push(run),
            Err(_) => {
                history.dropped_lines = framed.lines.len() - i;
                break;
            }
        }
    }
    Ok(history)
}

// ---------------------------------------------------------------------------
// The builder the bench writers drive.
// ---------------------------------------------------------------------------

/// Collects one bench invocation's rows and metrics, then appends the
/// run to the store. The `scenario_row` method doubles as the
/// `BENCH_*.json` row formatter so every writer records each row in
/// both places with one call.
pub struct LabRun {
    record: RunRecord,
}

impl LabRun {
    /// Starts a run for `bench`, capturing the git revision
    /// (`LAB_GIT_REV` overrides the `git rev-parse` probe), the
    /// timestamp, and the build profile.
    pub fn new(bench: &str) -> LabRun {
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        LabRun {
            record: RunRecord {
                bench: bench.to_string(),
                git_rev: current_git_rev(),
                timestamp: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
                config: vec![("profile".into(), profile.into())],
                scenarios: Vec::new(),
                wall: Vec::new(),
            },
        }
    }

    /// Adds a config axis (workload shape, sizes, options).
    pub fn config(&mut self, key: &str, value: impl ToString) {
        self.record.config.push((key.into(), value.to_string()));
    }

    /// Records one deterministic machine-charge row and returns it
    /// formatted for the `scenarios` array of the `BENCH_*.json`
    /// snapshot (the shared schema pinned by `bench_schema.rs`).
    #[allow(clippy::too_many_arguments)]
    pub fn scenario_row(
        &mut self,
        scenario: &str,
        impl_name: &str,
        family: &str,
        n: u64,
        curve: &str,
        r: CostReport,
        steps: Option<u32>,
    ) -> String {
        self.push_scenario(scenario, impl_name, family, n, curve, r, steps, true)
    }

    /// Like [`Self::scenario_row`] for rows whose charges are *not*
    /// run-to-run deterministic (e.g. session totals that depend on
    /// queue-timing coalescing) — the gate compares them under the
    /// noise tolerance instead of exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn scenario_row_nondet(
        &mut self,
        scenario: &str,
        impl_name: &str,
        family: &str,
        n: u64,
        curve: &str,
        r: CostReport,
        steps: Option<u32>,
    ) -> String {
        self.push_scenario(scenario, impl_name, family, n, curve, r, steps, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_scenario(
        &mut self,
        scenario: &str,
        impl_name: &str,
        family: &str,
        n: u64,
        curve: &str,
        r: CostReport,
        steps: Option<u32>,
        det: bool,
    ) -> String {
        self.record.scenarios.push(ScenarioRow {
            scenario: scenario.to_string(),
            impl_name: impl_name.to_string(),
            family: family.to_string(),
            n,
            curve: curve.to_string(),
            energy: r.energy,
            depth: r.depth,
            messages: r.messages,
            work: r.work,
            steps: steps.map(u64::from),
            det,
        });
        let steps = steps
            .map(|s| format!(", \"steps\": {s}"))
            .unwrap_or_default();
        format!(
            "    {{\"scenario\": \"{scenario}\", \"impl\": \"{impl_name}\", \"family\": \"{family}\", \"n\": {n}, \"curve\": \"{curve}\", \"energy\": {}, \"depth\": {}, \"messages\": {}, \"work\": {}{steps}}}",
            r.energy, r.depth, r.messages, r.work
        )
    }

    /// Records an optimized/reference timing pair plus its derived
    /// speedup: `{name}.optimized` and `{name}.reference` as
    /// [`WallKind::Time`], `{name}.speedup` as the gated
    /// [`WallKind::Ratio`].
    pub fn wall_pair(&mut self, name: &str, optimized: f64, reference: f64) {
        self.wall_time(&format!("{name}.optimized"), optimized);
        self.wall_time(&format!("{name}.reference"), reference);
        self.wall_ratio(&format!("{name}.speedup"), reference / optimized);
    }

    /// Records a duration metric (lower is better, not gated by
    /// default).
    pub fn wall_time(&mut self, name: &str, value: f64) {
        self.push_wall(name, value, WallKind::Time);
    }

    /// Records a dimensionless speedup (higher is better, gated).
    pub fn wall_ratio(&mut self, name: &str, value: f64) {
        self.push_wall(name, value, WallKind::Ratio);
    }

    /// Records an informational metric (never gated).
    pub fn wall_info(&mut self, name: &str, value: f64) {
        self.push_wall(name, value, WallKind::Info);
    }

    fn push_wall(&mut self, name: &str, value: f64, kind: WallKind) {
        assert!(value.is_finite(), "wall metric {name} must be finite");
        self.record.wall.push(WallMetric {
            name: name.to_string(),
            value,
            kind,
        });
    }

    /// A view of the record built so far (for tests).
    pub fn record(&self) -> &RunRecord {
        &self.record
    }

    /// Appends the run to the store at [`runs_path`] (`LAB_DIR=off`
    /// disables the append for scratch invocations).
    pub fn commit(self) {
        if std::env::var("LAB_DIR").is_ok_and(|d| d == "off") {
            return;
        }
        let path = runs_path();
        append_run(&path, &self.record).expect("append lab run");
        println!(
            "  lab: appended run bench={} rev={} ({} scenario rows, {} wall metrics) to {}",
            self.record.bench,
            self.record.git_rev,
            self.record.scenarios.len(),
            self.record.wall.len(),
            path.display()
        );
    }
}

/// The git revision the lab stamps on appended runs: `LAB_GIT_REV` if
/// set (CI and history seeding), else `git rev-parse --short=12 HEAD`,
/// else `"unknown"`.
pub fn current_git_rev() -> String {
    if let Ok(rev) = std::env::var("LAB_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

// ---------------------------------------------------------------------------
// Analysis: shared grouping helpers.
// ---------------------------------------------------------------------------

/// Distinct revisions in first-appearance (append) order — the store's
/// notion of "prior" and "latest".
pub fn rev_order(runs: &[RunRecord]) -> Vec<String> {
    let mut revs: Vec<String> = Vec::new();
    for run in runs {
        if !revs.iter().any(|r| r == &run.git_rev) {
            revs.push(run.git_rev.clone());
        }
    }
    revs
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Median absolute deviation of a sample (0 for fewer than two
/// points — the tolerance then falls back to `rel_eps` alone).
pub fn mad_of(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let med = median_of(xs.to_vec());
    median_of(xs.iter().map(|x| (x - med).abs()).collect())
}

// ---------------------------------------------------------------------------
// The regression view + gate.
// ---------------------------------------------------------------------------

/// Noise model of the regression gate. Deterministic charge rows
/// ignore all of this — they are compared exactly.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Relative floor of the wall tolerance band (fraction of the
    /// prior median). The default matches the headroom philosophy of
    /// the committed-data gates in `bench_schema.rs`, which gate
    /// measured speedups at roughly half their committed values.
    pub rel_eps: f64,
    /// Dispersion multiplier: the band is
    /// `max(rel_eps · median, mad_k · MAD)` of the prior samples.
    pub mad_k: f64,
    /// Gate absolute durations too (off by default: times do not
    /// transfer across machines; the ratios carry the gate).
    pub gate_time: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel_eps: 0.5,
            mad_k: 6.0,
            gate_time: false,
        }
    }
}

/// Outcome of one charge-row comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ChargeStatus {
    /// All fields equal the prior revision's exactly.
    Exact,
    /// Row appeared at the latest revision (no prior to compare).
    New,
    /// Row existed at the prior revision but not the latest.
    Missing,
    /// A deterministic field drifted — always a violation.
    Drift {
        /// Which charge field drifted.
        field: &'static str,
        /// Prior-revision value.
        prior: u64,
        /// Latest-revision value.
        latest: u64,
    },
    /// Two runs at the *same* revision disagree on a deterministic
    /// row — always a violation.
    Nondeterministic {
        /// Which charge field disagreed within the revision.
        field: &'static str,
    },
    /// Non-deterministic row within the noise band.
    NoisyWithin,
    /// Non-deterministic row beyond the noise band — a violation.
    NoisyBeyond {
        /// Prior-revision median energy.
        prior: f64,
        /// Latest-revision median energy.
        latest: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
}

/// One compared charge row.
#[derive(Debug, Clone)]
pub struct ChargeCheck {
    /// Row identity ([`ScenarioRow::key`]).
    pub key: String,
    /// Outcome.
    pub status: ChargeStatus,
}

/// Outcome of one wall-metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum WallStatus {
    /// Within the tolerance band.
    Ok,
    /// Better than prior beyond the band (reported, never fatal).
    Improved,
    /// Worse than prior beyond the band — a violation for gated kinds.
    Regressed,
    /// No prior samples under the same profile.
    NoHistory,
    /// Kind is not gated ([`WallKind::Info`], or [`WallKind::Time`]
    /// without `gate_time`).
    Ungated,
}

/// One compared wall metric.
#[derive(Debug, Clone)]
pub struct WallCheck {
    /// Metric name.
    pub name: String,
    /// Metric kind.
    pub kind: WallKind,
    /// Median over prior-revision samples (None without history).
    pub prior_median: Option<f64>,
    /// MAD of the prior-revision samples.
    pub prior_mad: f64,
    /// Median over latest-revision samples.
    pub latest_median: f64,
    /// Sample counts (prior, latest).
    pub samples: (usize, usize),
    /// The tolerance band that applied.
    pub tolerance: f64,
    /// Outcome.
    pub status: WallStatus,
}

/// One bench's comparison of latest vs prior revision.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The bench family.
    pub bench: String,
    /// Profile the wall comparison ran under.
    pub profile: String,
    /// The prior revision compared against (None = first recorded
    /// revision for this bench).
    pub prior_rev: Option<String>,
    /// Charge-row comparisons.
    pub charge: Vec<ChargeCheck>,
    /// Wall-metric comparisons.
    pub wall: Vec<WallCheck>,
}

/// The full regression report the `lab-regress` view prints and the
/// `lab-gate` step enforces.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    /// The latest revision in the store.
    pub latest_rev: String,
    /// Per-bench comparisons (benches with runs at the latest rev).
    pub benches: Vec<BenchReport>,
    /// Human-readable violations; the gate fails iff non-empty.
    pub violations: Vec<String>,
}

/// Builds the regression report: for every bench with runs at the
/// store's latest revision, compares deterministic charge rows exactly
/// (and cross-checks within-revision determinism), non-deterministic
/// rows and wall ratios under the dispersion-derived tolerance,
/// against the nearest prior revision with runs of the same bench
/// (same profile for wall metrics).
pub fn regression_report(
    runs: &[RunRecord],
    cfg: &GateConfig,
    bench_filter: Option<&str>,
) -> RegressionReport {
    let revs = rev_order(runs);
    let Some(latest_rev) = revs.last().cloned() else {
        return RegressionReport::default();
    };
    let rev_index: BTreeMap<&str, usize> = revs
        .iter()
        .enumerate()
        .map(|(i, r)| (r.as_str(), i))
        .collect();

    // Benches with runs at the latest rev, in first-appearance order.
    let mut benches: Vec<String> = Vec::new();
    for run in runs {
        if run.git_rev == latest_rev
            && bench_filter.is_none_or(|f| f == run.bench)
            && !benches.contains(&run.bench)
        {
            benches.push(run.bench.clone());
        }
    }

    let mut report = RegressionReport {
        latest_rev: latest_rev.clone(),
        ..RegressionReport::default()
    };
    for bench in benches {
        let bench_runs: Vec<&RunRecord> = runs.iter().filter(|r| r.bench == bench).collect();
        let latest_runs: Vec<&&RunRecord> = bench_runs
            .iter()
            .filter(|r| r.git_rev == latest_rev)
            .collect();
        // Wall metrics are profile-stratified; compare under the
        // profile of the latest runs (mixed profiles at one rev are
        // compared per the profile of the *last* run).
        let profile = latest_runs.last().map(|r| r.profile()).unwrap_or("release");
        let prior_rev = bench_runs
            .iter()
            .filter(|r| r.git_rev != latest_rev)
            .filter(|r| rev_index[r.git_rev.as_str()] < rev_index[latest_rev.as_str()])
            .max_by_key(|r| rev_index[r.git_rev.as_str()])
            .map(|r| r.git_rev.clone());

        let mut bench_report = BenchReport {
            bench: bench.clone(),
            profile: profile.to_string(),
            prior_rev: prior_rev.clone(),
            charge: Vec::new(),
            wall: Vec::new(),
        };

        // ---- Charge rows. ----
        let collect_rows = |rev: &str| -> BTreeMap<String, Vec<&ScenarioRow>> {
            let mut map: BTreeMap<String, Vec<&ScenarioRow>> = BTreeMap::new();
            for run in bench_runs.iter().filter(|r| r.git_rev == rev) {
                for row in &run.scenarios {
                    map.entry(row.key()).or_default().push(row);
                }
            }
            map
        };
        let latest_rows = collect_rows(&latest_rev);
        let prior_rows = prior_rev
            .as_deref()
            .map(collect_rows)
            .unwrap_or_default();
        for (key, rows) in &latest_rows {
            let det = rows.iter().all(|r| r.det);
            // Within-revision determinism: every run at the latest rev
            // must produce identical deterministic rows.
            let mut status = None;
            if det {
                for pair in rows.windows(2) {
                    for ((field, a), (_, b)) in pair[0].fields().iter().zip(pair[1].fields()) {
                        if *a != b {
                            status = Some(ChargeStatus::Nondeterministic { field });
                            report.violations.push(format!(
                                "{bench}: {key}: deterministic row differs between runs at rev {latest_rev} ({field}: {a} vs {b})"
                            ));
                        }
                    }
                }
            }
            let status = status.unwrap_or_else(|| match prior_rows.get(key) {
                None => ChargeStatus::New,
                Some(prior) => {
                    if det {
                        let (a, b) = (rows[0], prior[0]);
                        match a
                            .fields()
                            .iter()
                            .zip(b.fields())
                            .find(|((_, x), (_, y))| x != y)
                        {
                            None => ChargeStatus::Exact,
                            Some(((field, latest), (_, prior))) => {
                                report.violations.push(format!(
                                    "{bench}: {key}: deterministic {field} drifted from {prior} (rev {}) to {latest} (rev {latest_rev}) — machine-charge rows have a zero noise budget; a deliberate change must re-seed the lab history",
                                    bench_report.prior_rev.as_deref().unwrap_or("?"),
                                ));
                                ChargeStatus::Drift {
                                    field,
                                    prior,
                                    latest: *latest,
                                }
                            }
                        }
                    } else {
                        // Non-deterministic rows: energy compared like
                        // a wall metric (lower is not better here —
                        // flag movement in either direction beyond the
                        // band).
                        let latest_med =
                            median_of(rows.iter().map(|r| r.energy as f64).collect());
                        let prior_samples: Vec<f64> =
                            prior.iter().map(|r| r.energy as f64).collect();
                        let prior_med = median_of(prior_samples.clone());
                        let tolerance = (cfg.rel_eps * prior_med)
                            .max(cfg.mad_k * mad_of(&prior_samples));
                        if (latest_med - prior_med).abs() <= tolerance {
                            ChargeStatus::NoisyWithin
                        } else {
                            report.violations.push(format!(
                                "{bench}: {key}: non-deterministic energy moved beyond the noise band: {prior_med:.0} -> {latest_med:.0} (tolerance {tolerance:.0})"
                            ));
                            ChargeStatus::NoisyBeyond {
                                prior: prior_med,
                                latest: latest_med,
                                tolerance,
                            }
                        }
                    }
                }
            });
            bench_report.charge.push(ChargeCheck {
                key: key.clone(),
                status,
            });
        }
        for key in prior_rows.keys() {
            if !latest_rows.contains_key(key) {
                bench_report.charge.push(ChargeCheck {
                    key: key.clone(),
                    status: ChargeStatus::Missing,
                });
            }
        }

        // ---- Wall metrics (profile-stratified). ----
        let wall_samples = |rev: &str| -> Vec<(String, WallKind, Vec<f64>)> {
            let mut names: Vec<(String, WallKind)> = Vec::new();
            let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for run in bench_runs
                .iter()
                .filter(|r| r.git_rev == rev && r.profile() == profile)
            {
                for m in &run.wall {
                    if !names.iter().any(|(n, _)| n == &m.name) {
                        names.push((m.name.clone(), m.kind));
                    }
                    map.entry(m.name.clone()).or_default().push(m.value);
                }
            }
            names
                .into_iter()
                .map(|(n, k)| {
                    let xs = map.remove(&n).unwrap_or_default();
                    (n, k, xs)
                })
                .collect()
        };
        // Prior samples for wall come from the nearest earlier rev
        // that has same-profile runs of this bench (which can differ
        // from the charge-comparison rev when profiles are mixed).
        let wall_prior_rev = bench_runs
            .iter()
            .filter(|r| r.git_rev != latest_rev && r.profile() == profile)
            .filter(|r| rev_index[r.git_rev.as_str()] < rev_index[latest_rev.as_str()])
            .max_by_key(|r| rev_index[r.git_rev.as_str()])
            .map(|r| r.git_rev.clone());
        let prior_wall: BTreeMap<String, (WallKind, Vec<f64>)> = wall_prior_rev
            .as_deref()
            .map(|rev| {
                wall_samples(rev)
                    .into_iter()
                    .map(|(n, k, xs)| (n, (k, xs)))
                    .collect()
            })
            .unwrap_or_default();
        for (name, kind, latest_samples) in wall_samples(&latest_rev) {
            if latest_samples.is_empty() {
                continue;
            }
            let latest_median = median_of(latest_samples.clone());
            let gated = matches!(kind, WallKind::Ratio) || (cfg.gate_time && kind == WallKind::Time);
            let (prior_median, prior_mad, n_prior) = match prior_wall.get(&name) {
                Some((_, xs)) if !xs.is_empty() => {
                    (Some(median_of(xs.clone())), mad_of(xs), xs.len())
                }
                _ => (None, 0.0, 0),
            };
            let (tolerance, status) = match prior_median {
                None => (0.0, WallStatus::NoHistory),
                Some(prior) => {
                    let tolerance = (cfg.rel_eps * prior.abs()).max(cfg.mad_k * prior_mad);
                    let delta = latest_median - prior;
                    // Ratio: higher is better. Time: lower is better.
                    let worse = match kind {
                        WallKind::Time => delta > tolerance,
                        _ => -delta > tolerance,
                    };
                    let better = match kind {
                        WallKind::Time => -delta > tolerance,
                        _ => delta > tolerance,
                    };
                    let status = if !gated {
                        WallStatus::Ungated
                    } else if worse {
                        report.violations.push(format!(
                            "{bench}: wall {name} regressed: median {prior:.4} (rev {}, {n_prior} runs) -> {latest_median:.4} (rev {latest_rev}) beyond tolerance {tolerance:.4}",
                            wall_prior_rev.as_deref().unwrap_or("?"),
                        ));
                        WallStatus::Regressed
                    } else if better {
                        WallStatus::Improved
                    } else {
                        WallStatus::Ok
                    };
                    (tolerance, status)
                }
            };
            bench_report.wall.push(WallCheck {
                name,
                kind,
                prior_median,
                prior_mad,
                latest_median,
                samples: (n_prior, latest_samples.len()),
                tolerance,
                status,
            });
        }

        report.benches.push(bench_report);
    }
    report
}

// ---------------------------------------------------------------------------
// The sweep view.
// ---------------------------------------------------------------------------

/// Normalization applied to a swept metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Raw value.
    None,
    /// Divided by `n · log2 n` (the spatial bound's shape).
    NLogN,
    /// Divided by `n^1.5` (the PRAM bound's shape).
    NThreeHalves,
}

impl Norm {
    /// Parses the `norm=` filter value.
    pub fn from_name(s: &str) -> Option<Norm> {
        match s {
            "none" => Some(Norm::None),
            "nlogn" => Some(Norm::NLogN),
            "n15" => Some(Norm::NThreeHalves),
            _ => None,
        }
    }

    fn apply(self, v: f64, n: u64) -> f64 {
        match self {
            Norm::None => v,
            Norm::NLogN => v / (n as f64 * (n as f64).log2().max(1.0)),
            Norm::NThreeHalves => v / (n as f64).powf(1.5),
        }
    }
}

/// Row filter for the sweep and A/B views; `None` = no constraint.
#[derive(Debug, Clone, Default)]
pub struct RowFilter {
    /// Bench family.
    pub bench: Option<String>,
    /// Scenario name.
    pub scenario: Option<String>,
    /// Implementation.
    pub impl_name: Option<String>,
    /// Workload family.
    pub family: Option<String>,
    /// Curve.
    pub curve: Option<String>,
}

impl RowFilter {
    fn matches(&self, bench: &str, row: &ScenarioRow) -> bool {
        self.bench.as_deref().is_none_or(|f| f == bench)
            && self.scenario.as_deref().is_none_or(|f| f == row.scenario)
            && self.impl_name.as_deref().is_none_or(|f| f == row.impl_name)
            && self.family.as_deref().is_none_or(|f| f == row.family)
            && self.curve.as_deref().is_none_or(|f| f == row.curve)
    }
}

/// The sweep view's data: one metric across the config axis `n`
/// (rows) and revisions (columns).
#[derive(Debug, Clone, Default)]
pub struct SweepView {
    /// The swept sizes, ascending.
    pub ns: Vec<u64>,
    /// Revisions, append order.
    pub revs: Vec<String>,
    /// `cells[rev_idx][n_idx]`: median metric over matching rows, or
    /// None when the (rev, n) cell has no data.
    pub cells: Vec<Vec<Option<f64>>>,
    /// How many distinct row keys fed each column (over-broad filters
    /// show up here).
    pub keys_matched: usize,
}

/// Builds the parameter-sweep view: `field` (energy/depth/messages/
/// work) of every scenario row matching `filter`, normalized by
/// `norm`, laid out as n × revision.
pub fn sweep_view(runs: &[RunRecord], filter: &RowFilter, field: &str, norm: Norm) -> SweepView {
    let revs = rev_order(runs);
    let mut ns: Vec<u64> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    let mut samples: BTreeMap<(usize, u64), Vec<f64>> = BTreeMap::new();
    for run in runs {
        let rev_idx = revs.iter().position(|r| r == &run.git_rev).expect("known");
        for row in &run.scenarios {
            if !filter.matches(&run.bench, row) {
                continue;
            }
            let value = match field {
                "energy" => row.energy,
                "depth" => row.depth,
                "messages" => row.messages,
                "work" => row.work,
                _ => continue,
            };
            if !ns.contains(&row.n) {
                ns.push(row.n);
            }
            if !keys.contains(&row.key()) {
                keys.push(row.key());
            }
            samples
                .entry((rev_idx, row.n))
                .or_default()
                .push(norm.apply(value as f64, row.n));
        }
    }
    ns.sort_unstable();
    let cells = (0..revs.len())
        .map(|rev_idx| {
            ns.iter()
                .map(|&n| samples.get(&(rev_idx, n)).map(|xs| median_of(xs.clone())))
                .collect()
        })
        .collect();
    SweepView {
        ns,
        revs,
        cells,
        keys_matched: keys.len(),
    }
}

// ---------------------------------------------------------------------------
// The A/B view.
// ---------------------------------------------------------------------------

/// One paired comparison from the A/B view.
#[derive(Debug, Clone)]
pub struct AbPair {
    /// Shared identity (scenario/family/n/curve, or the wall pair
    /// name).
    pub key: String,
    /// (label, value) of side A — the cheaper/optimized side.
    pub a: (String, f64),
    /// (label, value) of side B — the costlier/reference side.
    pub b: (String, f64),
    /// `b.value / a.value` — how much the B side costs over A.
    pub ratio: f64,
}

/// Builds the A/B view over the latest revision: paired
/// implementations on shared scenarios (impls joined on
/// scenario/family/n/curve, energy compared) plus the recorded
/// optimized/reference wall pairs.
pub fn ab_view(runs: &[RunRecord], filter: &RowFilter) -> Vec<AbPair> {
    let revs = rev_order(runs);
    let Some(latest) = revs.last() else {
        return Vec::new();
    };
    let mut pairs: Vec<AbPair> = Vec::new();

    // Scenario pairs: group by everything except the impl.
    let mut groups: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    for run in runs.iter().filter(|r| &r.git_rev == latest) {
        for row in &run.scenarios {
            if !filter.matches(&run.bench, row) {
                continue;
            }
            let key = format!(
                "{}:{}/{}/n={}/{}",
                run.bench, row.scenario, row.family, row.n, row.curve
            );
            let entry = groups.entry(key).or_default();
            if !entry.iter().any(|(name, _)| name == &row.impl_name) {
                entry.push((row.impl_name.clone(), row.energy as f64));
            }
        }
    }
    for (key, mut impls) in groups {
        if impls.len() < 2 {
            continue;
        }
        impls.sort_by(|a, b| a.1.total_cmp(&b.1));
        let a = impls.first().expect("nonempty").clone();
        let b = impls.last().expect("nonempty").clone();
        let ratio = b.1 / a.1.max(1.0);
        pairs.push(AbPair { key, a, b, ratio });
    }

    // Wall pairs: `<name>.optimized` vs `<name>.reference` (medians
    // over the latest rev's runs).
    let mut wall: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut wall_bench: BTreeMap<String, String> = BTreeMap::new();
    for run in runs.iter().filter(|r| &r.git_rev == latest) {
        if filter.bench.as_deref().is_some_and(|f| f != run.bench) {
            continue;
        }
        for m in &run.wall {
            wall.entry(m.name.clone()).or_default().push(m.value);
            wall_bench.insert(m.name.clone(), run.bench.clone());
        }
    }
    let opt_names: Vec<String> = wall
        .keys()
        .filter_map(|name| name.strip_suffix(".optimized").map(str::to_string))
        .collect();
    for base in opt_names {
        let (Some(opt), Some(reference)) = (
            wall.get(&format!("{base}.optimized")),
            wall.get(&format!("{base}.reference")),
        ) else {
            continue;
        };
        let (o, r) = (median_of(opt.clone()), median_of(reference.clone()));
        let bench = wall_bench
            .get(&format!("{base}.optimized"))
            .cloned()
            .unwrap_or_default();
        pairs.push(AbPair {
            key: format!("{bench}:wall/{base}"),
            a: ("optimized".into(), o),
            b: ("reference".into(), r),
            ratio: r / o.max(f64::MIN_POSITIVE),
        });
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(energy: u64) -> CostReport {
        CostReport {
            energy,
            depth: 3,
            messages: 7,
            work: 9,
        }
    }

    #[test]
    fn line_roundtrip_preserves_everything() {
        let mut lab = LabRun::new("unit");
        lab.config("shape", "2^12 \"quoted\"");
        lab.scenario_row("s", "spatial", "fam", 4096, "hilbert", report(100), Some(5));
        lab.scenario_row_nondet("s", "sharded", "fam", 4096, "hilbert", report(101), None);
        lab.wall_pair("kernel", 1.5, 3.0);
        lab.wall_info("qps", 123.456);
        let line = lab.record().to_line();
        let back = RunRecord::from_line(&line).expect("roundtrip");
        assert_eq!(&back, lab.record());
        assert!(back.scenarios[0].det && !back.scenarios[1].det);
        assert_eq!(back.wall.len(), 4);
        assert_eq!(back.wall[2].kind, WallKind::Ratio);
        assert_eq!(back.wall[2].value, 2.0);
    }

    #[test]
    fn corrupted_line_fails_crc() {
        let lab = LabRun::new("unit");
        let line = lab.record().to_line();
        let mut bad = line.clone().into_bytes();
        let at = line.find("unit").expect("bench name");
        bad[at] = b'x';
        let bad = String::from_utf8(bad).expect("utf8");
        assert!(RunRecord::from_line(&bad).unwrap_err().contains("crc"));
        // And the CRC window itself is covered: a flipped hex digit
        // fails too.
        let mut bad = line.into_bytes();
        bad[8] = if bad[8] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(bad).expect("utf8");
        assert!(RunRecord::from_line(&bad).is_err());
    }

    #[test]
    fn parse_json_subset() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"\n","c":true,"d":null}"#).expect("parse");
        assert_eq!(doc.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\"\n"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{\"a\":Infinity}").is_err());
    }

    #[test]
    fn rev_order_is_first_appearance() {
        let mk = |rev: &str| RunRecord {
            bench: "b".into(),
            git_rev: rev.into(),
            timestamp: 0,
            config: vec![],
            scenarios: vec![],
            wall: vec![],
        };
        let runs = [mk("r1"), mk("r2"), mk("r1"), mk("r3")];
        assert_eq!(rev_order(&runs), ["r1", "r2", "r3"]);
    }

    #[test]
    fn mad_of_known_samples() {
        assert_eq!(mad_of(&[]), 0.0);
        assert_eq!(mad_of(&[5.0]), 0.0);
        // median 3, abs devs [2,1,0,1,2] -> median 1
        assert_eq!(mad_of(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }
}
