//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p spatial-bench --bin experiments           # all
//! cargo run --release -p spatial-bench --bin experiments -- e1 e7  # some
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_bench::lab::{self, LabRun};
use spatial_bench::{f2, f3, workload, Table};
use spatial_trees::layout::{
    build_light_first_spatial, edge_distance_stats, local_kernel_energy, Layout, LayoutKind,
};
use spatial_trees::lca::batched_lca;
use spatial_trees::messaging::{local_broadcast, VirtualTree};
use spatial_trees::model::CostReport;
use spatial_trees::model::{CurveKind, Machine};
use spatial_trees::pram::{pram_lca_batch, pram_subtree_sums, PramEngine};
use spatial_trees::prelude::*;
use spatial_trees::sfc::locality::{alpha_estimate, mean_step_distance};
use spatial_trees::sfc::zorder::{longest_diagonal, ZOrderCurve};
use spatial_trees::sfc::Curve;
use spatial_trees::tree::generators::TreeFamily;
use spatial_trees::tree::HeavyPathDecomposition;
use spatial_trees::treefix::{treefix_bottom_up, treefix_top_down};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A typo'd experiment id used to match nothing, print nothing, and
    // exit 0 — in CI that silently skipped artifact regeneration. Any
    // argument that is not a known id (or a `key=value` lab filter) is
    // now a hard error.
    if let Err(msg) = spatial_bench::validate_args(&args) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let explicit = |id: &str| args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if want("e1") {
        e1_layout_energy();
    }
    if want("e2") {
        e2_zorder();
    }
    if want("e3") {
        e3_curve_locality();
    }
    if want("e4") {
        e4_unbounded_degree();
    }
    if want("e5") {
        e5_layout_creation();
    }
    if want("e6") {
        e6_treefix();
    }
    if want("e7") {
        e7_lca();
    }
    if want("e8") {
        e8_pram_baseline();
    }
    if want("e9") {
        e9_path_decomposition();
    }
    if want("e11") {
        e11_mincut();
    }
    if want("a1") {
        a1_order_and_curve_ablation();
    }
    if want("a2") {
        a2_dynamic_layout();
    }
    if want("a3") {
        a3_expression_evaluation();
    }
    // `calibrate-thresholds` regenerates `crates/sfc/src/thresholds.rs`
    // from measured sweeps. Explicit-only: it writes source, so the
    // default all-experiments run must not touch it.
    if explicit("calibrate-thresholds") {
        calibrate_thresholds();
    }
    // SFC + treefix perf baseline (the SWAR acceptance bar);
    // `bench-json-sfc` runs it solo.
    if want("bench-json") || want("bench-json-sfc") {
        bench_json();
    }
    // `bench-json` alone also reports the upper-pipeline baseline (the
    // PR 2 acceptance bar lives there); `bench-json-lca` runs it solo.
    if want("bench-json") || want("bench-json-lca") {
        bench_json_lca();
    }
    // Layout scenario sweep + §IV build / dynamic-layout perf baseline
    // (the PR 3 acceptance bar); `bench-json-layout` runs it solo.
    if want("bench-json") || want("bench-json-layout") {
        bench_json_layout();
    }
    // E8 PRAM-vs-spatial energy crossover (the PR 4 acceptance bar);
    // `bench-json-pram` runs it solo.
    if want("bench-json") || want("bench-json-pram") {
        bench_json_pram();
    }
    // SpatialForest mixed-workload service throughput (the PR 5
    // acceptance bar); `bench-json-service` runs it solo.
    if want("bench-json") || want("bench-json-service") {
        bench_json_service();
    }
    // Sharded multi-tenant service throughput under sustained mixed
    // load (the PR 6 acceptance bar); `bench-json-throughput` runs it
    // solo.
    if want("bench-json") || want("bench-json-throughput") {
        bench_json_throughput();
    }
    // Snapshot + journal recovery vs full history replay (the PR 7
    // acceptance bar); `bench-json-durability` runs it solo.
    if want("bench-json") || want("bench-json-durability") {
        bench_json_durability();
    }
    // Out-of-core mapped serving under resident-page budgets plus
    // incremental checkpoints (the PR 9 acceptance bar);
    // `bench-json-ooc` runs it solo.
    if want("bench-json") || want("bench-json-ooc") {
        bench_json_ooc();
    }
    // Lab views read the run store; explicit-only (they never append,
    // and the default all-experiments run should not depend on
    // `lab/runs.jsonl` being present).
    if explicit("lab-regress") || explicit("lab-sweep") || explicit("lab-ab") || explicit("lab-gate")
    {
        run_lab_views(&args, explicit);
    }
}

/// Dispatches the `lab-*` analysis views over the persisted run store.
/// `key=value` arguments filter the views (`bench=`, `scenario=`,
/// `impl=`, `family=`, `curve=`, `metric=`, `norm=`) and tune the gate
/// (`rel_eps=`, `mad_k=`, `gate_time=`).
fn run_lab_views(args: &[String], explicit: impl Fn(&str) -> bool) {
    let filter_of = |key: &str| -> Option<String> {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("{key}=")).map(str::to_string))
    };
    let path = lab::runs_path();
    let history = lab::read_runs(&path).expect("read lab run store");
    println!(
        "\n### lab — {} runs across {} revs in {}",
        history.runs.len(),
        lab::rev_order(&history.runs).len(),
        path.display()
    );
    if history.torn_tail_bytes > 0 {
        println!(
            "  note: dropped a {}-byte torn tail (interrupted append)",
            history.torn_tail_bytes
        );
    }
    if history.dropped_lines > 0 {
        println!(
            "  WARNING: dropped {} damaged trailing lines (CRC/schema failure)",
            history.dropped_lines
        );
    }

    let mut cfg = lab::GateConfig::default();
    if let Some(v) = filter_of("rel_eps") {
        cfg.rel_eps = v.parse().expect("rel_eps must be a float");
    }
    if let Some(v) = filter_of("mad_k") {
        cfg.mad_k = v.parse().expect("mad_k must be a float");
    }
    if let Some(v) = filter_of("gate_time") {
        cfg.gate_time = v.parse().expect("gate_time must be true/false");
    }
    let row_filter = lab::RowFilter {
        bench: filter_of("bench"),
        scenario: filter_of("scenario"),
        impl_name: filter_of("impl"),
        family: filter_of("family"),
        curve: filter_of("curve"),
    };

    if explicit("lab-regress") || explicit("lab-gate") {
        let report = lab::regression_report(&history.runs, &cfg, row_filter.bench.as_deref());
        print_regression_report(&report);
        if explicit("lab-gate") {
            if history.runs.is_empty() {
                eprintln!("lab-gate: FAIL — the run store is empty; seed it with ≥2 baseline runs");
                std::process::exit(1);
            }
            if report.violations.is_empty() {
                println!("lab-gate: OK — no regressions at rev {}", report.latest_rev);
            } else {
                eprintln!(
                    "lab-gate: FAIL — {} violation(s) at rev {}",
                    report.violations.len(),
                    report.latest_rev
                );
                std::process::exit(1);
            }
        }
    }

    if explicit("lab-sweep") {
        let metric = filter_of("metric").unwrap_or_else(|| "energy".into());
        let norm = filter_of("norm")
            .map(|v| lab::Norm::from_name(&v).expect("norm must be none|nlogn|n15"))
            .unwrap_or(lab::Norm::None);
        // Default to the headline E8 kernel when nothing narrows the
        // sweep: spatial subtree sums, whose normalized energy should
        // sit flat across sizes and revs.
        let mut f = row_filter.clone();
        if f.scenario.is_none() && f.impl_name.is_none() && f.bench.is_none() {
            f.scenario = Some("subtree_sums".into());
            f.impl_name = Some("spatial".into());
        }
        let view = lab::sweep_view(&history.runs, &f, &metric, norm);
        println!(
            "\nlab-sweep — {metric} (norm {norm:?}) over {} row keys, n x rev:",
            view.keys_matched
        );
        if view.ns.is_empty() {
            println!("  no rows match the filter");
        } else {
            let mut headers = vec!["n".to_string()];
            headers.extend(view.revs.iter().cloned());
            let mut table = Table::new(headers);
            for (i, n) in view.ns.iter().enumerate() {
                let mut cells = vec![n.to_string()];
                for rev_cells in &view.cells {
                    cells.push(
                        rev_cells[i]
                            .map(|v| format!("{v:.4}"))
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                table.row(cells);
            }
            table.print();
        }
    }

    if explicit("lab-ab") {
        let pairs = lab::ab_view(&history.runs, &row_filter);
        println!("\nlab-ab — paired impls on shared scenarios (latest rev):");
        if pairs.is_empty() {
            println!("  no pairs match the filter");
        } else {
            let mut table = Table::new(["pair", "a", "a value", "b", "b value", "b/a"]);
            for p in &pairs {
                table.row([
                    p.key.clone(),
                    p.a.0.clone(),
                    format!("{:.3}", p.a.1),
                    p.b.0.clone(),
                    format!("{:.3}", p.b.1),
                    format!("{:.2}x", p.ratio),
                ]);
            }
            table.print();
        }
    }
}

/// Prints the `lab-regress` view of a [`lab::RegressionReport`].
fn print_regression_report(report: &lab::RegressionReport) {
    if report.benches.is_empty() {
        println!("lab-regress: no runs at a latest revision (empty store?)");
        return;
    }
    println!("\nlab-regress — latest rev {}:", report.latest_rev);
    for b in &report.benches {
        let prior = b.prior_rev.as_deref().unwrap_or("(no prior rev)");
        let mut exact = 0usize;
        let mut fresh = 0usize;
        let mut missing = 0usize;
        let mut noisy = 0usize;
        let mut bad = 0usize;
        for c in &b.charge {
            match c.status {
                lab::ChargeStatus::Exact => exact += 1,
                lab::ChargeStatus::New => fresh += 1,
                lab::ChargeStatus::Missing => missing += 1,
                lab::ChargeStatus::NoisyWithin => noisy += 1,
                _ => bad += 1,
            }
        }
        println!(
            "\n  {} vs {prior} ({} profile) — charges: {exact} exact, {noisy} noisy-ok, {fresh} new, {missing} missing, {bad} VIOLATING",
            b.bench, b.profile
        );
        if !b.wall.is_empty() {
            let mut table = Table::new([
                "wall metric",
                "kind",
                "prior med",
                "mad",
                "latest med",
                "tol",
                "runs",
                "status",
            ]);
            for w in &b.wall {
                table.row([
                    w.name.clone(),
                    format!("{:?}", w.kind).to_lowercase(),
                    w.prior_median
                        .map(|v| format!("{v:.4}"))
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.4}", w.prior_mad),
                    format!("{:.4}", w.latest_median),
                    format!("{:.4}", w.tolerance),
                    format!("{}/{}", w.samples.0, w.samples.1),
                    format!("{:?}", w.status).to_lowercase(),
                ]);
            }
            table.print();
        }
    }
    if report.violations.is_empty() {
        println!("\n  violations: none");
    } else {
        println!("\n  violations:");
        for v in &report.violations {
            println!("    - {v}");
        }
    }
}

/// `bench-json-service` — the session layer's mixed-workload
/// throughput: one warm [`spatial_trees::session::SpatialForest`]
/// serving 16 batches × 96 mixed queries (LCA + subtree sums + tour
/// ranks) against (a) building every engine fresh per query — the
/// no-session-layer baseline the acceptance bar measures — and (b) a
/// fresh forest per batch. Writes `BENCH_service.json` next to the
/// workspace root.
fn bench_json_service() {
    use spatial_trees::euler::ranking::RankingEngine;
    use spatial_trees::euler::EulerTour;
    use spatial_trees::lca::LcaEngine;
    use spatial_trees::session::{ForestOptions, QueryBatch, Request, Response, SpatialForest};
    use spatial_trees::tree::ChildrenCsr;
    use spatial_trees::treefix::contraction::ContractionEngine;
    use spatial_trees::treefix::Add;

    println!(
        "\n### bench-json-service — SpatialForest mixed-workload throughput → BENCH_service.json\n"
    );
    let mut lab = LabRun::new("service");

    let log_n = 13u32;
    let n = 1u32 << log_n;
    let family = TreeFamily::UniformRandom;
    let t = workload(family, n, 21);

    // 16 batches × 96 mixed queries, drawn once up front.
    let mut qrng = StdRng::seed_from_u64(22);
    let batches: Vec<QueryBatch> = (0..16)
        .map(|_| {
            let mut b = QueryBatch::with_capacity(96);
            for _ in 0..40 {
                b.lca(qrng.gen_range(0..n), qrng.gen_range(0..n));
            }
            for _ in 0..30 {
                b.subtree_sum(qrng.gen_range(0..n));
            }
            for _ in 0..26 {
                b.rank(qrng.gen_range(0..n));
            }
            b
        })
        .collect();
    let total_queries: usize = batches.iter().map(|b| b.len()).sum();

    // ---- The warm forest: correctness reference + charge rows. ----
    let mut forest = SpatialForest::new(&t);
    forest.execute(batches[0].requests(), &mut StdRng::seed_from_u64(23));
    let report = {
        forest.execute(batches[0].requests(), &mut StdRng::seed_from_u64(23));
        forest.last_report()
    };
    let forest_answers: Vec<Response> = forest
        .execute(batches[0].requests(), &mut StdRng::seed_from_u64(23))
        .to_vec();

    // ---- Baseline (a): fresh engines per query (shared tree, layout ----
    // ---- and machine — only the engines are rebuilt, which is       ----
    // ---- exactly what the session layer amortizes).                 ----
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let sizes = t.subtree_sizes();
    let csr = ChildrenCsr::by_size(&t, &sizes);
    let tour = EulerTour::light_first_from_csr(&t, &csr);
    let ones = vec![Add(1); n as usize];
    let answer_fresh = |req: &Request, rng: &mut StdRng| -> Response {
        match *req {
            Request::Lca(a, b) => {
                let machine = layout.machine();
                let mut engine = LcaEngine::new(&layout, &t);
                Response::Lca(engine.run(&machine, &[(a, b)], rng).answers[0])
            }
            Request::SubtreeSum(v) => {
                let machine = layout.machine();
                let mut engine = ContractionEngine::new(&t, &layout, &ones, true);
                engine.contract(&machine, rng);
                Response::SubtreeSum(engine.uncontract_bottom_up(&machine)[v as usize].0)
            }
            Request::Rank(v) => {
                let machine = Machine::on_curve(CurveKind::Hilbert, 2 * n);
                let mut engine = RankingEngine::new(tour.next_darts(), tour.start());
                engine.rank(&machine, rng);
                Response::Rank(if v == t.root() {
                    0
                } else {
                    engine.ranks()[spatial_trees::euler::tour::down(v) as usize] + 1
                })
            }
            Request::InsertLeaf { .. } => unreachable!("query-only batches"),
        }
    };
    // Cross-check the warm forest against the fresh-engine baseline
    // before timing anything.
    {
        let mut rng = StdRng::seed_from_u64(23);
        for (req, got) in batches[0].requests().iter().zip(&forest_answers) {
            assert_eq!(
                *got,
                answer_fresh(req, &mut rng),
                "forest diverged on {req:?}"
            );
        }
    }

    // ---- Timings (ms per query). ----
    let reuse_ms = time_best_ms(3, || {
        let mut acc = 0u64;
        for b in &batches {
            let responses = forest.execute(b.requests(), &mut StdRng::seed_from_u64(23));
            acc = acc.wrapping_add(responses.len() as u64);
        }
        acc
    }) / total_queries as f64;

    // Fresh engines are ~three orders slower; one batch is plenty of
    // signal (and keeps CI fast).
    let fresh_engines_ms = time_best_ms(1, || {
        let mut rng = StdRng::seed_from_u64(23);
        let mut acc = 0u64;
        for req in batches[0].requests() {
            acc = acc.wrapping_add(match answer_fresh(req, &mut rng) {
                Response::Lca(w) => w as u64,
                Response::SubtreeSum(s) => s,
                Response::Rank(r) => r,
                Response::InsertedLeaf(v) => v as u64,
            });
        }
        acc
    }) / batches[0].len() as f64;

    let fresh_forest_ms = time_best_ms(2, || {
        let mut acc = 0u64;
        for b in batches.iter().take(4) {
            let mut fresh = SpatialForest::new(&t);
            let responses = fresh.execute(b.requests(), &mut StdRng::seed_from_u64(23));
            acc = acc.wrapping_add(responses.len() as u64);
        }
        acc
    }) / (4 * batches[0].len()) as f64;

    let speedup_engines = fresh_engines_ms / reuse_ms;
    let speedup_forest = fresh_forest_ms / reuse_ms;
    assert!(
        speedup_engines >= 1.5,
        "acceptance bar: mixed-batch reuse must beat per-query fresh engines by ≥ 1.5x, got {speedup_engines:.2}x"
    );

    // ---- Crossover mode: the same sums priced on the PRAM shadow. ----
    let crossover_report = {
        let mut xf = SpatialForest::with_options(
            &t,
            ForestOptions {
                crossover: true,
                ..ForestOptions::default()
            },
        );
        let mut b = QueryBatch::new();
        for i in 0..16u32 {
            b.subtree_sum(i * 97 % n);
        }
        xf.execute(b.requests(), &mut StdRng::seed_from_u64(24));
        xf.last_report()
    };
    let pram_shadow = crossover_report.pram.expect("crossover mode");

    let mut table = Table::new(["benchmark", "optimized ms/q", "reference ms/q", "speedup"]);
    let mut rows = Vec::new();
    for (name, opt, reference) in [
        (
            "service_mixed_2^13_reuse_vs_fresh_engines",
            reuse_ms,
            fresh_engines_ms,
        ),
        (
            "service_mixed_2^13_reuse_vs_fresh_forest_per_batch",
            reuse_ms,
            fresh_forest_ms,
        ),
    ] {
        table.row([
            name.to_string(),
            format!("{opt:.4}"),
            format!("{reference:.4}"),
            format!("{:.2}x", reference / opt),
        ]);
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"optimized_ms\": {opt:.4}, \"reference_ms\": {reference:.4}, \"speedup\": {:.3}}}",
            reference / opt
        ));
        lab.wall_pair(name, opt, reference);
    }
    table.print();
    println!(
        "  crossover shadow: grid energy {} vs PRAM energy {} ({}x)",
        crossover_report.grid.energy,
        pram_shadow.energy,
        pram_shadow.energy / crossover_report.grid.energy.max(1)
    );

    lab.config("n", format!("2^{log_n}"));
    lab.config("batches", "16x96 mixed");
    let scenario_rows = [
        lab.scenario_row(
            "service_mixed",
            "forest",
            family.name(),
            n as u64,
            CurveKind::Hilbert.name(),
            report.grid,
            None,
        ),
        lab.scenario_row(
            "service_mixed_ranking",
            "forest-dart",
            family.name(),
            n as u64,
            CurveKind::Hilbert.name(),
            report.ranking,
            None,
        ),
        lab.scenario_row(
            "service_sums_crossover",
            "spatial",
            family.name(),
            n as u64,
            CurveKind::Hilbert.name(),
            crossover_report.grid,
            None,
        ),
        lab.scenario_row(
            "service_sums_crossover",
            "pram",
            family.name(),
            n as u64,
            CurveKind::Hilbert.name(),
            pram_shadow,
            None,
        ),
    ];
    let json = format!(
        "{{\n  \"workload\": \"uniform_random n=2^{log_n}, 16 batches x 96 mixed queries (40 LCA + 30 subtree sums + 26 tour ranks)\",\n  \"baselines\": \"fresh-engines = rebuild every engine per query (shared tree/layout); fresh-forest = new SpatialForest per batch\",\n  \"total_queries\": {total_queries},\n  \"speedup_vs_fresh_engines\": {speedup_engines:.3},\n  \"speedup_vs_fresh_forest_per_batch\": {speedup_forest:.3},\n  \"results\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        scenario_rows.join(",\n")
    );
    let path = "BENCH_service.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_service.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `bench-json-throughput` — sustained mixed-load throughput of the
/// sharded [`spatial_trees::serve::ForestService`]: 8 tenants of
/// n = 2^13 each, an open-loop arrival trace of 256 jobs × 32 mixed
/// requests (≈6% inserts) with tenant skew 4:2:2:1:1:1:1:1, replayed
/// against 1/2/4/8 worker threads. Reports measured wall-clock QPS,
/// **modeled** aggregate QPS (total requests / busiest shard's busy
/// time — the load-balance critical path, i.e. the throughput the
/// sharding supports with one core per worker; on a machine with
/// fewer cores, wall QPS is core-bound while this figure is not), and
/// client-observed p50/p99 job latency. Also runs the dispatch
/// granularity micro-sweep behind
/// [`spatial_trees::serve::MIN_COALESCED_BATCH`]. Writes
/// `BENCH_throughput.json` next to the workspace root.
fn bench_json_throughput() {
    use spatial_trees::serve::{ForestService, ServiceOptions, Ticket, MIN_COALESCED_BATCH};
    use spatial_trees::session::{QueryBatch, SpatialForest};
    use std::time::Instant;

    println!(
        "\n### bench-json-throughput — sharded ForestService sustained load → BENCH_throughput.json\n"
    );
    let mut lab = LabRun::new("throughput");

    let log_n = 13u32;
    let n = 1u32 << log_n;
    let tenants = 8usize;
    let family = TreeFamily::UniformRandom;
    let trees: Vec<Tree> = (0..tenants)
        .map(|t| workload(family, n, 31 + t as u64))
        .collect();

    // ---- Open-loop arrival trace, shared by every worker count. ----
    // Tenant skew stresses load balance: the busiest tenant carries
    // 4/13 of the requests, so perfect 8-way sharding models out at
    // 13/4 = 3.25x over one worker — the ≥3x acceptance bar with
    // margin, and an honest ceiling (per-tenant streams can't split).
    const JOB_LEN: usize = 32;
    const JOBS: usize = 256;
    let skew = [4u32, 2, 2, 1, 1, 1, 1, 1];
    let skew_total: u32 = skew.iter().sum();
    let mut trace_rng = StdRng::seed_from_u64(32);
    let mut sizes: Vec<u32> = vec![n; tenants];
    let trace: Vec<(u32, QueryBatch)> = (0..JOBS)
        .map(|_| {
            let mut pick = trace_rng.gen_range(0..skew_total);
            let tenant = skew
                .iter()
                .position(|&w| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("skew covers the draw") as u32;
            let mut b = QueryBatch::with_capacity(JOB_LEN);
            let sz = &mut sizes[tenant as usize];
            for _ in 0..JOB_LEN {
                let kind = trace_rng.gen_range(0..100);
                if kind < 6 {
                    b.insert_leaf_weighted(trace_rng.gen_range(0..*sz), trace_rng.gen_range(1..5));
                    *sz += 1;
                } else if kind < 40 {
                    b.lca(trace_rng.gen_range(0..*sz), trace_rng.gen_range(0..*sz));
                } else if kind < 72 {
                    b.subtree_sum(trace_rng.gen_range(0..*sz));
                } else {
                    b.rank(trace_rng.gen_range(0..*sz));
                }
            }
            (tenant, b)
        })
        .collect();
    let total_requests = (JOBS * JOB_LEN) as u64;

    // ---- Correctness cross-check before timing anything: the ----
    // ---- 2-worker service answers exactly like direct forests. ----
    let direct_answers: Vec<Vec<Response>> = {
        let mut forests: Vec<SpatialForest> = trees.iter().map(SpatialForest::new).collect();
        let mut rng = StdRng::seed_from_u64(40);
        trace
            .iter()
            .map(|(tenant, b)| {
                forests[*tenant as usize]
                    .execute(b.requests(), &mut rng)
                    .to_vec()
            })
            .collect()
    };
    {
        let service = ForestService::start(&trees, ServiceOptions::new(2));
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|(tenant, b)| service.submit(*tenant, b.requests()))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().expect("worker alive"),
                direct_answers[i],
                "service diverged from direct forests on job {i}"
            );
        }
        service.shutdown();
    }

    // ---- Direct single-thread baseline (per-job, no coalescing): ----
    // ---- the PR 5 warm path the 1-worker service must stay       ----
    // ---- within 10% of.                                          ----
    let direct_ms_per_q = time_best_ms(2, || {
        let mut forests: Vec<SpatialForest> = trees.iter().map(SpatialForest::new).collect();
        let mut rng = StdRng::seed_from_u64(40);
        let mut acc = 0u64;
        for (tenant, b) in &trace {
            acc = acc.wrapping_add(
                forests[*tenant as usize]
                    .execute(b.requests(), &mut rng)
                    .len() as u64,
            );
        }
        acc
    }) / total_requests as f64;

    // ---- The sustained-load runs. ----
    struct ConfigRun {
        workers: usize,
        wall_qps: f64,
        modeled_qps: f64,
        p50_ms: f64,
        p99_ms: f64,
        executes: u64,
        busy_ms_per_q_busiest: f64,
        total_busy_s: f64,
        grid_total: CostReport,
    }
    let run_config = |workers: usize| -> ConfigRun {
        let mut opts = ServiceOptions::new(workers);
        opts.seed = 77;
        opts.queue_capacity = 512;
        let service = ForestService::start(&trees, opts);
        // One collector thread per shard drains tickets in each
        // shard's FIFO completion order, so a slow shard never
        // inflates another shard's observed latency.
        let (mut latencies, wall_s) = std::thread::scope(|s| {
            let mut txs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = std::sync::mpsc::channel::<(Instant, Ticket)>();
                txs.push(tx);
                handles.push(s.spawn(move || {
                    let mut lats = Vec::new();
                    while let Ok((t0, ticket)) = rx.recv() {
                        std::hint::black_box(ticket.wait().expect("worker alive").len());
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                }));
            }
            let wall0 = Instant::now();
            for (tenant, b) in &trace {
                let t0 = Instant::now();
                let ticket = service.submit(*tenant, b.requests());
                txs[*tenant as usize % workers]
                    .send((t0, ticket))
                    .expect("collector alive");
            }
            drop(txs);
            let mut lats: Vec<f64> = Vec::with_capacity(JOBS);
            for h in handles {
                lats.extend(h.join().expect("collector"));
            }
            (lats, wall0.elapsed().as_secs_f64())
        });
        let report = service.shutdown();
        assert_eq!(report.total_requests(), total_requests);
        latencies.sort_by(f64::total_cmp);
        // Nearest-rank percentile: the old `((len-1)·p) as usize`
        // truncation read p99-over-256 at index 252 (~p98.8), biasing
        // the reported tail low.
        let pct =
            |p: f64| spatial_bench::percentile(&latencies, p).expect("every job has a latency");
        let busiest = report
            .shards
            .iter()
            .max_by_key(|s| s.busy)
            .expect("nonempty");
        let grid_total = report
            .shards
            .iter()
            .flat_map(|s| s.tenants.iter())
            .flat_map(|t| t.reports.iter())
            .fold(CostReport::default(), |acc, r| acc + r.grid);
        ConfigRun {
            workers,
            wall_qps: total_requests as f64 / wall_s,
            modeled_qps: report.modeled_qps(),
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            executes: report.total_executes(),
            busy_ms_per_q_busiest: busiest.busy.as_secs_f64() * 1e3
                / busiest.requests.max(1) as f64,
            total_busy_s: report.total_busy().as_secs_f64(),
            grid_total,
        }
    };

    let runs: Vec<ConfigRun> = [1usize, 2, 4, 8].into_iter().map(run_config).collect();

    let mut table = Table::new([
        "workers",
        "wall q/s",
        "modeled q/s",
        "p50 ms",
        "p99 ms",
        "sessions",
    ]);
    for r in &runs {
        table.row([
            r.workers.to_string(),
            f2(r.wall_qps),
            f2(r.modeled_qps),
            f3(r.p50_ms),
            f3(r.p99_ms),
            r.executes.to_string(),
        ]);
    }
    table.print();

    // Acceptance: modeled aggregate QPS must scale ≥3x from 1 to 8
    // workers (the load-balance critical path; wall QPS on this
    // machine is bounded by its core count), and the single-shard
    // warm path must stay within 10% of the direct forest path.
    let speedup_modeled = runs[3].modeled_qps / runs[0].modeled_qps;
    assert!(
        speedup_modeled >= 3.0,
        "acceptance bar: modeled QPS must scale >= 3x from 1 to 8 workers, got {speedup_modeled:.2}x"
    );
    let single_shard_overhead = runs[0].busy_ms_per_q_busiest / direct_ms_per_q;
    assert!(
        single_shard_overhead <= 1.10,
        "acceptance bar: 1-worker service path must stay within 10% of the direct forest \
         ({:.4} ms/q vs {direct_ms_per_q:.4} ms/q = {single_shard_overhead:.3}x)",
        runs[0].busy_ms_per_q_busiest
    );
    println!(
        "  modeled scaling 1->8 workers: {speedup_modeled:.2}x; single-shard overhead vs direct: {:.1}%",
        (single_shard_overhead - 1.0) * 100.0
    );

    // ---- Dispatch granularity micro-sweep: per-query cost vs   ----
    // ---- requests-per-cycle, coalescing disabled so every job  ----
    // ---- is its own session. The curve fits F/b + c: a fixed   ----
    // ---- per-cycle cost F (session setup + hand-off) amortized ----
    // ---- over b requests plus a marginal per-query cost c.     ----
    const SWEEP_REQUESTS: usize = 1024;
    let sweep_sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let mut sweep_rows = Vec::new();
    let mut sweep_ms_per_q = Vec::new();
    let mut sweep_table = Table::new(["batch", "ms/query", "vs b=1024"]);
    let mut sweep_rng = StdRng::seed_from_u64(50);
    let sweep_jobs: Vec<QueryBatch> = {
        // One read-only request pool, re-chunked per batch size below.
        let mut b = QueryBatch::with_capacity(SWEEP_REQUESTS);
        for _ in 0..SWEEP_REQUESTS {
            match sweep_rng.gen_range(0..3) {
                0 => b.lca(sweep_rng.gen_range(0..n), sweep_rng.gen_range(0..n)),
                1 => b.subtree_sum(sweep_rng.gen_range(0..n)),
                _ => b.rank(sweep_rng.gen_range(0..n)),
            };
        }
        vec![b]
    };
    let pool = sweep_jobs[0].requests();
    let sweep_opts = || {
        let mut opts = ServiceOptions::new(1);
        opts.seed = 77;
        opts.queue_capacity = 512;
        opts.coalesce_target = 1; // one session per job: expose the hand-off
        opts
    };
    // Every sweep config starts with the identical warm job (engine
    // builds + one big session); measure that prefix once so the
    // per-batch-size figures cover only the chunked timed pass.
    let warm_busy_s = {
        let service = ForestService::start(&trees[..1], sweep_opts());
        service.submit(0, pool).wait().expect("worker alive");
        service.shutdown().shards[0].busy.as_secs_f64()
    };
    for &bsz in &sweep_sizes {
        let service = ForestService::start(&trees[..1], sweep_opts());
        service.submit(0, pool).wait().expect("worker alive");
        let tickets: Vec<Ticket> = pool
            .chunks(bsz)
            .map(|chunk| service.submit(0, chunk))
            .collect();
        for t in tickets {
            std::hint::black_box(t.wait().expect("worker alive").len());
        }
        let report = service.shutdown();
        let timed_s = (report.shards[0].busy.as_secs_f64() - warm_busy_s).max(1e-9);
        let ms_per_q = timed_s * 1e3 / SWEEP_REQUESTS as f64;
        sweep_ms_per_q.push(ms_per_q);
        sweep_rows.push(format!(
            "    {{\"batch\": {bsz}, \"ms_per_query\": {ms_per_q:.5}}}"
        ));
    }
    let asymptote = *sweep_ms_per_q.last().expect("sweep ran");
    for (i, &bsz) in sweep_sizes.iter().enumerate() {
        sweep_table.row([
            bsz.to_string(),
            format!("{:.5}", sweep_ms_per_q[i]),
            format!("{:.2}x", sweep_ms_per_q[i] / asymptote),
        ]);
    }
    sweep_table.print();
    // Two-point fit of ms/q = F/b + c from the largest sizes (where
    // measurement noise per cycle is best amortized).
    let k = sweep_sizes.len();
    let (b1, b2) = (sweep_sizes[k - 2] as f64, sweep_sizes[k - 1] as f64);
    let (ms1, ms2) = (sweep_ms_per_q[k - 2], sweep_ms_per_q[k - 1]);
    let fixed_ms_per_cycle = (ms1 - ms2) / (1.0 / b1 - 1.0 / b2);
    let marginal_ms_per_q = (ms2 - fixed_ms_per_cycle / b2).max(0.0);
    println!(
        "  fit: per-cycle fixed cost {fixed_ms_per_cycle:.2} ms, marginal {marginal_ms_per_q:.4} ms/query \
         => the cycle cost is ~all fixed; per-query cost falls as 1/batch"
    );
    // The knee criterion is self-relative: the smallest cycle size
    // whose per-query cost is within 2x of the batch-everything bound
    // (b = the whole pool). Below it, fixed-cost amortization still
    // dominates; above it, doubling the cycle buys < 2x.
    let measured_min = sweep_sizes
        .iter()
        .zip(&sweep_ms_per_q)
        .find(|(_, &ms)| ms <= 2.0 * asymptote)
        .map(|(&b, _)| b)
        .unwrap_or(*sweep_sizes.last().expect("nonempty"));
    println!(
        "  measured minimum coalesced batch (within 2x of the b=1024 bound): {measured_min}; baked-in MIN_COALESCED_BATCH = {MIN_COALESCED_BATCH}"
    );
    // Noise-aware regression gate on the baked constant: it must stay
    // within 2.5x of the batch-everything bound even on a loaded CI
    // box (expected ~1.75x from the fit).
    let at_constant = sweep_sizes
        .iter()
        .position(|&b| b >= MIN_COALESCED_BATCH)
        .map(|i| sweep_ms_per_q[i])
        .expect("constant within sweep range");
    assert!(
        at_constant <= 2.5 * asymptote,
        "MIN_COALESCED_BATCH={MIN_COALESCED_BATCH} no longer amortizes the cycle cost: {at_constant:.5} ms/q vs bound {asymptote:.5}"
    );

    // ---- JSON. ----
    let result_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"wall_qps\": {:.1}, \"modeled_qps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"jobs\": {JOBS}, \"sessions\": {}, \"total_busy_s\": {:.4}}}",
                r.workers, r.wall_qps, r.modeled_qps, r.p50_ms, r.p99_ms, r.executes, r.total_busy_s
            )
        })
        .collect();
    lab.config("n", format!("2^{log_n}"));
    lab.config("tenants", tenants);
    lab.config("trace", format!("{JOBS}x{JOB_LEN}"));
    // Summed per-session charges depend on how the open-loop trace
    // coalesces, which is queue-timing dependent — these rows are NOT
    // run-to-run deterministic, so the lab gates them under the noise
    // tolerance instead of exactly.
    let scenario_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            lab.scenario_row_nondet(
                "service_throughput_grid_total",
                &format!("sharded-{}w", r.workers),
                family.name(),
                n as u64,
                CurveKind::Hilbert.name(),
                r.grid_total,
                None,
            )
        })
        .collect();
    for r in &runs {
        lab.wall_info(&format!("wall_qps_{}w", r.workers), r.wall_qps);
        lab.wall_info(&format!("modeled_qps_{}w", r.workers), r.modeled_qps);
        lab.wall_time(&format!("p50_ms_{}w", r.workers), r.p50_ms);
        lab.wall_time(&format!("p99_ms_{}w", r.workers), r.p99_ms);
    }
    lab.wall_ratio("modeled_scaling_8w_vs_1w.speedup", speedup_modeled);
    lab.wall_info("single_shard_overhead_vs_direct", single_shard_overhead);
    lab.wall_info("granularity_fixed_ms_per_cycle", fixed_ms_per_cycle);
    let json = format!(
        "{{\n  \"workload\": \"8 tenants x uniform_random n=2^{log_n}, open-loop trace of {JOBS} jobs x {JOB_LEN} mixed requests (~6% inserts), tenant skew 4:2:2:1:1:1:1:1\",\n  \"metrics\": \"modeled_qps = total_requests / busiest shard busy time (load-balance critical path, one core per worker); wall_qps is measured on this machine and bounded by its core count; latency is client-observed per job\",\n  \"total_requests\": {total_requests},\n  \"speedup_modeled_8w_vs_1w\": {speedup_modeled:.3},\n  \"single_shard_busy_ms_per_query\": {:.4},\n  \"direct_forest_ms_per_query\": {direct_ms_per_q:.4},\n  \"single_shard_overhead_vs_direct\": {single_shard_overhead:.3},\n  \"min_coalesced_batch\": {MIN_COALESCED_BATCH},\n  \"measured_min_coalesced_batch\": {measured_min},\n  \"granularity_fit\": {{\"fixed_ms_per_cycle\": {fixed_ms_per_cycle:.3}, \"marginal_ms_per_query\": {marginal_ms_per_q:.4}}},\n  \"results\": [\n{}\n  ],\n  \"granularity_sweep\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        runs[0].busy_ms_per_q_busiest,
        result_rows.join(",\n"),
        sweep_rows.join(",\n"),
        scenario_rows.join(",\n")
    );
    let path = "BENCH_throughput.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_throughput.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `bench-json-durability` — crash-recovery cost of the snapshot +
/// journal store: a [`spatial_trees::session::SpatialForest`] lives
/// through a long journaled mutation history (weighted inserts,
/// weight updates, query-triggered light-first rebuilds) with a
/// checkpoint snapshot taken near the end, leaving a short journal
/// tail. The bar compares restarting from the checkpoint (snapshot
/// read + tail replay — the crash-recovery path) against rebuilding by
/// replaying the entire history from the seed snapshot, and
/// cross-checks both against the never-stopped forest (answers *and*
/// `SessionReport` charges). Writes `BENCH_durability.json` next to
/// the workspace root.
fn bench_json_durability() {
    use spatial_trees::session::{ForestOptions, QueryBatch, SpatialForest};
    use spatial_trees::store::{read_journal, ForestSnapshot, JournalWriter};

    println!(
        "\n### bench-json-durability — snapshot + journal recovery vs full replay → BENCH_durability.json\n"
    );
    let mut lab = LabRun::new("durability");

    let log_n = 12u32;
    let n = 1u32 << log_n;
    let family = TreeFamily::UniformRandom;
    let t = workload(family, n, 41);
    let opts = ForestOptions::default();

    let dir = std::env::temp_dir().join(format!("spatial-bench-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let seed_snap_path = dir.join("seed.snapshot");
    let history_path = dir.join("history.journal");
    let ckpt_snap_path = dir.join("checkpoint.snapshot");
    let tail_path = dir.join("tail.journal");

    // ---- The live forest: long journaled history, checkpoint near ----
    // ---- the end, then a short tail of post-checkpoint mutations.  ----
    let mut live = SpatialForest::with_options(&t, opts);
    live.snapshot_to(&seed_snap_path, 0).expect("seed snapshot");
    live.attach_journal(JournalWriter::create(&history_path).expect("history journal"));

    let mut wl = StdRng::seed_from_u64(42);
    let round = |forest: &mut SpatialForest, inserts: u32, rng: &mut StdRng| {
        let mut b = QueryBatch::new();
        for _ in 0..inserts {
            b.insert_leaf_weighted(rng.gen_range(0..forest.n()), rng.gen_range(1..100u64));
        }
        let nn = forest.n();
        // The queries force a journaled light-first rebuild per round —
        // the expensive part of replaying history.
        b.lca(rng.gen_range(0..nn), rng.gen_range(0..nn))
            .subtree_sum(rng.gen_range(0..nn));
        forest.execute(b.requests(), &mut StdRng::seed_from_u64(43));
        forest.set_weight(rng.gen_range(0..forest.n()), rng.gen_range(1..1000u64));
    };
    for _ in 0..24 {
        round(&mut live, 64, &mut wl);
    }
    live.journal_mut().expect("attached").sync().expect("sync");
    live.detach_journal();

    live.snapshot_to(&ckpt_snap_path, 1)
        .expect("checkpoint snapshot");
    live.attach_journal(JournalWriter::create(&tail_path).expect("tail journal"));
    for _ in 0..2 {
        round(&mut live, 30, &mut wl);
    }
    live.journal_mut().expect("attached").sync().expect("sync");
    live.detach_journal();

    let history_records = read_journal(&history_path).expect("history records").len();
    let tail_records = read_journal(&tail_path).expect("tail records").len();

    // ---- Both restart paths, verified against the live forest ----
    // ---- before anything is timed.                             ----
    let recover = || {
        SpatialForest::recover_from(&ckpt_snap_path, &tail_path, opts)
            .expect("recover from checkpoint")
    };
    let rebuild = || {
        let snap = ForestSnapshot::read_from(&seed_snap_path).expect("seed snapshot");
        let mut f = SpatialForest::from_snapshot(&snap, opts);
        f.apply_journal(&read_journal(&history_path).expect("history records"));
        f.apply_journal(&read_journal(&tail_path).expect("tail records"));
        f
    };
    let verify = |candidate: &mut SpatialForest, live: &mut SpatialForest, what: &str| {
        assert_eq!(candidate.n(), live.n(), "{what}: vertex count");
        assert_eq!(
            candidate.dynamic_stats(),
            live.dynamic_stats(),
            "{what}: dynamic stats"
        );
        let nn = live.n();
        let mut probe = QueryBatch::new();
        for i in 0..24u32 {
            probe
                .lca(i % nn, (i * 131 + 7) % nn)
                .subtree_sum((i * 17) % nn)
                .rank((i * 5 + 3) % nn);
        }
        let got = candidate
            .execute(probe.requests(), &mut StdRng::seed_from_u64(44))
            .to_vec();
        let expect = live
            .execute(probe.requests(), &mut StdRng::seed_from_u64(44))
            .to_vec();
        assert_eq!(got, expect, "{what}: answers diverged from live forest");
        assert_eq!(
            candidate.last_report(),
            live.last_report(),
            "{what}: charges diverged from live forest"
        );
    };
    let mut recovered = recover();
    verify(&mut recovered, &mut live, "recover");
    let mut rebuilt = rebuild();
    verify(&mut rebuilt, &mut live, "rebuild");
    let report = recovered.last_report();

    // ---- Timings (ms per restart, files read inside the loop). ----
    let recover_ms = time_best_ms(5, || recover().dynamic_stats().insertions);
    let rebuild_ms = time_best_ms(3, || rebuild().dynamic_stats().insertions);
    let speedup = rebuild_ms / recover_ms;
    assert!(
        speedup >= 2.0,
        "acceptance bar: checkpoint recovery must beat full-history replay by ≥ 2x, got {speedup:.2}x"
    );

    let mut table = Table::new(["restart path", "ms", "journal records", "speedup"]);
    table.row([
        "recover (checkpoint + tail)".to_string(),
        f3(recover_ms),
        tail_records.to_string(),
        format!("{speedup:.2}x"),
    ]);
    table.row([
        "rebuild (seed + full history)".to_string(),
        f3(rebuild_ms),
        (history_records + tail_records).to_string(),
        "1.00x".to_string(),
    ]);
    table.print();

    lab.config("n", format!("2^{log_n}"));
    lab.config("rounds", "24 + 2 tail");
    lab.wall_pair("recovery_vs_full_replay", recover_ms, rebuild_ms);
    let scenario_rows = [
        lab.scenario_row(
            "durability_recovered_mixed",
            "forest",
            family.name(),
            live.n() as u64,
            CurveKind::Hilbert.name(),
            report.grid,
            None,
        ),
        lab.scenario_row(
            "durability_recovered_mixed_ranking",
            "forest-dart",
            family.name(),
            live.n() as u64,
            CurveKind::Hilbert.name(),
            report.ranking,
            None,
        ),
    ];
    let json = format!(
        "{{\n  \"workload\": \"uniform_random n=2^{log_n}, 24 journaled rounds x (64 weighted inserts + mixed queries + set_weight), checkpoint snapshot before a 2-round tail\",\n  \"metrics\": \"recover = checkpoint snapshot read + tail journal replay; rebuild = seed snapshot read + full history replay; both paths verified bit-identical (answers and charges) against the never-stopped forest before timing\",\n  \"history_records\": {history_records},\n  \"tail_records\": {tail_records},\n  \"recover_ms\": {recover_ms:.3},\n  \"rebuild_ms\": {rebuild_ms:.3},\n  \"speedup_recover_vs_rebuild\": {speedup:.3},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenario_rows.join(",\n")
    );
    let path = "BENCH_durability.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_durability.json");
    lab.commit();
    println!("\n  wrote {path}\n");

    std::fs::remove_dir_all(&dir).ok();
}

/// `bench-json-ooc` — the out-of-core story end to end. Part one
/// sweeps resident-page budget × forest size over mapped recovery
/// (zero-copy slabs over the snapshot file): every cell serves the
/// identical query-only mixed stream as a fully-resident owned twin
/// and is verified bit-identical (answers and non-paging charges)
/// before timing; the sweep includes forests whose slab footprint
/// exceeds the budget many times over, where every row must report
/// paging faults. Part two measures the incremental checkpoint on a
/// dirty-tail workload (weight-edit-heavy, a few inserts, no
/// rebuild): the delta written must be at most 25% of a full snapshot
/// rewrite — the acceptance bar, re-checked against the committed
/// data by `crates/bench/tests/bench_schema.rs`. Writes
/// `BENCH_ooc.json` next to the workspace root.
fn bench_json_ooc() {
    use spatial_trees::model::PagingConfig;
    use spatial_trees::session::{ForestBacking, ForestOptions, QueryBatch, SpatialForest};

    println!(
        "\n### bench-json-ooc — mapped recovery under resident budgets + incremental checkpoints → BENCH_ooc.json\n"
    );
    let mut lab = LabRun::new("ooc");

    let family = TreeFamily::UniformRandom;
    let page_bytes = 4096u64;
    let dir = std::env::temp_dir().join(format!("spatial-bench-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let no_journal = dir.join("absent.journal");

    // A forest with history: weighted inserts, a settled (rebuilt)
    // layout, and non-uniform weights — so every slab is live data.
    let worked_snapshot = |log_n: u32, path: &std::path::Path| -> u32 {
        let n = 1u32 << log_n;
        let t = workload(family, n, 41);
        let mut forest = SpatialForest::new(&t);
        let mut rng = StdRng::seed_from_u64(42 + log_n as u64);
        let mut b = QueryBatch::new();
        for i in 0..64u32 {
            b.insert_leaf_weighted(i % n, (i as u64 % 7) + 1);
        }
        b.lca(0, n - 1).subtree_sum(0).rank(1);
        forest.execute(b.requests(), &mut rng);
        for v in 0..(n / 2) {
            forest.set_weight(v, (v as u64 % 13) + 1);
        }
        forest.snapshot_to(path, 1).expect("sweep snapshot");
        forest.n()
    };
    let stream = |n: u32, rng: &mut StdRng| -> QueryBatch {
        let mut b = QueryBatch::with_capacity(200);
        for _ in 0..200 {
            match rng.gen_range(0..100) {
                0..=29 => b.lca(rng.gen_range(0..n), rng.gen_range(0..n)),
                30..=64 => b.subtree_sum(rng.gen_range(0..n)),
                _ => b.rank(rng.gen_range(0..n)),
            };
        }
        b
    };

    // ---- Part one: resident budget × forest size sweep. ----
    let mut table = Table::new([
        "n",
        "snapshot KiB",
        "budget KiB",
        "faults",
        "evictions",
        "paging energy",
        "mapped ms",
        "owned ms",
    ]);
    let mut sweep_rows: Vec<String> = Vec::new();
    let mut scenario_rows: Vec<String> = Vec::new();
    for log_n in [12u32, 14] {
        let snap_path = dir.join(format!("sweep-{log_n}.snapshot"));
        let n0 = worked_snapshot(log_n, &snap_path);
        let snapshot_bytes = std::fs::metadata(&snap_path).expect("snapshot len").len();
        // 4 pages (16 KiB) is far below either forest's slab footprint
        // — the forest-exceeds-budget cells of the sweep; the largest
        // budget holds everything.
        for resident_pages in [4usize, 64, 1 << 14] {
            let paging = PagingConfig {
                page_bytes,
                resident_pages,
            };
            let run = |backing: ForestBacking, paging: Option<PagingConfig>| {
                let mut forest = SpatialForest::recover_with(
                    &snap_path,
                    &no_journal,
                    ForestOptions {
                        paging,
                        ..ForestOptions::default()
                    },
                    backing,
                )
                .expect("sweep recovery");
                let mut rng = StdRng::seed_from_u64(7);
                let mut answers = Vec::new();
                let mut reports = Vec::new();
                for round in 0..3u64 {
                    let b = stream(forest.n(), &mut rng);
                    answers.extend_from_slice(
                        forest.execute(b.requests(), &mut StdRng::seed_from_u64(round)),
                    );
                    let mut report = forest.last_report();
                    report.paging = None;
                    reports.push(report);
                }
                (forest, answers, reports)
            };
            let (mapped, got, got_reports) = run(ForestBacking::Mapped, Some(paging));
            let (_, want, want_reports) = run(ForestBacking::Owned, None);
            assert_eq!(got, want, "n=2^{log_n}: mapped answers diverged from owned");
            assert_eq!(
                got_reports, want_reports,
                "n=2^{log_n}: mapped non-paging charges diverged from owned"
            );
            assert!(mapped.any_slab_mapped(), "query-only stream never promotes");
            let paged = mapped.paging_lifetime().expect("paging configured");
            let budget_bytes = page_bytes * resident_pages as u64;
            if budget_bytes < snapshot_bytes {
                assert!(
                    paged.faults > 0,
                    "n=2^{log_n}: a below-footprint budget must fault"
                );
            }
            let mapped_ms = time_best_ms(3, || {
                run(ForestBacking::Mapped, Some(paging)).1.len() as u64
            });
            let owned_ms = time_best_ms(3, || run(ForestBacking::Owned, None).1.len() as u64);
            table.row([
                format!("2^{log_n}"),
                (snapshot_bytes / 1024).to_string(),
                (budget_bytes / 1024).to_string(),
                paged.faults.to_string(),
                paged.evictions.to_string(),
                paged.charge.energy.to_string(),
                f3(mapped_ms),
                f3(owned_ms),
            ]);
            sweep_rows.push(format!(
                "    {{\"n\": {n0}, \"resident_pages\": {resident_pages}, \"budget_bytes\": {budget_bytes}, \"snapshot_bytes\": {snapshot_bytes}, \"faults\": {}, \"evictions\": {}, \"paging_energy\": {}, \"paging_messages\": {}, \"mapped_ms\": {mapped_ms:.3}, \"owned_ms\": {owned_ms:.3}}}",
                paged.faults, paged.evictions, paged.charge.energy, paged.charge.messages
            ));
            if resident_pages == 4 {
                let report = mapped.last_report();
                scenario_rows.push(lab.scenario_row(
                    "ooc_mapped_mixed",
                    "forest",
                    family.name(),
                    mapped.n() as u64,
                    CurveKind::Hilbert.name(),
                    report.grid,
                    None,
                ));
                scenario_rows.push(lab.scenario_row(
                    "ooc_mapped_mixed_ranking",
                    "forest-dart",
                    family.name(),
                    mapped.n() as u64,
                    CurveKind::Hilbert.name(),
                    report.ranking,
                    None,
                ));
                lab.wall_time(&format!("mapped_ms_2^{log_n}_p4"), mapped_ms);
                lab.wall_time(&format!("owned_ms_2^{log_n}_p4"), owned_ms);
            }
        }
    }
    table.print();

    // ---- Part two: incremental checkpoint on a dirty-tail workload. ----
    // Weight edits dominate and the few inserts stay far below the
    // rebuild threshold, so only the weight slab's tail extents are
    // dirty — the shape the delta protocol exists for.
    let log_n = 14u32;
    let ckpt_path = dir.join("checkpoint.snapshot");
    worked_snapshot(log_n, &ckpt_path);
    let mut live = SpatialForest::recover_with(
        &ckpt_path,
        &no_journal,
        ForestOptions::default(),
        ForestBacking::Owned,
    )
    .expect("checkpoint base recovery");
    // recover_with doesn't track a base generation; re-snapshot so the
    // dirty tracker has one to patch against.
    live.snapshot_to(&ckpt_path, 2).expect("rebase snapshot");
    let full_bytes = std::fs::metadata(&ckpt_path).expect("snapshot len").len();
    let mut wl = StdRng::seed_from_u64(45);
    for _ in 0..400 {
        let v = live.n() - 1 - wl.gen_range(0..live.n() / 16);
        live.set_weight(v, wl.gen_range(1..1000u64));
    }
    let mut b = QueryBatch::new();
    for _ in 0..8 {
        b.insert_leaf_weighted(wl.gen_range(0..live.n()), wl.gen_range(1..100u64));
    }
    live.execute(b.requests(), &mut StdRng::seed_from_u64(46));
    let stats = live
        .checkpoint_to(&ckpt_path, 3)
        .expect("incremental checkpoint");
    let ratio = stats.bytes_written as f64 / full_bytes as f64;
    assert!(
        stats.incremental,
        "dirty-tail workload must take the delta path"
    );
    assert!(
        ratio <= 0.25,
        "acceptance bar: incremental checkpoint must write <= 25% of a full rewrite, got {ratio:.3}"
    );
    // The patched file round-trips bit-identically — mapped.
    let mut recovered = SpatialForest::recover_with(
        &ckpt_path,
        &no_journal,
        ForestOptions::default(),
        ForestBacking::Mapped,
    )
    .expect("post-checkpoint recovery");
    let mut probe = QueryBatch::new();
    let nn = live.n();
    for i in 0..24u32 {
        probe
            .lca(i % nn, (i * 131 + 7) % nn)
            .subtree_sum((i * 17) % nn)
            .rank((i * 5 + 3) % nn);
    }
    let got = recovered
        .execute(probe.requests(), &mut StdRng::seed_from_u64(47))
        .to_vec();
    let want = live
        .execute(probe.requests(), &mut StdRng::seed_from_u64(47))
        .to_vec();
    assert_eq!(got, want, "incremental checkpoint changed the forest");
    println!(
        "  incremental checkpoint: {} of {} bytes ({:.1}% of a full rewrite)\n",
        stats.bytes_written,
        full_bytes,
        ratio * 100.0
    );

    let json = format!(
        "{{\n  \"workload\": \"uniform_random n=2^12 and 2^14 with 64 weighted inserts + settled layout + edited weights, snapshotted then recovered mapped under 4/64/2^14 resident 4-KiB pages; dirty-tail checkpoint = 400 tail weight edits + 8 inserts on n=2^14\",\n  \"metrics\": \"every sweep cell verified bit-identical (answers and non-paging charges) against a fully-resident owned twin before timing; faults/evictions/energy from the paging lifetime; incremental checkpoint bytes vs a full snapshot rewrite of the same forest\",\n  \"page_bytes\": {page_bytes},\n  \"full_snapshot_bytes\": {full_bytes},\n  \"incremental_checkpoint_bytes\": {},\n  \"incremental_ratio\": {ratio:.4},\n  \"sweep\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        stats.bytes_written,
        sweep_rows.join(",\n"),
        scenario_rows.join(",\n")
    );
    let path = "BENCH_ooc.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_ooc.json");
    lab.config("sweep", "2^12,2^14 x 4/64/2^14 pages");
    lab.config("page_bytes", page_bytes);
    // Lower-is-better and deterministic given seeds, but not a
    // speedup — recorded informationally; the committed-data gate in
    // bench_schema.rs enforces the ≤0.25 bar.
    lab.wall_info("incremental_checkpoint_ratio", ratio);
    lab.commit();
    println!("\n  wrote {path}\n");

    std::fs::remove_dir_all(&dir).ok();
}

/// Best-of-`passes` single-shot timer (ms) for multi-millisecond
/// pipeline runs; one untimed warmup call. Shared by every
/// `bench-json-*` perf section.
fn time_best_ms(passes: u32, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = 0u64;
    sink ^= f();
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = std::time::Instant::now();
        sink ^= f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    std::hint::black_box(sink);
    best
}

/// `bench-json-layout` — the unified layout scenario runner plus the
/// machine-readable perf baseline for the layout subsystem. One code
/// path sweeps `LayoutKind × CurveKind × tree family` (grid/BFS
/// adversary, comb, random caterpillar, uniform random, and the
/// heavy-path adversary) through the shared quality metrics; the perf
/// section times the flat-array [`spatial_trees::layout::LayoutEngine`]
/// against the retained seed build on the order-10 grid, and the
/// incremental `DynamicLayout` against the seed rebuild-per-insert
/// baseline. Writes `BENCH_layout.json` next to the workspace root.
fn bench_json_layout() {
    use spatial_trees::layout::reference::{
        build_light_first_spatial_reference, ReferenceDynamicLayout,
    };
    use spatial_trees::layout::{
        edge_distance_stats_with_points_into, DynamicLayout, LayoutEngine,
    };
    println!(
        "\n### bench-json-layout — layout scenario sweep + perf baseline → BENCH_layout.json\n"
    );
    let mut lab = LabRun::new("layout");

    // ---- Scenario sweep: tree family × curve × layout order, all ----
    // ---- through edge_distance_stats_with_points (one code path). ----
    let families = [
        TreeFamily::PerfectBinary,
        TreeFamily::Comb,
        TreeFamily::Caterpillar,
        TreeFamily::UniformRandom,
        TreeFamily::HeavyAdversary,
    ];
    let n_sweep = 1u32 << 14;
    let mut rng = StdRng::seed_from_u64(200);
    let mut sweep_rows = Vec::new();
    let mut table = Table::new([
        "family", "n", "curve", "layout", "mean", "p50", "p95", "p99", "max",
    ]);
    // One counting scratch across the whole sweep — the percentile
    // array is allocated once and reused by every layout × curve cell.
    let mut counts_scratch: Vec<u64> = Vec::new();
    for family in families {
        let t = workload(family, n_sweep, 201);
        for curve in CurveKind::ENERGY_BOUND {
            for kind in LayoutKind::ALL {
                let layout = Layout::of_kind(kind, &t, curve, &mut rng);
                // Coordinates derived once per layout, shared by every
                // metric — the sweep's single code path.
                let points = layout.grid_points();
                let s = edge_distance_stats_with_points_into(&t, &points, &mut counts_scratch);
                table.row([
                    family.name().to_string(),
                    t.n().to_string(),
                    curve.name().to_string(),
                    kind.name().to_string(),
                    f2(s.mean),
                    s.p50.to_string(),
                    s.p95.to_string(),
                    s.p99.to_string(),
                    s.max.to_string(),
                ]);
                sweep_rows.push(format!(
                    "    {{\"family\": \"{}\", \"n\": {}, \"curve\": \"{}\", \"layout\": \"{}\", \"edges\": {}, \"total\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                    family.name(), t.n(), curve.name(), kind.name(),
                    s.edges, s.total, s.mean, s.p50, s.p95, s.p99, s.max
                ));
            }
        }
    }
    table.print();

    // ---- Perf 1: the §IV on-machine build on the order-10 grid ----
    // ---- (n = 2^20 vertices ⇒ the routing machine is 1024²).   ----
    let n = 1u32 << 20;
    let t = workload(TreeFamily::UniformRandom, n, 7);
    let mut engine = LayoutEngine::new(&t, CurveKind::Hilbert);
    assert_eq!(
        CurveKind::Hilbert.side_for_capacity(n as u64),
        1 << 10,
        "order-10 grid"
    );
    // Correctness + charge cross-check before timing anything; the
    // build's total machine charges feed the shared `scenarios` rows.
    let build_report = {
        let (ref_layout, ref_report) = build_light_first_spatial_reference(
            &t,
            CurveKind::Hilbert,
            &mut StdRng::seed_from_u64(9),
        );
        let report = engine.build_into(&mut StdRng::seed_from_u64(9));
        assert_eq!(engine.order(), ref_layout.order(), "engines disagree");
        assert_eq!(
            report.sizes_phase, ref_report.sizes_phase,
            "charges disagree"
        );
        assert_eq!(
            report.order_phase, ref_report.order_phase,
            "charges disagree"
        );
        assert_eq!(
            report.permute_phase, ref_report.permute_phase,
            "charges disagree"
        );
        report.total()
    };
    let build_ref = time_best_ms(3, || {
        let (l, _) = build_light_first_spatial_reference(
            &t,
            CurveKind::Hilbert,
            &mut StdRng::seed_from_u64(9),
        );
        l.order()[0] as u64
    });
    let build_oneshot = time_best_ms(3, || {
        let mut e = LayoutEngine::new(&t, CurveKind::Hilbert);
        e.build_into(&mut StdRng::seed_from_u64(9));
        e.order()[0] as u64
    });
    // The reuse path the engine exists for: structure built once, runs
    // pay only the per-build work.
    let build_reuse = time_best_ms(3, || {
        engine.build_into(&mut StdRng::seed_from_u64(9));
        engine.order()[0] as u64
    });

    // ---- Perf 2: dynamic layout — a leaf-insertion stream that ----
    // ---- doubles a 2^13 tree (incremental vs seed rebuild-all). ----
    let base = workload(TreeFamily::UniformRandom, 1 << 13, 103);
    let inserts: Vec<u32> = {
        let mut rng = StdRng::seed_from_u64(104);
        (1u32 << 13..1 << 14).map(|m| rng.gen_range(0..m)).collect()
    };
    let dyn_new = time_best_ms(3, || {
        let mut dl = DynamicLayout::new(&base, CurveKind::Hilbert, 4.0);
        for &p in &inserts {
            dl.insert_leaf(p);
        }
        dl.current_energy()
    });
    let dyn_ref = time_best_ms(3, || {
        let mut dl = ReferenceDynamicLayout::new(&base, CurveKind::Hilbert, 4.0);
        for &p in &inserts {
            dl.insert_leaf(p);
        }
        dl.current_energy()
    });

    let mut table = Table::new(["benchmark", "optimized ms", "reference ms", "speedup"]);
    let mut rows = Vec::new();
    for (name, opt, reference) in [
        ("layout_build_order10_grid_2^20", build_oneshot, build_ref),
        (
            "layout_build_order10_grid_2^20_engine_reuse",
            build_reuse,
            build_ref,
        ),
        ("dynamic_insert_stream_2^13", dyn_new, dyn_ref),
    ] {
        table.row([
            name.to_string(),
            f2(opt),
            f2(reference),
            format!("{:.2}x", reference / opt),
        ]);
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"optimized_ms\": {opt:.2}, \"reference_ms\": {reference:.2}, \"speedup\": {:.3}}}",
            reference / opt
        ));
        lab.wall_pair(name, opt, reference);
    }
    table.print();

    lab.config("build_n", "2^20");
    lab.config("dynamic_n", "2^13");
    lab.config("sweep_n", format!("{n_sweep}"));
    let scenario_rows = [lab.scenario_row(
        "layout_build",
        "spatial",
        TreeFamily::UniformRandom.name(),
        n as u64,
        CurveKind::Hilbert.name(),
        build_report,
        None,
    )];
    let json = format!(
        "{{\n  \"grid\": \"order-10 (1024x1024) for the on-machine build\",\n  \"build_workload\": \"uniform_random n=2^20, light-first spatial build\",\n  \"dynamic_workload\": \"uniform_random n=2^13 doubled by random leaf inserts, factor 4\",\n  \"sweep_n\": {n_sweep},\n  \"results\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ],\n  \"sweep\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        scenario_rows.join(",\n"),
        sweep_rows.join(",\n")
    );
    let path = "BENCH_layout.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_layout.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `bench-json-pram` — experiment E8 end to end: every PRAM baseline
/// (random-mate list ranking, Blelloch prefix sums, Euler-tour subtree
/// sums, sparse-table LCA) against its spatial counterpart (the
/// [`spatial_trees::euler::RankingEngine`], the §II-A prefix-sum
/// collective, treefix sums, the [`spatial_trees::lca::LcaEngine`])
/// across sizes × curves × tree families. Both sides compute the same
/// outputs from the same inputs (asserted); the energy columns make
/// the `Θ(n^{3/2})` vs `O(n log n)` crossover visible in the data.
/// Writes `BENCH_pram.json` next to the workspace root.
fn bench_json_pram() {
    use spatial_trees::euler::ranking::END;
    use spatial_trees::euler::RankingEngine;
    use spatial_trees::lca::LcaEngine;
    use spatial_trees::model::collectives;
    use spatial_trees::pram::{pram_list_rank, pram_prefix_sum, PramEngine};

    println!("\n### bench-json-pram — E8 PRAM-vs-spatial energy crossover → BENCH_pram.json\n");
    let mut lab = LabRun::new("pram");
    lab.config("sizes", "2^14..2^18 (lca 2^12..2^16)");
    let curves = [CurveKind::Hilbert, CurveKind::ZOrder];
    let mut rows: Vec<String> = Vec::new();

    // ---- Subtree sums: PRAM Euler tour + rank + prefix vs spatial ----
    // ---- treefix (O(n log n) energy). The headline crossover.      ----
    println!("subtree sums (same inputs, same outputs):");
    let mut table = Table::new([
        "family",
        "curve",
        "n",
        "spatial_energy",
        "pram_energy",
        "ratio",
        "spatial/(n·log n)",
        "pram/n^1.5",
    ]);
    for family in [
        TreeFamily::RandomBinary,
        TreeFamily::UniformRandom,
        TreeFamily::Comb,
    ] {
        for curve in curves {
            let mut ratios = Vec::new();
            for log_n in [14u32, 16, 18] {
                let n = 1u32 << log_n;
                let t = workload(family, n, 88);
                let values: Vec<u64> = (0..t.n() as u64).collect();
                let layout = Layout::light_first(&t, curve);
                let machine = layout.machine();
                let monoids: Vec<Add> = values.iter().map(|&v| Add(v)).collect();
                let spatial = treefix_bottom_up(
                    &machine,
                    &layout,
                    &t,
                    &monoids,
                    &mut StdRng::seed_from_u64(89),
                );
                let sr = machine.report();

                let mut prng = StdRng::seed_from_u64(90);
                let mut pram = PramEngine::with_curve(curve, 2 * t.n(), 2 * t.n(), &mut prng);
                let sums = pram_subtree_sums(&mut pram, &t, &values, &mut prng);
                let got: Vec<u64> = spatial.values.iter().map(|&Add(v)| v).collect();
                assert_eq!(got, sums, "baselines must agree");
                let pr = pram.report();

                ratios.push(pr.energy as f64 / sr.energy as f64);
                table.row([
                    family.name().to_string(),
                    curve.name().to_string(),
                    format!("2^{log_n}"),
                    sr.energy.to_string(),
                    pr.energy.to_string(),
                    f2(pr.energy as f64 / sr.energy as f64),
                    f3(sr.energy_per_n_log_n(n as u64)),
                    f3(pr.energy_per_n_three_halves(n as u64)),
                ]);
                rows.push(lab.scenario_row(
                    "subtree_sums",
                    "spatial",
                    family.name(),
                    n as u64,
                    curve.name(),
                    sr,
                    None,
                ));
                rows.push(lab.scenario_row(
                    "subtree_sums",
                    "pram",
                    family.name(),
                    n as u64,
                    curve.name(),
                    pr,
                    Some(pram.steps()),
                ));
            }
            // The acceptance bar: Θ(n^{3/2}) must outgrow O(n log n).
            assert!(
                ratios.windows(2).all(|w| w[1] > w[0]),
                "{family}/{curve}: PRAM/spatial energy ratio must grow with n: {ratios:?}"
            );
        }
    }
    table.print();

    // ---- List ranking: PRAM random-mate vs the spatial RankingEngine. ----
    // ---- "in-order": the list laid out along the curve (the layout-   ----
    // ---- aware case — near-linear spatial energy, the crossover).     ----
    // ---- "random-perm": no layout; both sides pay Θ(n^{3/2}) and the  ----
    // ---- gap is the constant-factor cost of hashed shared memory.     ----
    println!("\nlist ranking (spatial engine vs PRAM random-mate):");
    let mut table = Table::new([
        "list",
        "curve",
        "n",
        "spatial_energy",
        "pram_energy",
        "ratio",
    ]);
    for in_order in [true, false] {
        let list_family = if in_order {
            "in-order-list"
        } else {
            "random-perm-list"
        };
        for curve in curves {
            let mut ratios = Vec::new();
            for log_n in [14u32, 16, 18] {
                let n = 1usize << log_n;
                let (next, start) = if in_order {
                    let mut next: Vec<u32> = (1..=n as u32).collect();
                    next[n - 1] = END;
                    (next, 0u32)
                } else {
                    spatial_bench::random_list(n, 10 + log_n as u64)
                };
                let m = Machine::on_curve(curve, n as u32);
                let mut engine = RankingEngine::new(&next, start);
                engine.rank(&m, &mut StdRng::seed_from_u64(11));
                let sr = m.report();

                let mut prng = StdRng::seed_from_u64(12);
                let mut pram = PramEngine::with_curve(curve, n as u32, n as u32, &mut prng);
                let pram_ranks = pram_list_rank(&mut pram, &next, start, &mut prng);
                assert_eq!(engine.ranks(), &pram_ranks[..], "baselines must agree");
                let pr = pram.report();

                ratios.push(pr.energy as f64 / sr.energy as f64);
                table.row([
                    list_family.to_string(),
                    curve.name().to_string(),
                    format!("2^{log_n}"),
                    sr.energy.to_string(),
                    pr.energy.to_string(),
                    f2(pr.energy as f64 / sr.energy as f64),
                ]);
                rows.push(lab.scenario_row(
                    "list_ranking",
                    "spatial",
                    list_family,
                    n as u64,
                    curve.name(),
                    sr,
                    None,
                ));
                rows.push(lab.scenario_row(
                    "list_ranking",
                    "pram",
                    list_family,
                    n as u64,
                    curve.name(),
                    pr,
                    Some(pram.steps()),
                ));
            }
            if in_order {
                // The acceptance bar: with a layout to exploit, spatial
                // ranking is near-linear and the PRAM gap widens.
                assert!(
                    ratios.windows(2).all(|w| w[1] > w[0]),
                    "in-order/{curve}: PRAM/spatial ratio must grow with n: {ratios:?}"
                );
            } else {
                // No layout: both are Θ(n^{3/2}); PRAM still pays the
                // hashed-access constant.
                assert!(
                    ratios.iter().all(|&r| r > 1.0),
                    "random-perm/{curve}: PRAM must cost more: {ratios:?}"
                );
            }
        }
    }
    table.print();

    // ---- Prefix sums: PRAM Blelloch vs the §II-A spatial collective ----
    // ---- (O(n) energy on the curve).                                ----
    println!("\nprefix sums (Blelloch vs spatial collective):");
    let mut table = Table::new(["curve", "n", "spatial_energy", "pram_energy", "ratio"]);
    for curve in curves {
        let mut ratios = Vec::new();
        for log_n in [14u32, 16, 18] {
            let n = 1usize << log_n;
            let values: Vec<u64> = {
                let mut rng = StdRng::seed_from_u64(20);
                (0..n).map(|_| rng.gen_range(0..1000)).collect()
            };
            let m = Machine::on_curve(curve, n as u32);
            let spatial = collectives::exclusive_prefix_sum(&m, &values, 0u64, &|a, b| a + b);
            let sr = m.report();

            let mut prng = StdRng::seed_from_u64(21);
            let mut pram = PramEngine::with_curve(curve, n as u32, n as u32, &mut prng);
            let pram_sums = pram_prefix_sum(&mut pram, &values);
            assert_eq!(spatial, pram_sums, "baselines must agree");
            let pr = pram.report();

            ratios.push(pr.energy as f64 / sr.energy as f64);
            table.row([
                curve.name().to_string(),
                format!("2^{log_n}"),
                sr.energy.to_string(),
                pr.energy.to_string(),
                f2(pr.energy as f64 / sr.energy as f64),
            ]);
            rows.push(lab.scenario_row(
                "prefix_sums",
                "spatial",
                "values",
                n as u64,
                curve.name(),
                sr,
                None,
            ));
            rows.push(lab.scenario_row(
                "prefix_sums",
                "pram",
                "values",
                n as u64,
                curve.name(),
                pr,
                Some(pram.steps()),
            ));
        }
        assert!(
            ratios.windows(2).all(|w| w[1] > w[0]),
            "prefix/{curve}: PRAM/spatial ratio must grow with n: {ratios:?}"
        );
    }
    table.print();

    // ---- Batched LCA: PRAM sparse table vs the spatial LcaEngine ----
    // ---- (O(n log n) energy, n/2 queries).                       ----
    println!("\nbatched LCA (n/2 queries):");
    let mut table = Table::new([
        "family",
        "curve",
        "n",
        "spatial_energy",
        "pram_energy",
        "ratio",
    ]);
    for family in [TreeFamily::UniformRandom, TreeFamily::Comb] {
        for curve in curves {
            let mut ratios = Vec::new();
            for log_n in [12u32, 14, 16] {
                let n = 1u32 << log_n;
                let t = workload(family, n, 90);
                let mut qrng = StdRng::seed_from_u64(91);
                let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
                    .map(|_| (qrng.gen_range(0..t.n()), qrng.gen_range(0..t.n())))
                    .collect();
                let layout = Layout::light_first(&t, curve);
                let machine = layout.machine();
                let mut lca_engine = LcaEngine::new(&layout, &t);
                let res = lca_engine.run(&machine, &queries, &mut StdRng::seed_from_u64(92));
                let sr = machine.report();

                let mut prng = StdRng::seed_from_u64(93);
                let mut pram = PramEngine::with_curve(curve, 2 * t.n(), 2 * t.n(), &mut prng);
                let pram_answers = pram_lca_batch(&mut pram, &t, &queries, &mut prng);
                assert_eq!(res.answers, pram_answers, "baselines must agree");
                let pr = pram.report();

                ratios.push(pr.energy as f64 / sr.energy as f64);
                table.row([
                    family.name().to_string(),
                    curve.name().to_string(),
                    format!("2^{log_n}"),
                    sr.energy.to_string(),
                    pr.energy.to_string(),
                    f2(pr.energy as f64 / sr.energy as f64),
                ]);
                rows.push(lab.scenario_row(
                    "batched_lca",
                    "spatial",
                    family.name(),
                    n as u64,
                    curve.name(),
                    sr,
                    None,
                ));
                rows.push(lab.scenario_row(
                    "batched_lca",
                    "pram",
                    family.name(),
                    n as u64,
                    curve.name(),
                    pr,
                    Some(pram.steps()),
                ));
            }
            assert!(
                ratios.windows(2).all(|w| w[1] > w[0]),
                "lca {family}/{curve}: PRAM/spatial ratio must grow with n: {ratios:?}"
            );
        }
    }
    table.print();

    let json = format!(
        "{{\n  \"suite\": \"E8 — PRAM-simulation baselines vs spatial counterparts\",\n  \"subtree_sums_workload\": \"treefix bottom-up vs PRAM Euler tour + rank + prefix, 2n-cell shared memory\",\n  \"list_ranking_workload\": \"RankingEngine vs PRAM random-mate; in-order-list = laid out along the curve\",\n  \"prefix_sums_workload\": \"spatial prefix collective vs PRAM Blelloch\",\n  \"lca_workload\": \"LcaEngine vs PRAM sparse-table RMQ, n/2 queries\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = "BENCH_pram.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_pram.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `bench-json-lca` — the machine-readable perf baseline for the upper
/// pipeline: batched LCA (flat-array engine vs seed reference) on the
/// order-10 grid, spatial list ranking (flat splice-log engine vs seed
/// reference), and the end-to-end 1-respecting min-cut pipeline.
/// Writes `BENCH_lca_mincut.json` next to the workspace root.
fn bench_json_lca() {
    use spatial_trees::euler::ranking::rank_spatial;
    use spatial_trees::euler::reference::rank_spatial_reference;
    use spatial_trees::lca::reference::batched_lca_reference;
    use spatial_trees::mincut::reference::one_respecting_cuts_reference;
    use spatial_trees::mincut::{one_respecting_cuts, SpannedGraph};

    println!(
        "\n### bench-json-lca — LCA + ranking + mincut perf baseline → BENCH_lca_mincut.json\n"
    );
    let mut lab = LabRun::new("lca_mincut");

    // ---- Batched LCA on the order-10 grid (side 1024 ⇒ n = 2^20 ----
    // ---- slots), n/2 random queries — the acceptance workload.    ----
    let log_n = 20u32;
    let n = 1u32 << log_n;
    let t = workload(TreeFamily::UniformRandom, n, 7);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    assert_eq!(layout.machine().side(), 1 << 10, "order-10 grid");
    let mut qrng = StdRng::seed_from_u64(8);
    let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
        .map(|_| (qrng.gen_range(0..n), qrng.gen_range(0..n)))
        .collect();
    // Correctness cross-check before timing anything; the machine
    // charges feed the shared `scenarios` rows.
    let lca_report = {
        let m_new = layout.machine();
        let res_new = batched_lca(&m_new, &layout, &t, &queries, &mut StdRng::seed_from_u64(9));
        let m_ref = layout.machine();
        let res_ref =
            batched_lca_reference(&m_ref, &layout, &t, &queries, &mut StdRng::seed_from_u64(9));
        assert_eq!(res_new.answers, res_ref.answers, "engines disagree");
        assert_eq!(m_new.report(), m_ref.report(), "charges disagree");
        m_new.report()
    };
    let lca_new = time_best_ms(3, || {
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            &t,
            &queries,
            &mut StdRng::seed_from_u64(9),
        );
        res.answers[0] as u64
    });
    let lca_ref = time_best_ms(3, || {
        let machine = layout.machine();
        let res = batched_lca_reference(
            &machine,
            &layout,
            &t,
            &queries,
            &mut StdRng::seed_from_u64(9),
        );
        res.answers[0] as u64
    });
    // The reuse path the engine exists for: structure built once,
    // timed runs pay only the per-batch work (Las Vegas retries).
    let mut lca_engine = spatial_trees::lca::LcaEngine::new(&layout, &t);
    let lca_reuse = time_best_ms(3, || {
        let machine = layout.machine();
        let res = lca_engine.run(&machine, &queries, &mut StdRng::seed_from_u64(9));
        res.answers[0] as u64
    });

    // ---- Spatial list ranking, n = 2^18 elements. ----
    let rn = 1usize << 18;
    let (next, start) = spatial_bench::random_list(rn, 10);
    let rank_report = {
        let m_new = Machine::on_curve(CurveKind::Hilbert, rn as u32);
        let got = rank_spatial(&m_new, &next, start, &mut StdRng::seed_from_u64(11));
        let m_ref = Machine::on_curve(CurveKind::Hilbert, rn as u32);
        let expect = rank_spatial_reference(&m_ref, &next, start, &mut StdRng::seed_from_u64(11));
        assert_eq!(got.ranks, expect.ranks, "ranking engines disagree");
        assert_eq!(m_new.report(), m_ref.report(), "ranking charges disagree");
        m_new.report()
    };
    let rank_new = time_best_ms(3, || {
        let m = Machine::on_curve(CurveKind::Hilbert, rn as u32);
        let res = rank_spatial(&m, &next, start, &mut StdRng::seed_from_u64(11));
        res.ranks[0]
    });
    let rank_ref = time_best_ms(3, || {
        let m = Machine::on_curve(CurveKind::Hilbert, rn as u32);
        let res = rank_spatial_reference(&m, &next, start, &mut StdRng::seed_from_u64(11));
        res.ranks[0]
    });

    // ---- End-to-end 1-respecting min cut, n = 2^16, n/2 extra edges. ----
    let mn = 1u32 << 16;
    let graph = SpannedGraph::random(mn, mn as usize / 2, 100, &mut StdRng::seed_from_u64(12));
    let mlayout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
    let cut_report = {
        let m_new = mlayout.machine();
        let res_new = one_respecting_cuts(&m_new, &mlayout, &graph, &mut StdRng::seed_from_u64(13));
        let m_ref = mlayout.machine();
        let res_ref =
            one_respecting_cuts_reference(&m_ref, &mlayout, &graph, &mut StdRng::seed_from_u64(13));
        assert_eq!(res_new.cuts, res_ref.cuts, "mincut engines disagree");
        assert_eq!(m_new.report(), m_ref.report(), "mincut charges disagree");
        m_new.report()
    };
    let cut_new = time_best_ms(3, || {
        let machine = mlayout.machine();
        let res = one_respecting_cuts(&machine, &mlayout, &graph, &mut StdRng::seed_from_u64(13));
        res.best_weight
    });
    let cut_ref = time_best_ms(3, || {
        let machine = mlayout.machine();
        let res = one_respecting_cuts_reference(
            &machine,
            &mlayout,
            &graph,
            &mut StdRng::seed_from_u64(13),
        );
        res.best_weight
    });
    let mut pipeline = spatial_trees::mincut::MinCutPipeline::new(&graph, &mlayout);
    let cut_reuse = time_best_ms(3, || {
        let machine = mlayout.machine();
        let res = pipeline.run(&machine, &mut StdRng::seed_from_u64(13));
        res.best_weight
    });

    let mut table = Table::new(["benchmark", "optimized ms", "reference ms", "speedup"]);
    let mut rows = Vec::new();
    for (name, opt, reference) in [
        ("batched_lca_order10_grid_2^20", lca_new, lca_ref),
        (
            "batched_lca_order10_grid_2^20_engine_reuse",
            lca_reuse,
            lca_ref,
        ),
        ("list_ranking_2^18", rank_new, rank_ref),
        ("mincut_1respect_2^16", cut_new, cut_ref),
        ("mincut_1respect_2^16_pipeline_reuse", cut_reuse, cut_ref),
    ] {
        table.row([
            name.to_string(),
            f2(opt),
            f2(reference),
            format!("{:.2}x", reference / opt),
        ]);
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"optimized_ms\": {opt:.2}, \"reference_ms\": {reference:.2}, \"speedup\": {:.3}}}",
            reference / opt
        ));
        lab.wall_pair(name, opt, reference);
    }
    table.print();

    lab.config("lca_n", "2^20");
    lab.config("ranking_n", "2^18");
    lab.config("mincut_n", "2^16");
    let scenario_rows = [
        lab.scenario_row(
            "batched_lca",
            "spatial",
            TreeFamily::UniformRandom.name(),
            n as u64,
            CurveKind::Hilbert.name(),
            lca_report,
            None,
        ),
        lab.scenario_row(
            "list_ranking",
            "spatial",
            "random-perm-list",
            rn as u64,
            CurveKind::Hilbert.name(),
            rank_report,
            None,
        ),
        lab.scenario_row(
            "mincut_1respect",
            "spatial",
            "spanned-graph",
            mn as u64,
            CurveKind::Hilbert.name(),
            cut_report,
            None,
        ),
    ];
    let json = format!(
        "{{\n  \"grid\": \"order-10 (1024x1024) for batched LCA\",\n  \"lca_workload\": \"uniform_random n=2^20, n/2 queries\",\n  \"ranking_workload\": \"random permutation list n=2^18\",\n  \"mincut_workload\": \"random spanned graph n=2^16, n/2 extra edges\",\n  \"results\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        scenario_rows.join(",\n")
    );
    let path = "BENCH_lca_mincut.json";
    spatial_trees::store::atomic_write(path, json.as_bytes()).expect("write BENCH_lca_mincut.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `bench-json` — the machine-readable perf baseline for the two hot
/// paths: curve indexing (scalar reference vs LUT/magic-mask vs batch)
/// and treefix contraction (seed engine vs allocation-free CSR engine).
/// Writes `BENCH_sfc_treefix.json` next to the workspace root.
fn bench_json() {
    use spatial_trees::sfc::reference as scalar_ref;
    use spatial_trees::sfc::GridPoint;
    use spatial_trees::treefix::contraction::ContractionEngine;
    use spatial_trees::treefix::reference::ReferenceEngine;
    use std::time::Instant;

    /// Times `f` (which must consume its input once per call): three
    /// measurement passes, best pass wins (robust against scheduler
    /// noise on shared machines); returns ns per call.
    fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
        // Warmup + calibration.
        let start = Instant::now();
        let mut sink = 0u64;
        sink ^= f();
        let once = start.elapsed().max(std::time::Duration::from_nanos(100));
        let reps = (std::time::Duration::from_millis(60).as_nanos() / once.as_nanos())
            .clamp(3, 10_000) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..reps {
                sink ^= f();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
        }
        std::hint::black_box(sink);
        best
    }

    println!("\n### bench-json — SFC + treefix perf baseline → BENCH_sfc_treefix.json\n");
    let mut lab = LabRun::new("sfc_treefix");
    // The acceptance-criterion order-10 grid, as concrete curve types:
    // the reference paths are direct function calls, so the optimized
    // paths must not pay enum dispatch either.
    let side = 1u32 << 10;
    let hilbert = spatial_trees::sfc::HilbertCurve::new(side);
    let zorder = spatial_trees::sfc::zorder::ZOrderCurve::new(side);
    let n = hilbert.len();
    let points: Vec<GridPoint> = hilbert.all_points();
    let zpoints: Vec<GridPoint> = zorder.all_points();

    // ns per op = ns per full sweep / n.
    let per = |sweep_ns: f64| sweep_ns / n as f64;

    let h_point_lut = per(time_ns(|| (0..n).map(|i| hilbert.point(i).x as u64).sum()));
    let h_point_ref = per(time_ns(|| {
        (0..n)
            .map(|i| scalar_ref::hilbert_point_scalar(side, i).x as u64)
            .sum()
    }));
    let h_index_lut = per(time_ns(|| points.iter().map(|&p| hilbert.index(p)).sum()));
    let h_index_ref = per(time_ns(|| {
        points
            .iter()
            .map(|&p| scalar_ref::hilbert_index_scalar(side, p))
            .sum()
    }));
    // Batch rows: the SWAR lane kernels behind the public batch API
    // against the pre-PR scalar batch loops (retained verbatim in
    // `sfc::swar::*_chunk_scalar`) — the ≥1.5x acceptance bar the
    // committed-data gate in `bench_schema.rs` enforces.
    use spatial_trees::sfc::swar;
    let indices: Vec<u64> = (0..n).collect();
    let mut batch_out = vec![GridPoint::default(); n as usize];
    let h_point_batch = per(time_ns(|| {
        hilbert.point_range_batch(0, &mut batch_out);
        batch_out[0].x as u64
    }));
    let h_point_batch_ref = per(time_ns(|| {
        swar::hilbert_point_chunk_scalar(&hilbert, &indices, &mut batch_out);
        batch_out[0].x as u64
    }));
    let mut hidx_out = vec![0u64; n as usize];
    let h_index_batch = per(time_ns(|| {
        hilbert.index_batch(&points, &mut hidx_out);
        hidx_out[0]
    }));
    let h_index_batch_ref = per(time_ns(|| {
        swar::hilbert_index_chunk_scalar(&hilbert, &points, &mut hidx_out);
        hidx_out[0]
    }));
    let z_index_mask = per(time_ns(|| zpoints.iter().map(|&p| zorder.index(p)).sum()));
    let z_index_ref = per(time_ns(|| {
        zpoints
            .iter()
            .map(|&p| scalar_ref::zorder_index_scalar(side, p))
            .sum()
    }));
    let mut zidx_out = vec![0u64; n as usize];
    let z_index_batch = per(time_ns(|| {
        zorder.index_batch(&zpoints, &mut zidx_out);
        zidx_out[0]
    }));
    let z_index_batch_ref = per(time_ns(|| {
        swar::zorder_index_chunk_scalar(side, &zpoints, &mut zidx_out);
        zidx_out[0]
    }));
    let z_point_batch = per(time_ns(|| {
        zorder.point_batch(&indices, &mut batch_out);
        batch_out[0].x as u64
    }));
    let z_point_batch_ref = per(time_ns(|| {
        swar::zorder_point_chunk_scalar(side, &indices, &mut batch_out);
        batch_out[0].x as u64
    }));

    // Bitonic sort: the branchless compare-exchange network vs the
    // retained branchy reference, both over the same shuffled packed
    // records on a 2^16-slot curve machine (identical charge rows).
    let (bitonic_new, bitonic_ref) = {
        use rand::seq::SliceRandom;
        use spatial_trees::layout::engine::{bitonic_levels, run_bitonic, run_bitonic_reference};
        use spatial_trees::model::{LocalChargeScratch, Machine};
        let sort_n = 1usize << 16;
        let m = Machine::on_curve(CurveKind::Hilbert, sort_n as u32);
        let levels = bitonic_levels(&m, sort_n);
        let mut keys: Vec<u64> = (0..sort_n as u64).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(77));
        let mut scratch = LocalChargeScratch::new();
        let mut buf = vec![0u64; sort_n];
        let bitonic_new = time_ns(|| {
            buf.copy_from_slice(&keys);
            let mut lc = m.begin_local_charge(&mut scratch);
            run_bitonic(&mut lc, &mut buf, &levels);
            lc.commit();
            buf[0]
        }) / sort_n as f64;
        let bitonic_ref = time_ns(|| {
            buf.copy_from_slice(&keys);
            let mut lc = m.begin_local_charge(&mut scratch);
            run_bitonic_reference(&mut lc, &mut buf, &levels);
            lc.commit();
            buf[0]
        }) / sort_n as f64;
        (bitonic_new, bitonic_ref)
    };

    // Treefix contraction: whole bottom-up runs on a 2^13 random binary
    // tree, old engine vs new.
    let t = workload(TreeFamily::RandomBinary, 1 << 13, 5);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let values = vec![Add(1); t.n() as usize];
    let tf_new = time_ns(|| {
        let machine = layout.machine();
        let mut rng = StdRng::seed_from_u64(6);
        let mut eng = ContractionEngine::new(&t, &layout, &values, true);
        eng.contract(&machine, &mut rng);
        eng.uncontract_bottom_up(&machine)[0].0
    });
    let tf_ref = time_ns(|| {
        let machine = layout.machine();
        let mut rng = StdRng::seed_from_u64(6);
        let mut eng = ReferenceEngine::new(&t, &layout, &machine, &values, true);
        eng.contract(&mut rng);
        eng.uncontract_bottom_up()[0].0
    });
    // One charged run for the shared `scenarios` rows.
    let tf_report = {
        let machine = layout.machine();
        treefix_bottom_up(
            &machine,
            &layout,
            &t,
            &values,
            &mut StdRng::seed_from_u64(6),
        );
        machine.report()
    };

    let mut table = Table::new(["benchmark", "optimized ns/op", "reference ns/op", "speedup"]);
    let mut rows = Vec::new();
    for (name, opt, reference) in [
        ("hilbert_point_order10", h_point_lut, h_point_ref),
        ("hilbert_index_order10", h_index_lut, h_index_ref),
        (
            "hilbert_point_batch_order10",
            h_point_batch,
            h_point_batch_ref,
        ),
        (
            "hilbert_index_batch_order10",
            h_index_batch,
            h_index_batch_ref,
        ),
        ("zorder_index_order10", z_index_mask, z_index_ref),
        (
            "zorder_index_batch_order10",
            z_index_batch,
            z_index_batch_ref,
        ),
        (
            "zorder_point_batch_order10",
            z_point_batch,
            z_point_batch_ref,
        ),
        ("bitonic_sort_2^16", bitonic_new, bitonic_ref),
        ("treefix_bottom_up_2^13", tf_new, tf_ref),
    ] {
        table.row([
            name.to_string(),
            f2(opt),
            f2(reference),
            format!("{:.2}x", reference / opt),
        ]);
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"optimized_ns_per_op\": {opt:.2}, \"reference_ns_per_op\": {reference:.2}, \"speedup\": {:.3}}}",
            reference / opt
        ));
        lab.wall_pair(name, opt, reference);
    }
    table.print();

    // The committed-data gate in `bench_schema.rs` pins ≥1.5x on these
    // rows; assert the same bar at generation time so a regeneration on
    // a noisy box fails loudly here instead of at the next CI run.
    // Release builds only: unoptimized SWAR lanes have no reason to
    // beat unoptimized scalar loops, and the debug-assertions CI leg
    // appends lab runs through this writer.
    if cfg!(not(debug_assertions)) {
        for (name, opt, reference) in [
            (
                "hilbert_index_batch_order10",
                h_index_batch,
                h_index_batch_ref,
            ),
            (
                "zorder_index_batch_order10",
                z_index_batch,
                z_index_batch_ref,
            ),
            ("bitonic_sort_2^16", bitonic_new, bitonic_ref),
        ] {
            let speedup = reference / opt;
            assert!(
                speedup >= 1.5,
                "acceptance bar: {name} must beat its scalar batch reference by >= 1.5x, got {speedup:.2}x"
            );
        }
    }

    lab.config("grid", "order-10");
    lab.config("treefix_n", "2^13");
    let scenario_rows = [lab.scenario_row(
        "treefix_bottom_up",
        "spatial",
        TreeFamily::RandomBinary.name(),
        t.n() as u64,
        CurveKind::Hilbert.name(),
        tf_report,
        None,
    )];
    let json = format!(
        "{{\n  \"grid\": \"order-10 (1024x1024)\",\n  \"treefix_tree\": \"random_binary n=2^13\",\n  \"batch_baseline\": \"*_batch rows compare the SWAR lane kernels against the pre-PR scalar batch loops (retained in sfc::swar::*_chunk_scalar); bitonic compares the branchless network against the retained branchy reference, both charged identically\",\n  \"results\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        scenario_rows.join(",\n")
    );
    let path = "BENCH_sfc_treefix.json";
    spatial_trees::store::atomic_write(path, json.as_bytes())
        .expect("write BENCH_sfc_treefix.json");
    lab.commit();
    println!("\n  wrote {path}\n");
}

/// `calibrate-thresholds` — measures each fork-join kernel family's
/// sequential cost slope `c` (ns per item) and forked-task fixed
/// overhead `F` (ns per spawned task), then regenerates
/// `crates/sfc/src/thresholds.rs` with the fitted `F/b + c` models
/// (see `spatial_sfc::KernelFit`). Run from the workspace root:
///
/// ```sh
/// cargo run --release -p spatial-bench --bin experiments -- calibrate-thresholds
/// ```
///
/// The sweep covers batch sizes 2^8..2^20 per kernel. `c` is the
/// median per-item sequential cost over the largest sizes (where any
/// fixed cost is fully amortized); `F` is the median over all sizes of
/// half the penalty of a forced two-task `rayon::scope` split versus
/// the sequential run — an honest spawn-cost measurement even on a
/// single-core host, where the two tasks serialize and the entire
/// penalty is hand-off overhead. `SPATIAL_THREADS` pins the worker
/// count the consumers will see, but the fit itself is
/// thread-count-free: `KernelFit::min_par_items` plugs the live worker
/// count into the model at run time.
fn calibrate_thresholds() {
    use spatial_trees::euler::ranking::END;
    use spatial_trees::sfc::{swar, GridPoint};
    use std::time::Instant;

    /// Best-of-3 mean-per-call timer (ns); reps target ~40 ms per pass.
    fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
        let start = Instant::now();
        let mut sink = 0u64;
        sink ^= f();
        let once = start.elapsed().max(std::time::Duration::from_nanos(100));
        let reps = (std::time::Duration::from_millis(40).as_nanos() / once.as_nanos())
            .clamp(3, 3_000) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..reps {
                sink ^= f();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
        }
        std::hint::black_box(sink);
        best
    }

    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    }

    println!(
        "\n### calibrate-thresholds — F/b + c crossover fits → crates/sfc/src/thresholds.rs\n"
    );

    const MAX: usize = 1 << 20;
    let sizes: Vec<usize> = (8..=20).step_by(2).map(|p| 1usize << p).collect();

    // ---- Kernel inputs, sized for the largest sweep point. ----
    let side = 1u32 << 10;
    let hilbert = spatial_trees::sfc::HilbertCurve::new(side);
    let points: Vec<GridPoint> = hilbert.all_points();
    let mut fill_out = vec![0u64; MAX];

    let mut sort_buf: Vec<u64> = {
        use rand::seq::SliceRandom;
        let mut v: Vec<u64> = (0..MAX as u64).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        v
    };

    let mut rng = StdRng::seed_from_u64(4);
    let vals: Vec<u64> = (0..MAX).map(|_| rng.gen_range(0..1u64 << 40)).collect();
    let idx1: Vec<u32> = (0..MAX).map(|_| rng.gen_range(0..MAX as u32)).collect();
    let idx2: Vec<u32> = (0..MAX).map(|_| rng.gen_range(0..MAX as u32)).collect();
    let mut combine_out = vec![0u64; MAX];

    let (next, _) = spatial_bench::random_list(MAX, 5);
    let rank: Vec<u64> = vec![1; MAX];
    let mut next2 = vec![0u32; MAX];
    let mut rank2 = vec![0u64; MAX];

    // ---- Range bodies, shared by the sequential and two-task runs ----
    // ---- (mirroring each engine's inner loop).                     ----
    fn half_pass(lo: &mut [u64], hi: &mut [u64]) {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x.min(y);
            *b = x.max(y);
        }
    }
    fn combine_range(vals: &[u64], idx1: &[u32], idx2: &[u32], out: &mut [u64], start: usize) {
        for (i, o) in out.iter_mut().enumerate() {
            let k = start + i;
            *o = vals[idx1[k] as usize] + vals[idx2[k] as usize];
        }
    }
    fn splice_range(
        next: &[u32],
        rank: &[u64],
        next2: &mut [u32],
        rank2: &mut [u64],
        start: usize,
    ) {
        for i in 0..next2.len() {
            let k = start + i;
            let nx = next[k];
            let safe = if nx == END { k } else { nx as usize };
            next2[i] = if nx == END { END } else { next[safe] };
            rank2[i] = rank[k] + if nx == END { 0 } else { rank[safe] };
        }
    }

    // ---- One run closure per kernel: `two = true` forces a two-task ----
    // ---- rayon::scope split over disjoint halves.                   ----
    let mut fill_run = |b: usize, two: bool| -> u64 {
        let pts = &points[..b];
        let out = &mut fill_out[..b];
        if two {
            let (p1, p2) = pts.split_at(b / 2);
            let (o1, o2) = out.split_at_mut(b / 2);
            rayon::scope(|s| {
                s.spawn(move |_| swar::hilbert_index_chunk(side, p1, o1));
                s.spawn(move |_| swar::hilbert_index_chunk(side, p2, o2));
            });
        } else {
            swar::hilbert_index_chunk(side, pts, out);
        }
        fill_out[0]
    };
    let mut sort_run = |b: usize, two: bool| -> u64 {
        let (lo, hi) = sort_buf[..b].split_at_mut(b / 2);
        if two {
            let q = b / 4;
            let (lo1, lo2) = lo.split_at_mut(q);
            let (hi1, hi2) = hi.split_at_mut(q);
            rayon::scope(|s| {
                s.spawn(move |_| half_pass(lo1, hi1));
                s.spawn(move |_| half_pass(lo2, hi2));
            });
        } else {
            half_pass(lo, hi);
        }
        sort_buf[0]
    };
    let mut combine_run = |b: usize, two: bool| -> u64 {
        let out = &mut combine_out[..b];
        if two {
            let (o1, o2) = out.split_at_mut(b / 2);
            let (v, i1, i2) = (&vals, &idx1, &idx2);
            rayon::scope(|s| {
                s.spawn(move |_| combine_range(v, i1, i2, o1, 0));
                s.spawn(move |_| combine_range(v, i1, i2, o2, b / 2));
            });
        } else {
            combine_range(&vals, &idx1, &idx2, out, 0);
        }
        combine_out[0]
    };
    let mut splice_run = |b: usize, two: bool| -> u64 {
        let n2 = &mut next2[..b];
        let r2 = &mut rank2[..b];
        if two {
            let (n2a, n2b) = n2.split_at_mut(b / 2);
            let (r2a, r2b) = r2.split_at_mut(b / 2);
            let (nx, rk) = (&next, &rank);
            rayon::scope(|s| {
                s.spawn(move |_| splice_range(nx, rk, n2a, r2a, 0));
                s.spawn(move |_| splice_range(nx, rk, n2b, r2b, b / 2));
            });
        } else {
            splice_range(&next, &rank, n2, r2, 0);
        }
        rank2[0]
    };

    // ---- The sweep + fit. ----
    let mut table = Table::new(["kernel", "b", "seq ns/item", "2-task ns/item", "task ns"]);
    let mut calibrate = |name: &'static str, run: &mut dyn FnMut(usize, bool) -> u64| {
        let mut per_item = Vec::new();
        let mut task_ns = Vec::new();
        for &b in &sizes {
            let t_seq = time_ns(|| run(b, false));
            let t_par = time_ns(|| run(b, true));
            let penalty = ((t_par - t_seq) / 2.0).max(0.0);
            if b >= 1 << 16 {
                per_item.push(t_seq / b as f64);
            }
            task_ns.push(penalty);
            table.row([
                name.to_string(),
                format!("2^{}", b.trailing_zeros()),
                format!("{:.3}", t_seq / b as f64),
                format!("{:.3}", t_par / b as f64),
                format!("{penalty:.0}"),
            ]);
        }
        (median(&mut task_ns), median(&mut per_item))
    };

    let (fill_f, fill_c) = calibrate("sfc_fill", &mut fill_run);
    let (sort_f, sort_c) = calibrate("bitonic_pass", &mut sort_run);
    let (comb_f, comb_c) = calibrate("treefix_round", &mut combine_run);
    let (spl_f, spl_c) = calibrate("ranking_splice", &mut splice_run);
    table.print();

    let threads = rayon::current_num_threads();
    let fits = [
        (
            "SFC_FILL",
            "sfc_fill",
            "Curve batch fills (`par_fill`/`par_map_fill` over SWAR chunk kernels).",
            fill_f,
            fill_c,
        ),
        (
            "BITONIC_PASS",
            "bitonic_pass",
            "One compare-exchange pass of the bitonic sorting network.",
            sort_f,
            sort_c,
        ),
        (
            "TREEFIX_ROUND",
            "treefix_round",
            "One treefix contraction round over the alive set.",
            comb_f,
            comb_c,
        ),
        (
            "RANKING_SPLICE",
            "ranking_splice",
            "One list-ranking splice round (Wyllie pointer jumping).",
            spl_f,
            spl_c,
        ),
    ];
    for (_, name, _, f, c) in fits {
        // The model's crossover at T workers: n* = T²·F / (c·(T−1)).
        let nstar2 = 4.0 * f / c.max(1e-9);
        println!("  {name}: F = {f:.0} ns/task, c = {c:.4} ns/item, 2-worker crossover ~ {nstar2:.0} items");
    }

    let mut src = String::from(
        "//! Measured sequential↔parallel crossover fits.\n\
         //!\n\
         //! GENERATED by `cargo run --release -p spatial-bench --bin experiments\n\
         //! -- calibrate-thresholds` — regenerate instead of editing. Each\n\
         //! constant is the fitted `F/b + c` cost model of one kernel family\n\
         //! (see [`crate::KernelFit`]); the consumers call\n\
         //! [`crate::KernelFit::min_par_items`] at run time so the cutoff\n\
         //! adapts to the live worker count (including the `SPATIAL_THREADS`\n\
         //! override) rather than the calibration box's.\n\
         //!\n\
         //! A `calibrated_threads` of 1 means the calibration host could not\n\
         //! run real two-worker sweeps; the fixed overhead is then the measured\n\
         //! cost of a forced `rayon::scope` fork and the crossover stays\n\
         //! conservative.\n\
         \n\
         use crate::KernelFit;\n",
    );
    for (konst, name, doc, f, c) in fits {
        src.push_str(&format!(
            "\n/// {doc}\npub const {konst}: KernelFit = KernelFit {{\n    name: \"{name}\",\n    fixed_overhead_ns: {f:.1},\n    per_item_ns: {c:.4},\n    calibrated_threads: {threads},\n}};\n"
        ));
    }
    src.push_str(
        "\n/// All fits, for sweeps and reporting.\npub const ALL: [KernelFit; 4] = [SFC_FILL, BITONIC_PASS, TREEFIX_ROUND, RANKING_SPLICE];\n",
    );
    let path = "crates/sfc/src/thresholds.rs";
    spatial_trees::store::atomic_write(path, src.as_bytes()).expect("write thresholds.rs");
    println!("\n  wrote {path} (calibrated_threads = {threads})\n");
}

/// E11 — the cited application: 1-respecting minimum cuts (Karger)
/// from batched LCA + one fused treefix, near-linear energy end-to-end.
fn e11_mincut() {
    println!("\n### E11 — 1-respecting minimum cuts (the §I-C application)\n");
    let mut table = Table::new([
        "n",
        "extra_edges",
        "energy/(n·log n)",
        "depth/log² n",
        "best_cut",
    ]);
    for log_n in [10u32, 12, 14] {
        let n = 1u32 << log_n;
        let mut rng = StdRng::seed_from_u64(111);
        let graph = spatial_trees::mincut::SpannedGraph::random(n, n as usize / 2, 100, &mut rng);
        let layout = Layout::light_first(graph.tree(), CurveKind::Hilbert);
        let machine = layout.machine();
        let res = spatial_trees::mincut::one_respecting_cuts(&machine, &layout, &graph, &mut rng);
        let r = machine.report();
        table.row([
            format!("2^{log_n}"),
            (n / 2).to_string(),
            f3(r.energy_per_n_log_n(n as u64)),
            f2(r.depth_per_log2_n(n as u64)),
            res.best_weight.to_string(),
        ]);
    }
    table.print();
    println!("  (cut values verified against brute force in the test suite)\n");
}

/// A1 — ablation: which ingredient of the layout matters? Sweeps the
/// child order (light-first vs heavy-first vs natural DFS) and the
/// curve (distance-bound vs not) independently for the treefix workload.
fn a1_order_and_curve_ablation() {
    println!("\n### A1 — ablation: child order × curve (treefix energy/(n·log n))\n");
    let n = 1u32 << 14;
    let t = workload(TreeFamily::UniformRandom, n, 101);
    let orders: [(&str, Vec<NodeId>); 3] = [
        (
            "light-first",
            spatial_trees::tree::traversal::light_first_order(&t),
        ),
        (
            "heavy-first",
            spatial_trees::tree::traversal::heavy_first_order(&t),
        ),
        (
            "natural-dfs",
            spatial_trees::tree::traversal::dfs_preorder(&t),
        ),
    ];
    let mut table = Table::new(["order", "hilbert", "moore", "zorder", "serpentine"]);
    for (name, order) in &orders {
        let mut cells = vec![name.to_string()];
        for curve in [
            CurveKind::Hilbert,
            CurveKind::Moore,
            CurveKind::ZOrder,
            CurveKind::Serpentine,
        ] {
            let layout = Layout::from_order(curve, order.clone());
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(102);
            treefix_bottom_up(
                &machine,
                &layout,
                &t,
                &vec![Add(1); t.n() as usize],
                &mut rng,
            );
            cells.push(f3(machine.report().energy_per_n_log_n(t.n() as u64)));
        }
        table.row(cells);
    }
    table.print();
    println!("  (n = 2^14, uniform random tree; lower is better)\n");
}

/// A2 — dynamic layouts (§VII future work): a leaf-insertion stream
/// with amortized rebuilds at different quality tolerances.
fn a2_dynamic_layout() {
    println!("\n### A2 — dynamic layout maintenance (§VII future work)\n");
    let base = workload(TreeFamily::UniformRandom, 1 << 12, 103);
    let inserts = 1u32 << 12; // double the tree
    let mut table = Table::new([
        "rebuild_factor",
        "rebuilds",
        "final_energy/n",
        "fresh_energy/n",
        "overhead",
    ]);
    for factor in [f64::INFINITY, 8.0, 2.0] {
        let mut dl = spatial_trees::layout::DynamicLayout::new(&base, CurveKind::Hilbert, factor);
        let mut rng = StdRng::seed_from_u64(104);
        for _ in 0..inserts {
            let p = rng.gen_range(0..dl.n());
            dl.insert_leaf(p);
        }
        let tree = dl.tree();
        let n = tree.n() as f64;
        let current = dl.current_energy() as f64 / n;
        let fresh =
            local_kernel_energy(&tree, &Layout::light_first(&tree, CurveKind::Hilbert)) as f64 / n;
        table.row([
            if factor.is_infinite() {
                "never".to_string()
            } else {
                format!("{factor}")
            },
            dl.stats().rebuilds.to_string(),
            f2(current),
            f2(fresh),
            f2(current / fresh),
        ]);
    }
    table.print();
    println!("  (2^12-vertex tree doubled by random leaf insertions)\n");
}

/// A3 — expression tree evaluation (Miller–Reif, the §V reference):
/// all subexpressions of random +/× trees, bounded-degree treefix costs.
fn a3_expression_evaluation() {
    println!("\n### A3 — expression tree evaluation (Miller–Reif via rake/compress)\n");
    let mut table = Table::new(["leaves", "n", "energy/(n·log n)", "depth/log n", "rounds"]);
    for log_leaves in [10u32, 12, 14] {
        let expr = spatial_trees::treefix::ExprTree::random(
            1 << log_leaves,
            &mut StdRng::seed_from_u64(105),
        );
        let layout = Layout::light_first(expr.tree(), CurveKind::Hilbert);
        let machine = layout.machine();
        let res = spatial_trees::treefix::evaluate_expression(
            &machine,
            &layout,
            &expr,
            &mut StdRng::seed_from_u64(106),
        );
        // Verified against the host evaluator before reporting.
        assert_eq!(
            res.values,
            spatial_trees::treefix::evaluate_expression_host(&expr)
        );
        let r = machine.report();
        let n = expr.n() as u64;
        table.row([
            format!("2^{log_leaves}"),
            n.to_string(),
            f3(r.energy_per_n_log_n(n)),
            f2(r.depth_per_log_n(n)),
            res.stats.compact_rounds.to_string(),
        ]);
    }
    table.print();
    println!("  (all subexpression values verified against the host evaluator)\n");
}

/// E1 (Theorems 1–2, Fig. 1): mean parent→child grid distance per
/// layout, on every energy-bound curve (Hilbert, Moore, Z-order,
/// Peano). Light-first stays O(1); BFS on perfect binary trees and
/// random layouts grow like √n; DFS degrades on the comb.
fn e1_layout_energy() {
    println!("\n### E1 — messaging-kernel energy by layout (Theorems 1–2, all four curves)\n");
    let mut rng = StdRng::seed_from_u64(1);
    for family in [
        TreeFamily::PerfectBinary,
        TreeFamily::Comb,
        TreeFamily::UniformRandom,
        TreeFamily::PreferentialAttachment,
    ] {
        println!("family = {family} (mean edge distance)");
        let mut table = Table::new(["n", "curve", "light-first", "bfs", "dfs", "random"]);
        for log_n in [12u32, 14, 16] {
            let t = workload(family, 1 << log_n, 11);
            for curve in CurveKind::ENERGY_BOUND {
                let mut cells = vec![format!("2^{log_n}"), curve.name().to_string()];
                for kind in LayoutKind::ALL {
                    let layout = Layout::of_kind(kind, &t, curve, &mut rng);
                    cells.push(f2(edge_distance_stats(&t, &layout).mean));
                }
                table.row(cells);
            }
        }
        table.print();
        println!();
    }
}

/// E2 (Theorem 2, Fig. 2): Z-order light-first is energy-bound; the
/// diagonal term Ed stays linear.
fn e2_zorder() {
    println!("\n### E2 — Z-order light-first and the diagonal term (Theorem 2)\n");
    println!("kernel energy per vertex, light-first order, by curve:");
    let mut table = Table::new([
        "n",
        "hilbert",
        "moore",
        "zorder",
        "peano",
        "serpentine",
        "rowmajor",
    ]);
    for log_n in [12u32, 14, 16] {
        let t = workload(TreeFamily::UniformRandom, 1 << log_n, 22);
        let mut cells = vec![format!("2^{log_n}")];
        for curve in [
            CurveKind::Hilbert,
            CurveKind::Moore,
            CurveKind::ZOrder,
            CurveKind::Peano,
            CurveKind::Serpentine,
            CurveKind::RowMajor,
        ] {
            let layout = Layout::light_first(&t, curve);
            cells.push(f2(local_kernel_energy(&t, &layout) as f64 / t.n() as f64));
        }
        table.row(cells);
    }
    table.print();

    println!("\nLemma 3 split on tree edges (Z-light-first): Ed total / n:");
    let mut table = Table::new(["n", "Ed_total/n", "max_diagonal", "edges_using_diagonals_%"]);
    for log_n in [12u32, 14, 16] {
        let t = workload(TreeFamily::UniformRandom, 1 << log_n, 22);
        let layout = Layout::light_first(&t, CurveKind::ZOrder);
        let curve = ZOrderCurve::new(layout.machine().side());
        let mut ed_total = 0u64;
        let mut ed_max = 0u64;
        let mut using = 0u64;
        for (p, c) in t.edges() {
            let (i, j) = (layout.slot(p) as u64, layout.slot(c) as u64);
            let ed = longest_diagonal(&curve, i, j);
            ed_total += ed;
            ed_max = ed_max.max(ed);
            if ed > 1 {
                using += 1;
            }
        }
        table.row([
            format!("2^{log_n}"),
            f2(ed_total as f64 / t.n() as f64),
            ed_max.to_string(),
            f2(100.0 * using as f64 / (t.n() - 1) as f64),
        ]);
    }
    table.print();
    println!();
}

/// E3 (§III-B): measured distance-bound constants α per curve, against
/// the proven values (Hilbert 3, Peano √(10⅔); Z-order/row-major are
/// unbounded and must grow with the grid side).
fn e3_curve_locality() {
    println!("\n### E3 — distance-bound constants (§III-B)\n");
    let mut table = Table::new(["curve", "side", "measured α", "proven α", "mean step"]);
    for kind in CurveKind::ALL {
        for side_hint in [64u64 * 64, 256 * 256] {
            let curve = kind.for_capacity(side_hint);
            let stride = if curve.len() > 1 << 14 { 13 } else { 1 };
            let alpha = alpha_estimate(&curve, stride);
            table.row([
                kind.name().to_string(),
                curve.side().to_string(),
                f3(alpha),
                kind.alpha().map(f3).unwrap_or_else(|| "unbounded".into()),
                f3(mean_step_distance(&curve)),
            ]);
        }
    }
    table.print();
    println!();
}

/// E4 (Theorem 3, Figs. 3–4): unbounded-degree local broadcast through
/// the virtual tree: O(n) energy and O(log n) depth, vs the naive
/// direct kernel that pays Θ(n^{3/2}) on stars.
fn e4_unbounded_degree() {
    println!("\n### E4 — unbounded degree via virtual trees (Theorem 3)\n");
    for family in [
        TreeFamily::Star,
        TreeFamily::Broom,
        TreeFamily::PreferentialAttachment,
    ] {
        println!("family = {family}");
        let mut table = Table::new([
            "n",
            "direct_energy/n",
            "virtual_energy/n",
            "virtual_depth",
            "2·log2(n)",
        ]);
        for log_n in [12u32, 14, 16] {
            let n = 1u32 << log_n;
            let t = workload(family, n, 44);
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let direct = local_kernel_energy(&t, &layout);
            let machine = layout.machine();
            let vt = VirtualTree::new(&t);
            vt.charge_construction(&machine, &layout);
            let values = vec![1u64; t.n() as usize];
            local_broadcast(&machine, &layout, &vt, &t, &values);
            let r = machine.report();
            table.row([
                format!("2^{log_n}"),
                f2(direct as f64 / t.n() as f64),
                f2(r.energy as f64 / t.n() as f64),
                r.depth.to_string(),
                (2 * log_n).to_string(),
            ]);
        }
        table.print();
        println!();
    }
}

/// E5 (Theorems 4–5): spatial layout creation: O(n^{3/2}) energy and
/// O(log n) depth w.h.p.; random-mate rounds concentrate.
fn e5_layout_creation() {
    println!("\n### E5 — layout creation on the machine (Theorems 4–5)\n");
    let mut table = Table::new([
        "n",
        "energy/n^1.5",
        "depth",
        "depth/log2(n)",
        "rank_rounds",
        "sort_share_%",
    ]);
    for log_n in [10u32, 12, 14] {
        let n = 1u32 << log_n;
        let t = workload(TreeFamily::UniformRandom, n, 55);
        let mut rng = StdRng::seed_from_u64(56);
        let (_, report) = build_light_first_spatial(&t, CurveKind::Hilbert, &mut rng);
        let total = report.total();
        table.row([
            format!("2^{log_n}"),
            f3(total.energy_per_n_three_halves(t.n() as u64)),
            total.depth.to_string(),
            f2(total.depth as f64 / log_n as f64),
            format!("{}+{}", report.ranking_rounds.0, report.ranking_rounds.1),
            f2(100.0 * report.permute_phase.energy as f64 / total.energy as f64),
        ]);
    }
    table.print();

    println!("\nLas Vegas concentration: ranking rounds over 10 seeds (n = 2^12):");
    let t = workload(TreeFamily::UniformRandom, 1 << 12, 55);
    let mut rounds: Vec<u32> = (0..10)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, report) = build_light_first_spatial(&t, CurveKind::Hilbert, &mut rng);
            report.ranking_rounds.0
        })
        .collect();
    rounds.sort_unstable();
    println!(
        "  min={} median={} max={} (log2 n = 12)\n",
        rounds[0], rounds[5], rounds[9]
    );
}

/// E6 (Lemmas 10–12): treefix sums: O(n log n) energy; O(log n) depth
/// for bounded degree, O(log² n) otherwise; O(log n) COMPACT rounds.
fn e6_treefix() {
    println!("\n### E6 — treefix sums (Lemmas 10–12)\n");
    for family in [
        TreeFamily::RandomBinary,
        TreeFamily::Comb,
        TreeFamily::UniformRandom,
        TreeFamily::PreferentialAttachment,
        TreeFamily::Yule,
    ] {
        let bounded = TreeFamily::BOUNDED_DEGREE.contains(&family);
        println!(
            "family = {family} ({} degree)",
            if bounded { "bounded" } else { "unbounded" }
        );
        let mut table = Table::new([
            "n",
            "dir",
            "energy/(n·log n)",
            "depth",
            "depth/log n",
            "depth/log² n",
            "rounds",
        ]);
        for log_n in [12u32, 14, 16] {
            let n = 1u32 << log_n;
            let t = workload(family, n, 66);
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let values = vec![Add(1); t.n() as usize];
            for dir in ["up", "down"] {
                let machine = layout.machine();
                let mut rng = StdRng::seed_from_u64(67);
                let stats = if dir == "up" {
                    treefix_bottom_up(&machine, &layout, &t, &values, &mut rng).stats
                } else {
                    treefix_top_down(&machine, &layout, &t, &values, &mut rng).stats
                };
                let r = machine.report();
                table.row([
                    format!("2^{log_n}"),
                    dir.to_string(),
                    f3(r.energy_per_n_log_n(t.n() as u64)),
                    r.depth.to_string(),
                    f2(r.depth_per_log_n(t.n() as u64)),
                    f2(r.depth_per_log2_n(t.n() as u64)),
                    stats.compact_rounds.to_string(),
                ]);
            }
        }
        table.print();
        println!();
    }
}

/// E7 (Theorem 6, Fig. 8): batched LCA: O(n log n) energy, O(log² n)
/// depth; every answer verified against the host oracle.
fn e7_lca() {
    println!("\n### E7 — batched LCA (Theorem 6)\n");
    let mut table = Table::new([
        "n",
        "queries",
        "energy/(n·log n)",
        "energy/n^1.5",
        "depth/log² n",
        "layers",
        "step1_%",
    ]);
    for log_n in [12u32, 14, 16] {
        let n = 1u32 << log_n;
        let t = workload(TreeFamily::UniformRandom, n, 77);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let mut rng = StdRng::seed_from_u64(78);
        let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
            .map(|_| (rng.gen_range(0..t.n()), rng.gen_range(0..t.n())))
            .collect();
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng);
        let r = machine.report();
        // Verify against the oracle before reporting.
        let oracle = spatial_trees::lca::HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], oracle.query(a, b));
        }
        table.row([
            format!("2^{log_n}"),
            queries.len().to_string(),
            f3(r.energy_per_n_log_n(t.n() as u64)),
            f3(r.energy_per_n_three_halves(t.n() as u64)),
            f2(r.depth_per_log2_n(t.n() as u64)),
            res.stats.layers.to_string(),
            f2(100.0 * res.stats.answered_step1 as f64 / queries.len() as f64),
        ]);
    }
    table.print();
    println!("  (all answers verified against the binary-lifting oracle)\n");
}

/// E8 (§I-C): spatial vs PRAM-simulation energy for the same treefix
/// and LCA computations; the gap grows like √n / log n.
fn e8_pram_baseline() {
    println!("\n### E8 — PRAM simulation baseline (§I-C)\n");
    println!("subtree sums (same inputs, same outputs):");
    let mut table = Table::new([
        "n",
        "spatial_energy",
        "pram_energy",
        "ratio",
        "spatial/(n·log n)",
        "pram/n^1.5",
    ]);
    for log_n in [10u32, 12, 14] {
        let n = 1u32 << log_n;
        let t = workload(TreeFamily::RandomBinary, n, 88);
        let values: Vec<u64> = (0..t.n() as u64).collect();
        let mut rng = StdRng::seed_from_u64(89);

        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let monoids: Vec<Add> = values.iter().map(|&v| Add(v)).collect();
        let spatial = treefix_bottom_up(&machine, &layout, &t, &monoids, &mut rng);
        let se = machine.report().energy;

        let mut pram = PramEngine::new(2 * t.n(), 2 * t.n(), &mut rng);
        let pram_res = pram_subtree_sums(&mut pram, &t, &values, &mut rng);
        let pe = pram.report().energy;
        let got: Vec<u64> = spatial.values.iter().map(|&Add(v)| v).collect();
        assert_eq!(got, pram_res, "baselines must agree");

        table.row([
            format!("2^{log_n}"),
            se.to_string(),
            pe.to_string(),
            f2(pe as f64 / se as f64),
            f3(machine.report().energy_per_n_log_n(t.n() as u64)),
            f3(pram.report().energy_per_n_three_halves(t.n() as u64)),
        ]);
    }
    table.print();

    println!("\nbatched LCA (n/2 queries):");
    let mut table = Table::new(["n", "spatial_energy", "pram_energy", "ratio"]);
    for log_n in [10u32, 12] {
        let n = 1u32 << log_n;
        let t = workload(TreeFamily::UniformRandom, n, 90);
        let mut rng = StdRng::seed_from_u64(91);
        let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
            .map(|_| (rng.gen_range(0..t.n()), rng.gen_range(0..t.n())))
            .collect();

        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng);
        let se = machine.report().energy;

        let mut pram = PramEngine::new(t.n(), 2 * t.n(), &mut rng);
        let pram_answers = pram_lca_batch(&mut pram, &t, &queries, &mut rng);
        assert_eq!(res.answers, pram_answers, "baselines must agree");
        let pe = pram.report().energy;

        table.row([
            format!("2^{log_n}"),
            se.to_string(),
            pe.to_string(),
            f2(pe as f64 / se as f64),
        ]);
    }
    table.print();
    println!();
}

/// E9 (§VI-A, Fig. 8): path decompositions have O(log n) layers and
/// cover membership stays O(log n).
fn e9_path_decomposition() {
    println!("\n### E9 — path decomposition layers (§VI-A)\n");
    let mut table = Table::new(["family", "n", "layers", "log2(n)", "max_cover_membership"]);
    for family in [
        TreeFamily::Path,
        TreeFamily::Star,
        TreeFamily::Comb,
        TreeFamily::PerfectBinary,
        TreeFamily::UniformRandom,
        TreeFamily::PreferentialAttachment,
        TreeFamily::Yule,
    ] {
        let n = 1u32 << 16;
        let t = workload(family, n, 99);
        let sizes = t.subtree_sizes();
        let d = HeavyPathDecomposition::with_sizes(&t, &sizes);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let cover = spatial_trees::lca::SubtreeCover::new(&t, &layout, &d, &sizes);
        let max_membership = cover
            .membership_counts(&layout)
            .into_iter()
            .max()
            .unwrap_or(0);
        table.row([
            family.name().to_string(),
            t.n().to_string(),
            d.num_layers().to_string(),
            f2((t.n() as f64).log2()),
            max_membership.to_string(),
        ]);
    }
    table.print();
    println!();
}

// Silence the unused warning when compiled without running `Machine`
// directly (we use it through layouts).
#[allow(dead_code)]
fn _type_check(_: &Machine) {}
