//! Real wall-clock scaling smoke: with two workers, the forked batch
//! fill must actually be faster than with one — not just modeled
//! faster. Complements the calibration fits (which only promise the
//! crossover is *profitable*) with an end-to-end check that the
//! `par_fill` fork path wins on a real second core.
//!
//! The rayon shim memoizes its worker count on first use, so the
//! parent re-execs this same test binary twice with `SPATIAL_THREADS`
//! pinned to 1 and 2; each child times the same 2^20-point Hilbert
//! index batch and prints its best pass. Skips (silently passes) on
//! single-core hosts, where a second worker cannot exist.

use spatial_sfc::{Curve, GridPoint, HilbertCurve};
use std::time::Instant;

#[test]
fn two_thread_batch_fill_scales() {
    if std::env::var("SPATIAL_THREADS").is_ok() {
        // Child mode: time the batch under the pinned worker count.
        let curve = HilbertCurve::new(1 << 10);
        let points: Vec<GridPoint> = curve.all_points();
        let mut out = vec![0u64; points.len()];
        curve.index_batch(&points, &mut out); // warm-up
        let mut best = u128::MAX;
        for _ in 0..7 {
            let t0 = Instant::now();
            curve.index_batch(&points, &mut out);
            best = best.min(t0.elapsed().as_nanos());
        }
        assert!(out[0] < curve.len(), "batch produced a valid index");
        println!("WALL_NS={best}");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping: single-core host ({cores} worker)");
        return;
    }
    let run = |threads: &str| -> u128 {
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(exe)
            .args(["--exact", "two_thread_batch_fill_scales", "--nocapture"])
            .env("SPATIAL_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            output.status.success(),
            "child (SPATIAL_THREADS={threads}) failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("WALL_NS="))
            .unwrap_or_else(|| panic!("no WALL_NS line in child output: {stdout}"))
            .trim()
            .parse()
            .expect("numeric WALL_NS")
    };
    let t1 = run("1");
    let t2 = run("2");
    assert!(
        (t2 as f64) < (t1 as f64) * 0.9,
        "two workers must beat one by >= 10% wall-clock: t1 = {t1} ns, t2 = {t2} ns"
    );
}
