//! Property tests: the batch curve transforms must agree element-wise
//! with the scalar `point`/`index` for every curve family, and the
//! optimized hot paths must agree with the retained scalar references.

use proptest::prelude::*;
use spatial_sfc::{Curve, CurveKind, GridPoint};

/// Orders 1..=7 for the power-of-two families and levels 1..=4 for
/// Peano (3^4 = 81 ≈ the same grid scale).
fn curve_for(kind: CurveKind, order: u32) -> spatial_sfc::AnyCurve {
    let side = match kind {
        CurveKind::Peano => 3u32.pow(order.clamp(1, 4)),
        _ => 1u32 << order,
    };
    kind.with_side(side)
}

fn batch_agrees_with_scalar(kind: CurveKind, order: u32, seed: u64) {
    let curve = curve_for(kind, order);
    let n = curve.len();
    // A mix of stride patterns: contiguous prefix, strided, and a
    // pseudo-random pattern derived from the seed.
    let mut indices: Vec<u64> = (0..n.min(512)).collect();
    indices.extend((0..n).step_by(7));
    indices.extend((0..257u64).map(|k| (seed.wrapping_mul(k + 1).wrapping_add(k * k)) % n));

    let mut batch = vec![GridPoint::default(); indices.len()];
    curve.point_batch(&indices, &mut batch);
    for (k, &i) in indices.iter().enumerate() {
        assert_eq!(batch[k], curve.point(i), "{kind} order {order} point({i})");
    }

    let mut back = vec![0u64; batch.len()];
    curve.index_batch(&batch, &mut back);
    for (k, &i) in indices.iter().enumerate() {
        assert_eq!(back[k], i, "{kind} order {order} index(point({i}))");
        assert_eq!(curve.index(batch[k]), i);
    }

    // Range batch over a window.
    let start = seed % n;
    let len = (n - start).min(300) as usize;
    let mut window = vec![GridPoint::default(); len];
    curve.point_range_batch(start, &mut window);
    for (k, &p) in window.iter().enumerate() {
        assert_eq!(p, curve.point(start + k as u64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hilbert_batch_matches_scalar(order in 1u32..=7, seed in 0u64..10_000) {
        batch_agrees_with_scalar(CurveKind::Hilbert, order, seed);
    }

    #[test]
    fn zorder_batch_matches_scalar(order in 1u32..=7, seed in 0u64..10_000) {
        batch_agrees_with_scalar(CurveKind::ZOrder, order, seed);
    }

    #[test]
    fn moore_batch_matches_scalar(order in 1u32..=7, seed in 0u64..10_000) {
        batch_agrees_with_scalar(CurveKind::Moore, order, seed);
    }

    #[test]
    fn peano_batch_matches_scalar(order in 1u32..=4, seed in 0u64..10_000) {
        batch_agrees_with_scalar(CurveKind::Peano, order, seed);
    }

    #[test]
    fn negative_controls_batch_matches_scalar(order in 1u32..=7, seed in 0u64..10_000) {
        batch_agrees_with_scalar(CurveKind::RowMajor, order, seed);
        batch_agrees_with_scalar(CurveKind::Serpentine, order, seed);
    }
}

#[test]
fn large_batches_cross_the_parallel_threshold() {
    // Exceed PAR_BATCH_MIN so the threaded chunk path actually runs.
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.with_side(1 << 9); // 2^18 cells > 2^14 threshold
        let n = curve.len();
        let mut points = vec![GridPoint::default(); n as usize];
        curve.point_range_batch(0, &mut points);
        let indices: Vec<u64> = (0..n).collect();
        let mut batch = vec![GridPoint::default(); n as usize];
        curve.point_batch(&indices, &mut batch);
        assert_eq!(points, batch, "{kind}");
        let mut back = vec![0u64; n as usize];
        curve.index_batch(&points, &mut back);
        assert_eq!(back, indices, "{kind}");
        // Spot-check scalar agreement at the chunk boundaries.
        for i in [0u64, (1 << 14) - 1, 1 << 14, n / 2, n - 1] {
            assert_eq!(points[i as usize], curve.point(i), "{kind} at {i}");
        }
    }
}

#[test]
fn hilbert_matches_seed_reference_on_order_10() {
    // The acceptance-criterion grid: order 10 (1024×1024), sampled.
    let curve = CurveKind::Hilbert.with_side(1 << 10);
    for i in (0..curve.len()).step_by(997) {
        let p = spatial_sfc::reference::hilbert_point_scalar(1 << 10, i);
        assert_eq!(curve.point(i), p);
        assert_eq!(curve.index(p), i);
    }
}
