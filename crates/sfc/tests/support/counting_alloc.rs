//! Shared counting-allocator harness for this crate's zero-allocation
//! suites (`alloc_free.rs`, `dynamic_alloc.rs`), included via
//! `#[path]` so each test binary gets its own `#[global_allocator]`.
//! Each binary must hold exactly one live `#[test]` so no concurrent
//! test pollutes the count.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the allocation gate open, returning its result and
/// the number of heap allocations performed inside.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}
