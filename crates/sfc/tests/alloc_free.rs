//! Counting-allocator proof that the batch curve transforms perform
//! **zero heap allocation** into caller-provided buffers — the same
//! harness as the layout, ranking and treefix engines' `alloc_free`
//! tests.
//!
//! The SWAR rewrite must not regress this: the chunk kernels write
//! straight into the output slice and the packed LUTs are `static`, so
//! once the buffers exist, a batch costs no allocator traffic. The
//! batch sizes stay below every realistic parallel crossover so the
//! sequential path runs regardless of the host's core count (forked
//! workers allocate thread stacks by design). This binary holds
//! exactly one live `#[test]` so no concurrent test can pollute the
//! count.

use spatial_sfc::{Curve, CurveKind, GridPoint};

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::count_allocations;

#[test]
fn batch_transforms_do_not_allocate() {
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder] {
        let curve = kind.with_side(1 << 6); // 4096 cells: well below any crossover
        let n = curve.len() as usize;
        let indices: Vec<u64> = (0..n as u64).collect();
        let mut points = vec![GridPoint::default(); n];
        let mut back = vec![0u64; n];

        // Warm-up outside the gate (nothing lazy to grow, but keep the
        // shape of the sibling suites).
        curve.point_range_batch(0, &mut points);

        let ((), allocs) = count_allocations(|| {
            curve.point_range_batch(0, &mut points);
            curve.index_batch(&points, &mut back);
            curve.point_batch(&indices, &mut points);
        });
        assert_eq!(back, indices, "{kind}: round-trip");
        assert_eq!(
            allocs, 0,
            "{kind}: batch transforms allocated {allocs} times into preallocated buffers"
        );
    }
}
