//! The Peano curve.
//!
//! The Peano curve of order `m` covers a `3^m × 3^m` grid by a serpentine
//! recursion over 3×3 blocks, mirroring sub-blocks so that consecutive
//! positions stay grid-adjacent. It is distance-bound with constant
//! `α = √(10 + 2/3) ≈ 3.266` (Bader), slightly worse than the Hilbert
//! curve but still energy-bound for light-first layouts via Theorem 1.
//!
//! Implementation: the classic digit formula. Writing the index in base 3
//! as `a₁ b₁ a₂ b₂ … a_m b_m` (most significant first), the `x` digit at
//! level `i` is `a_i`, complemented (`2 − a_i`) iff `b₁ + … + b_{i−1}` is
//! odd, and the `y` digit is `b_i`, complemented iff `a₁ + … + a_i` is
//! odd. This produces the boustrophedon block order with the reflections
//! that keep the curve continuous.

use crate::geom::GridPoint;
use crate::Curve;

/// Peano curve over a `side × side` grid (`side` a power of three).
#[derive(Debug, Clone)]
pub struct PeanoCurve {
    side: u32,
    levels: u32,
}

impl PeanoCurve {
    /// Creates the Peano curve for the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero or not a power of three.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "Peano curve needs a positive side");
        let mut levels = 0;
        let mut s = side;
        while s > 1 {
            assert!(
                s.is_multiple_of(3),
                "Peano curve side must be a power of three, got {side}"
            );
            s /= 3;
            levels += 1;
        }
        PeanoCurve { side, levels }
    }

    /// Number of recursion levels `m` (the grid is `3^m × 3^m`).
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl Curve for PeanoCurve {
    fn side(&self) -> u32 {
        self.side
    }

    fn point(&self, index: u64) -> GridPoint {
        debug_assert!(index < self.len(), "index {index} out of curve range");
        let m = self.levels as usize;
        // Extract the 2m base-3 digits, most significant first.
        let mut digits = vec![0u8; 2 * m];
        let mut t = index;
        for slot in (0..2 * m).rev() {
            digits[slot] = (t % 3) as u8;
            t /= 3;
        }
        let mut x = 0u64;
        let mut y = 0u64;
        let mut a_parity = 0u8; // parity of a₁ + … + a_i (updated as we go)
        let mut b_parity = 0u8; // parity of b₁ + … + b_{i-1}
        for i in 0..m {
            let a = digits[2 * i];
            let b = digits[2 * i + 1];
            let xd = if b_parity & 1 == 1 { 2 - a } else { a };
            a_parity = a_parity.wrapping_add(a);
            let yd = if a_parity & 1 == 1 { 2 - b } else { b };
            b_parity = b_parity.wrapping_add(b);
            x = x * 3 + xd as u64;
            y = y * 3 + yd as u64;
        }
        GridPoint::new(x as u32, y as u32)
    }

    fn index(&self, p: GridPoint) -> u64 {
        debug_assert!(p.x < self.side && p.y < self.side, "{p} outside grid");
        let m = self.levels as usize;
        // Base-3 digits of the coordinates, most significant first.
        let mut xd = vec![0u8; m];
        let mut yd = vec![0u8; m];
        let (mut x, mut y) = (p.x, p.y);
        for i in (0..m).rev() {
            xd[i] = (x % 3) as u8;
            yd[i] = (y % 3) as u8;
            x /= 3;
            y /= 3;
        }
        let mut idx = 0u64;
        let mut a_parity = 0u8;
        let mut b_parity = 0u8;
        for i in 0..m {
            let a = if b_parity & 1 == 1 { 2 - xd[i] } else { xd[i] };
            a_parity = a_parity.wrapping_add(a);
            let b = if a_parity & 1 == 1 { 2 - yd[i] } else { yd[i] };
            b_parity = b_parity.wrapping_add(b);
            idx = idx * 9 + (a as u64) * 3 + b as u64;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::manhattan;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "power of three")]
    fn rejects_non_power_of_three() {
        let _ = PeanoCurve::new(6);
    }

    #[test]
    fn order_one_serpentine() {
        let c = PeanoCurve::new(3);
        let expect = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 1),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
        ];
        for (i, (x, y)) in expect.into_iter().enumerate() {
            assert_eq!(c.point(i as u64), GridPoint::new(x, y), "index {i}");
        }
    }

    #[test]
    fn consecutive_positions_are_adjacent() {
        for side in [3u32, 9, 27] {
            let c = PeanoCurve::new(side);
            for i in 1..c.len() {
                let a = c.point(i - 1);
                let b = c.point(i);
                assert!(
                    a.is_adjacent(b),
                    "side {side}: positions {} and {i} not adjacent: {a} vs {b}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn bijective_roundtrip() {
        for side in [1u32, 3, 9, 27] {
            let c = PeanoCurve::new(side);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert_eq!(c.index(p), i, "roundtrip failed at {i} (side {side})");
                let cell = (p.y * side + p.x) as usize;
                assert!(!seen[cell], "cell {p} visited twice");
                seen[cell] = true;
            }
        }
    }

    #[test]
    fn distance_bound_alpha() {
        // α = √(10 + 2/3) ≈ 3.266; allow additive slack for small j.
        let c = PeanoCurve::new(27);
        let alpha = (10.0 + 2.0 / 3.0f64).sqrt();
        let n = c.len();
        for i in (0..n).step_by(5) {
            for j in [1u64, 2, 4, 9, 27, 81, 243] {
                if i + j >= n {
                    break;
                }
                let d = manhattan(c.point(i), c.point(i + j)) as f64;
                let bound = alpha * (j as f64).sqrt() + 2.0;
                assert!(d <= bound, "dist({i}, {}) = {d} > {bound}", i + j);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(level in 0u32..4, raw in 0u64..u64::MAX) {
            let side = 3u32.pow(level);
            let c = PeanoCurve::new(side);
            let idx = raw % c.len();
            prop_assert_eq!(c.index(c.point(idx)), idx);
        }

        #[test]
        fn prop_adjacent(raw in 0u64..u64::MAX) {
            let c = PeanoCurve::new(27);
            let idx = raw % (c.len() - 1);
            prop_assert_eq!(manhattan(c.point(idx), c.point(idx + 1)), 1);
        }
    }
}
