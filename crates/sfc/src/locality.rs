//! Empirical locality analysis of space-filling curves.
//!
//! §III-B of the paper defines a curve as *distance-bound* when
//! `dist(i, i+j) ≤ α·√j + o(√j)` for every `i, j`, and *aligned* (Lemma 4)
//! when every `4^k` consecutive elements fit inside a `2·2^k × 2·2^k`
//! subgrid. This module measures both properties so that the experiment
//! harness can print measured α values next to the proven constants
//! (Hilbert 3, Peano √(10⅔), H-index 2√2) and show that Z-order, row-major
//! and serpentine orders are unbounded.

use crate::geom::{manhattan, BoundingBox};
use crate::Curve;
use rayon::prelude::*;

/// Measured locality of one index gap `j` on a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapStretch {
    /// The index gap `j`.
    pub gap: u64,
    /// `max_i dist(i, i+j)` over the sampled starting positions.
    pub max_dist: u64,
    /// `max_dist / √gap` — the per-gap distance-bound constant.
    pub ratio: f64,
}

/// Maximum `dist(i, i+j)` over all `i` in `0..len-j`, sampled with the
/// given stride (stride 1 is exhaustive). Runs in parallel.
pub fn max_dist_for_gap<C: Curve + Sync>(curve: &C, gap: u64, stride: u64) -> u64 {
    assert!(gap >= 1, "gap must be positive");
    assert!(stride >= 1, "stride must be positive");
    let n = curve.len();
    if gap >= n {
        return 0;
    }
    let starts: Vec<u64> = (0..n - gap).step_by(stride as usize).collect();
    starts
        .par_iter()
        .map(|&i| manhattan(curve.point(i), curve.point(i + gap)))
        .max()
        .unwrap_or(0)
}

/// Measures [`GapStretch`] for each gap in `gaps`.
pub fn stretch_profile<C: Curve + Sync>(curve: &C, gaps: &[u64], stride: u64) -> Vec<GapStretch> {
    gaps.iter()
        .map(|&gap| {
            let max_dist = max_dist_for_gap(curve, gap, stride);
            GapStretch {
                gap,
                max_dist,
                ratio: max_dist as f64 / (gap as f64).sqrt(),
            }
        })
        .collect()
}

/// Empirical distance-bound constant: the worst `dist/√j` over a sweep of
/// power-of-two gaps. For a distance-bound curve this converges to its α;
/// for Z-order/row-major it grows with the grid side.
pub fn alpha_estimate<C: Curve + Sync>(curve: &C, stride: u64) -> f64 {
    let n = curve.len();
    let mut gaps = Vec::new();
    let mut g = 1u64;
    while g < n {
        gaps.push(g);
        g *= 2;
    }
    stretch_profile(curve, &gaps, stride)
        .into_iter()
        .map(|s| s.ratio)
        .fold(0.0, f64::max)
}

/// Checks the alignment property of Lemma 4 on *sampled* windows: every
/// `4^k` consecutive elements must fit in a `2·2^k`-sided box. Returns the
/// largest observed `max_side / 2^k` ratio (≤ 2 means aligned).
pub fn alignment_ratio<C: Curve + Sync>(curve: &C, k: u32, stride: u64) -> f64 {
    let window = 4u64.pow(k);
    let n = curve.len();
    if window > n {
        return 0.0;
    }
    let starts: Vec<u64> = (0..=n - window).step_by(stride as usize).collect();
    let worst = starts
        .par_iter()
        .map(|&start| {
            BoundingBox::of_points((start..start + window).map(|i| curve.point(i)))
                .map(|bb| bb.max_side())
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    worst as f64 / (1u64 << k) as f64
}

/// Average Manhattan distance between consecutive curve positions — 1.0
/// for edge-connected curves (Hilbert, Peano, serpentine), larger for
/// Z-order and row-major.
pub fn mean_step_distance<C: Curve + Sync>(curve: &C) -> f64 {
    let n = curve.len();
    if n < 2 {
        return 0.0;
    }
    let total: u64 = (0..n - 1)
        .into_par_iter()
        .map(|i| manhattan(curve.point(i), curve.point(i + 1)))
        .sum();
    total as f64 / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CurveKind;

    #[test]
    fn hilbert_alpha_close_to_three() {
        let c = CurveKind::Hilbert.with_side(64);
        let a = alpha_estimate(&c, 1);
        assert!(a <= 3.01, "Hilbert α measured {a} > 3");
        assert!(a > 1.5, "Hilbert α measured {a} suspiciously small");
    }

    #[test]
    fn peano_alpha_within_proof() {
        let c = CurveKind::Peano.with_side(27);
        let a = alpha_estimate(&c, 1);
        let bound = (10.0 + 2.0 / 3.0f64).sqrt() + 0.01;
        assert!(a <= bound, "Peano α measured {a} > {bound}");
    }

    #[test]
    fn zorder_alpha_grows_with_side() {
        let small = alpha_estimate(&CurveKind::ZOrder.with_side(16), 1);
        let large = alpha_estimate(&CurveKind::ZOrder.with_side(128), 1);
        assert!(
            large > small * 1.8,
            "Z-order α should grow with side: {small} vs {large}"
        );
    }

    #[test]
    fn rowmajor_alpha_unbounded() {
        let a = alpha_estimate(&CurveKind::RowMajor.with_side(64), 1);
        assert!(a > 8.0, "row-major α measured only {a}");
    }

    #[test]
    fn hilbert_is_aligned() {
        let c = CurveKind::Hilbert.with_side(32);
        for k in 0..=3 {
            let r = alignment_ratio(&c, k, 7);
            assert!(r <= 2.0, "alignment ratio {r} > 2 at k={k}");
        }
    }

    #[test]
    fn zorder_unaligned_windows_can_be_far_apart() {
        // Lemma 3: unaligned Z-order windows span two subgrids "connected
        // by some diagonal and could therefore be far apart" — the
        // alignment ratio over arbitrary windows exceeds 2, which is
        // exactly why Theorem 2 needs the Ed diagonal accounting.
        let c = CurveKind::ZOrder.with_side(32);
        let r = alignment_ratio(&c, 2, 1);
        assert!(r > 2.0, "expected unaligned Z windows to spread, got {r}");
    }

    #[test]
    fn mean_step_distance_edge_connected() {
        assert_eq!(mean_step_distance(&CurveKind::Hilbert.with_side(16)), 1.0);
        assert_eq!(mean_step_distance(&CurveKind::Peano.with_side(9)), 1.0);
        assert_eq!(
            mean_step_distance(&CurveKind::Serpentine.with_side(10)),
            1.0
        );
        assert!(mean_step_distance(&CurveKind::ZOrder.with_side(16)) > 1.0);
        assert!(mean_step_distance(&CurveKind::RowMajor.with_side(16)) > 1.0);
    }

    #[test]
    fn stretch_profile_shapes() {
        let c = CurveKind::Hilbert.with_side(16);
        let profile = stretch_profile(&c, &[1, 4, 16, 64], 1);
        assert_eq!(profile.len(), 4);
        assert_eq!(profile[0].max_dist, 1, "unit gap on Hilbert is adjacent");
        for w in profile.windows(2) {
            assert!(w[0].max_dist <= w[1].max_dist, "max dist must be monotone");
        }
    }

    #[test]
    fn gap_larger_than_curve() {
        let c = CurveKind::Hilbert.with_side(4);
        assert_eq!(max_dist_for_gap(&c, 100, 1), 0);
    }
}
